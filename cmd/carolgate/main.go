// Command carolgate is the fleet front door: it routes /v1/ traffic
// across N backend carolserve shards on a consistent-hash ring
// (internal/ring), splits large fields into slabs that are compressed in
// parallel on the shards that own them (internal/chunked geometry,
// internal/pipeline fan-out discipline), and absorbs large jobs into a
// bounded async queue (internal/jobs) behind a 202-Accepted API.
//
//	carolgate -addr :8080 -shards http://s1:8081,http://s2:8082,http://s3:8083
//
// Endpoints:
//
//	POST /v1/compress?codec=..&rel=..&dims=..     -> routed to one shard, or
//	     slab-fanned across the fleet when the field is large enough
//	POST /v1/compress?mode=auto&rel=..&dims=..    -> adaptive codec selection:
//	     fanned fields are scored by the gate's own selector BEFORE the slab
//	     split (all slabs of one field use the one chosen codec,
//	     X-Carol-Codec-Chosen names it); whole-routed fields are decided by
//	     the owning shard and its header is relayed
//	POST /v1/decompress?codec=..                  -> CCH1 containers fan chunks
//	     out to their shards; everything else routes whole
//	POST /v1/estimate, /v1/predict                -> routed whole
//	GET  /v1/models, /v1/codecs                   -> routed whole
//	POST /v1/jobs/compress?...&tenant=..          -> 202 + job id (async queue)
//	GET  /v1/jobs/{id}                            -> JSON job status
//	GET  /v1/jobs/{id}/result                     -> result stream once done
//	GET  /v1/fleet                                -> shard health + model versions
//	GET  /v1/selector                             -> gate-local mode=auto bandit state
//	GET  /metrics, /debug/vars                    -> gate metrics
//	GET  /healthz                                 -> gate liveness
//	GET  /readyz                                  -> 200 once >=1 shard healthy
//
// Shard health is probed continuously (/healthz with per-shard backoff);
// requests retry on the next ring replica when a shard fails mid-flight,
// and an empty healthy set answers 503 + Retry-After. SIGTERM drains
// in-flight requests and the job queue before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
)

func main() {
	cfg := defaultGateConfig()
	addr := flag.String("addr", ":8080", "listen address")
	shardList := flag.String("shards", "", "comma-separated backend carolserve base URLs (required)")
	flag.IntVar(&cfg.virtualNodes, "vnodes", cfg.virtualNodes,
		"virtual nodes per shard on the consistent-hash ring")
	flag.IntVar(&cfg.maxInflight, "max-inflight", cfg.maxInflight,
		"maximum concurrently served /v1/ requests; excess get 503 + Retry-After")
	flag.IntVar(&cfg.fanoutWorkers, "fanout-workers", cfg.fanoutWorkers,
		"maximum concurrent shard requests per fanned-out field")
	flag.IntVar(&cfg.chunkThresholdKiB, "chunk-threshold-kib", cfg.chunkThresholdKiB,
		"fields at least this many KiB are slab-fanned across shards (0 disables chunking)")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", cfg.probeInterval,
		"shard /healthz probe interval (healthy shards)")
	flag.DurationVar(&cfg.probeTimeout, "probe-timeout", cfg.probeTimeout,
		"per-probe timeout")
	flag.DurationVar(&cfg.probeMaxBackoff, "probe-max-backoff", cfg.probeMaxBackoff,
		"cap on the exponential probe backoff for failing shards")
	flag.DurationVar(&cfg.shardTimeout, "shard-timeout", cfg.shardTimeout,
		"per-attempt timeout for proxied shard requests")
	flag.IntVar(&cfg.jobWorkers, "job-workers", cfg.jobWorkers,
		"concurrently running async jobs")
	flag.IntVar(&cfg.jobQueue, "job-queue", cfg.jobQueue,
		"maximum queued async jobs (503 beyond)")
	flag.IntVar(&cfg.tenantQuota, "tenant-quota", cfg.tenantQuota,
		"maximum queued+running async jobs per tenant (429 beyond)")
	flag.Uint64Var(&cfg.selectorSeed, "selector-seed", cfg.selectorSeed,
		"seed for the gate's mode=auto exploration RNG (fan-out path); fixed seed = reproducible decisions")
	flag.Float64Var(&cfg.selectorEpsilon, "selector-epsilon", cfg.selectorEpsilon,
		"gate mode=auto exploration probability (negative disables exploration)")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", cfg.readTimeout, "full-request read timeout")
	flag.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", cfg.readHeaderTimeout, "request-header read timeout")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", cfg.writeTimeout, "response write timeout")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", cfg.idleTimeout, "keep-alive idle timeout")
	flag.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", cfg.shutdownTimeout,
		"grace period for draining in-flight requests and async jobs on SIGINT/SIGTERM")
	flag.Parse()

	shards := splitShards(*shardList)
	if len(shards) == 0 {
		log.Printf("carolgate: -shards is required (comma-separated carolserve base URLs)")
		os.Exit(2)
	}
	os.Exit(run(cfg, *addr, shards))
}

// splitShards parses the -shards flag, trimming blanks and trailing
// slashes so "http://a:1/, http://b:2" normalizes cleanly.
func splitShards(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimRight(strings.TrimSpace(part), "/")
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// run owns the gate lifecycle: probe loop up before the listener, listener
// failures and shutdown failures each explicit, SIGTERM drains HTTP then
// the job queue.
func run(cfg gateConfig, addr string, shards []string) int {
	g, err := newGate(cfg, shards)
	if err != nil {
		log.Printf("carolgate: %v", err)
		return 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("carolgate: listen: %v", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// First probe sweep runs synchronously so /readyz is meaningful the
	// moment the listener accepts, then the background loop takes over.
	g.probeAll()
	stopProber := g.startProber()
	defer stopProber()

	srv := &http.Server{
		Handler:           g,
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
	log.Printf("carolgate listening on %s, %d shards on the ring", ln.Addr(), g.ring.Len())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Printf("carolgate: serve: %v", err)
		return 1
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("carolgate: signal received, draining (up to %v)", cfg.shutdownTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
		defer cancel()
		code := 0
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("carolgate: graceful shutdown: %v; forcing close", err)
			if cerr := srv.Close(); cerr != nil {
				log.Printf("carolgate: close: %v", cerr)
			}
			code = 1
		} else if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
			log.Printf("carolgate: serve returned %v after shutdown", err)
			code = 1
		}
		// HTTP is drained (or abandoned); now drain the async queue under
		// the same deadline so accepted jobs are not silently lost.
		if err := g.queue.Close(sctx); err != nil {
			log.Printf("carolgate: job drain: %v", err)
			code = 1
		}
		log.Printf("carolgate: shutdown complete")
		return code
	}
}
