package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"strings"

	"carol/internal/jobs"
)

// tenantOf extracts the tenant a job is accounted to: the X-Carol-Tenant
// header, then the tenant= parameter, then "default". Quotas are
// accounting, not auth — a bounded alphabet check keeps tenant strings
// from smuggling junk into logs and JSON, but anyone can claim any name.
func tenantOf(r *http.Request) (string, error) {
	t := r.Header.Get("X-Carol-Tenant")
	if t == "" {
		t = r.URL.Query().Get("tenant")
	}
	if t == "" {
		return "default", nil
	}
	if len(t) > 64 {
		return "", fmt.Errorf("tenant name too long")
	}
	for _, c := range t {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.') {
			return "", fmt.Errorf("bad tenant name")
		}
	}
	return t, nil
}

// jobAccepted is the 202 response body.
type jobAccepted struct {
	ID        string `json:"id"`
	StatusURL string `json:"status_url"`
	ResultURL string `json:"result_url"`
}

// handleJobSubmit admits a large compress request into the async queue:
// the body is buffered under the proxy limits, the job runs the same
// routing logic as the synchronous path (chunk-fanned or whole), and the
// client polls /v1/jobs/{id} until the result is streamable.
func (g *gate) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	tenant, err := tenantOf(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := g.readBody(r)
	if err != nil {
		bodyError(w, err)
		return
	}
	// Snapshot the routing-relevant request state; the job outlives r.
	query := r.URL.Query()
	key := routeKey(r)
	id, err := g.queue.SubmitMeta(tenant, "compress", func(ctx context.Context) ([]byte, map[string]string, error) {
		return g.compressJob(query, key, body)
	})
	if err != nil {
		jobAdmissionError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	resp := jobAccepted{
		ID:        id,
		StatusURL: "/v1/jobs/" + id,
		ResultURL: "/v1/jobs/" + id + "/result",
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("carolgate: job accept encode: %v", err)
	}
}

// compressJob is the queued work: same decision tree as handleCompress,
// but returning bytes (plus result metadata — the mode=auto chosen codec,
// whether the gate picked it for a fan-out or a shard picked it for a
// whole-routed request) instead of writing a response.
func (g *gate) compressJob(q url.Values, key string, body []byte) ([]byte, map[string]string, error) {
	healthy := g.healthyShards()
	if g.shouldChunk(q, len(body), len(healthy)) {
		out, chosen, err := g.chunkCompress(q, key, body, healthy)
		if err != nil {
			return nil, nil, err
		}
		return out, codecMeta(chosen), nil
	}
	pathAndQuery := "/v1/compress"
	if enc := q.Encode(); enc != "" {
		pathAndQuery += "?" + enc
	}
	resp, err := g.routeWithRetry(key, http.MethodPost, pathAndQuery, body)
	if err != nil {
		return nil, nil, err
	}
	if resp.status != http.StatusOK {
		return nil, nil, fmt.Errorf("shard status %d: %s", resp.status, truncate(resp.body))
	}
	return resp.body, codecMeta(resp.header.Get("X-Carol-Codec-Chosen")), nil
}

// codecMeta wraps a chosen-codec name as job result metadata (nil when no
// adaptive selection happened).
func codecMeta(chosen string) map[string]string {
	if chosen == "" {
		return nil
	}
	return map[string]string{"codec": chosen}
}

// jobAdmissionError maps queue refusals: full queue → 503 (come back),
// tenant over quota → 429 (you specifically come back), closed → 503.
func jobAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrTenantQuota):
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrClosed):
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleJobGet serves /v1/jobs/{id} (status JSON) and
// /v1/jobs/{id}/result (the result stream once done).
func (g *gate) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, wantResult := rest, false
	if s, ok := strings.CutSuffix(rest, "/result"); ok {
		id, wantResult = s, true
	}
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusNotFound, "bad job path")
		return
	}
	if wantResult {
		g.serveJobResult(w, id)
		return
	}
	st, err := g.queue.Get(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		log.Printf("carolgate: job status encode: %v", err)
	}
}

// serveJobResult streams a finished job's bytes; an unfinished job
// answers 202 with its status so pollers can share code with the status
// endpoint, and a failed job surfaces its error as 502.
func (g *gate) serveJobResult(w http.ResponseWriter, id string) {
	res, st, err := g.queue.Result(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	switch st.State {
	case jobs.StateQueued, jobs.StateRunning:
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		if err := json.NewEncoder(w).Encode(st); err != nil {
			log.Printf("carolgate: job result encode: %v", err)
		}
	case jobs.StateFailed:
		httpError(w, http.StatusBadGateway, "job failed: %s", st.Error)
	default: // StateDone
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Carol-Job-Id", id)
		if c := st.Meta["codec"]; c != "" {
			w.Header().Set("X-Carol-Codec-Chosen", c)
		}
		if _, err := w.Write(res); err != nil {
			log.Printf("carolgate: job result write: %v", err)
		}
	}
}
