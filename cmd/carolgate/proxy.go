package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync/atomic"
	"time"
)

// errTooLarge marks a request rejected for size, mapped to 413.
var errTooLarge = errors.New("request body too large")

// errNoShards reports an empty healthy set, mapped to 503 + Retry-After.
var errNoShards = errors.New("no healthy shards")

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// shardState is the mutable health record for one ring member. All fields
// are atomics: the probe loop writes, the request path reads, no lock.
type shardState struct {
	url string
	// healthy gates routing. Starts false; the boot probe sweep flips it.
	healthy atomic.Bool
	// fails counts consecutive probe failures, driving the backoff.
	fails atomic.Int64
	// nextProbe is the earliest unix-nano instant the prober may probe
	// again — failing shards back off exponentially so a dead shard costs
	// probe-timeout only a few times, not every sweep.
	nextProbe atomic.Int64
}

func newShardState(url string) *shardState { return &shardState{url: url} }

// healthyShards returns the healthy ring members in ring (sorted) order.
func (g *gate) healthyShards() []string {
	out := make([]string, 0, len(g.shards))
	for _, s := range g.ring.Shards() {
		if g.shards[s].healthy.Load() {
			out = append(out, s)
		}
	}
	return out
}

// markShardDown records a request-path failure: the shard is routed
// around immediately rather than waiting for the next probe sweep.
func (g *gate) markShardDown(name string) {
	ss := g.shards[name]
	if ss.healthy.CompareAndSwap(true, false) {
		log.Printf("carolgate: shard %s marked unhealthy after request failure", name)
		g.healthyGauge.Set(float64(len(g.healthyShards())))
	}
}

// probeAll probes every shard whose backoff window has passed and updates
// the healthy gauge. One synchronous sweep; the prober loop calls it on a
// ticker, run() calls it once before serving.
func (g *gate) probeAll() {
	now := time.Now().UnixNano()
	for _, name := range g.ring.Shards() {
		ss := g.shards[name]
		if now < ss.nextProbe.Load() {
			continue
		}
		g.probe(ss)
	}
	g.healthyGauge.Set(float64(len(g.healthyShards())))
}

// probe hits one shard's /healthz. Success resets the backoff; failure
// doubles it (capped at probeMaxBackoff).
func (g *gate) probe(ss *shardState) {
	req, err := http.NewRequest(http.MethodGet, ss.url+"/healthz", nil)
	if err != nil {
		g.probeFailed(ss, err)
		return
	}
	client := &http.Client{Timeout: g.cfg.probeTimeout}
	resp, err := client.Do(req)
	if err != nil {
		g.probeFailed(ss, err)
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if cerr := resp.Body.Close(); cerr != nil {
		log.Printf("carolgate: probe body close: %v", cerr)
	}
	if resp.StatusCode != http.StatusOK {
		g.probeFailed(ss, fmt.Errorf("healthz status %d", resp.StatusCode))
		return
	}
	if ss.healthy.CompareAndSwap(false, true) {
		log.Printf("carolgate: shard %s healthy", ss.url)
	}
	ss.fails.Store(0)
	ss.nextProbe.Store(time.Now().Add(g.cfg.probeInterval).UnixNano())
}

func (g *gate) probeFailed(ss *shardState, err error) {
	fails := ss.fails.Add(1)
	if ss.healthy.CompareAndSwap(true, false) {
		log.Printf("carolgate: shard %s unhealthy: %v", ss.url, err)
	}
	backoff := g.cfg.probeInterval << uint(min64(fails, 6))
	if backoff > g.cfg.probeMaxBackoff {
		backoff = g.cfg.probeMaxBackoff
	}
	ss.nextProbe.Store(time.Now().Add(backoff).UnixNano())
}

func min64(a int64, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// startProber runs probeAll on a ticker until the returned stop func is
// called. Single goroutine: per-shard backoff is the nextProbe gate, not
// per-shard goroutines.
func (g *gate) startProber() (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(g.cfg.probeInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				g.probeAll()
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// readBody buffers a client body under the proxy limits: Content-Length
// is vetted before a byte is read, and the read itself is capped so a
// lying client cannot out-allocate the limit either.
func (g *gate) readBody(r *http.Request) ([]byte, error) {
	limit := int64(maxBody)
	if g.cfg.proxyLimits.MaxAlloc > 0 && g.cfg.proxyLimits.MaxAlloc < limit {
		limit = g.cfg.proxyLimits.MaxAlloc
	}
	if r.ContentLength > limit {
		return nil, fmt.Errorf("%w: content length %d exceeds %d bytes", errTooLarge, r.ContentLength, limit)
	}
	if err := g.cfg.proxyLimits.Alloc("proxied body", max64(r.ContentLength, 0)); err != nil {
		return nil, fmt.Errorf("%w: %v", errTooLarge, err)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("%w: body exceeds %d bytes", errTooLarge, limit)
	}
	return body, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// shardResponse is one shard's answer, fully buffered (bounded by the
// proxy limits) so the gate can retry a replica before committing a
// status line to the client.
type shardResponse struct {
	status int
	header http.Header
	body   []byte
}

// retryable reports whether a shard answer should move to the next
// replica: transport errors and gateway-ish statuses mean "this shard
// can't serve anyone right now", while 4xx/422/413 are verdicts about the
// request that every replica would repeat.
func retryable(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout,
		http.StatusInternalServerError:
		return true
	}
	return false
}

// callShard performs one attempt against one shard, buffering the
// response under the proxy limits.
func (g *gate) callShard(shard, method, pathAndQuery string, body []byte) (*shardResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, shard+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	start := time.Now()
	resp, err := g.client.Do(req)
	g.shardSecs(shard).ObserveSince(start)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			log.Printf("carolgate: shard body close: %v", cerr)
		}
	}()
	limit := int64(maxBody)
	out, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(out)) > limit {
		return nil, fmt.Errorf("shard response exceeds %d bytes", limit)
	}
	return &shardResponse{status: resp.StatusCode, header: resp.Header, body: out}, nil
}

// routeWithRetry walks key's replica sequence — healthy shards first, in
// ring order — calling each until one answers non-retryably. A failing
// shard is marked down on the spot. The error is errNoShards when no
// candidate exists (503 + Retry-After at the edge).
func (g *gate) routeWithRetry(key, method, pathAndQuery string, body []byte) (*shardResponse, error) {
	return g.routeCandidates(g.ring.Lookup(key, g.ring.Len()), method, pathAndQuery, body)
}

// routeCandidates tries candidates in order until one answers
// non-retryably.
func (g *gate) routeCandidates(candidates []string, method, pathAndQuery string, body []byte) (*shardResponse, error) {
	attempts := 0
	var lastErr error
	for _, shard := range candidates {
		if !g.shards[shard].healthy.Load() {
			continue
		}
		if attempts > 0 {
			g.retried.Inc()
		}
		attempts++
		resp, err := g.callShard(shard, method, pathAndQuery, body)
		if err != nil {
			lastErr = fmt.Errorf("shard %s: %w", shard, err)
			log.Printf("carolgate: %v (trying next replica)", lastErr)
			g.markShardDown(shard)
			continue
		}
		if retryable(resp.status) {
			lastErr = fmt.Errorf("shard %s: status %d", shard, resp.status)
			continue
		}
		return resp, nil
	}
	if lastErr == nil {
		return nil, errNoShards
	}
	return nil, fmt.Errorf("%w: all replicas failed, last: %v", errNoShards, lastErr)
}

// writeShardResponse relays a buffered shard answer to the client.
func writeShardResponse(w http.ResponseWriter, resp *shardResponse) {
	for k, vs := range resp.header {
		// Hop-by-hop headers stay between gate and shard.
		if k == "Connection" || k == "Keep-Alive" || k == "Transfer-Encoding" {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.status)
	if _, err := w.Write(resp.body); err != nil {
		log.Printf("carolgate: response write: %v", err)
	}
}

// routeKey picks the ring key for a whole-routed request: an explicit
// key= parameter wins (client-controlled affinity), else a deterministic
// digest of the routing-relevant parts of the request.
func routeKey(r *http.Request) string {
	q := r.URL.Query()
	if k := q.Get("key"); k != "" {
		return k
	}
	return r.URL.Path + "?codec=" + q.Get("codec") + "&dims=" + q.Get("dims")
}

// handleProxyWhole routes one request to one shard (with replica retry)
// and relays the answer.
func (g *gate) handleProxyWhole(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Method == http.MethodPost {
		var err error
		if body, err = g.readBody(r); err != nil {
			bodyError(w, err)
			return
		}
	}
	g.proxyWhole(w, r, routeKey(r), body)
}

func (g *gate) proxyWhole(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	ep := endpointLabel(r.URL.Path)
	pathAndQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	resp, err := g.routeWithRetry(key, r.Method, pathAndQuery, body)
	if err != nil {
		g.failed(ep).Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	g.routed(ep).Inc()
	writeShardResponse(w, resp)
}

// bodyError maps a body-read failure to its status code.
func bodyError(w http.ResponseWriter, err error) {
	if errors.Is(err, errTooLarge) {
		httpError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	httpError(w, http.StatusBadRequest, "%v", err)
}

// shardModel is one model as a shard's /v1/models endpoint reports it:
// the published version plus the surrogate backend serving it. After a
// retrain publish swaps backends the fleet view must show both, or a
// half-converged fleet (same version, different backend tag) would look
// healthy.
type shardModel struct {
	Version int
	Backend string
}

// shardModels fetches one shard's /v1/models listing and reduces it to
// name→{version, backend} — the per-shard carol_model_version view
// /v1/fleet aggregates.
func (g *gate) shardModels(shard string) (map[string]shardModel, error) {
	resp, err := g.callShard(shard, http.MethodGet, "/v1/models", nil)
	if err != nil {
		return nil, err
	}
	if resp.status == http.StatusNotFound {
		return nil, nil // shard runs without -model-dir: nothing to converge
	}
	if resp.status != http.StatusOK {
		return nil, fmt.Errorf("shard %s /v1/models: status %d", shard, resp.status)
	}
	var infos []struct {
		Model   string `json:"model"`
		Version int    `json:"version"`
		Backend string `json:"backend"`
	}
	if err := json.Unmarshal(resp.body, &infos); err != nil {
		return nil, fmt.Errorf("shard %s /v1/models: %w", shard, err)
	}
	out := make(map[string]shardModel, len(infos))
	for _, mi := range infos {
		out[mi.Model] = shardModel{Version: mi.Version, Backend: mi.Backend}
	}
	return out, nil
}
