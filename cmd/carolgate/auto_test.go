package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"carol/internal/chunked"
	"carol/internal/codecs"
	"carol/internal/jobs"
)

// knownCodec reports whether name is in the registered extended set.
func knownCodec(name string) bool {
	for _, n := range codecs.ExtendedNames {
		if n == name {
			return true
		}
	}
	return false
}

// TestGateAutoChunkedFanout: mode=auto on a chunk-eligible request resolves
// the codec at the gate BEFORE the slab split — one decision, one codec on
// every slab, mode never forwarded — and the gate's own bandit records the
// decision and the assembled outcome.
func TestGateAutoChunkedFanout(t *testing.T) {
	g, shards := newTestFleet(t, 3, func(cfg *gateConfig) {
		cfg.chunkThresholdKiB = 1
	})
	const nx, ny, nz = 64, 4, 4
	raw := rawField(nx * ny * nz) // 4 KiB, above the 1 KiB threshold

	w := doGate(t, g, http.MethodPost,
		fmt.Sprintf("/v1/compress?mode=auto&rel=1e-3&dims=%dx%dx%d", nx, ny, nz), raw)
	if w.Code != http.StatusOK {
		t.Fatalf("auto fan-out status %d: %s", w.Code, w.Body.String())
	}
	chosen := w.Header().Get("X-Carol-Codec-Chosen")
	if !knownCodec(chosen) {
		t.Fatalf("X-Carol-Codec-Chosen = %q, not a registered codec", chosen)
	}
	if got := w.Header().Get("X-Carol-Fanout-Chunks"); got != "3" {
		t.Fatalf("X-Carol-Fanout-Chunks = %q, want 3", got)
	}
	if body := w.Body.Bytes(); len(body) < 4 || [4]byte(body[:4]) != chunked.Magic {
		t.Fatalf("fan-out body is not a CCH1 container")
	}
	// Every slab request must carry the single chosen codec, never mode=.
	for i, fs := range shards {
		rq, _ := fs.lastCompressQuery.Load().(string)
		if rq == "" {
			t.Fatalf("shard %d received no compress request", i)
		}
		q, err := url.ParseQuery(rq)
		if err != nil {
			t.Fatalf("shard %d query %q: %v", i, rq, err)
		}
		if got := q.Get("codec"); got != chosen {
			t.Errorf("shard %d slab codec = %q, want %q", i, got, chosen)
		}
		if q.Get("mode") != "" {
			t.Errorf("shard %d slab request carries mode=%q; auto must resolve at the gate", i, q.Get("mode"))
		}
		if q.Get("abs") == "" {
			t.Errorf("shard %d slab request missing pinned abs= bound", i)
		}
	}
	// The gate-local bandit saw the decision and the assembled ratio.
	sw := doGate(t, g, http.MethodGet, "/v1/selector", nil)
	if sw.Code != http.StatusOK {
		t.Fatalf("/v1/selector status %d", sw.Code)
	}
	var stats struct {
		Decisions int64 `json:"decisions"`
		Arms      []struct {
			Codec    string `json:"codec"`
			Outcomes int64  `json:"outcomes"`
		} `json:"arms"`
	}
	if err := json.Unmarshal(sw.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Decisions < 1 {
		t.Fatalf("gate selector decisions = %d after auto fan-out", stats.Decisions)
	}
	var sawOutcome bool
	for _, a := range stats.Arms {
		if a.Codec == chosen && a.Outcomes >= 1 {
			sawOutcome = true
		}
	}
	if !sawOutcome {
		t.Errorf("no recorded outcome for chosen codec %s in %+v", chosen, stats.Arms)
	}
}

// TestGateAutoWholeRelaysChosenHeader: requests that route whole (below
// the chunk threshold, or stream=1) forward mode=auto verbatim to the
// shard and relay the shard's X-Carol-Codec-Chosen back to the client.
func TestGateAutoWholeRelaysChosenHeader(t *testing.T) {
	g, _ := newTestFleet(t, 3, func(cfg *gateConfig) {
		cfg.chunkThresholdKiB = 1
	})
	for _, target := range []string{
		"/v1/compress?mode=auto&rel=1e-3&dims=4x1x1",           // below threshold
		"/v1/compress?mode=auto&rel=1e-3&stream=1&dims=64x4x4", // stream routes whole
	} {
		body := rawField(4)
		if strings.Contains(target, "stream=1") {
			body = rawField(64 * 4 * 4)
		}
		w := doGate(t, g, http.MethodPost, target, body)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", target, w.Code, w.Body.String())
		}
		// The fake shard answers mode=auto with szx; the gate must relay it.
		if got := w.Header().Get("X-Carol-Codec-Chosen"); got != "szx" {
			t.Errorf("%s: X-Carol-Codec-Chosen = %q, want szx (relayed from shard)", target, got)
		}
	}
}

// TestGateAutoBadRequests: malformed mode/target combinations on the
// chunked fan-out path are client errors, not fan-out failures.
func TestGateAutoBadRequests(t *testing.T) {
	g, _ := newTestFleet(t, 3, func(cfg *gateConfig) {
		cfg.chunkThresholdKiB = 1
	})
	const nx, ny, nz = 64, 4, 4
	cases := []struct {
		name  string
		query string
	}{
		{"bogus mode", "mode=banana&rel=1e-3"},
		{"auto with codec", "mode=auto&codec=sz3&rel=1e-3"},
		{"bad target", "mode=auto&rel=1e-3&target=-2"},
	}
	for _, tc := range cases {
		w := doGate(t, g, http.MethodPost,
			fmt.Sprintf("/v1/compress?%s&dims=%dx%dx%d", tc.query, nx, ny, nz),
			rawField(nx*ny*nz))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, w.Code, strings.TrimSpace(w.Body.String()))
		}
	}
}

// TestGateAutoJobMeta: async jobs carry the chosen codec as result
// metadata — gate-chosen for chunked fan-outs, shard-chosen (via the
// relayed header) for whole-routed requests — and the result response
// republishes it as X-Carol-Codec-Chosen.
func TestGateAutoJobMeta(t *testing.T) {
	g, _ := newTestFleet(t, 3, func(cfg *gateConfig) {
		cfg.chunkThresholdKiB = 1
	})
	const nx, ny, nz = 64, 4, 4
	cases := []struct {
		name   string
		target string
		body   []byte
		// wantAny accepts any registered codec (gate decision);
		// otherwise the meta must equal wantExact (shard header).
		wantAny   bool
		wantExact string
	}{
		{
			name:    "chunked",
			target:  fmt.Sprintf("/v1/jobs/compress?mode=auto&rel=1e-3&dims=%dx%dx%d", nx, ny, nz),
			body:    rawField(nx * ny * nz),
			wantAny: true,
		},
		{
			name:      "whole",
			target:    "/v1/jobs/compress?mode=auto&rel=1e-3&dims=4x1x1",
			body:      rawField(4),
			wantExact: "szx",
		},
	}
	for _, tc := range cases {
		w := doGate(t, g, http.MethodPost, tc.target, tc.body)
		if w.Code != http.StatusAccepted {
			t.Fatalf("%s: submit status %d: %s", tc.name, w.Code, w.Body.String())
		}
		var acc jobAccepted
		if err := json.Unmarshal(w.Body.Bytes(), &acc); err != nil {
			t.Fatalf("%s: accept decode: %v", tc.name, err)
		}
		st := pollJob(t, g, acc.ID)
		if st.State != jobs.StateDone {
			t.Fatalf("%s: job ended %s (%s), want done", tc.name, st.State, st.Error)
		}
		got := st.Meta["codec"]
		if tc.wantAny {
			if !knownCodec(got) {
				t.Fatalf("%s: job meta codec = %q, not a registered codec", tc.name, got)
			}
		} else if got != tc.wantExact {
			t.Fatalf("%s: job meta codec = %q, want %q", tc.name, got, tc.wantExact)
		}
		rw := doGate(t, g, http.MethodGet, acc.ResultURL, nil)
		if rw.Code != http.StatusOK {
			t.Fatalf("%s: result status %d: %s", tc.name, rw.Code, rw.Body.String())
		}
		if hdr := rw.Header().Get("X-Carol-Codec-Chosen"); hdr != got {
			t.Errorf("%s: result X-Carol-Codec-Chosen = %q, want %q (job meta)", tc.name, hdr, got)
		}
		if rw.Body.Len() == 0 {
			t.Errorf("%s: empty result body", tc.name)
		}
	}
}
