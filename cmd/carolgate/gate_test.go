package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"carol/internal/chunked"
	"carol/internal/jobs"
)

// fakeStreamMagic prefixes the fake shard's "compressed" streams: the
// gate treats shard output as opaque bytes, so a losslessly reversible
// echo codec exercises every routing path while letting round-trip tests
// compare exact bytes.
const fakeStreamMagic = "FKZ1"

// fakeShard is an httptest-backed carolserve stand-in implementing the
// endpoints the gate talks to: /healthz, /v1/compress (echo codec),
// /v1/decompress, /v1/models.
type fakeShard struct {
	srv          *httptest.Server
	compresses   atomic.Int64
	decompresses atomic.Int64
	// failCompress makes /v1/compress answer 503 (a retryable verdict the
	// gate should route around without marking the shard down).
	failCompress atomic.Bool
	// modelVersion is served on /v1/models when positive; 0 answers 404
	// like a carolserve without -model-dir.
	modelVersion atomic.Int64
	// modelBackend is the backend tag /v1/models reports ("rf" when unset).
	modelBackend atomic.Value
	// blockCompress, when non-nil, parks /v1/compress until closed — used
	// to hold jobs in flight for admission-control tests.
	blockCompress chan struct{}
	// lastCompressQuery records the most recent /v1/compress query string,
	// so fan-out tests can assert what the gate actually forwarded.
	lastCompressQuery atomic.Value
}

func newFakeShard(t *testing.T) *fakeShard {
	t.Helper()
	fs := &fakeShard{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/compress", func(w http.ResponseWriter, r *http.Request) {
		if fs.failCompress.Load() {
			http.Error(w, "shard overloaded", http.StatusServiceUnavailable)
			return
		}
		if fs.blockCompress != nil {
			<-fs.blockCompress
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fs.compresses.Add(1)
		fs.lastCompressQuery.Store(r.URL.RawQuery)
		// A real carolserve resolves mode=auto itself and names its pick;
		// the fake always "chooses" szx so header relaying is observable.
		if r.URL.Query().Get("mode") == "auto" {
			w.Header().Set("X-Carol-Codec-Chosen", "szx")
		}
		w.Header().Set("X-Carol-Achieved-Ratio", "1")
		if _, err := w.Write(append([]byte(fakeStreamMagic), body...)); err != nil {
			t.Logf("fake shard write: %v", err)
		}
	})
	mux.HandleFunc("/v1/decompress", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !bytes.HasPrefix(body, []byte(fakeStreamMagic)) {
			http.Error(w, "not a fake stream", http.StatusUnprocessableEntity)
			return
		}
		fs.decompresses.Add(1)
		if _, err := w.Write(body[len(fakeStreamMagic):]); err != nil {
			t.Logf("fake shard write: %v", err)
		}
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		v := fs.modelVersion.Load()
		if v == 0 {
			http.Error(w, "no -model-dir configured", http.StatusNotFound)
			return
		}
		backend := "rf"
		if b, ok := fs.modelBackend.Load().(string); ok && b != "" {
			backend = b
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `[{"model":"sz3","version":%d,"backend":%q}]`, v, backend)
	})
	fs.srv = httptest.NewServer(mux)
	t.Cleanup(fs.srv.Close)
	return fs
}

// newTestFleet boots n fake shards and a gate over them, runs one probe
// sweep (all healthy), and registers cleanup for the job queue.
func newTestFleet(t *testing.T, n int, tweak func(*gateConfig)) (*gate, []*fakeShard) {
	t.Helper()
	shards := make([]*fakeShard, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = newFakeShard(t)
		urls[i] = shards[i].srv.URL
	}
	cfg := defaultGateConfig()
	cfg.probeInterval = time.Hour // tests drive probeAll explicitly
	cfg.probeTimeout = 2 * time.Second
	if tweak != nil {
		tweak(&cfg)
	}
	g, err := newGate(cfg, urls)
	if err != nil {
		t.Fatalf("newGate: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := g.queue.Close(ctx); err != nil {
			t.Errorf("queue close: %v", err)
		}
	})
	g.probeAll()
	if got := len(g.healthyShards()); got != n {
		t.Fatalf("after probe sweep: %d healthy shards, want %d", got, n)
	}
	return g, shards
}

// rawField builds n little-endian float32 samples with enough value
// spread that rel= bounds resolve to a positive abs bound.
func rawField(n int) []byte {
	b := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(float32(i%97)+0.5))
	}
	return b
}

func doGate(t *testing.T, g *gate, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	w := httptest.NewRecorder()
	g.ServeHTTP(w, req)
	return w
}

func shardHits(shards []*fakeShard) []int64 {
	out := make([]int64, len(shards))
	for i, s := range shards {
		out[i] = s.compresses.Load()
	}
	return out
}

func TestGateWholeRoutingDeterministic(t *testing.T) {
	g, shards := newTestFleet(t, 3, nil)
	raw := rawField(4)
	target := "/v1/compress?codec=fake&rel=1e-3&dims=4x1x1"

	w := doGate(t, g, http.MethodPost, target, raw)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	want := append([]byte(fakeStreamMagic), raw...)
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("routed body mismatch: got %d bytes, want %d", w.Body.Len(), len(want))
	}
	first := shardHits(shards)
	served := -1
	for i, n := range first {
		if n > 0 {
			if served >= 0 {
				t.Fatalf("whole-field request hit multiple shards: %v", first)
			}
			served = i
		}
	}
	if served < 0 {
		t.Fatalf("no shard served the request")
	}
	// Same routing key must land on the same shard every time.
	for i := 0; i < 5; i++ {
		if w := doGate(t, g, http.MethodPost, target, raw); w.Code != http.StatusOK {
			t.Fatalf("repeat %d: status %d", i, w.Code)
		}
	}
	after := shardHits(shards)
	for i := range shards {
		wantN := int64(0)
		if i == served {
			wantN = 6
		}
		if after[i] != wantN {
			t.Fatalf("shard %d served %d requests, want %d (placement not sticky)", i, after[i], wantN)
		}
	}
}

func TestGateChunkedFanOutRoundTrip(t *testing.T) {
	g, shards := newTestFleet(t, 3, func(cfg *gateConfig) {
		cfg.chunkThresholdKiB = 1
	})
	const nx, ny, nz = 64, 4, 4
	raw := rawField(nx * ny * nz) // 4 KiB, above the 1 KiB threshold

	w := doGate(t, g, http.MethodPost,
		fmt.Sprintf("/v1/compress?codec=fake&rel=1e-3&dims=%dx%dx%d", nx, ny, nz), raw)
	if w.Code != http.StatusOK {
		t.Fatalf("compress status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Carol-Fanout-Chunks"); got != "3" {
		t.Fatalf("X-Carol-Fanout-Chunks = %q, want 3", got)
	}
	container := w.Body.Bytes()
	gnx, gny, gnz, chunks, err := chunked.Parse(container, g.cfg.proxyLimits)
	if err != nil {
		t.Fatalf("gate output is not a CCH1 container: %v", err)
	}
	if gnx != nx || gny != ny || gnz != nz {
		t.Fatalf("container dims %dx%dx%d, want %dx%dx%d", gnx, gny, gnz, nx, ny, nz)
	}
	if len(chunks) != 3 {
		t.Fatalf("container has %d chunks, want 3", len(chunks))
	}
	// Slab placement rotates the replica walk, so with 3 healthy shards
	// and 3 slabs every shard compresses exactly one.
	for i, s := range shards {
		if got := s.compresses.Load(); got != 1 {
			t.Fatalf("shard %d compressed %d slabs, want 1 (hits %v)", i, got, shardHits(shards))
		}
	}

	// The container must decompress back to the original field via the
	// gate's chunk fan-out.
	w = doGate(t, g, http.MethodPost, "/v1/decompress?codec=fake", container)
	if w.Code != http.StatusOK {
		t.Fatalf("decompress status %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), raw) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", w.Body.Len(), len(raw))
	}
	if got := w.Header().Get("X-Carol-Dims"); got != fmt.Sprintf("%dx%dx%d", nx, ny, nz) {
		t.Fatalf("X-Carol-Dims = %q", got)
	}
}

func TestGateRetriesNextReplicaOn503(t *testing.T) {
	g, shards := newTestFleet(t, 3, nil)
	raw := rawField(4)
	target := "/v1/compress?codec=fake&rel=1e-3&dims=4x1x1&key=pinned"

	// Find the pinned key's owner and make it refuse.
	owner := g.ring.Owner("pinned")
	for _, s := range shards {
		if s.srv.URL == owner {
			s.failCompress.Store(true)
		}
	}
	before := g.retried.Value()
	w := doGate(t, g, http.MethodPost, target, raw)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via replica: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), append([]byte(fakeStreamMagic), raw...)) {
		t.Fatalf("replica served wrong body")
	}
	if g.retried.Value() <= before {
		t.Fatalf("gate_retried_total did not increase")
	}
	// A 503 is load, not death: the shard must still be routable.
	if !g.shards[owner].healthy.Load() {
		t.Fatalf("503 verdict marked shard down; only transport failures should")
	}
}

func TestGateShardDeathMarksDownAndRoutesAround(t *testing.T) {
	g, shards := newTestFleet(t, 3, nil)
	raw := rawField(4)
	owner := g.ring.Owner("pinned")
	for _, s := range shards {
		if s.srv.URL == owner {
			s.srv.Close() // kill the process, not just the endpoint
		}
	}
	w := doGate(t, g, http.MethodPost, "/v1/compress?codec=fake&rel=1e-3&dims=4x1x1&key=pinned", raw)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via surviving replica: %s", w.Code, w.Body.String())
	}
	if g.shards[owner].healthy.Load() {
		t.Fatalf("dead shard still marked healthy after transport failure")
	}
	if got := len(g.healthyShards()); got != 2 {
		t.Fatalf("%d healthy shards after kill, want 2", got)
	}
}

func TestGateEmptyFleet503(t *testing.T) {
	g, shards := newTestFleet(t, 2, nil)
	for _, s := range shards {
		s.srv.Close()
	}
	for _, name := range g.ring.Shards() {
		g.shards[name].healthy.Store(false)
	}
	w := doGate(t, g, http.MethodPost, "/v1/compress?codec=fake&rel=1e-3&dims=4x1x1", rawField(4))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After")
	}
}

func TestGateReadyz(t *testing.T) {
	g, _ := newTestFleet(t, 2, nil)
	if w := doGate(t, g, http.MethodGet, "/readyz", nil); w.Code != http.StatusOK {
		t.Fatalf("readyz with healthy shards: %d", w.Code)
	}
	for _, name := range g.ring.Shards() {
		g.shards[name].healthy.Store(false)
	}
	if w := doGate(t, g, http.MethodGet, "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with empty fleet: %d, want 503", w.Code)
	}
}

func pollJob(t *testing.T, g *gate, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		w := doGate(t, g, http.MethodGet, "/v1/jobs/"+id, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("job status: %d: %s", w.Code, w.Body.String())
		}
		var st jobs.Status
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatalf("job status decode: %v", err)
		}
		if st.State == jobs.StateDone || st.State == jobs.StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGateJobLifecycle(t *testing.T) {
	g, _ := newTestFleet(t, 3, nil)
	raw := rawField(4)
	w := doGate(t, g, http.MethodPost, "/v1/jobs/compress?codec=fake&rel=1e-3&dims=4x1x1", raw)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", w.Code, w.Body.String())
	}
	var acc jobAccepted
	if err := json.Unmarshal(w.Body.Bytes(), &acc); err != nil {
		t.Fatalf("accept decode: %v", err)
	}
	if acc.ID == "" || !strings.HasSuffix(acc.ResultURL, "/result") {
		t.Fatalf("bad accept payload: %+v", acc)
	}

	st := pollJob(t, g, acc.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	w = doGate(t, g, http.MethodGet, acc.ResultURL, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("result status %d: %s", w.Code, w.Body.String())
	}
	// The async result must match what the synchronous path returns.
	if !bytes.Equal(w.Body.Bytes(), append([]byte(fakeStreamMagic), raw...)) {
		t.Fatalf("job result differs from synchronous compress output")
	}
	if got := w.Header().Get("X-Carol-Job-Id"); got != acc.ID {
		t.Fatalf("X-Carol-Job-Id = %q, want %q", got, acc.ID)
	}
}

func TestGateJobUnknownID(t *testing.T) {
	g, _ := newTestFleet(t, 1, nil)
	if w := doGate(t, g, http.MethodGet, "/v1/jobs/nope", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", w.Code)
	}
}

func TestGateJobTenantQuota(t *testing.T) {
	release := make(chan struct{})
	g, shards := newTestFleet(t, 1, func(cfg *gateConfig) {
		cfg.tenantQuota = 1
		cfg.jobQueue = 16
	})
	shards[0].blockCompress = release
	defer close(release)

	raw := rawField(4)
	target := "/v1/jobs/compress?codec=fake&rel=1e-3&dims=4x1x1"
	submit := func(tenant string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, target, bytes.NewReader(raw))
		req.Header.Set("X-Carol-Tenant", tenant)
		w := httptest.NewRecorder()
		g.ServeHTTP(w, req)
		return w
	}
	if w := submit("alice"); w.Code != http.StatusAccepted {
		t.Fatalf("first job: %d: %s", w.Code, w.Body.String())
	}
	w := submit("alice")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota job: %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	// Another tenant is not punished for alice's backlog.
	if w := submit("bob"); w.Code != http.StatusAccepted {
		t.Fatalf("other tenant: %d: %s", w.Code, w.Body.String())
	}
}

func TestGateJobBadTenant(t *testing.T) {
	g, _ := newTestFleet(t, 1, nil)
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs/compress?codec=fake&rel=1e-3&dims=4x1x1",
		bytes.NewReader(rawField(4)))
	req.Header.Set("X-Carol-Tenant", "no spaces allowed")
	w := httptest.NewRecorder()
	g.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad tenant: %d, want 400", w.Code)
	}
}

func TestGateFleetConvergence(t *testing.T) {
	g, shards := newTestFleet(t, 3, nil)
	for _, s := range shards {
		s.modelVersion.Store(2)
	}
	fetch := func() fleetStatus {
		w := doGate(t, g, http.MethodGet, "/v1/fleet", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("fleet status %d", w.Code)
		}
		var st fleetStatus
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatalf("fleet decode: %v", err)
		}
		return st
	}
	st := fetch()
	if st.Healthy != 3 || st.RingShards != 3 {
		t.Fatalf("fleet: %d/%d healthy, want 3/3", st.Healthy, st.RingShards)
	}
	if !st.Converged {
		t.Fatalf("uniform fleet reported unconverged: %+v", st)
	}
	for _, fs := range st.Shards {
		if fs.ModelVersion["sz3"] != 2 {
			t.Fatalf("shard %s model version %d, want 2", fs.Shard, fs.ModelVersion["sz3"])
		}
		if fs.ModelBackend["sz3"] != "rf" {
			t.Fatalf("shard %s model backend %q, want rf", fs.Shard, fs.ModelBackend["sz3"])
		}
	}
	// One shard lags a publish: the fleet must report divergence.
	shards[1].modelVersion.Store(3)
	if st := fetch(); st.Converged {
		t.Fatalf("diverged fleet reported converged")
	}
	shards[1].modelVersion.Store(2)
	// Same version but a different serving backend (a retrain publish that
	// swapped backends mid-rollout) is also divergence.
	shards[1].modelBackend.Store("knn")
	st = fetch()
	if st.Converged {
		t.Fatalf("backend-diverged fleet reported converged")
	}
	var knnShards int
	for _, fs := range st.Shards {
		if fs.ModelBackend["sz3"] == "knn" {
			knnShards++
		}
	}
	if knnShards != 1 {
		t.Fatalf("fleet backends: %d knn shards, want 1", knnShards)
	}
}

func TestGateProxiesModelsWhole(t *testing.T) {
	g, shards := newTestFleet(t, 2, nil)
	for _, s := range shards {
		s.modelVersion.Store(1)
	}
	w := doGate(t, g, http.MethodGet, "/v1/models", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("models via gate: %d", w.Code)
	}
	var infos []struct {
		Model   string `json:"model"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &infos); err != nil {
		t.Fatalf("models decode: %v", err)
	}
	if len(infos) != 1 || infos[0].Model != "sz3" {
		t.Fatalf("models payload: %+v", infos)
	}
}

func TestShouldChunk(t *testing.T) {
	g, _ := newTestFleet(t, 3, func(cfg *gateConfig) { cfg.chunkThresholdKiB = 1 })
	mk := func(s string) url.Values {
		v, err := url.ParseQuery(s)
		if err != nil {
			t.Fatalf("query %q: %v", s, err)
		}
		return v
	}
	cases := []struct {
		q       string
		size    int
		healthy int
		want    bool
	}{
		{"rel=1e-3", 2048, 3, true},
		{"abs=0.5", 2048, 3, true},
		{"rel=1e-3", 512, 3, false},           // under threshold
		{"rel=1e-3", 2048, 1, false},          // nothing to spread over
		{"ratio=100", 2048, 3, false},         // FRaZ needs the whole field
		{"rel=1e-3&stream=1", 2048, 3, false}, // CPL1 is the shard's own fan-out
		{"", 2048, 3, false},                  // no bound at all
	}
	for _, c := range cases {
		if got := g.shouldChunk(mk(c.q), c.size, c.healthy); got != c.want {
			t.Errorf("shouldChunk(%q, %d, %d) = %v, want %v", c.q, c.size, c.healthy, got, c.want)
		}
	}
}

func TestEndpointLabelBounded(t *testing.T) {
	cases := map[string]string{
		"/v1/compress":        "/v1/compress",
		"/v1/jobs/compress":   "/v1/jobs/compress",
		"/v1/jobs/abc123":     "/v1/jobs/{id}",
		"/v1/jobs/abc/result": "/v1/jobs/{id}",
		"/v1/whatever":        "other",
		"/secret":             "other",
	}
	for path, want := range cases {
		if got := endpointLabel(path); got != want {
			t.Errorf("endpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestSplitShards(t *testing.T) {
	got := splitShards(" http://a:1/, ,http://b:2 ,")
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) {
		t.Fatalf("splitShards: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitShards[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
