package main

import (
	"fmt"
	"testing"
)

// benchGate builds a gate over synthetic shard URLs with every shard
// healthy — no listeners, so the benchmark isolates the routing decision
// (ring lookup + health filter), not HTTP.
func benchGate(b *testing.B, shards int) *gate {
	b.Helper()
	urls := make([]string, shards)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://shard-%d:8081", i)
	}
	cfg := defaultGateConfig()
	g, err := newGate(cfg, urls)
	if err != nil {
		b.Fatalf("newGate: %v", err)
	}
	for _, name := range g.ring.Shards() {
		g.shards[name].healthy.Store(true)
	}
	return g
}

// routeDecision is the per-request routing work handleCompress pays
// before any byte leaves the gate: replica walk plus first-healthy scan.
func routeDecision(g *gate, key string) string {
	for _, shard := range g.ring.Lookup(key, g.ring.Len()) {
		if g.shards[shard].healthy.Load() {
			return shard
		}
	}
	return ""
}

func BenchmarkGateRoute(b *testing.B) {
	g := benchGate(b, 8)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("/v1/compress?codec=sz3&dims=%dx64x64", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if routeDecision(g, keys[i%len(keys)]) == "" {
			b.Fatal("no shard")
		}
	}
}

func BenchmarkGateRouteDegraded(b *testing.B) {
	g := benchGate(b, 8)
	// Half the fleet down: the walk pays the skip cost on every lookup.
	names := g.ring.Shards()
	for i, name := range names {
		g.shards[name].healthy.Store(i%2 == 0)
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("field/%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if routeDecision(g, keys[i%len(keys)]) == "" {
			b.Fatal("no shard")
		}
	}
}
