package main

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"carol/internal/chunked"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/obs"
	"carol/internal/pipeline"
	"carol/internal/selector"
)

// parseDims parses NXxNYxNZ (same grammar as carolserve).
func parseDims(s string) (nx, ny, nz int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	vals := []int{1, 1, 1}
	if s == "" || len(parts) > 3 {
		return 0, 0, 0, fmt.Errorf("bad dims %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return 0, 0, 0, fmt.Errorf("bad dims %q", s)
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], nil
}

// shouldChunk decides whether a compress request fans out: chunking must
// be enabled, the request must carry a plain rel= bound (ratio searches
// and stream=1 route whole — a FRaZ search needs the whole field, and the
// CPL1 streaming path is the shard's own fan-out), the field must clear
// the size threshold, and there must be at least two healthy shards to
// spread over.
func (g *gate) shouldChunk(q url.Values, sizeBytes, healthy int) bool {
	if g.cfg.chunkThresholdKiB <= 0 || healthy < 2 {
		return false
	}
	if q.Get("rel") == "" && q.Get("abs") == "" {
		return false
	}
	if q.Get("ratio") != "" || q.Get("stream") != "" {
		return false
	}
	return sizeBytes >= g.cfg.chunkThresholdKiB<<10
}

// handleCompress routes small fields whole and fans large ones out:
// split into one slab per healthy shard (internal/chunked geometry), the
// whole-field error bound pinned with abs= so per-slab value ranges can't
// loosen it, each slab compressed by the shard owning its ring key, and
// the per-slab streams reassembled into the exact CCH1 container a local
// chunked.Compress would emit.
func (g *gate) handleCompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := g.readBody(r)
	if err != nil {
		bodyError(w, err)
		return
	}
	q := r.URL.Query()
	healthy := g.healthyShards()
	if !g.shouldChunk(q, len(body), len(healthy)) {
		g.proxyWhole(w, r, routeKey(r), body)
		return
	}
	out, chosen, err := g.chunkCompress(q, routeKey(r), body, healthy)
	if err != nil {
		g.failed("/v1/compress").Inc()
		if errors.Is(err, errBadRequest) {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		fanoutError(w, err)
		return
	}
	g.routed("/v1/compress").Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	if chosen != "" {
		w.Header().Set("X-Carol-Codec-Chosen", chosen)
	}
	w.Header().Set("X-Carol-Achieved-Ratio",
		strconv.FormatFloat(float64(len(body))/float64(len(out)), 'g', 6, 64))
	w.Header().Set("X-Carol-Fanout-Chunks", strconv.Itoa(len(healthy)))
	if _, err := w.Write(out); err != nil {
		g.failed("/v1/compress").Inc()
	}
}

// errBadRequest classifies chunkCompress failures the client caused.
var errBadRequest = errors.New("bad request")

// chunkCompress is the slab fan-out shared by the synchronous handler and
// the async job path: parse, pin the whole-field bound, split one slab
// per healthy shard, compress each on the shard owning its ring key, and
// assemble the CCH1 container. mode=auto resolves the codec HERE, before
// the field splits: the selector scores the whole field once, and every
// slab is compressed with the single chosen codec (a per-slab choice would
// produce a mixed container no single-codec decompress could open). The
// returned chosen name is empty for static-codec requests.
func (g *gate) chunkCompress(q url.Values, baseKey string, body []byte, healthy []string) ([]byte, string, error) {
	tr := g.reg.StartTrace("gate_compress_fanout")
	defer tr.End()
	nx, ny, nz, err := parseDims(q.Get("dims"))
	if err != nil {
		return nil, "", fmt.Errorf("%w: %v", errBadRequest, err)
	}
	span := tr.StartSpan("parse")
	ff, err := field.ReadRaw("gate", nx, ny, nz, bytes.NewReader(body))
	span.End()
	if err != nil {
		return nil, "", fmt.Errorf("%w: %v", errBadRequest, err)
	}
	span = tr.StartSpan("split")
	eb, err := gateAbsBound(ff, q)
	if err != nil {
		span.End()
		return nil, "", fmt.Errorf("%w: %v", errBadRequest, err)
	}
	slabs := pipeline.SplitField(ff, len(healthy))
	span.End()

	codecName, chosen := q.Get("codec"), ""
	var decision selector.Decision
	switch q.Get("mode") {
	case "":
	case "auto":
		if codecName != "" {
			return nil, "", fmt.Errorf("%w: mode=auto and codec= are mutually exclusive", errBadRequest)
		}
		targetRatio := 0.0
		if ts := q.Get("target"); ts != "" {
			targetRatio, err = strconv.ParseFloat(ts, 64)
			if err != nil || targetRatio <= 0 || math.IsInf(targetRatio, 0) {
				return nil, "", fmt.Errorf("%w: bad target", errBadRequest)
			}
		}
		span = tr.StartSpan("select")
		decision, err = g.sel.Select(ff, eb, targetRatio)
		span.End()
		if err != nil {
			return nil, "", fmt.Errorf("%w: %v", errBadRequest, err)
		}
		codecName, chosen = decision.Codec, decision.Codec
	default:
		return nil, "", fmt.Errorf("%w: bad mode %q (only \"auto\")", errBadRequest, q.Get("mode"))
	}

	cands := g.ring.Lookup(baseKey, g.ring.Len())
	g.fanned.Inc()
	span = tr.StartSpan("fanout")
	streams, err := pipeline.FanOut(len(slabs), g.cfg.fanoutWorkers, func(i int) ([]byte, error) {
		slab := slabs[i]
		var raw bytes.Buffer
		raw.Grow(slab.SizeBytes())
		if err := slab.WriteRaw(&raw); err != nil {
			return nil, err
		}
		pq := url.Values{}
		pq.Set("codec", codecName)
		pq.Set("abs", strconv.FormatFloat(eb, 'g', 17, 64))
		pq.Set("dims", fmt.Sprintf("%dx%dx%d", slab.Nx, slab.Ny, slab.Nz))
		resp, err := g.routeCandidates(slabCandidates(cands, i),
			http.MethodPost, "/v1/compress?"+pq.Encode(), raw.Bytes())
		if err != nil {
			return nil, err
		}
		if resp.status != http.StatusOK {
			return nil, fmt.Errorf("slab %d: shard status %d: %s", i, resp.status, truncate(resp.body))
		}
		return resp.body, nil
	})
	span.End()
	if err != nil {
		return nil, "", err
	}
	g.reg.Histogram("gate_fanout_chunks", obs.LinearBuckets(1, 1, 16)).Observe(float64(len(streams)))
	out := chunked.Assemble(nx, ny, nz, streams)
	if chosen != "" {
		// Close the bandit loop with the end-to-end achieved ratio of the
		// assembled container — the number the client actually sees.
		g.sel.Observe(decision, float64(len(body))/float64(len(out)))
	}
	return out, chosen, nil
}

// slabCandidates rotates the base key's replica walk by the slab index:
// slab i's primary is the i-th distinct replica, so one field's slabs
// spread across distinct shards deterministically instead of landing
// wherever per-slab hashes happen to fall (with small fleets, often all
// on one shard). The rotated tail remains a valid retry order.
func slabCandidates(cands []string, i int) []string {
	if len(cands) == 0 {
		return cands
	}
	r := i % len(cands)
	out := make([]string, 0, len(cands))
	out = append(out, cands[r:]...)
	return append(out, cands[:r]...)
}

// gateAbsBound resolves the request's error bound against the whole
// field: abs= used verbatim, rel= scaled by the full-field value range —
// the same AbsBound a single shard would compute, pinned once so every
// slab honors it.
func gateAbsBound(f *field.Field, q url.Values) (float64, error) {
	if as := q.Get("abs"); as != "" {
		eb, err := strconv.ParseFloat(as, 64)
		if err != nil || !(eb > 0) {
			return 0, fmt.Errorf("bad abs")
		}
		return eb, nil
	}
	rel, err := strconv.ParseFloat(q.Get("rel"), 64)
	if err != nil || !(rel > 0) {
		return 0, fmt.Errorf("bad rel")
	}
	return compressor.AbsBound(f, rel), nil
}

// handleDecompress fans CCH1 containers out chunk-by-chunk to the shards
// owning them and reassembles the raw field in slab order; anything else
// (CPL1, single codec streams) routes whole.
func (g *gate) handleDecompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := g.readBody(r)
	if err != nil {
		bodyError(w, err)
		return
	}
	if len(body) < 4 || [4]byte(body[:4]) != chunked.Magic || len(g.healthyShards()) < 2 {
		g.proxyWhole(w, r, routeKey(r), body)
		return
	}
	tr := g.reg.StartTrace("gate_decompress_fanout")
	defer tr.End()
	span := tr.StartSpan("parse")
	nx, ny, nz, chunks, err := chunked.Parse(body, g.cfg.proxyLimits)
	span.End()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	want := pipeline.ExpectedSlabDims(nx, ny, nz, len(chunks))
	cands := g.ring.Lookup(routeKey(r), g.ring.Len())
	codec := r.URL.Query().Get("codec")
	g.fanned.Inc()
	span = tr.StartSpan("fanout")
	slabBytes, err := pipeline.FanOut(len(chunks), g.cfg.fanoutWorkers, func(i int) ([]byte, error) {
		pq := url.Values{}
		pq.Set("codec", codec)
		resp, err := g.routeCandidates(slabCandidates(cands, i),
			http.MethodPost, "/v1/decompress?"+pq.Encode(), chunks[i])
		if err != nil {
			return nil, err
		}
		if resp.status != http.StatusOK {
			return nil, fmt.Errorf("chunk %d: shard status %d: %s", i, resp.status, truncate(resp.body))
		}
		d := want[i]
		if len(resp.body) != d[0]*d[1]*d[2]*4 {
			return nil, fmt.Errorf("chunk %d: shard returned %d bytes, want %d",
				i, len(resp.body), d[0]*d[1]*d[2]*4)
		}
		return resp.body, nil
	})
	span.End()
	if err != nil {
		g.failed("/v1/decompress").Inc()
		fanoutError(w, err)
		return
	}
	g.routed("/v1/decompress").Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Carol-Dims", fmt.Sprintf("%dx%dx%d", nx, ny, nz))
	w.Header().Set("X-Carol-Fanout-Chunks", strconv.Itoa(len(chunks)))
	w.Header().Set("X-Carol-Trace", tr.String())
	for _, sb := range slabBytes {
		if _, err := w.Write(sb); err != nil {
			g.failed("/v1/decompress").Inc()
			return
		}
	}
}

// fanoutError maps a fan-out failure: no-shard conditions are the
// fleet's problem (503, retry later), anything else bubbled a shard's
// verdict about the data (422).
func fanoutError(w http.ResponseWriter, err error) {
	if strings.Contains(err.Error(), errNoShards.Error()) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	httpError(w, http.StatusBadGateway, "%v", err)
}

// truncate bounds an error-body echo.
func truncate(b []byte) string {
	const n = 200
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}
