package main

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"carol/internal/jobs"
	"carol/internal/obs"
	"carol/internal/ring"
	"carol/internal/safedec"
	"carol/internal/selector"
)

// maxBody caps request bodies the gate will buffer (512 MiB of float32
// samples — matches carolserve so the gate never accepts what a shard
// would refuse).
const maxBody = 512 << 20

// gateConfig carries the gate's knobs, set from flags in main and from
// test code directly.
type gateConfig struct {
	virtualNodes int
	maxInflight  int
	// fanoutWorkers bounds concurrent shard requests for one fanned field.
	fanoutWorkers int
	// chunkThresholdKiB: fields at least this large are slab-fanned across
	// the healthy shards instead of routed whole. 0 disables chunking.
	chunkThresholdKiB int

	probeInterval   time.Duration
	probeTimeout    time.Duration
	probeMaxBackoff time.Duration
	shardTimeout    time.Duration

	jobWorkers  int
	jobQueue    int
	tenantQuota int

	// selectorSeed/selectorEpsilon configure the gate's own mode=auto
	// chooser, used on the slab fan-out path where the codec must be
	// resolved once before the field splits (every slab of one field uses
	// one codec). Whole-routed auto requests are decided by the shard.
	selectorSeed    uint64
	selectorEpsilon float64

	// proxyLimits bounds what the gate will allocate from client- or
	// shard-claimed sizes (container headers on the decompress fan-out
	// path, bodies everywhere). Zero-value fields take safedec defaults.
	proxyLimits safedec.Limits

	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	shutdownTimeout   time.Duration
}

// defaultGateConfig mirrors carolserve's production posture: generous
// read/write windows for big bodies, bounded everything else.
func defaultGateConfig() gateConfig {
	return gateConfig{
		virtualNodes:      ring.DefaultVirtualNodes,
		maxInflight:       128,
		fanoutWorkers:     8,
		chunkThresholdKiB: 1024,
		probeInterval:     500 * time.Millisecond,
		probeTimeout:      2 * time.Second,
		probeMaxBackoff:   5 * time.Second,
		shardTimeout:      5 * time.Minute,
		jobWorkers:        2,
		jobQueue:          64,
		tenantQuota:       8,
		selectorSeed:      1,
		selectorEpsilon:   0.05,
		proxyLimits: safedec.Limits{
			MaxElements: maxBody / 4,
			MaxAlloc:    1 << 30,
			MaxCount:    1 << 16,
		},
		readTimeout:       5 * time.Minute,
		readHeaderTimeout: 10 * time.Second,
		writeTimeout:      10 * time.Minute,
		idleTimeout:       2 * time.Minute,
		shutdownTimeout:   15 * time.Second,
	}
}

// gate owns the routing state and handler chain. The ring is immutable
// (membership is fixed at boot); per-shard health lives in shardState and
// is the only mutable routing input, so the request path is lock-free.
type gate struct {
	cfg     gateConfig
	ring    *ring.Ring
	shards  map[string]*shardState
	client  *http.Client
	queue   *jobs.Queue
	sel     *selector.Selector
	reg     *obs.Registry
	sem     chan struct{}
	handler http.Handler

	inflight     *obs.Gauge
	throttled    *obs.Counter
	panics       *obs.Counter
	healthyGauge *obs.Gauge
	routed       func(endpoint string) *obs.Counter
	retried      *obs.Counter
	failed       func(endpoint string) *obs.Counter
	fanned       *obs.Counter
	shardSecs    func(shard string) *obs.Histogram
}

// newGate builds the gate over a fixed shard fleet. Shards start
// unhealthy; the first probe sweep (run's probeAll) flips them.
func newGate(cfg gateConfig, shardURLs []string) (*gate, error) {
	if cfg.maxInflight < 1 {
		cfg.maxInflight = 1
	}
	cfg.proxyLimits = cfg.proxyLimits.Norm()
	r, err := ring.New(shardURLs, ring.Options{VirtualNodes: cfg.virtualNodes})
	if err != nil {
		return nil, err
	}
	g := &gate{
		cfg:    cfg,
		ring:   r,
		shards: make(map[string]*shardState, len(shardURLs)),
		client: &http.Client{Timeout: cfg.shardTimeout},
		queue: jobs.New(jobs.Options{
			MaxQueued:   cfg.jobQueue,
			Workers:     cfg.jobWorkers,
			TenantQuota: cfg.tenantQuota,
		}),
		reg:          obs.Default,
		sem:          make(chan struct{}, cfg.maxInflight),
		inflight:     obs.Default.Gauge("gate_inflight_requests"),
		throttled:    obs.Default.Counter("gate_throttled_total"),
		panics:       obs.Default.Counter("gate_panics_total"),
		healthyGauge: obs.Default.Gauge("carol_fleet_healthy_shards"),
		retried:      obs.Default.Counter("gate_retried_total"),
		fanned:       obs.Default.Counter("gate_fanout_total"),
	}
	sel, err := selector.New(selector.Config{Seed: cfg.selectorSeed, Epsilon: cfg.selectorEpsilon})
	if err != nil {
		return nil, err
	}
	g.sel = sel
	g.routed = func(endpoint string) *obs.Counter {
		return g.reg.Counter(obs.Label("gate_routed_total", "endpoint", endpoint))
	}
	g.failed = func(endpoint string) *obs.Counter {
		return g.reg.Counter(obs.Label("gate_failed_total", "endpoint", endpoint))
	}
	// Shard label values come from the operator's -shards flag (a fixed,
	// bounded set), not from request input.
	g.shardSecs = func(shard string) *obs.Histogram {
		return g.reg.Histogram(obs.Label("gate_shard_request_seconds", "shard", shard), obs.LatencyBuckets())
	}
	for _, s := range r.Shards() {
		g.shards[s] = newShardState(s)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compress", g.handleCompress)
	mux.HandleFunc("/v1/decompress", g.handleDecompress)
	mux.HandleFunc("/v1/estimate", g.handleProxyWhole)
	mux.HandleFunc("/v1/predict", g.handleProxyWhole)
	mux.HandleFunc("/v1/models", g.handleProxyWhole)
	mux.HandleFunc("/v1/codecs", g.handleProxyWhole)
	mux.HandleFunc("/v1/jobs/compress", g.handleJobSubmit)
	mux.HandleFunc("/v1/jobs/", g.handleJobGet)
	mux.HandleFunc("/v1/fleet", g.handleFleet)
	mux.HandleFunc("/v1/selector", g.handleSelector)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/debug/vars", g.handleVars)
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/readyz", g.handleReadyz)
	g.handler = g.measure(g.recoverPanics(g.limit(mux)))
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.handler.ServeHTTP(w, r)
}

// endpointLabel maps a request path to a bounded metric label (unknown
// paths collapse to "other" so a URL scanner cannot grow the registry).
func endpointLabel(path string) string {
	switch path {
	case "/v1/compress", "/v1/decompress", "/v1/estimate", "/v1/predict",
		"/v1/models", "/v1/codecs", "/v1/fleet", "/v1/selector", "/metrics",
		"/debug/vars", "/healthz", "/readyz":
		return path
	}
	if path == "/v1/jobs/compress" {
		return path
	}
	if strings.HasPrefix(path, "/v1/jobs/") {
		return "/v1/jobs/{id}"
	}
	return "other"
}

// statusRecorder captures the response status for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if !sr.wrote {
		sr.status = http.StatusOK
		sr.wrote = true
	}
	return sr.ResponseWriter.Write(p)
}

// limit bounds in-flight /v1/ requests; shedding beats queueing under
// overload, and observability paths stay reachable while saturated.
func (g *gate) limit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case g.sem <- struct{}{}:
			defer func() { <-g.sem }()
			next.ServeHTTP(w, r)
		default:
			g.throttled.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "gate at capacity", http.StatusServiceUnavailable)
		}
	})
}

// measure records per-endpoint request counters and latency histograms.
func (g *gate) measure(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := endpointLabel(r.URL.Path)
		hist := g.reg.Histogram(obs.Label("gate_request_seconds", "endpoint", ep), obs.LatencyBuckets())
		g.inflight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			hist.ObserveSince(start)
			g.inflight.Add(-1)
			status := rec.status
			if !rec.wrote {
				status = http.StatusOK
			}
			g.reg.Counter(obs.Label("gate_requests_total",
				"endpoint", ep, "code", strconv.Itoa(status))).Inc()
		}()
		next.ServeHTTP(rec, r)
	})
}

// recoverPanics converts a handler panic into a 500 and counts it.
func (g *gate) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec, _ := w.(*statusRecorder)
		defer func() {
			if p := recover(); p != nil {
				g.panics.Inc()
				log.Printf("carolgate: panic serving %s %s: %v", r.Method, r.URL.Path, p)
				if rec == nil || !rec.wrote {
					http.Error(w, "internal error", http.StatusInternalServerError)
				}
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (g *gate) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := g.reg.WriteText(w); err != nil {
		log.Printf("carolgate: metrics write: %v", err)
	}
}

func (g *gate) handleVars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := g.reg.WriteJSON(w); err != nil {
		log.Printf("carolgate: vars write: %v", err)
	}
}

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := w.Write([]byte("ok\n")); err != nil {
		log.Printf("carolgate: healthz write: %v", err)
	}
}

// handleSelector exposes the gate's own mode=auto bandit state — the one
// that decides slab fan-outs. Shard-local decisions live on each shard's
// /v1/selector.
func (g *gate) handleSelector(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(g.sel.Stats()); err != nil {
		log.Printf("carolgate: selector encode: %v", err)
	}
}

// handleReadyz: the gate is ready once it can route somewhere.
func (g *gate) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(g.healthyShards()) == 0 {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "no healthy shards")
		return
	}
	if _, err := w.Write([]byte("ready\n")); err != nil {
		log.Printf("carolgate: readyz write: %v", err)
	}
}

// fleetShard is one entry of the /v1/fleet listing.
type fleetShard struct {
	Shard        string            `json:"shard"`
	Healthy      bool              `json:"healthy"`
	ConsecFails  int64             `json:"consecutive_failures,omitempty"`
	ModelVersion map[string]int    `json:"model_versions,omitempty"`
	ModelBackend map[string]string `json:"model_backends,omitempty"`
}

// fleetStatus is the /v1/fleet response: per-shard health and model
// versions (each shard's carol_model_version view, fetched live from its
// /v1/models endpoint) plus the aggregate convergence verdict the fleet
// smoke test gates on.
type fleetStatus struct {
	Shards     []fleetShard `json:"shards"`
	Healthy    int          `json:"healthy_shards"`
	RingShards int          `json:"ring_shards"`
	Converged  bool         `json:"models_converged"`
	JobsQueued int          `json:"jobs_queued"`
	JobsActive int          `json:"jobs_running"`
}

// handleFleet aggregates shard health and per-shard model versions.
func (g *gate) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := fleetStatus{RingShards: g.ring.Len(), Converged: true}
	// Model versions (and serving backends) every healthy shard agrees on;
	// any disagreement (or a healthy shard that cannot answer) flips
	// Converged.
	seen := map[string]shardModel{}
	for _, name := range g.ring.Shards() {
		ss := g.shards[name]
		fs := fleetShard{Shard: name, Healthy: ss.healthy.Load(), ConsecFails: ss.fails.Load()}
		if fs.Healthy {
			st.Healthy++
			models, err := g.shardModels(name)
			if err != nil {
				st.Converged = false
			} else {
				if len(models) > 0 {
					fs.ModelVersion = make(map[string]int, len(models))
					fs.ModelBackend = make(map[string]string, len(models))
				}
				for m, sm := range models {
					fs.ModelVersion[m] = sm.Version
					fs.ModelBackend[m] = sm.Backend
					if prev, ok := seen[m]; ok && prev != sm {
						st.Converged = false
					}
					seen[m] = sm
				}
			}
		}
		st.Shards = append(st.Shards, fs)
	}
	if st.Healthy == 0 {
		st.Converged = false
	}
	queued, running := g.queue.Depth()
	st.JobsQueued, st.JobsActive = queued, running
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		log.Printf("carolgate: fleet encode: %v", err)
	}
}
