// Command carolc is a command-line lossy compressor for raw float32
// scientific data, exposing both classic error-bounded compression and
// CAROL's fixed-ratio mode.
//
// Compress with an explicit relative error bound:
//
//	carolc -compressor sz3 -dims 256x256x256 -eb 1e-3 -in data.f32 -out data.sz3c
//
// Compress to a target ratio (trains a small CAROL model on the input's own
// statistics first — self-training mode):
//
//	carolc -compressor sperr -dims 256x256x256 -ratio 100 -in data.f32 -out data.szc
//
// Compress via the streaming block pipeline (peak memory stops scaling
// with field size; output is the CPL1 pipeline container):
//
//	carolc -stream -compressor sz3 -dims 256x256x256 -eb 1e-3 -in data.f32 -out data.cpl
//
// Let the adaptive selector pick the codec (prints the choice and the
// predicted ratio; decompression sniffs the codec from the stream magic):
//
//	carolc -codec auto -dims 256x256x256 -eb 1e-3 -in data.f32 -out data.carolc
//	carolc -d -codec auto -in data.carolc -out restored.f32
//
// Decompress (CPL1 containers are auto-detected):
//
//	carolc -d -compressor sz3 -in data.sz3c -out restored.f32
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"carol"
	"carol/internal/compressor"
	"carol/internal/selector"
	"carol/internal/szp"
	"carol/internal/trainset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "carolc:", err)
		os.Exit(1)
	}
}

func run() error {
	comp := flag.String("compressor", "sz3", "compressor: szx, zfp, sz3, sperr, szp")
	codec := flag.String("codec", "",
		"alias for -compressor; \"auto\" selects adaptively (-eb compress, sniffed -d)")
	selectorSeed := flag.Uint64("selector-seed", 1, "RNG seed for -codec auto exploration")
	dims := flag.String("dims", "", "grid dims NXxNYxNZ (compression only)")
	eb := flag.Float64("eb", 0, "value-range-relative error bound")
	ratio := flag.Float64("ratio", 0, "target compression ratio (fixed-ratio mode)")
	in := flag.String("in", "", "input file (raw little-endian float32, or compressed stream with -d/-verify)")
	out := flag.String("out", "", "output file")
	decompress := flag.Bool("d", false, "decompress instead of compress")
	stream := flag.Bool("stream", false,
		"compress via the block pipeline: CPL1 container, bounded peak memory (-eb mode only)")
	workers := flag.Int("workers", 0, "pipeline worker count for -stream/-d (0 = GOMAXPROCS)")
	verify := flag.String("verify", "", "original raw file: decompress -in and print a quality report against it")
	flag.Parse()

	name := *comp
	if *codec != "" {
		name = *codec
	}
	if *verify != "" {
		return doVerify(name, *in, *verify, *dims)
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("need -in and -out")
	}
	if *decompress {
		return doDecompress(name, *in, *out, *workers)
	}
	nx, ny, nz, err := parseDims(*dims)
	if err != nil {
		return err
	}
	inF, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer inF.Close()
	f, err := carol.ReadRawField(*in, nx, ny, nz, inF)
	if err != nil {
		return err
	}

	if name == "auto" {
		switch {
		case *ratio > 0:
			return fmt.Errorf("-codec auto needs -eb; fixed-ratio mode trains per codec, pass one explicitly")
		case *stream:
			return fmt.Errorf("-codec auto cannot write CPL1 containers (they do not name their codec); pass a codec with -stream")
		case !(*eb > 0):
			return fmt.Errorf("-codec auto needs -eb")
		}
		return doCompressAuto(f, *eb, *out, *selectorSeed)
	}
	if *stream {
		if !(*eb > 0) {
			return fmt.Errorf("-stream needs -eb")
		}
		return doCompressStream(name, f, *eb, *out, *workers)
	}
	var blob []byte
	switch {
	case *ratio > 0:
		blob, err = compressToRatio(name, f, *ratio)
	case *eb > 0:
		blob, err = carol.Compress(name, f, *eb)
	default:
		return fmt.Errorf("need -eb or -ratio")
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (ratio %.2f)\n",
		name, f.SizeBytes(), len(blob), carol.Ratio(f, blob))
	return nil
}

// doCompressAuto lets the bandit selector score every registered codec on
// the field's own features and compress with the cheapest one predicted to
// behave; the achieved ratio is fed back so a long-running shell loop over
// many files sharpens the estimates within the process.
func doCompressAuto(f *carol.Field, relEB float64, out string, seed uint64) error {
	sel, err := selector.New(selector.Config{Seed: seed})
	if err != nil {
		return err
	}
	abs := compressor.AbsBound(f, relEB)
	dec, err := sel.Select(f, abs, 0)
	if err != nil {
		return err
	}
	if p := dec.PredictedRatio(); p > 0 {
		fmt.Printf("auto: chose %s (predicted ratio %.2f)\n", dec.Codec, p)
	} else {
		fmt.Printf("auto: chose %s (fallback, no usable estimate)\n", dec.Codec)
	}
	blob, err := carol.Compress(dec.Codec, f, relEB)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	achieved := carol.Ratio(f, blob)
	sel.Observe(dec, achieved)
	fmt.Printf("%s: %d -> %d bytes (ratio %.2f)\n",
		dec.Codec, f.SizeBytes(), len(blob), achieved)
	return nil
}

// sniffCodec maps a stream's leading magic byte back to the codec that
// wrote it, so -d -codec auto round-trips without the user remembering
// which codec the selector picked at compress time.
func sniffCodec(magic byte) (string, error) {
	switch magic {
	case compressor.MagicSZx:
		return "szx", nil
	case compressor.MagicZFP:
		return "zfp", nil
	case compressor.MagicSZ3:
		return "sz3", nil
	case compressor.MagicSPERR:
		return "sperr", nil
	case szp.MagicSZP:
		return "szp", nil
	}
	return "", fmt.Errorf("unrecognized stream magic 0x%02X; pass the codec explicitly", magic)
}

// doCompressStream writes the CPL1 pipeline container straight to the
// output file: compressed blocks leave memory as soon as they are emitted.
func doCompressStream(comp string, f *carol.Field, eb float64, out string, workers int) error {
	outF, err := os.Create(out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(outF)
	if err := carol.CompressStream(comp, bw, f, eb, carol.StreamOptions{Workers: workers}); err != nil {
		_ = outF.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = outF.Close()
		return err
	}
	// Close before reporting success: Close surfaces the final flush failure.
	if err := outF.Close(); err != nil {
		return err
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("%s (stream): %d -> %d bytes (ratio %.2f)\n",
		comp, f.SizeBytes(), st.Size(), float64(f.SizeBytes())/float64(st.Size()))
	return nil
}

// compressToRatio self-trains a small CAROL model on the input field and
// compresses to the requested ratio.
func compressToRatio(comp string, f *carol.Field, target float64) ([]byte, error) {
	fw, err := carol.New(comp, carol.Config{
		ErrorBounds:  trainset.GeometricBounds(1e-4, 1e-1, 12),
		BOIterations: 6,
		ForestCap:    30,
	})
	if err != nil {
		return nil, err
	}
	if _, err := fw.Collect([]*carol.Field{f}); err != nil {
		return nil, err
	}
	if _, err := fw.Train(); err != nil {
		return nil, err
	}
	stream, achieved, err := fw.CompressToRatio(f, target)
	if err != nil {
		return nil, err
	}
	fmt.Printf("requested ratio %.1f, achieved %.2f\n", target, achieved)
	return stream, nil
}

func doDecompress(comp, in, out string, workers int) error {
	inF, err := os.Open(in)
	if err != nil {
		return err
	}
	defer inF.Close()
	f, err := decodeAny(comp, inF, workers)
	if err != nil {
		return err
	}
	outF, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := f.WriteRaw(outF); err != nil {
		_ = outF.Close()
		return err
	}
	// Close before reporting success: on a written file, Close is what
	// surfaces the final flush failure.
	if err := outF.Close(); err != nil {
		return err
	}
	fmt.Printf("restored %dx%dx%d field (%d bytes)\n", f.Nx, f.Ny, f.Nz, f.SizeBytes())
	return nil
}

// decodeAny decodes either a CPL1 pipeline container (detected by magic,
// decoded block-streaming without buffering the input in full) or a plain
// codec stream. With comp == "auto" the codec is sniffed from the stream's
// leading magic byte — except for CPL1 containers, which carry no codec
// name and need one passed explicitly.
func decodeAny(comp string, r io.Reader, workers int) (*carol.Field, error) {
	br := bufio.NewReader(r)
	if peek, err := br.Peek(4); err == nil && string(peek) == "CPL1" {
		if comp == "auto" {
			return nil, fmt.Errorf("CPL1 containers do not name their codec; pass one with -codec or -compressor")
		}
		return carol.DecompressStream(comp, br, carol.StreamOptions{Workers: workers})
	}
	if comp == "auto" {
		peek, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("sniff codec: %w", err)
		}
		if comp, err = sniffCodec(peek[0]); err != nil {
			return nil, err
		}
	}
	stream, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	return carol.Decompress(comp, stream)
}

// doVerify decompresses `in` and reports reconstruction quality against the
// original raw file.
func doVerify(comp, in, origPath, dims string) error {
	if in == "" {
		return fmt.Errorf("need -in (compressed stream)")
	}
	nx, ny, nz, err := parseDims(dims)
	if err != nil {
		return err
	}
	inF, err := os.Open(in)
	if err != nil {
		return err
	}
	defer inF.Close()
	recon, err := decodeAny(comp, inF, 0)
	if err != nil {
		return err
	}
	origF, err := os.Open(origPath)
	if err != nil {
		return err
	}
	defer origF.Close()
	orig, err := carol.ReadRawField(origPath, nx, ny, nz, origF)
	if err != nil {
		return err
	}
	report, err := carol.AnalyzeQuality(orig, recon, 0)
	if err != nil {
		return err
	}
	return report.WriteText(os.Stdout)
}

func parseDims(s string) (nx, ny, nz int, err error) {
	if s == "" {
		return 0, 0, 0, fmt.Errorf("need -dims NXxNYxNZ")
	}
	parts := strings.Split(strings.ToLower(s), "x")
	vals := []int{1, 1, 1}
	if len(parts) < 1 || len(parts) > 3 {
		return 0, 0, 0, fmt.Errorf("bad -dims %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return 0, 0, 0, fmt.Errorf("bad -dims %q", s)
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], nil
}
