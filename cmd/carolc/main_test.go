package main

import (
	"bytes"
	"testing"

	"carol"
	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/selector"
)

func TestParseDims(t *testing.T) {
	cases := []struct {
		in         string
		nx, ny, nz int
		wantErr    bool
	}{
		{"64", 64, 1, 1, false},
		{"64x32", 64, 32, 1, false},
		{"64x32x16", 64, 32, 16, false},
		{"64X32X16", 64, 32, 16, false},
		{"", 0, 0, 0, true},
		{"axb", 0, 0, 0, true},
		{"4x0", 0, 0, 0, true},
		{"1x2x3x4", 0, 0, 0, true},
		{"-4", 0, 0, 0, true},
	}
	for _, c := range cases {
		nx, ny, nz, err := parseDims(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseDims(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseDims(%q): %v", c.in, err)
			continue
		}
		if nx != c.nx || ny != c.ny || nz != c.nz {
			t.Errorf("parseDims(%q) = %d,%d,%d", c.in, nx, ny, nz)
		}
	}
}

// TestSniffCodecRoundTrip compresses a field with every registered codec
// and verifies decodeAny("auto", ...) identifies each stream from its
// magic byte and restores the field within bound.
func TestSniffCodecRoundTrip(t *testing.T) {
	f := field.New("sniff", 24, 8, 2)
	for i := range f.Data {
		f.Data[i] = float32(i%53) + 0.25
	}
	const rel = 1e-3
	for _, name := range codecs.ExtendedNames {
		blob, err := carol.Compress(name, f, rel)
		if err != nil {
			t.Fatalf("%s compress: %v", name, err)
		}
		sniffed, err := sniffCodec(blob[0])
		if err != nil {
			t.Fatalf("%s: sniff: %v", name, err)
		}
		if sniffed != name {
			t.Fatalf("sniffCodec(0x%02X) = %q, want %q", blob[0], sniffed, name)
		}
		g, err := decodeAny("auto", bytes.NewReader(blob), 0)
		if err != nil {
			t.Fatalf("%s: decodeAny auto: %v", name, err)
		}
		if err := compressor.CheckBound(f, g, compressor.AbsBound(f, rel)); err != nil {
			t.Fatalf("%s: auto round trip out of bound: %v", name, err)
		}
	}
	if _, err := sniffCodec(0x00); err == nil {
		t.Fatal("sniffCodec accepted an unknown magic byte")
	}
}

// TestDecodeAnyAutoRejectsCPL1: pipeline containers carry no codec name,
// so sniffing must fail loudly instead of guessing.
func TestDecodeAnyAutoRejectsCPL1(t *testing.T) {
	f := field.New("cpl", 64, 4, 1)
	for i := range f.Data {
		f.Data[i] = float32(i % 31)
	}
	var buf bytes.Buffer
	if err := carol.CompressStream("sz3", &buf, f, 1e-3, carol.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeAny("auto", &buf, 0); err == nil {
		t.Fatal("decodeAny(auto) accepted a CPL1 container")
	}
}

// TestAutoCompressChoosesRegistered: the auto path picks a registered
// codec deterministically under a fixed seed.
func TestAutoCompressChoosesRegistered(t *testing.T) {
	f := field.New("auto", 32, 8, 2)
	for i := range f.Data {
		f.Data[i] = float32(i%97) + 0.5
	}
	abs := compressor.AbsBound(f, 1e-3)
	sel, err := selector.New(selector.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	first, err := sel.Select(f, abs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var known bool
	for _, n := range codecs.ExtendedNames {
		if n == first.Codec {
			known = true
		}
	}
	if !known {
		t.Fatalf("auto chose unregistered codec %q", first.Codec)
	}
	sel2, err := selector.New(selector.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	again, err := sel2.Select(f, abs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Codec != first.Codec {
		t.Fatalf("same seed chose %q then %q", first.Codec, again.Codec)
	}
}
