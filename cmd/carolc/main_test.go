package main

import "testing"

func TestParseDims(t *testing.T) {
	cases := []struct {
		in         string
		nx, ny, nz int
		wantErr    bool
	}{
		{"64", 64, 1, 1, false},
		{"64x32", 64, 32, 1, false},
		{"64x32x16", 64, 32, 16, false},
		{"64X32X16", 64, 32, 16, false},
		{"", 0, 0, 0, true},
		{"axb", 0, 0, 0, true},
		{"4x0", 0, 0, 0, true},
		{"1x2x3x4", 0, 0, 0, true},
		{"-4", 0, 0, 0, true},
	}
	for _, c := range cases {
		nx, ny, nz, err := parseDims(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseDims(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseDims(%q): %v", c.in, err)
			continue
		}
		if nx != c.nx || ny != c.ny || nz != c.nz {
			t.Errorf("parseDims(%q) = %d,%d,%d", c.in, nx, ny, nz)
		}
	}
}
