package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"carol/internal/features"
	"carol/internal/model"
	"carol/internal/obs"
	"carol/internal/registry"
	"carol/internal/safedec"
)

// loadedModel pairs a decoded artifact with its registry provenance. The
// struct is immutable after load: hot swap replaces whole *loadedModel
// pointers, never mutates one, so an in-flight request that grabbed a
// pointer keeps predicting against the same model until it finishes.
type loadedModel struct {
	version  registry.Version
	artifact *model.Artifact
	stats    model.Stats
}

// modelSet is one immutable generation of loaded models, keyed by name.
type modelSet map[string]*loadedModel

// modelStore owns the registry-backed model lifecycle: warm load at boot,
// SIGHUP-triggered reload, and lock-free reads on the serving path. The
// current generation hangs off a single atomic pointer; Reload builds the
// next generation off to the side and publishes it with one swap.
type modelStore struct {
	dir     string
	limits  safedec.Limits
	current atomic.Pointer[modelSet]

	reg       *obs.Registry
	loadTotal func(result string) *obs.Counter
}

func newModelStore(dir string, lim safedec.Limits) *modelStore {
	ms := &modelStore{dir: dir, limits: lim, reg: obs.Default}
	ms.loadTotal = func(result string) *obs.Counter {
		return ms.reg.Counter(obs.Label("model_load_total", "result", result))
	}
	empty := modelSet{}
	ms.current.Store(&empty)
	return ms
}

// set returns the current generation (never nil).
func (ms *modelStore) set() modelSet { return *ms.current.Load() }

// Ready reports whether at least one model is serving. /readyz gates on
// this so a load balancer only routes traffic once predictions can be
// answered.
func (ms *modelStore) Ready() bool { return len(ms.set()) > 0 }

// Reload loads the latest version of every model in the registry and
// atomically swaps the serving set. A model that fails to load keeps its
// previously served generation (counted under model_load_total{result=
// "error"}) — a bad publish must not take down models that were healthy.
func (ms *modelStore) Reload() error {
	reg, err := registry.Open(ms.dir)
	if err != nil {
		ms.loadTotal("error").Inc()
		return err
	}
	names, err := reg.List()
	if err != nil {
		ms.loadTotal("error").Inc()
		return err
	}
	prev := ms.set()
	next := make(modelSet, len(names))
	var firstErr error
	for _, name := range names {
		lm, err := ms.loadLatest(reg, name, prev[name])
		if err != nil {
			ms.loadTotal("error").Inc()
			log.Printf("carolserve: model %s: %v", name, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("model %s: %w", name, err)
			}
			if prev[name] != nil {
				next[name] = prev[name] // keep serving the old generation
			}
			continue
		}
		next[name] = lm
	}
	ms.current.Store(&next)
	return firstErr
}

// loadLatest loads name's newest version, short-circuiting when prev
// already serves it (a SIGHUP with nothing new is free).
func (ms *modelStore) loadLatest(reg *registry.Registry, name string, prev *loadedModel) (*loadedModel, error) {
	latest, err := reg.Latest(name)
	if err != nil {
		return nil, err
	}
	if prev != nil && prev.version.Number == latest.Number && prev.version.SHA256 == latest.SHA256 {
		return prev, nil
	}
	art, err := reg.Load(latest, ms.limits)
	if err != nil {
		return nil, err
	}
	if err := art.ServingCheck(); err != nil {
		return nil, err
	}
	lm := &loadedModel{version: latest, artifact: art, stats: art.Stats()}
	st := lm.stats
	ms.loadTotal("ok").Inc()
	ms.reg.Gauge(obs.Label("model_loaded_version", "model", name)).Set(float64(latest.Number))
	// carol_model_version is the fleet-convergence gauge: the gate's
	// /v1/fleet view compares it (via /v1/models) across shards.
	ms.reg.Gauge(obs.Label("carol_model_version", "model", name)).Set(float64(latest.Number))
	ms.reg.Gauge(obs.Label("model_forest_trees", "model", name)).Set(float64(st.Trees))
	ms.reg.Gauge(obs.Label("model_forest_nodes", "model", name)).Set(float64(st.Nodes))
	ms.reg.Gauge(obs.Label("model_forest_max_depth", "model", name)).Set(float64(st.MaxDepth))
	log.Printf("carolserve: loaded model %s v%d (backend %s, %d trees, %d nodes, depth %d)",
		name, latest.Number, st.Backend, st.Trees, st.Nodes, st.MaxDepth)
	return lm, nil
}

// watchHUP reloads the store on every SIGHUP until stop is called — the
// operational contract: publish with caroltrain, `kill -HUP`, and the
// server swaps without dropping a request.
func (ms *modelStore) watchHUP() (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range ch {
			if err := ms.Reload(); err != nil {
				log.Printf("carolserve: reload: %v", err)
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
		<-done
	}
}

// fingerprint reduces the registry's current state to a comparable string:
// every model's latest (number, sha256) pair in sorted name order. Two
// equal fingerprints mean a reload would be a no-op, so the watch loop
// only pays for Reload (artifact decode + serving check) on real change.
func (ms *modelStore) fingerprint() (string, error) {
	reg, err := registry.Open(ms.dir)
	if err != nil {
		return "", err
	}
	names, err := reg.List()
	if err != nil {
		return "", err
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		latest, err := reg.Latest(name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s=%d:%s;", name, latest.Number, latest.SHA256)
	}
	return b.String(), nil
}

// watchRegistry polls the registry manifests at interval and reloads when
// the latest-version fingerprint changes — fleet convergence without
// SIGHUP fan-out: publish once, every shard notices on its next poll and
// hot-swaps. The returned stop func halts the loop and waits for it.
func (ms *modelStore) watchRegistry(interval time.Duration) (stop func()) {
	last, err := ms.fingerprint()
	if err != nil {
		last = "" // first successful poll will trigger a reload attempt
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fp, err := ms.fingerprint()
				if err != nil {
					log.Printf("carolserve: registry watch: %v", err)
					continue
				}
				if fp == last {
					continue
				}
				log.Printf("carolserve: registry changed, reloading models")
				if err := ms.Reload(); err != nil {
					log.Printf("carolserve: registry watch reload: %v", err)
				}
				// Advance even on partial failure: Reload keeps healthy
				// generations and logged what broke; repolling an unchanged
				// broken registry every tick would just repeat the error.
				last = fp
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// modelInfo is one entry of the /v1/models listing.
type modelInfo struct {
	Model   string `json:"model"`
	Version int    `json:"version"`
	SHA256  string `json:"sha256"`
	Size    int64  `json:"size"`
	Codec   string `json:"codec"`
	// Backend is the regressor family serving this model (rf|boost|knn);
	// the continuous-retraining pipeline can change it between versions.
	Backend  string `json:"backend"`
	Trees    int    `json:"trees"`
	Nodes    int    `json:"nodes"`
	MaxDepth int    `json:"max_depth"`
	// Samples and K describe a knn backend (zero otherwise).
	Samples int `json:"samples,omitempty"`
	K       int `json:"k,omitempty"`
}

// handleModels lists the currently served models (GET /v1/models).
func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.models == nil {
		httpError(w, http.StatusNotFound, "no -model-dir configured")
		return
	}
	set := s.models.set()
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]modelInfo, 0, len(names))
	for _, name := range names {
		lm := set[name]
		infos = append(infos, modelInfo{
			Model:    name,
			Version:  lm.version.Number,
			SHA256:   lm.version.SHA256,
			Size:     lm.version.Size,
			Codec:    lm.artifact.Codec,
			Backend:  lm.stats.Backend,
			Trees:    lm.stats.Trees,
			Nodes:    lm.stats.Nodes,
			MaxDepth: lm.stats.MaxDepth,
			Samples:  lm.stats.Samples,
			K:        lm.stats.K,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(infos); err != nil {
		log.Printf("carolserve: models encode: %v", err)
	}
}

// parseRatios parses the comma-separated ratio= query parameter.
func parseRatios(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("need ratio=")
	}
	parts := strings.Split(s, ",")
	const maxRatios = 256
	if len(parts) > maxRatios {
		return nil, fmt.Errorf("too many ratios (max %d)", maxRatios)
	}
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || !(v > 0) {
			return nil, fmt.Errorf("bad ratio %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// handlePredict serves error-bound predictions from a loaded model:
//
//	POST /v1/predict?model=sz3&ratio=50,100&dims=128x128x64  (raw float32 body)
//
// The model parameter may be omitted when exactly one model is loaded.
// The response carries the model version so callers can attribute every
// prediction to an exact artifact across hot swaps.
func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.models == nil {
		httpError(w, http.StatusNotFound, "no -model-dir configured")
		return
	}
	set := s.models.set()
	if len(set) == 0 {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "no models loaded")
		return
	}
	q := r.URL.Query()
	name := q.Get("model")
	if name == "" {
		if len(set) > 1 {
			httpError(w, http.StatusBadRequest, "need model= (%d models loaded)", len(set))
			return
		}
		for n := range set {
			name = n
		}
	}
	lm, ok := set[name]
	if !ok {
		httpError(w, http.StatusNotFound, "model %q not loaded", name)
		return
	}
	ratios, err := parseRatios(q.Get("ratio"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	f, err := readFieldBody(r)
	if err != nil {
		fieldError(w, err)
		return
	}
	hist := s.reg.Histogram(obs.Label("model_predict_seconds", "model", name), obs.LatencyBuckets())
	start := time.Now()
	ebs, err := lm.artifact.PredictErrorBounds(f, ratios, features.ParallelOptions{})
	hist.ObserveSince(start)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	resp := struct {
		Model       string    `json:"model"`
		Version     int       `json:"version"`
		Codec       string    `json:"codec"`
		Ratios      []float64 `json:"ratios"`
		ErrorBounds []float64 `json:"error_bounds"`
	}{name, lm.version.Number, lm.artifact.Codec, ratios, ebs}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("carolserve: predict encode: %v", err)
	}
}

// handleReadyz is the readiness probe: 200 once every configured concern
// is serving (a model dir implies at least one loaded model), 503 before.
// Liveness stays on /healthz — a server warming up is alive but not ready.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.models != nil && !s.models.Ready() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "no models loaded")
		return
	}
	if _, err := w.Write([]byte("ready\n")); err != nil {
		log.Printf("carolserve: readyz write: %v", err)
	}
}
