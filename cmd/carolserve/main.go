// Command carolserve exposes the compressors and estimators as an HTTP
// service — the "large software pipelines" integration of the paper's
// use case 3, where other components need compression with predictable
// output sizes over a wire protocol.
//
//	carolserve -addr :8080 -max-inflight 64
//
// Endpoints (raw little-endian float32 bodies):
//
//	POST /v1/compress?codec=sz3&rel=1e-3&dims=128x128x64   -> stream
//	POST /v1/compress?codec=sz3&rel=1e-3&stream=1&dims=... -> pipeline container (CPL1),
//	     block-parallel, body streamed as blocks complete; optional workers=N;
//	     X-Carol-Achieved-Ratio arrives as an HTTP trailer
//	POST /v1/compress?codec=sz3&ratio=100&dims=128x128x64  -> stream (FRaZ search)
//	POST /v1/compress?mode=auto&rel=1e-3&dims=...          -> adaptive codec selection:
//	     every registered codec is scored via its SECRE surrogate, bias-corrected by
//	     the online bandit, and the winner compresses; X-Carol-Codec-Chosen names it,
//	     optional target=R asks for the cheapest codec predicted to reach ratio R;
//	     composes with stream=1 (but not ratio=, which already self-selects the eb)
//	POST /v1/decompress?codec=sz3                          -> raw float32
//	     (CPL1 pipeline containers are auto-detected and decoded block-streaming)
//	POST /v1/estimate?codec=sperr&rel=1e-3&dims=...        -> JSON ratio estimate
//	POST /v1/predict?model=sz3&ratio=50,100&dims=...       -> JSON error-bound predictions
//	GET  /v1/models                                        -> JSON loaded-model listing
//	GET  /v1/codecs                                        -> JSON codec list
//	GET  /v1/selector                                      -> JSON mode=auto bandit state
//	GET  /metrics                                          -> text metrics exposition
//	GET  /debug/vars                                       -> JSON metrics snapshot
//	GET  /healthz                                          -> liveness probe
//	GET  /readyz                                           -> readiness (503 until models load)
//
// With -model-dir pointing at a caroltrain registry, the newest version
// of every model is loaded before traffic is accepted and hot-swapped on
// SIGHUP without dropping in-flight requests (DESIGN.md §12).
//
// The server is hardened for production traffic: read/write/idle
// timeouts, a semaphore-bounded in-flight request limit (503 +
// Retry-After when saturated), panic recovery, per-endpoint request
// metrics, and context-aware graceful shutdown on SIGINT/SIGTERM
// (in-flight requests drain, bounded by -shutdown-timeout).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"carol"
	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/fraz"
	"carol/internal/obs"
	"carol/internal/pipeline"
	"carol/internal/safedec"
	"carol/internal/secre"
)

func main() {
	cfg := defaultConfig()
	addr := flag.String("addr", ":8080", "listen address")
	flag.StringVar(&cfg.modelDir, "model-dir", cfg.modelDir,
		"caroltrain model registry to warm-load and serve on /v1/predict; SIGHUP hot-reloads")
	flag.IntVar(&cfg.maxInflight, "max-inflight", cfg.maxInflight,
		"maximum concurrently served /v1/ requests; excess get 503 + Retry-After")
	flag.DurationVar(&cfg.registryWatch, "registry-watch", cfg.registryWatch,
		"poll the model registry at this interval and hot-swap on change (0 disables; SIGHUP always works)")
	flag.StringVar(&cfg.harvestDir, "harvest-dir", cfg.harvestDir,
		"journal served rel=/abs= compression outcomes here for carolretrain (empty disables)")
	flag.IntVar(&cfg.harvestCap, "harvest-cap", cfg.harvestCap,
		"records retained per harvest journal (0 = default)")
	flag.BoolVar(&cfg.trackEstimatorError, "track-estimator-error", cfg.trackEstimatorError,
		"run the SECRE surrogate alongside rel= compresses and export estimate-vs-actual error gauges")
	flag.Uint64Var(&cfg.selectorSeed, "selector-seed", cfg.selectorSeed,
		"seed for the mode=auto exploration RNG; a fixed seed reproduces the decision sequence")
	flag.Float64Var(&cfg.selectorEpsilon, "selector-epsilon", cfg.selectorEpsilon,
		"mode=auto exploration probability (negative disables exploration)")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", cfg.readTimeout, "full-request read timeout")
	flag.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", cfg.readHeaderTimeout, "request-header read timeout")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", cfg.writeTimeout, "response write timeout")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", cfg.idleTimeout, "keep-alive idle timeout")
	flag.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", cfg.shutdownTimeout,
		"grace period for draining in-flight requests on SIGINT/SIGTERM")
	flag.Int64Var(&cfg.decodeLimits.MaxElements, "max-decode-elements", cfg.decodeLimits.MaxElements,
		"maximum samples a /v1/decompress stream may claim (413 beyond)")
	flag.Int64Var(&cfg.decodeLimits.MaxAlloc, "max-decode-alloc", cfg.decodeLimits.MaxAlloc,
		"maximum bytes a single decode-side allocation may claim (413 beyond)")
	flag.Int64Var(&cfg.decodeLimits.MaxCount, "max-decode-count", cfg.decodeLimits.MaxCount,
		"maximum repeated-structure count (chunks, entries) a stream may claim (413 beyond)")
	flag.Parse()
	os.Exit(run(cfg, *addr))
}

// run owns the server lifecycle so every exit path is explicit and
// checked: listener failures, serve failures, and shutdown failures each
// report and return non-zero; a signal-triggered graceful drain returns 0.
func run(cfg config, addr string) int {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("carolserve: listen: %v", err)
		return 1
	}
	s := newServerWith(cfg)
	defer func() {
		// Flush and close the harvest journals so the torn-tail window on
		// a clean shutdown is empty.
		if err := s.Close(); err != nil {
			log.Printf("carolserve: close: %v", err)
		}
	}()
	if s.models != nil {
		// Warm load before accepting traffic; a failure is not fatal — the
		// server starts and /readyz answers 503 until a reload succeeds.
		if err := s.models.Reload(); err != nil {
			log.Printf("carolserve: warm load: %v", err)
		}
		stopHUP := s.models.watchHUP()
		defer stopHUP()
		if cfg.registryWatch > 0 {
			stopWatch := s.models.watchRegistry(cfg.registryWatch)
			defer stopWatch()
		}
	}
	srv := &http.Server{
		Handler:           s,
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
	log.Printf("carolserve listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve only returns before shutdown on listener/accept failure.
		log.Printf("carolserve: serve: %v", err)
		return 1
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		log.Printf("carolserve: signal received, draining in-flight requests (up to %v)", cfg.shutdownTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("carolserve: graceful shutdown: %v; forcing close", err)
			if cerr := srv.Close(); cerr != nil {
				log.Printf("carolserve: close: %v", cerr)
			}
			return 1
		}
		if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
			log.Printf("carolserve: serve returned %v after shutdown", err)
			return 1
		}
		log.Printf("carolserve: shutdown complete")
		return 0
	}
}

// maxBody caps request bodies (512 MiB of float32 samples).
const maxBody = 512 << 20

// errTooLarge marks a request rejected for size, mapped to 413 rather
// than 400 so clients can tell "shrink it" from "fix it".
var errTooLarge = errors.New("request body too large")

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// fieldError maps a body/dims parse failure to its status code.
func fieldError(w http.ResponseWriter, err error) {
	if errors.Is(err, errTooLarge) {
		httpError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	httpError(w, http.StatusBadRequest, "%v", err)
}

func (s *server) handleCodecs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(carol.ExtendedCompressors()); err != nil {
		log.Printf("carolserve: codecs encode: %v", err)
	}
}

// parseDims parses NXxNYxNZ.
func parseDims(s string) (nx, ny, nz int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	vals := []int{1, 1, 1}
	if s == "" || len(parts) > 3 {
		return 0, 0, 0, fmt.Errorf("bad dims %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return 0, 0, 0, fmt.Errorf("bad dims %q", s)
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], nil
}

// readFieldBody reads a raw float32 body with the dims query parameter.
func readFieldBody(r *http.Request) (*field.Field, error) {
	nx, ny, nz, err := parseDims(r.URL.Query().Get("dims"))
	if err != nil {
		return nil, err
	}
	// Per-dimension caps keep the product free of int64 overflow before the
	// total-size check.
	const maxDim = 1 << 20
	if nx > maxDim || ny > maxDim || nz > maxDim || int64(nx)*int64(ny)*int64(nz)*4 > maxBody {
		return nil, fmt.Errorf("%w: %dx%dx%d float32 field exceeds %d bytes", errTooLarge, nx, ny, nz, maxBody)
	}
	if r.ContentLength > maxBody {
		return nil, fmt.Errorf("%w: content length %d exceeds %d bytes", errTooLarge, r.ContentLength, maxBody)
	}
	return field.ReadRaw("http", nx, ny, nz, io.LimitReader(r.Body, maxBody))
}

func (s *server) handleCompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	tr := s.reg.StartTrace("http_compress")
	defer tr.End()
	q := r.URL.Query()
	auto := false
	switch q.Get("mode") {
	case "":
	case "auto":
		auto = true
	default:
		httpError(w, http.StatusBadRequest, "bad mode %q (only \"auto\")", q.Get("mode"))
		return
	}
	var codec compressor.Codec
	var err error
	codecName := q.Get("codec")
	if auto {
		// ratio= runs its own FRaZ search per codec; combining it with
		// selection is a different (and much more expensive) operation.
		if q.Get("ratio") != "" {
			httpError(w, http.StatusBadRequest, "mode=auto needs rel= or abs=, not ratio=")
			return
		}
		if codecName != "" {
			httpError(w, http.StatusBadRequest, "mode=auto and codec= are mutually exclusive")
			return
		}
	} else {
		codec, err = codecs.ByName(codecName)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	targetRatio := 0.0
	if ts := q.Get("target"); ts != "" {
		if !auto {
			httpError(w, http.StatusBadRequest, "target= requires mode=auto")
			return
		}
		targetRatio, err = strconv.ParseFloat(ts, 64)
		if err != nil || targetRatio <= 0 || math.IsInf(targetRatio, 0) {
			httpError(w, http.StatusBadRequest, "bad target")
			return
		}
	}
	span := tr.StartSpan("parse")
	f, err := readFieldBody(r)
	span.End()
	if err != nil {
		fieldError(w, err)
		return
	}
	var stream []byte
	switch {
	case q.Get("ratio") != "":
		target, err := strconv.ParseFloat(q.Get("ratio"), 64)
		if err != nil || target <= 0 {
			httpError(w, http.StatusBadRequest, "bad ratio")
			return
		}
		span = tr.StartSpan("search")
		res, err := fraz.Search(codec, f, target, fraz.Options{})
		span.End()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		stream = res.Stream
		w.Header().Set("X-Carol-Achieved-Ratio", strconv.FormatFloat(res.Achieved, 'g', 6, 64))
		w.Header().Set("X-Carol-Compressor-Runs", strconv.Itoa(res.Runs))
		s.harvest(codec.Name(), f, compressor.AbsBound(f, res.RelEB), res.Achieved)
	case q.Get("rel") != "", q.Get("abs") != "":
		// abs= pins an absolute error bound verbatim — the fleet gate uses
		// it to hold a whole-field bound across slab fan-outs, where a
		// per-slab rel= would rescale by each slab's own value range.
		var eb float64
		if as := q.Get("abs"); as != "" {
			eb, err = strconv.ParseFloat(as, 64)
			if err != nil || eb <= 0 {
				httpError(w, http.StatusBadRequest, "bad abs")
				return
			}
		} else {
			rel, rerr := strconv.ParseFloat(q.Get("rel"), 64)
			if rerr != nil || rel <= 0 {
				httpError(w, http.StatusBadRequest, "bad rel")
				return
			}
			eb = compressor.AbsBound(f, rel)
		}
		// Auto selection resolves the codec here, after the error bound is
		// known: every candidate is scored by its SECRE surrogate at this
		// exact (field, eb) and the bandit-corrected winner serves the
		// request. The achieved ratio feeds back below.
		var observe func(actual float64)
		if auto {
			span = tr.StartSpan("select")
			dec, serr := s.selector.Select(f, eb, targetRatio)
			span.End()
			if serr != nil {
				// The field and eb already passed parsing; a selection error
				// means the input data itself is unusable (e.g. non-finite).
				httpError(w, http.StatusBadRequest, "%v", serr)
				return
			}
			codec, err = codecs.ByName(dec.Codec)
			if err != nil {
				httpError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			w.Header().Set("X-Carol-Codec-Chosen", dec.Codec)
			if p := dec.PredictedRatio(); p > 0 {
				w.Header().Set("X-Carol-Predicted-Ratio", strconv.FormatFloat(p, 'g', 6, 64))
			}
			observe = func(actual float64) { s.selector.Observe(dec, actual) }
		}
		if q.Get("stream") != "" {
			s.compressStreaming(w, r, tr, codec, f, eb, observe)
			return
		}
		span = tr.StartSpan("codec")
		stream, err = codec.Compress(f, eb)
		span.End()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		actual := compressor.Ratio(f, stream)
		w.Header().Set("X-Carol-Achieved-Ratio", strconv.FormatFloat(actual, 'g', 6, 64))
		s.harvest(codec.Name(), f, eb, actual)
		if observe != nil {
			// Close the bandit loop: the selector compares its prediction
			// against what the chosen codec actually delivered.
			observe(actual)
		} else if s.cfg.trackEstimatorError {
			// Online estimator-error tracking (Underwood et al.'s black-box
			// ratio-prediction metric): run the cheap sampled surrogate next to
			// the full run we just paid for, and export the error.
			if sur, serr := codecs.SurrogateByName(codecName); serr == nil {
				span = tr.StartSpan("estimate")
				est, eerr := sur.EstimateRatio(f, eb)
				span.End()
				if eerr == nil {
					secre.RecordOutcome(codecName, est, actual)
					w.Header().Set("X-Carol-Estimated-Ratio", strconv.FormatFloat(est, 'g', 6, 64))
				}
			}
		}
	default:
		httpError(w, http.StatusBadRequest, "need rel=, abs= or ratio=")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Carol-Trace", tr.String())
	if _, err := w.Write(stream); err != nil {
		log.Printf("carolserve: compress write: %v", err)
	}
}

// countingWriter counts bytes forwarded to the response so the streaming
// path can tell "failed before the first byte" (still able to send a
// status code) from "failed mid-body" (log only), and can compute the
// achieved ratio for the trailer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// compressStreaming serves /v1/compress?stream=1: the pipeline container is
// written to the response as blocks complete, so peak memory holds the
// input field plus a bounded window of compressed blocks — never the whole
// stream. The achieved ratio is only known once the body has been sent, so
// it travels as an HTTP trailer instead of a header. A non-nil observe
// receives the achieved ratio (the mode=auto feedback hook).
func (s *server) compressStreaming(w http.ResponseWriter, r *http.Request, tr *obs.Trace, codec compressor.Codec, f *field.Field, eb float64, observe func(float64)) {
	workers := 0
	if ws := r.URL.Query().Get("workers"); ws != "" {
		v, err := strconv.Atoi(ws)
		if err != nil || v < 1 || v > 1024 {
			httpError(w, http.StatusBadRequest, "bad workers")
			return
		}
		workers = v
	}
	p := pipeline.New(codec, pipeline.Options{Workers: workers})
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Trailer", "X-Carol-Achieved-Ratio, X-Carol-Trace")
	cw := &countingWriter{w: w}
	span := tr.StartSpan("codec")
	err := p.CompressStream(cw, f, eb)
	span.End()
	if err != nil {
		if cw.n == 0 {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		// Mid-body failure: the status line is gone; the truncated body is
		// the client's signal (CPL1 frames are length-prefixed).
		log.Printf("carolserve: streaming compress: %v", err)
		return
	}
	actual := float64(f.SizeBytes()) / float64(cw.n)
	s.harvest(codec.Name(), f, eb, actual)
	if observe != nil {
		observe(actual)
	}
	w.Header().Set("X-Carol-Achieved-Ratio", strconv.FormatFloat(actual, 'g', 6, 64))
	w.Header().Set("X-Carol-Trace", tr.String())
}

func (s *server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	tr := s.reg.StartTrace("http_decompress")
	defer tr.End()
	codec, err := codecs.ByName(r.URL.Query().Get("codec"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if r.ContentLength > maxBody {
		fieldError(w, fmt.Errorf("%w: content length %d exceeds %d bytes", errTooLarge, r.ContentLength, maxBody))
		return
	}
	// Pipeline containers are decoded straight off the request body — block
	// frames are read and decoded in a bounded window, so a large container
	// is never buffered in full. Anything else is a single codec stream and
	// needs the whole slice.
	br := bufio.NewReader(io.LimitReader(r.Body, maxBody))
	var f *field.Field
	if peek, perr := br.Peek(len(pipeline.Magic)); perr == nil && [4]byte(peek) == pipeline.Magic {
		p := pipeline.New(codec, pipeline.Options{Limits: s.cfg.decodeLimits})
		span := tr.StartSpan("codec")
		f, err = p.DecompressStream(br)
		span.End()
	} else {
		span := tr.StartSpan("read")
		var stream []byte
		stream, err = io.ReadAll(br)
		span.End()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		span = tr.StartSpan("codec")
		f, err = compressor.DecompressLimited(codec, stream, s.cfg.decodeLimits)
		span.End()
	}
	if err != nil {
		// Limit rejections are the client asking for more than this server
		// will allocate (413: shrink it); truncation/corruption means the
		// stream itself is bad (422: fix it).
		if errors.Is(err, safedec.ErrLimit) {
			httpError(w, http.StatusRequestEntityTooLarge, "%v", err)
			return
		}
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Carol-Dims", fmt.Sprintf("%dx%dx%d", f.Nx, f.Ny, f.Nz))
	w.Header().Set("X-Carol-Trace", tr.String())
	if err := f.WriteRaw(w); err != nil {
		log.Printf("carolserve: decompress write: %v", err)
	}
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	tr := s.reg.StartTrace("http_estimate")
	defer tr.End()
	q := r.URL.Query()
	sur, err := codecs.SurrogateByName(q.Get("codec"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rel, err := strconv.ParseFloat(q.Get("rel"), 64)
	if err != nil || rel <= 0 {
		httpError(w, http.StatusBadRequest, "bad rel")
		return
	}
	span := tr.StartSpan("parse")
	f, err := readFieldBody(r)
	span.End()
	if err != nil {
		fieldError(w, err)
		return
	}
	span = tr.StartSpan("estimate")
	ratio, err := sur.EstimateRatio(f, compressor.AbsBound(f, rel))
	span.End()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Carol-Trace", tr.String())
	if err := json.NewEncoder(w).Encode(map[string]float64{"estimated_ratio": ratio}); err != nil {
		log.Printf("carolserve: estimate encode: %v", err)
	}
}
