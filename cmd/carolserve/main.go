// Command carolserve exposes the compressors and estimators as a small
// HTTP service — the "large software pipelines" integration of the paper's
// use case 3, where other components need compression with predictable
// output sizes over a wire protocol.
//
//	carolserve -addr :8080
//
// Endpoints (raw little-endian float32 bodies):
//
//	POST /v1/compress?codec=sz3&rel=1e-3&dims=128x128x64   -> stream
//	POST /v1/compress?codec=sz3&ratio=100&dims=128x128x64  -> stream (FRaZ search)
//	POST /v1/decompress?codec=sz3                          -> raw float32
//	POST /v1/estimate?codec=sperr&rel=1e-3&dims=...        -> JSON ratio estimate
//	GET  /v1/codecs                                        -> JSON codec list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"

	"carol"
	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/fraz"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	log.Printf("carolserve listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, newServer()))
}

// maxBody caps request bodies (512 MiB of float32 samples).
const maxBody = 512 << 20

// newServer builds the HTTP handler (separated from main for testing).
func newServer() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/codecs", handleCodecs)
	mux.HandleFunc("/v1/compress", handleCompress)
	mux.HandleFunc("/v1/decompress", handleDecompress)
	mux.HandleFunc("/v1/estimate", handleEstimate)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func handleCodecs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(carol.ExtendedCompressors()); err != nil {
		log.Printf("codecs encode: %v", err)
	}
}

// parseDims parses NXxNYxNZ.
func parseDims(s string) (nx, ny, nz int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	vals := []int{1, 1, 1}
	if s == "" || len(parts) > 3 {
		return 0, 0, 0, fmt.Errorf("bad dims %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return 0, 0, 0, fmt.Errorf("bad dims %q", s)
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], nil
}

// readFieldBody reads a raw float32 body with the dims query parameter.
func readFieldBody(r *http.Request) (*field.Field, error) {
	nx, ny, nz, err := parseDims(r.URL.Query().Get("dims"))
	if err != nil {
		return nil, err
	}
	// Per-dimension caps keep the product free of int64 overflow before the
	// total-size check.
	const maxDim = 1 << 20
	if nx > maxDim || ny > maxDim || nz > maxDim || int64(nx)*int64(ny)*int64(nz)*4 > maxBody {
		return nil, fmt.Errorf("field too large")
	}
	return field.ReadRaw("http", nx, ny, nz, io.LimitReader(r.Body, maxBody))
}

func handleCompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	q := r.URL.Query()
	codecName := q.Get("codec")
	codec, err := codecs.ByName(codecName)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	f, err := readFieldBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var stream []byte
	switch {
	case q.Get("ratio") != "":
		target, err := strconv.ParseFloat(q.Get("ratio"), 64)
		if err != nil || target <= 0 {
			httpError(w, http.StatusBadRequest, "bad ratio")
			return
		}
		res, err := fraz.Search(codec, f, target, fraz.Options{})
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		stream = res.Stream
		w.Header().Set("X-Carol-Achieved-Ratio", strconv.FormatFloat(res.Achieved, 'g', 6, 64))
		w.Header().Set("X-Carol-Compressor-Runs", strconv.Itoa(res.Runs))
	case q.Get("rel") != "":
		rel, err := strconv.ParseFloat(q.Get("rel"), 64)
		if err != nil || rel <= 0 {
			httpError(w, http.StatusBadRequest, "bad rel")
			return
		}
		stream, err = codec.Compress(f, compressor.AbsBound(f, rel))
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("X-Carol-Achieved-Ratio",
			strconv.FormatFloat(compressor.Ratio(f, stream), 'g', 6, 64))
	default:
		httpError(w, http.StatusBadRequest, "need rel= or ratio=")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(stream); err != nil {
		log.Printf("compress write: %v", err)
	}
}

func handleDecompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	codec, err := codecs.ByName(r.URL.Query().Get("codec"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	stream, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	f, err := codec.Decompress(stream)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Carol-Dims", fmt.Sprintf("%dx%dx%d", f.Nx, f.Ny, f.Nz))
	if err := f.WriteRaw(w); err != nil {
		log.Printf("decompress write: %v", err)
	}
}

func handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	q := r.URL.Query()
	sur, err := codecs.SurrogateByName(q.Get("codec"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rel, err := strconv.ParseFloat(q.Get("rel"), 64)
	if err != nil || rel <= 0 {
		httpError(w, http.StatusBadRequest, "bad rel")
		return
	}
	f, err := readFieldBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ratio, err := sur.EstimateRatio(f, compressor.AbsBound(f, rel))
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]float64{"estimated_ratio": ratio}); err != nil {
		log.Printf("estimate encode: %v", err)
	}
}
