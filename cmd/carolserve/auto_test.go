package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/pipeline"
)

// knownCodec reports whether name is in the registered extended set.
func knownCodec(name string) bool {
	for _, n := range codecs.ExtendedNames {
		if n == name {
			return true
		}
	}
	return false
}

// TestAutoCompressSync: mode=auto picks a registered codec, reports it in
// X-Carol-Codec-Chosen, the stream round-trips through /v1/decompress with
// that codec within bound, and /v1/selector shows the decision.
func TestAutoCompressSync(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	f, body := testBody(t)

	resp, err := http.Post(srv.URL+"/v1/compress?mode=auto&rel=1e-3&dims=24x24x8",
		"application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("auto compress: status %d, %v", resp.StatusCode, err)
	}
	chosen := resp.Header.Get("X-Carol-Codec-Chosen")
	if !knownCodec(chosen) {
		t.Fatalf("X-Carol-Codec-Chosen = %q, not a registered codec", chosen)
	}
	if resp.Header.Get("X-Carol-Achieved-Ratio") == "" {
		t.Error("missing X-Carol-Achieved-Ratio")
	}
	if resp.Header.Get("X-Carol-Predicted-Ratio") == "" {
		t.Error("missing X-Carol-Predicted-Ratio")
	}

	resp, err = http.Post(srv.URL+"/v1/decompress?codec="+chosen,
		"application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: status %d, %v", resp.StatusCode, err)
	}
	g, err := field.ReadRaw("rt", f.Nx, f.Ny, f.Nz, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, compressor.AbsBound(f, 1e-3)); err != nil {
		t.Fatalf("auto round trip out of bound: %v", err)
	}

	sresp, err := http.Get(srv.URL + "/v1/selector")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Decisions int64 `json:"decisions"`
		Arms      []struct {
			Codec    string `json:"codec"`
			Outcomes int64  `json:"outcomes"`
		} `json:"arms"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Decisions < 1 {
		t.Fatalf("selector decisions = %d after auto request", stats.Decisions)
	}
	var sawOutcome bool
	for _, a := range stats.Arms {
		if a.Codec == chosen && a.Outcomes >= 1 {
			sawOutcome = true
		}
	}
	if !sawOutcome {
		t.Errorf("no recorded outcome for chosen codec %s in %+v", chosen, stats.Arms)
	}
}

// TestAutoCompressStream: mode=auto composes with stream=1 — the body is a
// CPL1 container decodable with the chosen codec, and the feedback loop
// still records the outcome.
func TestAutoCompressStream(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	f, body := testBody(t)

	resp, err := http.Post(srv.URL+"/v1/compress?mode=auto&rel=1e-3&stream=1&dims=24x24x8",
		"application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("auto stream compress: status %d, %v", resp.StatusCode, err)
	}
	chosen := resp.Header.Get("X-Carol-Codec-Chosen")
	if !knownCodec(chosen) {
		t.Fatalf("X-Carol-Codec-Chosen = %q, not a registered codec", chosen)
	}
	if got := resp.Trailer.Get("X-Carol-Achieved-Ratio"); got == "" {
		t.Error("missing X-Carol-Achieved-Ratio trailer")
	}
	if [4]byte(stream[:4]) != pipeline.Magic {
		t.Fatalf("stream=1 body does not start with CPL1: % x", stream[:4])
	}
	codec, err := codecs.ByName(chosen)
	if err != nil {
		t.Fatal(err)
	}
	g, err := pipeline.New(codec, pipeline.Options{}).DecompressStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, compressor.AbsBound(f, 1e-3)); err != nil {
		t.Fatalf("auto stream round trip out of bound: %v", err)
	}
}

// TestAutoCompressTarget: target= asks for the cheapest codec predicted to
// reach the ratio; the request must succeed and name a registered codec.
func TestAutoCompressTarget(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	_, body := testBody(t)

	resp, err := http.Post(srv.URL+"/v1/compress?mode=auto&rel=1e-2&target=4&dims=24x24x8",
		"application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto target compress: status %d", resp.StatusCode)
	}
	if chosen := resp.Header.Get("X-Carol-Codec-Chosen"); !knownCodec(chosen) {
		t.Fatalf("X-Carol-Codec-Chosen = %q", chosen)
	}
}

// TestAutoCompressBadRequests: the mode=auto parameter surface rejects
// malformed combinations with 400s, not panics or silent fallbacks.
func TestAutoCompressBadRequests(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	cases := []struct {
		name  string
		query string
	}{
		{"bogus mode", "mode=banana&rel=1e-3&dims=8x8x1"},
		{"auto with ratio", "mode=auto&ratio=10&dims=8x8x1"},
		{"auto with codec", "mode=auto&codec=sz3&rel=1e-3&dims=8x8x1"},
		{"auto without bound", "mode=auto&dims=8x8x1"},
		{"bad target", "mode=auto&rel=1e-3&target=-2&dims=8x8x1"},
		{"target without auto", "codec=sz3&rel=1e-3&target=4&dims=8x8x1"},
	}
	for _, tc := range cases {
		body := bytes.NewReader(make([]byte, 8*8*4))
		resp, err := http.Post(srv.URL+"/v1/compress?"+tc.query, "application/octet-stream", body)
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, strings.TrimSpace(string(msg)))
		}
	}
}

// TestSelectorEndpointMethod: /v1/selector is GET-only.
func TestSelectorEndpointMethod(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/selector", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/selector = %d, want 405", resp.StatusCode)
	}
}
