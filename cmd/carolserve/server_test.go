package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"carol/internal/obs"
)

// TestMetricsEndpoint drives real traffic through the server and checks
// the /metrics exposition carries the request counters, per-endpoint
// latency histograms, fraz iteration counts and estimator-error gauges
// the acceptance criteria name.
func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	_, body := testBody(t)

	// One fixed-ratio compress (exercises fraz) ...
	resp, err := http.Post(srv.URL+"/v1/compress?codec=szx&ratio=3&dims=24x24x8",
		"application/octet-stream", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ratio compress status %d", resp.StatusCode)
	}
	// ... and one rel= compress (exercises the online estimator-error pair).
	resp, err = http.Post(srv.URL+"/v1/compress?codec=szx&rel=1e-3&dims=24x24x8",
		"application/octet-stream", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rel compress status %d", resp.StatusCode)
	}
	if est := resp.Header.Get("X-Carol-Estimated-Ratio"); est == "" {
		t.Fatal("missing X-Carol-Estimated-Ratio header on rel= compress")
	}
	if trace := resp.Header.Get("X-Carol-Trace"); !strings.Contains(trace, "codec=") {
		t.Fatalf("X-Carol-Trace = %q, want codec= span", trace)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`http_requests_total{endpoint="/v1/compress",code="200"}`,
		`http_request_seconds_bucket{endpoint="/v1/compress",le=`,
		"fraz_search_runs_bucket",
		"fraz_search_compressor_runs_total",
		`secre_estimate_rel_error{codec="szx"}`,
		`codec_compress_seconds_bucket{codec="szx",le=`,
		"http_inflight_requests",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]any     `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Counters == nil || doc.Histograms == nil {
		t.Fatal("missing sections in /debug/vars")
	}
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, b)
	}
}

// TestSemaphoreThrottles drives the limit middleware with a handler we
// block deterministically: with maxInflight=2 and 2 requests parked in
// the handler, the third /v1/ request must get 503 + Retry-After while a
// non-/v1/ path passes untouched.
func TestSemaphoreThrottles(t *testing.T) {
	s := newServerWith(config{maxInflight: 2, shutdownTimeout: time.Second})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	blocking := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(s.limit(blocking))
	defer srv.Close()

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/v1/compress")
			if err != nil {
				results <- -1
				return
			}
			_ = resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("blocked requests never entered the handler")
		}
	}

	before := s.throttled.Value()
	resp, err := http.Get(srv.URL + "/v1/compress")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if got := s.throttled.Value(); got != before+1 {
		t.Fatalf("throttled counter %d, want %d", got, before+1)
	}

	// Non-/v1/ paths bypass the limit even at saturation: a /healthz request
	// must reach the handler (observed via entered) while the semaphore is
	// still full. It parks there like the others until release.
	bypassDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
		}
		bypassDone <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("non-/v1/ path was throttled: never reached the handler")
	}

	// Unblock everyone and check the parked /v1/ requests completed with 200.
	close(release)
	for i := 0; i < 2; i++ {
		select {
		case code := <-results:
			if code != http.StatusOK {
				t.Fatalf("parked request finished with %d", code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("parked request never finished")
		}
	}
	if err := <-bypassDone; err != nil {
		t.Fatalf("bypass request: %v", err)
	}
}

// TestPanicRecovery sends a panicking handler through the middleware
// chain and expects a 500, a counted panic, and a live server.
func TestPanicRecovery(t *testing.T) {
	s := newServerWith(defaultConfig())
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(s.measure(s.recoverPanics(s.limit(boom))))
	defer srv.Close()

	before := s.panics.Value()
	resp, err := http.Get(srv.URL + "/v1/compress")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if got := s.panics.Value(); got != before+1 {
		t.Fatalf("panic counter %d, want %d", got, before+1)
	}
	// The semaphore slot must have been released during unwind.
	for i := 0; i < defaultConfig().maxInflight+1; i++ {
		resp, err := http.Get(srv.URL + "/v1/compress")
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			t.Fatal("semaphore leaked on panic unwind")
		}
	}
}

// TestConcurrentLoadAndGracefulShutdown is the acceptance-criteria load
// test: ≥32 concurrent requests through a bounded server under -race,
// then a clean graceful shutdown.
func TestConcurrentLoadAndGracefulShutdown(t *testing.T) {
	cfg := defaultConfig()
	cfg.maxInflight = 8 // small enough that the semaphore is really exercised
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newServerWith(cfg)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	_, body := testBody(t)
	payload := body.Bytes()

	const n = 32
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/compress?codec=szx&rel=1e-3&dims=24x24x8", base)
			if i%4 == 0 {
				url = fmt.Sprintf("%s/v1/compress?codec=szx&ratio=3&dims=24x24x8", base)
			}
			resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(payload))
			if err != nil {
				codes <- -1
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body) // drain for keep-alive
			_ = resp.Body.Close()
			codes <- resp.StatusCode
		}(i)
	}
	wg.Wait()
	close(codes)
	ok, throttled := 0, 0
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			throttled++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 {
		t.Fatal("no request succeeded")
	}
	t.Logf("load: %d ok, %d throttled", ok, throttled)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestShutdownDrainsInflight parks a request inside the handler chain,
// starts a graceful shutdown, then releases the request: the client must
// still get its 200 and Shutdown must return nil.
func TestShutdownDrainsInflight(t *testing.T) {
	s := newServerWith(defaultConfig())
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.measure(s.recoverPanics(s.limit(slow)))}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	clientErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/v1/compress")
		if err != nil {
			clientErr <- err
			return
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			clientErr <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		clientErr <- nil
	}()
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	// Give Shutdown a moment to stop accepting, then let the request finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	if err := <-clientErr; err != nil {
		t.Fatalf("in-flight request: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
}

// TestOversizedContentLength413 checks the Content-Length fast path on
// /v1/decompress. The stdlib client refuses to declare a length it cannot
// send, so the request goes over a raw connection.
func TestOversizedContentLength413(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/decompress?codec=szx HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n", maxBody+1)
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestMetricsRegistered sanity-checks that the obs default registry is the
// one the server reports from (shared with the instrumented internals).
func TestMetricsRegistered(t *testing.T) {
	s := newServerWith(defaultConfig())
	if s.reg != obs.Default {
		t.Fatal("server must expose obs.Default so internal package metrics appear in /metrics")
	}
}
