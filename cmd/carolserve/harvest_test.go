package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"carol/internal/knn"
	"carol/internal/model"
	"carol/internal/registry"
	"carol/internal/trainset"
	"carol/internal/xrand"
)

// TestHarvestJournalsOutcomes drives every compress path variant through
// a harvesting server and checks each outcome lands in the right
// per-codec journal with the achieved ratio the response reported.
func TestHarvestJournalsOutcomes(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.harvestDir = dir
	s := newServerWith(cfg)
	srv := httptest.NewServer(s)
	defer srv.Close()
	_, body := testBody(t)

	post := func(url string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+url, "application/octet-stream", bytes.NewReader(body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = resp.Body.Close() })
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
		return resp
	}
	relResp := post("/v1/compress?codec=szx&rel=1e-3&dims=24x24x8")
	post("/v1/compress?codec=szx&rel=1e-3&stream=1&dims=24x24x8")
	post("/v1/compress?codec=szx&ratio=3&dims=24x24x8")
	post("/v1/compress?codec=sz3&rel=1e-2&dims=24x24x8")

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := trainset.ListJournals(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "sz3" || names[1] != "szx" {
		t.Fatalf("journals %v", names)
	}
	recs, err := trainset.ReadJournal(trainset.JournalPath(dir, "szx"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("szx journal has %d records, want 3", len(recs))
	}
	achieved, err := strconv.ParseFloat(relResp.Header.Get("X-Carol-Achieved-Ratio"), 64)
	if err != nil {
		t.Fatal(err)
	}
	first := recs[0]
	// The header rounds to 6 significant digits; the journal keeps the
	// full value.
	if math.Abs(first.Ratio-achieved) > 1e-5*achieved {
		t.Fatalf("journal ratio %g, response header %g", first.Ratio, achieved)
	}
	if !(first.RelEB > 0 && first.RelEB <= 1) {
		t.Fatalf("relEB %g out of range", first.RelEB)
	}
	if !(first.Features.Range > 0) {
		t.Fatalf("features not extracted: %+v", first.Features)
	}
	// The rel= and stream=1 runs compress the same field at the same
	// bound, so their journaled relEB must agree exactly.
	if math.Float64bits(recs[0].RelEB) != math.Float64bits(recs[1].RelEB) {
		t.Fatalf("sync relEB %g != streaming relEB %g", recs[0].RelEB, recs[1].RelEB)
	}

	sz3, err := trainset.ReadJournal(trainset.JournalPath(dir, "sz3"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sz3) != 1 {
		t.Fatalf("sz3 journal has %d records, want 1", len(sz3))
	}
}

// TestHarvestDisabledWritesNothing: without -harvest-dir the compress
// path must not touch the filesystem.
func TestHarvestDisabledWritesNothing(t *testing.T) {
	s := newServerWith(defaultConfig())
	srv := httptest.NewServer(s)
	defer srv.Close()
	_, body := testBody(t)
	resp, err := http.Post(srv.URL+"/v1/compress?codec=szx&rel=1e-3&dims=24x24x8",
		"application/octet-stream", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// publishKNNModel publishes a knn-backend artifact as the next "szx"
// version — the shape the retraining pipeline produces when knn wins.
func publishKNNModel(t testing.TB, dir string) registry.Version {
	t.Helper()
	rng := xrand.New(12)
	const rows = 80
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range X {
		row := make([]float64, trainset.InputDim)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = -2 - row[1]
	}
	m, err := knn.Train(X, y, knn.Config{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Artifact{Codec: "szx", Backend: model.BackendKNN, Schema: model.CanonicalSchema(), KNN: m}
	buf, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Publish("szx", buf)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestModelsBackendHotSwap loads an rf model, hot-swaps to a knn-backend
// version (the retraining pipeline's publish shape), and checks both
// /v1/models metadata and /v1/predict keep working across the swap.
func TestModelsBackendHotSwap(t *testing.T) {
	dir := t.TempDir()
	publishTestModel(t, dir, 1)
	s := modelServer(t, dir)
	srv := httptest.NewServer(s)
	defer srv.Close()

	getInfos := func() []modelInfo {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/models")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var infos []modelInfo
		if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
			t.Fatal(err)
		}
		return infos
	}
	infos := getInfos()
	if len(infos) != 1 || infos[0].Backend != "rf" || infos[0].Version != 1 {
		t.Fatalf("infos %+v", infos)
	}
	if infos[0].Trees == 0 {
		t.Fatalf("rf stats missing: %+v", infos[0])
	}

	v := publishKNNModel(t, dir)
	if err := s.models.Reload(); err != nil {
		t.Fatal(err)
	}
	infos = getInfos()
	if len(infos) != 1 || infos[0].Backend != "knn" || infos[0].Version != v.Number {
		t.Fatalf("after swap: %+v", infos)
	}
	if infos[0].Samples != 80 || infos[0].K != 7 {
		t.Fatalf("knn stats missing: %+v", infos[0])
	}
	if infos[0].Trees != 0 {
		t.Fatalf("knn backend reports forest stats: %+v", infos[0])
	}

	_, body := testBody(t)
	resp, err := http.Post(srv.URL+"/v1/predict?model=szx&ratio=10,50&dims=24x24x8",
		"application/octet-stream", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pred struct {
		Version     int       `json:"version"`
		ErrorBounds []float64 `json:"error_bounds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	if pred.Version != v.Number || len(pred.ErrorBounds) != 2 {
		t.Fatalf("predict response %+v", pred)
	}
	for _, eb := range pred.ErrorBounds {
		if !(eb > 0 && eb <= 1) {
			t.Fatalf("error bound %g out of range", eb)
		}
	}
}
