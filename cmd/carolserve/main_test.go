package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"carol/internal/dataset"
	"carol/internal/field"
)

func testBody(t *testing.T) (*field.Field, *bytes.Buffer) {
	t.Helper()
	f, err := dataset.Generate("miranda", "density", dataset.Options{Nx: 24, Ny: 24, Nz: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteRaw(&buf); err != nil {
		t.Fatal(err)
	}
	return f, &buf
}

func TestCodecsEndpoint(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/codecs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 {
		t.Fatalf("codecs = %v", names)
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	f, body := testBody(t)

	resp, err := http.Post(srv.URL+"/v1/compress?codec=sz3&rel=1e-3&dims=24x24x8",
		"application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: status %d, %v", resp.StatusCode, err)
	}
	achieved, err := strconv.ParseFloat(resp.Header.Get("X-Carol-Achieved-Ratio"), 64)
	if err != nil || achieved <= 1 {
		t.Fatalf("achieved header %q", resp.Header.Get("X-Carol-Achieved-Ratio"))
	}

	resp, err = http.Post(srv.URL+"/v1/decompress?codec=sz3",
		"application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress status %d", resp.StatusCode)
	}
	if dims := resp.Header.Get("X-Carol-Dims"); dims != "24x24x8" {
		t.Fatalf("dims header %q", dims)
	}
	g, err := field.ReadRaw("resp", 24, 24, 8, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e-3 * f.ValueRange()
	if err := f.Equalish(g, eb*1.01); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingCompressRoundTrip(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	f, body := testBody(t)

	resp, err := http.Post(srv.URL+"/v1/compress?codec=sz3&rel=1e-3&stream=1&workers=2&dims=24x24x8",
		"application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stream compress: status %d, %v", resp.StatusCode, err)
	}
	if len(stream) < 4 || string(stream[:4]) != "CPL1" {
		t.Fatalf("stream=1 did not answer a CPL1 container (got %d bytes)", len(stream))
	}
	// The achieved ratio is only known after the body: it arrives as a trailer.
	achieved, err := strconv.ParseFloat(resp.Trailer.Get("X-Carol-Achieved-Ratio"), 64)
	if err != nil || achieved <= 1 {
		t.Fatalf("achieved trailer %q", resp.Trailer.Get("X-Carol-Achieved-Ratio"))
	}

	// /v1/decompress must auto-detect the container by its magic.
	resp, err = http.Post(srv.URL+"/v1/decompress?codec=sz3",
		"application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress status %d", resp.StatusCode)
	}
	g, err := field.ReadRaw("resp", 24, 24, 8, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e-3 * f.ValueRange()
	if err := f.Equalish(g, eb*1.01); err != nil {
		t.Fatal(err)
	}

	_, body = testBody(t)
	resp, err = http.Post(srv.URL+"/v1/compress?codec=sz3&rel=1e-3&stream=1&workers=0&dims=24x24x8",
		"application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("workers=0: status %d, want 400", resp.StatusCode)
	}
}

func TestCompressAbsBoundEndpoint(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	f, body := testBody(t)

	// Pin the same absolute bound a rel=1e-3 request would resolve to; the
	// fleet gate relies on abs= surviving verbatim across slab fan-outs.
	eb := 1e-3 * f.ValueRange()
	resp, err := http.Post(srv.URL+"/v1/compress?codec=sz3&abs="+
		strconv.FormatFloat(eb, 'g', 17, 64)+"&dims=24x24x8",
		"application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("abs compress: status %d, %v", resp.StatusCode, err)
	}

	resp, err = http.Post(srv.URL+"/v1/decompress?codec=sz3",
		"application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress status %d", resp.StatusCode)
	}
	g, err := field.ReadRaw("resp", 24, 24, 8, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Equalish(g, eb*1.01); err != nil {
		t.Fatal(err)
	}

	_, body = testBody(t)
	resp, err = http.Post(srv.URL+"/v1/compress?codec=sz3&abs=-1&dims=24x24x8",
		"application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("abs=-1: status %d, want 400", resp.StatusCode)
	}
}

func TestCompressFixedRatioEndpoint(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	_, body := testBody(t)
	resp, err := http.Post(srv.URL+"/v1/compress?codec=szx&ratio=3&dims=24x24x8",
		"application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	runs, err := strconv.Atoi(resp.Header.Get("X-Carol-Compressor-Runs"))
	if err != nil || runs < 1 {
		t.Fatalf("runs header %q", resp.Header.Get("X-Carol-Compressor-Runs"))
	}
	achieved, err := strconv.ParseFloat(resp.Header.Get("X-Carol-Achieved-Ratio"), 64)
	if err != nil || achieved < 1.5 || achieved > 6 {
		t.Fatalf("achieved %v for target 3", achieved)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	_, body := testBody(t)
	resp, err := http.Post(srv.URL+"/v1/estimate?codec=sperr&rel=1e-2&dims=24x24x8",
		"application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["estimated_ratio"] <= 1 {
		t.Fatalf("estimate %v", out)
	}
}

func TestErrorResponses(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	_, body := testBody(t)
	cases := []struct {
		url  string
		want int
	}{
		{"/v1/compress?codec=nope&rel=1e-3&dims=24x24x8", http.StatusBadRequest},
		{"/v1/compress?codec=szx&dims=24x24x8", http.StatusBadRequest},        // no rel/ratio
		{"/v1/compress?codec=szx&rel=-1&dims=24x24x8", http.StatusBadRequest}, // bad rel
		{"/v1/compress?codec=szx&rel=1e-3&dims=0x2", http.StatusBadRequest},   // bad dims
		{"/v1/compress?codec=szx&rel=1e-3&dims=24xx8", http.StatusBadRequest}, // malformed dims
		{"/v1/compress?codec=szx&rel=1e-3&dims=1x2x3x4", http.StatusBadRequest},
		// Oversized fields are a size problem, not a syntax problem: 413.
		{"/v1/estimate?codec=szx&rel=1e-3&dims=9999999x9999999x9999999", http.StatusRequestEntityTooLarge},
		{"/v1/compress?codec=szx&rel=1e-3&dims=999999x999999x1", http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+c.url, "application/octet-stream", bytes.NewReader(body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.url, resp.StatusCode, c.want)
		}
	}
	// GET on a POST endpoint.
	resp, err := http.Get(srv.URL + "/v1/compress")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET compress: status %d", resp.StatusCode)
	}
	// Garbage stream to decompress.
	resp, err = http.Post(srv.URL+"/v1/decompress?codec=szx",
		"application/octet-stream", bytes.NewReader([]byte("garbage")))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("garbage decompress: status %d", resp.StatusCode)
	}
}
