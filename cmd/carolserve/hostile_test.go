package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"carol/internal/compressor"
)

// hostileHeader builds a syntactically valid szx stream header claiming the
// given dimensions, with no payload behind it.
func hostileHeader(nx, ny, nz int) []byte {
	return compressor.AppendHeader(nil, compressor.Header{
		Magic: compressor.MagicSZx, Nx: nx, Ny: ny, Nz: nz, EB: 1e-3,
	})
}

func TestDecompressHostileStreamStatusCodes(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()

	post := func(t *testing.T, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/decompress?codec=szx",
			"application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = resp.Body.Close() })
		return resp
	}

	// Dims the server's decode limits refuse: over the configured element
	// ceiling but a plausible uint32 product. This is a policy rejection,
	// not stream damage, so the client sees 413.
	resp := post(t, hostileHeader(1<<15, 1<<15, 1<<2))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("over-limit dims: status %d, body %q", resp.StatusCode, b)
	}

	// Garbage bytes: corrupt stream, 422.
	resp = post(t, []byte("not a compressed stream at all"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("garbage: status %d", resp.StatusCode)
	}

	// Valid header, truncated payload: also 422.
	resp = post(t, hostileHeader(8, 8, 8))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("truncated: status %d", resp.StatusCode)
	}

	// The instrumented codec must have recorded the rejections by class.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`codec_decode_reject_total{codec="szx",reason="limit"}`,
		`codec_decode_reject_total{codec="szx",reason="truncated"}`,
		`codec_decode_reject_total{codec="szx",reason="corrupt"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}
