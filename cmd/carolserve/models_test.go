package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"carol/internal/features"
	"carol/internal/field"
	"carol/internal/model"
	"carol/internal/registry"
	"carol/internal/rf"
	"carol/internal/safedec"
	"carol/internal/trainset"
	"carol/internal/xrand"
)

// publishTestModel trains a tiny servable artifact and publishes it as
// the next version of "szx" in dir's registry.
func publishTestModel(t testing.TB, dir string, seed uint64) registry.Version {
	t.Helper()
	rng := xrand.New(seed)
	const rows = 120
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range X {
		row := make([]float64, trainset.InputDim)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = -3 + row[0] - 0.3*row[5]
	}
	cfg := rf.DefaultConfig()
	cfg.NEstimators = 4
	cfg.MaxDepth = 5
	cfg.Seed = seed
	forest, err := rf.Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Artifact{Codec: "szx", Schema: model.CanonicalSchema(), Forest: forest}
	buf, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Publish("szx", buf)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// modelServer builds a server bound to dir's registry with models loaded.
func modelServer(t testing.TB, dir string) *server {
	t.Helper()
	cfg := defaultConfig()
	cfg.modelDir = dir
	s := newServerWith(cfg)
	if err := s.models.Reload(); err != nil {
		t.Fatalf("reload: %v", err)
	}
	return s
}

// probeField returns a deterministic 8x8x4 field and its raw body bytes.
func probeField(t testing.TB) (*field.Field, []byte) {
	t.Helper()
	rng := xrand.New(99)
	var buf bytes.Buffer
	vals := make([]float32, 8*8*4)
	for i := range vals {
		vals[i] = float32(rng.Float64()*10 - 5)
	}
	if err := binary.Write(&buf, binary.LittleEndian, vals); err != nil {
		t.Fatal(err)
	}
	f, err := field.ReadRaw("probe", 8, 8, 4, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return f, buf.Bytes()
}

type predictResponse struct {
	Model       string    `json:"model"`
	Version     int       `json:"version"`
	Codec       string    `json:"codec"`
	Ratios      []float64 `json:"ratios"`
	ErrorBounds []float64 `json:"error_bounds"`
}

func TestModelsAndPredict(t *testing.T) {
	dir := t.TempDir()
	v := publishTestModel(t, dir, 1)
	s := modelServer(t, dir)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Model != "szx" || infos[0].Version != 1 ||
		infos[0].SHA256 != v.SHA256 || infos[0].Trees != 4 || infos[0].Nodes < 4 {
		t.Fatalf("models = %+v", infos)
	}

	f, body := probeField(t)
	resp, err = http.Post(ts.URL+"/v1/predict?ratio=10,100&dims=8x8x4",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Model != "szx" || pr.Version != 1 || pr.Codec != "szx" || len(pr.ErrorBounds) != 2 {
		t.Fatalf("predict = %+v", pr)
	}

	// Served predictions are bit-identical to predicting from the loaded
	// artifact directly — HTTP and JSON add nothing.
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	art, err := reg.Load(v, safedec.Default())
	if err != nil {
		t.Fatal(err)
	}
	want, err := art.PredictErrorBounds(f, []float64{10, 100}, features.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(pr.ErrorBounds[i]) != math.Float64bits(want[i]) {
			t.Fatalf("bound %d: served %x, direct %x", i,
				math.Float64bits(pr.ErrorBounds[i]), math.Float64bits(want[i]))
		}
	}
}

func TestPredictErrors(t *testing.T) {
	dir := t.TempDir()
	publishTestModel(t, dir, 1)
	s := modelServer(t, dir)
	ts := httptest.NewServer(s)
	defer ts.Close()
	_, body := probeField(t)

	post := func(path string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/predict?model=ghost&ratio=10&dims=8x8x4"); code != http.StatusNotFound {
		t.Fatalf("unknown model = %d", code)
	}
	if code := post("/v1/predict?ratio=-3&dims=8x8x4"); code != http.StatusBadRequest {
		t.Fatalf("bad ratio = %d", code)
	}
	if code := post("/v1/predict?ratio=10&dims=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad dims = %d", code)
	}
	if code := post("/v1/predict?dims=8x8x4"); code != http.StatusBadRequest {
		t.Fatalf("missing ratio = %d", code)
	}

	// Without -model-dir the endpoints answer 404, not 500.
	bare := httptest.NewServer(newServer())
	defer bare.Close()
	resp, err := http.Post(bare.URL+"/v1/predict?ratio=10&dims=8x8x4",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-model-dir predict = %d", resp.StatusCode)
	}
}

func TestReadyz(t *testing.T) {
	get := func(ts *httptest.Server) int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	// No model dir: nothing to wait for, ready immediately.
	bare := httptest.NewServer(newServer())
	defer bare.Close()
	if code := get(bare); code != http.StatusOK {
		t.Fatalf("bare readyz = %d", code)
	}
	// Model dir configured but empty: alive yet not ready.
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.modelDir = dir
	s := newServerWith(cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()
	if code := get(ts); code != http.StatusServiceUnavailable {
		t.Fatalf("empty-registry readyz = %d", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while not ready = %d", resp.StatusCode)
	}
	// A publish plus reload flips readiness.
	publishTestModel(t, dir, 1)
	if err := s.models.Reload(); err != nil {
		t.Fatal(err)
	}
	if code := get(ts); code != http.StatusOK {
		t.Fatalf("readyz after load = %d", code)
	}
}

// TestHotSwapUnderLoad hammers /v1/predict while versions are published
// and reloaded concurrently — under -race this is the proof that the
// atomic-pointer swap lets in-flight requests finish on their model while
// new requests pick up the new one.
func TestHotSwapUnderLoad(t *testing.T) {
	dir := t.TempDir()
	publishTestModel(t, dir, 1)
	s := modelServer(t, dir)
	_, body := probeField(t)

	const clients = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodPost,
					"/v1/predict?ratio=10,50&dims=8x8x4", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("predict status %d: %s", rec.Code, rec.Body.String())
					return
				}
				var pr predictResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
					errs <- err
					return
				}
				if pr.Version < 1 || pr.Version > 5 {
					errs <- fmt.Errorf("impossible version %d", pr.Version)
					return
				}
			}
		}()
	}
	for seed := uint64(2); seed <= 5; seed++ {
		publishTestModel(t, dir, seed)
		if err := s.models.Reload(); err != nil {
			t.Fatalf("reload: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.models.set()["szx"].version.Number; got != 5 {
		t.Fatalf("final version = %d, want 5", got)
	}
}

// TestReloadKeepsOldModelOnBadPublish corrupts the newest on-disk version
// and asserts a reload keeps serving the previous healthy generation.
func TestReloadKeepsOldModelOnBadPublish(t *testing.T) {
	dir := t.TempDir()
	publishTestModel(t, dir, 1)
	s := modelServer(t, dir)
	v2 := publishTestModel(t, dir, 2)
	data, err := os.ReadFile(v2.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(v2.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.models.Reload(); err == nil {
		t.Fatal("reload of corrupted version reported success")
	}
	lm := s.models.set()["szx"]
	if lm == nil || lm.version.Number != 1 {
		t.Fatalf("serving %+v, want retained v1", lm)
	}
	if !s.models.Ready() {
		t.Fatal("store lost readiness on failed reload")
	}
}

// TestSIGHUPReload delivers a real SIGHUP to the test process and waits
// for the store to swap to the newly published version.
func TestSIGHUPReload(t *testing.T) {
	dir := t.TempDir()
	publishTestModel(t, dir, 1)
	s := modelServer(t, dir)
	stop := s.models.watchHUP()
	defer stop()

	publishTestModel(t, dir, 2)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if lm := s.models.set()["szx"]; lm != nil && lm.version.Number == 2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("model not reloaded after SIGHUP; serving %+v", s.models.set()["szx"])
}

func TestRegistryFingerprint(t *testing.T) {
	dir := t.TempDir()
	publishTestModel(t, dir, 1)
	s := modelServer(t, dir)

	fp1, err := s.models.fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := s.models.fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint unstable without a publish: %q vs %q", fp1, fp2)
	}
	publishTestModel(t, dir, 2)
	fp3, err := s.models.fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatalf("fingerprint unchanged after publish: %q", fp3)
	}
}

func TestRegistryWatchConverges(t *testing.T) {
	dir := t.TempDir()
	publishTestModel(t, dir, 1)
	s := modelServer(t, dir)
	if lm := s.models.set()["szx"]; lm == nil || lm.version.Number != 1 {
		t.Fatalf("warm load did not serve v1")
	}

	stop := s.models.watchRegistry(20 * time.Millisecond)
	defer stop()

	// Publish without any signal: the poll loop must notice and hot-swap.
	publishTestModel(t, dir, 2)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if lm := s.models.set()["szx"]; lm != nil && lm.version.Number == 2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("registry watch never converged to v2; serving %+v", s.models.set()["szx"])
}
