package main

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"carol/internal/features"
	"carol/internal/field"
	"carol/internal/obs"
	"carol/internal/safedec"
	"carol/internal/selector"
	"carol/internal/trainset"
)

// config carries the server hardening knobs, set from flags in main and
// from test code directly.
type config struct {
	// maxInflight bounds concurrently served /v1/ requests; excess requests
	// are refused with 503 + Retry-After instead of queueing without bound.
	maxInflight int
	// trackEstimatorError runs the SECRE surrogate alongside /v1/compress
	// rel= requests and records estimate-vs-actual ratio error gauges.
	trackEstimatorError bool

	// decodeLimits bounds what /v1/decompress will allocate from
	// stream-claimed sizes; limit rejections map to 413, corruption to 422.
	// Model-artifact loading is bounded by the same limits.
	decodeLimits safedec.Limits

	// modelDir, when set, points at a caroltrain registry: the newest
	// version of every model is warm-loaded at boot, served on /v1/predict,
	// and hot-swapped on SIGHUP. Empty disables model serving.
	modelDir string

	// harvestDir, when set, journals every served rel=/abs= compression
	// outcome (features, achieved ratio, relative error bound) into
	// per-codec journals that the continuous-retraining pipeline
	// (carolretrain) trains on. Empty disables harvesting.
	harvestDir string
	// harvestCap bounds each journal's retained records (0 = default).
	harvestCap int

	// registryWatch, when positive, polls the registry manifests at this
	// interval and hot-swaps on change — fleet convergence without SIGHUP
	// fan-out. Zero disables the poll (SIGHUP still works).
	registryWatch time.Duration

	// selectorSeed seeds the mode=auto bandit's exploration RNG — a fixed
	// seed makes the decision sequence reproducible (tests and the smoke
	// fleet pin outcomes on it).
	selectorSeed uint64
	// selectorEpsilon is the mode=auto exploration probability; negative
	// disables exploration entirely.
	selectorEpsilon float64

	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	shutdownTimeout   time.Duration
}

// defaultConfig returns production defaults: generous read/write windows
// (bodies run to 512 MiB), a bounded in-flight ceiling sized for the
// compressors' CPU-heavy handlers, and online estimator-error tracking on.
func defaultConfig() config {
	return config{
		maxInflight:         64,
		trackEstimatorError: true,
		// Stricter than the safedec library defaults: the body cap is
		// 512 MiB, so a legitimate stream can never decode to more than
		// maxBody/4 float32 samples even at ratio 1.
		decodeLimits: safedec.Limits{
			MaxElements: maxBody / 4,
			MaxAlloc:    1 << 30,
			MaxCount:    1 << 16,
		},
		selectorSeed:      1,
		selectorEpsilon:   0.05,
		readTimeout:       5 * time.Minute,
		readHeaderTimeout: 10 * time.Second,
		writeTimeout:      10 * time.Minute,
		idleTimeout:       2 * time.Minute,
		shutdownTimeout:   15 * time.Second,
	}
}

// server owns the handler chain and its metric handles. All metrics live
// in obs.Default — the same registry the instrumented internal packages
// (features, fraz, rf, secre, compressor) write to — so /metrics is one
// coherent view of the whole pipeline.
type server struct {
	cfg     config
	reg     *obs.Registry
	sem     chan struct{}
	handler http.Handler
	// models is the hot-swappable model store, nil without -model-dir.
	models *modelStore
	// selector is the mode=auto adaptive codec chooser (DESIGN.md §16).
	selector *selector.Selector
	// harvester journals served-traffic outcomes, nil without -harvest-dir.
	harvester *trainset.Harvester

	inflight      *obs.Gauge
	throttled     *obs.Counter
	panics        *obs.Counter
	harvested     *obs.Counter
	harvestErrors *obs.Counter
}

// newServer builds the HTTP handler with default settings (separated from
// main for testing).
func newServer() http.Handler { return newServerWith(defaultConfig()) }

// newServerWith builds the full handler chain:
//
//	per-endpoint metrics → panic recovery → in-flight limit → mux
//
// Metrics sit outermost so a recovered panic is recorded under its real
// 500 status; recovery sits above the limit so the semaphore's deferred
// release still runs on unwind. The limit applies only to /v1/ endpoints,
// so /metrics, /debug/vars and /healthz stay reachable while the server
// is saturated — exactly when observability matters most.
func newServerWith(cfg config) *server {
	if cfg.maxInflight < 1 {
		cfg.maxInflight = 1
	}
	s := &server{
		cfg:       cfg,
		reg:       obs.Default,
		sem:       make(chan struct{}, cfg.maxInflight),
		inflight:  obs.Default.Gauge("http_inflight_requests"),
		throttled: obs.Default.Counter("http_throttled_total"),
		panics:    obs.Default.Counter("http_panics_total"),
	}
	if cfg.modelDir != "" {
		s.models = newModelStore(cfg.modelDir, cfg.decodeLimits)
	}
	if cfg.harvestDir != "" {
		capacity := cfg.harvestCap
		if capacity <= 0 {
			capacity = trainset.DefaultJournalCap
		}
		s.harvester = trainset.NewHarvester(cfg.harvestDir, capacity)
		s.harvested = obs.Default.Counter("harvest_records_total")
		s.harvestErrors = obs.Default.Counter("harvest_errors_total")
	}
	sel, err := selector.New(selector.Config{Seed: cfg.selectorSeed, Epsilon: cfg.selectorEpsilon})
	if err != nil {
		// Only reachable with a broken built-in codec registry.
		panic("carolserve: selector: " + err.Error())
	}
	s.selector = sel
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/codecs", s.handleCodecs)
	mux.HandleFunc("/v1/compress", s.handleCompress)
	mux.HandleFunc("/v1/decompress", s.handleDecompress)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/selector", s.handleSelector)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	s.handler = s.measure(s.recoverPanics(s.limit(mux)))
	return s
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// harvest journals one served compression outcome for the retraining
// pipeline: the field's features, the ratio the codec actually delivered,
// and the value-range-relative error bound that produced it. Harvesting
// is best-effort telemetry — failures are counted and logged, never
// surfaced to the request.
func (s *server) harvest(codec string, f *field.Field, eb, actual float64) {
	if s.harvester == nil {
		return
	}
	rng := f.ValueRange()
	if !(rng > 0) || !(eb > 0) || !(actual > 0) {
		return // constant or degenerate fields train nothing useful
	}
	feat := features.ExtractParallel(f, features.ParallelOptions{})
	rec := trainset.Record{Features: feat, Ratio: actual, RelEB: eb / rng}
	if err := s.harvester.Record(codec, rec); err != nil {
		s.harvestErrors.Inc()
		log.Printf("carolserve: harvest %s: %v", codec, err)
		return
	}
	s.harvested.Inc()
}

// Close releases background resources (the harvest journals). Safe on a
// server without a harvester.
func (s *server) Close() error {
	if s.harvester == nil {
		return nil
	}
	return s.harvester.Close()
}

// endpointLabel maps a request path to a bounded metric label: the path
// itself for known endpoints, "other" for everything else (unbounded label
// cardinality would let a URL scanner grow the registry without limit).
func endpointLabel(path string) string {
	switch path {
	case "/v1/codecs", "/v1/compress", "/v1/decompress", "/v1/estimate",
		"/v1/models", "/v1/predict", "/v1/selector", "/metrics", "/debug/vars",
		"/healthz", "/readyz":
		return path
	}
	return "other"
}

// statusRecorder captures the response status for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if !sr.wrote {
		sr.status = http.StatusOK
		sr.wrote = true
	}
	return sr.ResponseWriter.Write(p)
}

// limit bounds in-flight /v1/ requests with a counting semaphore. A full
// semaphore answers 503 with Retry-After instead of queueing: under
// sustained overload, shedding load early keeps tail latency bounded for
// the requests actually admitted.
func (s *server) limit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			s.throttled.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server at capacity", http.StatusServiceUnavailable)
		}
	})
}

// measure records per-endpoint request counters and latency histograms,
// plus the live in-flight gauge.
func (s *server) measure(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := endpointLabel(r.URL.Path)
		hist := s.reg.Histogram(obs.Label("http_request_seconds", "endpoint", ep), obs.LatencyBuckets())
		s.inflight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			hist.ObserveSince(start)
			s.inflight.Add(-1)
			status := rec.status
			if !rec.wrote {
				status = http.StatusOK
			}
			s.reg.Counter(obs.Label("http_requests_total",
				"endpoint", ep, "code", strconv.Itoa(status))).Inc()
		}()
		next.ServeHTTP(rec, r)
	})
}

// recoverPanics converts a handler panic into a 500 (when nothing has
// been written yet) instead of tearing down the connection, and counts it.
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec, _ := w.(*statusRecorder)
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				log.Printf("carolserve: panic serving %s %s: %v", r.Method, r.URL.Path, p)
				if rec == nil || !rec.wrote {
					http.Error(w, "internal error", http.StatusInternalServerError)
				}
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleMetrics serves the deterministic text exposition of obs.Default.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		log.Printf("carolserve: metrics write: %v", err)
	}
}

// handleVars serves the same registry as a /debug/vars-style JSON document.
func (s *server) handleVars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.WriteJSON(w); err != nil {
		log.Printf("carolserve: vars write: %v", err)
	}
}

// handleSelector exposes the mode=auto bandit state: candidate set, seed,
// decision/exploration counters and every active (codec, shape-bucket) arm
// with its learned bias — the debug view for "why did auto pick that".
func (s *server) handleSelector(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.selector.Stats()); err != nil {
		log.Printf("carolserve: selector encode: %v", err)
	}
}

// handleHealthz is the liveness probe smoke tests and load balancers hit.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := w.Write([]byte("ok\n")); err != nil {
		log.Printf("carolserve: healthz write: %v", err)
	}
}
