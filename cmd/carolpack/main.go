// Command carolpack bundles multiple raw fields into a single compressed
// snapshot archive — the storage-budget workflow of the paper's use case 1.
//
// Pack (each -field is name:codec:relEB:dims:path):
//
//	carolpack -pack -out snap.car \
//	  -field density:sz3:1e-3:128x128x64:density.f32 \
//	  -field pressure:sperr:1e-3:128x128x64:pressure.f32
//
// List and extract:
//
//	carolpack -list -in snap.car
//	carolpack -extract density -in snap.car -out density.f32
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"carol"
	"carol/internal/archive"
	"carol/internal/compressor"
)

// fieldSpecs collects repeated -field flags.
type fieldSpecs []string

func (f *fieldSpecs) String() string { return strings.Join(*f, ",") }
func (f *fieldSpecs) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "carolpack:", err)
		os.Exit(1)
	}
}

func run() error {
	var fields fieldSpecs
	flag.Var(&fields, "field", "field spec name:codec:relEB:NXxNYxNZ:path (repeatable)")
	pack := flag.Bool("pack", false, "create an archive from -field specs")
	stream := flag.Bool("stream", false,
		"pack entries via the block pipeline (CPL1 containers; block-parallel pack and extract)")
	workers := flag.Int("workers", 0, "pipeline worker count with -stream (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list archive contents")
	extract := flag.String("extract", "", "extract one field by name")
	in := flag.String("in", "", "input archive")
	out := flag.String("out", "", "output file")
	flag.Parse()

	switch {
	case *pack:
		return doPack(fields, *out, *stream, *workers)
	case *list:
		return doList(*in)
	case *extract != "":
		return doExtract(*in, *extract, *out)
	default:
		return fmt.Errorf("need one of -pack, -list, -extract")
	}
}

// parseFieldSpec splits name:codec:relEB:dims:path.
func parseFieldSpec(spec string) (name, codec string, relEB float64, nx, ny, nz int, path string, err error) {
	parts := strings.SplitN(spec, ":", 5)
	if len(parts) != 5 {
		return "", "", 0, 0, 0, 0, "", fmt.Errorf("bad -field spec %q (want name:codec:relEB:dims:path)", spec)
	}
	name, codec, path = parts[0], parts[1], parts[4]
	relEB, err = strconv.ParseFloat(parts[2], 64)
	if err != nil || relEB <= 0 {
		return "", "", 0, 0, 0, 0, "", fmt.Errorf("bad relEB in %q", spec)
	}
	dims := strings.Split(strings.ToLower(parts[3]), "x")
	vals := []int{1, 1, 1}
	if len(dims) < 1 || len(dims) > 3 {
		return "", "", 0, 0, 0, 0, "", fmt.Errorf("bad dims in %q", spec)
	}
	for i, d := range dims {
		v, err := strconv.Atoi(d)
		if err != nil || v < 1 {
			return "", "", 0, 0, 0, 0, "", fmt.Errorf("bad dims in %q", spec)
		}
		vals[i] = v
	}
	return name, codec, relEB, vals[0], vals[1], vals[2], path, nil
}

func doPack(fields fieldSpecs, out string, stream bool, workers int) error {
	if len(fields) == 0 || out == "" {
		return fmt.Errorf("-pack needs -field specs and -out")
	}
	w := archive.NewWriter()
	for _, spec := range fields {
		name, codecName, relEB, nx, ny, nz, path, err := parseFieldSpec(spec)
		if err != nil {
			return err
		}
		inF, err := os.Open(path)
		if err != nil {
			return err
		}
		f, err := carol.ReadRawField(name, nx, ny, nz, inF)
		_ = inF.Close() // read-only; no buffered writes to lose
		if err != nil {
			return err
		}
		eb := compressor.AbsBound(f, relEB)
		if stream {
			err = w.AddPipeline(name, codecName, f, eb, workers)
		} else {
			err = w.Add(name, codecName, f, eb)
		}
		if err != nil {
			return err
		}
		fmt.Printf("packed %s (%s, rel eb %g)\n", name, codecName, relEB)
	}
	outF, err := os.Create(out)
	if err != nil {
		return err
	}
	if _, err := w.WriteTo(outF); err != nil {
		_ = outF.Close()
		return err
	}
	// Close, not defer: the archive only exists once the flush succeeds.
	return outF.Close()
}

func openArchive(in string) (*archive.Archive, error) {
	if in == "" {
		return nil, fmt.Errorf("need -in")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return archive.Read(f)
}

func doList(in string) error {
	a, err := openArchive(in)
	if err != nil {
		return err
	}
	for _, name := range a.Names() {
		e, _ := a.Entry(name)
		fmt.Printf("%-24s %-6s %10d bytes\n", e.Name, e.Codec, len(e.Stream))
	}
	if ratio, err := a.Ratio(); err == nil {
		fmt.Printf("total %d bytes compressed, overall ratio %.1f\n", a.TotalCompressed(), ratio)
	}
	return nil
}

func doExtract(in, name, out string) error {
	if out == "" {
		return fmt.Errorf("need -out")
	}
	a, err := openArchive(in)
	if err != nil {
		return err
	}
	f, err := a.Field(name)
	if err != nil {
		return err
	}
	outF, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := f.WriteRaw(outF); err != nil {
		_ = outF.Close()
		return err
	}
	if err := outF.Close(); err != nil {
		return err
	}
	fmt.Printf("extracted %s: %dx%dx%d (%d bytes)\n", name, f.Nx, f.Ny, f.Nz, f.SizeBytes())
	return nil
}
