package main

import "testing"

func TestParseFieldSpec(t *testing.T) {
	name, codec, rel, nx, ny, nz, path, err := parseFieldSpec("rho:sz3:1e-3:64x32x16:/tmp/rho.f32")
	if err != nil {
		t.Fatal(err)
	}
	if name != "rho" || codec != "sz3" || rel != 1e-3 || nx != 64 || ny != 32 || nz != 16 || path != "/tmp/rho.f32" { //carol:allow floateq bit-exact: parsed literal must round-trip exactly
		t.Fatalf("parsed %v %v %v %v %v %v %v", name, codec, rel, nx, ny, nz, path)
	}
	// Path containing colons (the path is the 5th field, greedy).
	_, _, _, _, _, _, path, err = parseFieldSpec("a:szx:0.01:8:C:/data/a.f32")
	if err != nil || path != "C:/data/a.f32" {
		t.Fatalf("colon path: %q, %v", path, err)
	}
	for _, bad := range []string{
		"", "a:b", "a:szx:zero:8:p", "a:szx:-1:8:p", "a:szx:0.1:0:p", "a:szx:0.1:1x2x3x4:p",
	} {
		if _, _, _, _, _, _, _, err := parseFieldSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
