// Command carolgen writes synthetic scientific dataset fields as raw
// little-endian float32 binaries — the stand-ins for SDRBench/Klacansky
// dumps used throughout this repository.
//
//	carolgen -dataset miranda -field viscosity -dims 128x128x128 -out visc.f32
//	carolgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"carol/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "carolgen:", err)
		os.Exit(1)
	}
}

func run() error {
	ds := flag.String("dataset", "", "dataset name (see -list)")
	fieldName := flag.String("field", "", "field name (see -list)")
	dims := flag.String("dims", "", "override grid dims NXxNYxNZ")
	step := flag.Int("step", 0, "time step (time-evolving datasets)")
	out := flag.String("out", "", "output file")
	list := flag.Bool("list", false, "list datasets and fields")
	flag.Parse()

	if *list {
		for _, spec := range dataset.Summary() {
			fmt.Printf("%-10s %-24s steps=%-3d default=%dx%dx%d fields=%s\n",
				spec.Name, spec.Domain, spec.TimeSteps, spec.Nx, spec.Ny, spec.Nz,
				strings.Join(spec.Fields, ","))
		}
		return nil
	}
	if *ds == "" || *fieldName == "" || *out == "" {
		return fmt.Errorf("need -dataset, -field and -out (or -list)")
	}
	opts := dataset.Options{TimeStep: *step}
	if *dims != "" {
		parts := strings.Split(strings.ToLower(*dims), "x")
		vals := []int{0, 0, 0}
		for i, p := range parts {
			if i >= 3 {
				return fmt.Errorf("bad -dims %q", *dims)
			}
			v, err := strconv.Atoi(p)
			if err != nil || v < 1 {
				return fmt.Errorf("bad -dims %q", *dims)
			}
			vals[i] = v
		}
		opts.Nx, opts.Ny, opts.Nz = vals[0], vals[1], vals[2]
	}
	f, err := dataset.Generate(*ds, *fieldName, opts)
	if err != nil {
		return err
	}
	outF, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := f.WriteRaw(outF); err != nil {
		_ = outF.Close()
		return err
	}
	if err := outF.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s %dx%dx%d (%d bytes)\n", *out, f.Name, f.Nx, f.Ny, f.Nz, f.SizeBytes())
	return nil
}
