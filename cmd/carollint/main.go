// Command carollint runs the repository's static-analysis suite (see
// internal/analysis): determinism, float-discipline and bounded-concurrency
// checks plus the interprocedural dataflow checks (taintalloc, poolreset,
// metriclabel) that keep the fixed-ratio pipeline reproducible and safe on
// hostile input.
//
//	carollint ./...                 # whole module (the CI gate)
//	carollint ./internal/rf         # one package
//	carollint -checks floateq ./... # a subset of checks
//	carollint -tests ./...          # include in-package _test.go files
//	carollint -json ./...           # machine-readable findings on stdout
//	carollint -github ./...         # GitHub Actions annotation commands
//
// Findings print as file:line:col: message [check]; the exit status is 1
// when anything is reported, 2 on load/usage errors, 0 when clean. A
// finding is silenced in place with `//carol:allow <check> <reason>` on the
// offending line or the line above; an allow whose check reports nothing is
// itself a finding, so suppressions cannot outlive the code they excuse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"carol/internal/analysis"
)

func main() {
	os.Exit(run())
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func run() int {
	checkList := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	flag.Parse()

	checks, err := selectChecks(*checkList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carollint:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "carollint:", err)
		return 2
	}
	modRoot, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carollint:", err)
		return 2
	}
	modPath, err := analysis.ModulePath(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carollint:", err)
		return 2
	}
	loader := analysis.NewLoader(modRoot, modPath, *tests)
	known := analysis.Names(analysis.All())

	status := 0
	var all []analysis.Diagnostic
	for _, pattern := range patterns {
		dirs, err := analysis.PackageDirs(pattern, *tests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carollint:", err)
			return 2
		}
		for _, dir := range dirs {
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "carollint:", err)
				status = 2
				continue
			}
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintln(os.Stderr, "carollint: type error:", terr)
				status = 2
			}
			diags, err := analysis.RunChecks(loader.Program(), pkg, checks, known)
			if err != nil {
				fmt.Fprintln(os.Stderr, "carollint:", err)
				status = 2
				continue
			}
			for _, d := range diags {
				all = append(all, relativize(cwd, d))
				if status == 0 {
					status = 1
				}
			}
		}
	}
	if err := emit(all, *jsonOut, *github); err != nil {
		fmt.Fprintln(os.Stderr, "carollint:", err)
		return 2
	}
	return status
}

// emit renders the collected findings in the selected output mode(s).
// -json and -github may be combined: JSON goes to stdout, annotations are
// workflow commands GitHub scrapes from the log either way.
func emit(diags []analysis.Diagnostic, jsonOut, github bool) error {
	if jsonOut {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return err
		}
	}
	if github {
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=carollint %s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, escapeAnnotation(d.Message))
		}
	}
	if !jsonOut && !github {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	return nil
}

// escapeAnnotation encodes the characters GitHub workflow commands treat
// specially in the message position.
func escapeAnnotation(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// selectChecks resolves the -checks flag against the registered suite.
func selectChecks(list string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if list == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have: %s)", name, checkNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func checkNames(all []*analysis.Analyzer) string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// relativize shortens the diagnostic's file path relative to the current
// directory for readable, clickable output.
func relativize(cwd string, d analysis.Diagnostic) analysis.Diagnostic {
	if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}
