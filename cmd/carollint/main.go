// Command carollint runs the repository's static-analysis suite (see
// internal/analysis): determinism, float-discipline and bounded-concurrency
// checks that keep the fixed-ratio pipeline reproducible.
//
//	carollint ./...                 # whole module (the CI gate)
//	carollint ./internal/rf         # one package
//	carollint -checks floateq ./... # a subset of checks
//	carollint -tests ./...          # include in-package _test.go files
//
// Findings print as file:line:col: message [check]; the exit status is 1
// when anything is reported, 2 on load/usage errors, 0 when clean. A
// finding is silenced in place with `//carol:allow <check> <reason>` on the
// offending line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"carol/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	checkList := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	flag.Parse()

	checks, err := selectChecks(*checkList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carollint:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "carollint:", err)
		return 2
	}
	modRoot, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carollint:", err)
		return 2
	}
	modPath, err := analysis.ModulePath(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carollint:", err)
		return 2
	}
	loader := analysis.NewLoader(modRoot, modPath, *tests)
	known := analysis.Names(analysis.All())

	status := 0
	for _, pattern := range patterns {
		dirs, err := analysis.PackageDirs(pattern, *tests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carollint:", err)
			return 2
		}
		for _, dir := range dirs {
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "carollint:", err)
				status = 2
				continue
			}
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintln(os.Stderr, "carollint: type error:", terr)
				status = 2
			}
			diags, err := analysis.RunChecks(pkg, checks, known)
			if err != nil {
				fmt.Fprintln(os.Stderr, "carollint:", err)
				status = 2
				continue
			}
			for _, d := range diags {
				fmt.Println(relativize(cwd, d))
				if status == 0 {
					status = 1
				}
			}
		}
	}
	return status
}

// selectChecks resolves the -checks flag against the registered suite.
func selectChecks(list string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if list == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have: %s)", name, checkNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func checkNames(all []*analysis.Analyzer) string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// relativize shortens the diagnostic's file path relative to the current
// directory for readable, clickable output.
func relativize(cwd string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}
