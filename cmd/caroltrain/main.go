// Command caroltrain is the offline half of CAROL's model lifecycle: it
// runs the full training pipeline — surrogate data collection, optional
// calibration, Bayesian-optimized random-forest fitting — and publishes
// the result as a versioned artifact in an on-disk model registry, where
// a warm-loading carolserve picks it up (DESIGN.md §12).
//
//	caroltrain -codec sz3 -model-dir ./models -datasets miranda,cesm
//	caroltrain -codec szx -model-dir ./models -datasets miranda:viscosity \
//	    -dims 32x32x16 -bounds 12 -bo-iters 5 -forest-cap 40 -gc 4
//
// Training is deterministic for a fixed flag set (same fields, same seed
// → bit-identical forest); only the trained_at metadata entry varies
// between otherwise identical runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"carol/internal/calib"
	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/core"
	"carol/internal/dataset"
	"carol/internal/field"
	"carol/internal/model"
	"carol/internal/registry"
	"carol/internal/rf"
	"carol/internal/trainset"
	"carol/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caroltrain:", err)
		os.Exit(1)
	}
}

// options carries the parsed flag set.
type options struct {
	codec     string
	modelDir  string
	name      string
	datasets  string
	dims      string
	backends  string
	bounds    int
	boIters   int
	forestCap int
	kfolds    int
	calibPts  int
	workers   int
	seed      uint64
	gcKeep    int
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("caroltrain", flag.ContinueOnError)
	fs.StringVar(&o.codec, "codec", "", "compressor to train for (szx|zfp|sz3|sperr|szp)")
	fs.StringVar(&o.modelDir, "model-dir", "", "registry root directory to publish into")
	fs.StringVar(&o.name, "name", "", "model name in the registry (default: codec name)")
	fs.StringVar(&o.datasets, "datasets", "miranda",
		"comma-separated training data: dataset or dataset:field (see carolgen -list)")
	fs.StringVar(&o.dims, "dims", "", "override generated field dims NXxNYxNZ (tests and smoke runs)")
	fs.StringVar(&o.backends, "backends", "rf",
		"comma-separated surrogate backends to train and compare (rf,boost,knn); "+
			"\"rf\" alone keeps the classic BO-tuned forest path")
	fs.IntVar(&o.bounds, "bounds", 35, "error bounds sampled per field during collection")
	fs.IntVar(&o.boIters, "bo-iters", 10, "Bayesian-optimization iterations")
	fs.IntVar(&o.forestCap, "forest-cap", 0, "cap NEstimators in the final forest (0 = none)")
	fs.IntVar(&o.kfolds, "kfolds", 3, "cross-validation folds per BO evaluation")
	fs.IntVar(&o.calibPts, "calib", -1,
		"calibration points stored in the artifact: -1 auto (0 for high-throughput codecs, 4 otherwise), 0 none")
	fs.IntVar(&o.workers, "workers", 0, "CPU parallelism for training (0 = all cores)")
	fs.Uint64Var(&o.seed, "seed", 1, "master seed for every randomized component")
	fs.IntVar(&o.gcKeep, "gc", 0, "after publishing, keep only the newest N versions (0 = keep all)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.codec == "" || o.modelDir == "" {
		return o, fmt.Errorf("need -codec and -model-dir")
	}
	if o.name == "" {
		o.name = o.codec
	}
	if o.bounds < 2 {
		return o, fmt.Errorf("-bounds %d < 2", o.bounds)
	}
	return o, nil
}

// parseDims parses NXxNYxNZ with trailing dimensions defaulting to 1.
func parseDims(s string) (nx, ny, nz int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	vals := []int{1, 1, 1}
	if s == "" || len(parts) > 3 {
		return 0, 0, 0, fmt.Errorf("bad dims %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return 0, 0, 0, fmt.Errorf("bad dims %q", s)
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], nil
}

// generateFields expands the -datasets spec into training fields.
func generateFields(spec, dims string) ([]*field.Field, error) {
	var opts dataset.Options
	if dims != "" {
		nx, ny, nz, err := parseDims(dims)
		if err != nil {
			return nil, err
		}
		opts.Nx, opts.Ny, opts.Nz = nx, ny, nz
	}
	var fields []*field.Field
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if ds, fname, ok := strings.Cut(entry, ":"); ok {
			f, err := dataset.Generate(ds, fname, opts)
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
		} else {
			fs, err := dataset.GenerateAll(entry, opts)
			if err != nil {
				return nil, err
			}
			fields = append(fields, fs...)
		}
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("no training fields from -datasets %q", spec)
	}
	return fields, nil
}

// fitCalibration fits the artifact's calibration state on a representative
// field, mirroring core's per-codec default (high-throughput codecs skip
// calibration; the high-ratio group uses 4 points).
func fitCalibration(codecName string, points int, f *field.Field) (*model.CalibState, error) {
	if points == -1 {
		if codecs.HighThroughput(codecName) {
			points = 0
		} else {
			points = 4
		}
	}
	if points < 2 {
		return nil, nil
	}
	codec, err := codecs.ByName(codecName)
	if err != nil {
		return nil, err
	}
	sur, err := codecs.SurrogateByName(codecName)
	if err != nil {
		return nil, err
	}
	lo := compressor.AbsBound(f, 1e-4)
	hi := compressor.AbsBound(f, 1e-1)
	m, err := calib.Fit(codec, sur, f, calib.PickCalibrationBounds(lo, hi, points))
	if err != nil {
		return nil, fmt.Errorf("calibration fit on %s: %w", f.Name, err)
	}
	return model.FromCalib(m), nil
}

// parseBackends splits and validates the -backends flag.
func parseBackends(spec string) ([]string, error) {
	known := make(map[string]bool)
	for _, b := range model.KnownBackends() {
		known[b] = true
	}
	var out []string
	for _, b := range strings.Split(spec, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if !known[b] {
			return nil, fmt.Errorf("unknown backend %q (want %s)", b, strings.Join(model.KnownBackends(), ","))
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backends in %q", spec)
	}
	return out, nil
}

// trainZoo runs the multi-backend sweep on the framework's collected
// training set and returns the winner's artifact with the CV scoreboard
// recorded in its metadata.
func trainZoo(out io.Writer, fw *core.Framework, o options, rfCfg rf.Config,
	backends []string, calState *model.CalibState, meta map[string]string) (*model.Artifact, error) {
	rfCfg.Workers = o.workers
	if o.forestCap > 0 && rfCfg.NEstimators > o.forestCap {
		rfCfg.NEstimators = o.forestCap
	}
	zcfg := zoo.Config{
		Backends: backends,
		RF:       rfCfg,
		KFolds:   o.kfolds,
		Seed:     o.seed,
		Workers:  o.workers,
	}
	zcfg.Boost.Seed = o.seed
	X, y := fw.TrainingSet().Matrix()
	res, err := zoo.Train(X, y, zcfg)
	if err != nil {
		return nil, err
	}
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if c.Err != nil {
			fmt.Fprintf(out, "caroltrain: zoo: %s failed: %v\n", c.Backend, c.Err)
			continue
		}
		fmt.Fprintf(out, "caroltrain: zoo: %s cv mse %.6g\n", c.Backend, c.CVMSE)
	}
	winner := res.Best()
	if winner == nil {
		return nil, fmt.Errorf("zoo: every backend failed")
	}
	fmt.Fprintf(out, "caroltrain: zoo: winner %s\n", winner.Backend)
	for k, v := range res.Scoreboard() {
		meta[k] = v
	}
	return winner.Artifact(o.codec, calState, meta)
}

func run(args []string, out io.Writer) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if err := registry.CheckName(o.name); err != nil {
		return err
	}
	fields, err := generateFields(o.datasets, o.dims)
	if err != nil {
		return err
	}
	cfg := core.Config{
		ErrorBounds:  trainset.GeometricBounds(1e-4, 1e-1, o.bounds),
		BOIterations: o.boIters,
		ForestCap:    o.forestCap,
		KFolds:       o.kfolds,
		Workers:      o.workers,
		Seed:         o.seed,
	}
	fw, err := core.New(o.codec, cfg)
	if err != nil {
		return err
	}
	cs, err := fw.Collect(fields)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "caroltrain: collected %d samples from %d fields in %v (surrogate=%d full=%d)\n",
		cs.Samples, cs.Fields, cs.Duration.Round(time.Millisecond), cs.SurrogateRuns, cs.FullCompressorRuns)
	ts, err := fw.Train()
	if err != nil {
		return err
	}
	forest, err := fw.Forest()
	if err != nil {
		return err
	}
	best := forest.Config()
	fmt.Fprintf(out, "caroltrain: BO evaluated %d configs in %v, best CV MSE %.6g (trees=%d depth=%d features=%s)\n",
		ts.Evaluated, ts.Duration.Round(time.Millisecond), ts.BestScore,
		best.NEstimators, best.MaxDepth, best.MaxFeatures)
	stats := forest.Stats()
	fmt.Fprintf(out, "caroltrain: forest: %d trees, %d nodes, max depth %d\n",
		stats.Trees, stats.Nodes, stats.MaxDepth)

	calState, err := fitCalibration(o.codec, o.calibPts, fields[0])
	if err != nil {
		return err
	}
	meta := map[string]string{
		"trained_at":    time.Now().UTC().Format(time.RFC3339),
		"datasets":      o.datasets,
		"fields":        strconv.Itoa(cs.Fields),
		"samples":       strconv.Itoa(cs.Samples),
		"bo_iterations": strconv.Itoa(ts.Evaluated),
		"best_cv_mse":   strconv.FormatFloat(ts.BestScore, 'g', -1, 64),
		"seed":          strconv.FormatUint(o.seed, 10),
	}
	backends, err := parseBackends(o.backends)
	if err != nil {
		return err
	}
	var art *model.Artifact
	if len(backends) == 1 && backends[0] == model.BackendRF {
		// Classic path: publish the BO-tuned forest exactly as trained —
		// bit-identical to an in-process framework with the same flags.
		art = &model.Artifact{
			Codec:  o.codec,
			Schema: model.CanonicalSchema(),
			Calib:  calState,
			Forest: forest,
			Meta:   meta,
		}
	} else {
		// Zoo path: cross-validate every requested backend on the same
		// fold split (the rf entrant reuses the BO-tuned config) and
		// publish whichever wins on this dataset.
		art, err = trainZoo(out, fw, o, ts.BestConfig, backends, calState, meta)
		if err != nil {
			return err
		}
	}
	buf, err := art.Encode()
	if err != nil {
		return err
	}
	reg, err := registry.Open(o.modelDir)
	if err != nil {
		return err
	}
	v, err := reg.Publish(o.name, buf)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "caroltrain: published %s v%d (%d bytes, sha256 %s…) to %s\n",
		v.Name, v.Number, v.Size, v.SHA256[:12], o.modelDir)
	if o.gcKeep > 0 {
		removed, err := reg.GC(o.name, o.gcKeep)
		if err != nil {
			return err
		}
		if len(removed) > 0 {
			fmt.Fprintf(out, "caroltrain: gc removed versions %v (keep %d)\n", removed, o.gcKeep)
		}
	}
	return nil
}
