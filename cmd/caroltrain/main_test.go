package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"carol/internal/core"
	"carol/internal/dataset"
	"carol/internal/features"
	"carol/internal/field"
	"carol/internal/registry"
	"carol/internal/safedec"
	"carol/internal/trainset"
)

// tinyArgs returns a flag set that trains in well under a second.
func tinyArgs(dir string, extra ...string) []string {
	args := []string{
		"-codec", "szx",
		"-model-dir", dir,
		"-datasets", "miranda:velocityx",
		"-dims", "16x16x8",
		"-bounds", "6",
		"-bo-iters", "2",
		"-forest-cap", "8",
		"-kfolds", "2",
		"-workers", "1",
		"-seed", "7",
	}
	return append(args, extra...)
}

func TestRunPublishesLoadableVersions(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(tinyArgs(dir), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"collected", "forest:", "published szx v1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// Second run publishes version 2 alongside version 1.
	if err := run(tinyArgs(dir), &out); err != nil {
		t.Fatalf("second run: %v", err)
	}
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	versions, err := reg.Versions("szx")
	if err != nil || len(versions) != 2 {
		t.Fatalf("Versions = %v, %v", versions, err)
	}
	latest, err := reg.Latest("szx")
	if err != nil || latest.Number != 2 {
		t.Fatalf("Latest = %+v, %v", latest, err)
	}
	art, err := reg.Load(latest, safedec.Default())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := art.ServingCheck(); err != nil {
		t.Fatalf("published artifact not servable: %v", err)
	}
	if art.Meta["seed"] != "7" || art.Meta["datasets"] != "miranda:velocityx" {
		t.Fatalf("meta = %v", art.Meta)
	}
}

// TestRunMatchesInProcessTraining asserts the published artifact predicts
// bit-identically to an identically configured in-process framework — the
// acceptance criterion that serving from the registry changes nothing.
func TestRunMatchesInProcessTraining(t *testing.T) {
	dir := t.TempDir()
	if err := run(tinyArgs(dir), &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	latest, err := reg.Latest("szx")
	if err != nil {
		t.Fatal(err)
	}
	art, err := reg.Load(latest, safedec.Default())
	if err != nil {
		t.Fatal(err)
	}

	f, err := dataset.Generate("miranda", "velocityx", dataset.Options{Nx: 16, Ny: 16, Nz: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		ErrorBounds:  trainset.GeometricBounds(1e-4, 1e-1, 6),
		BOIterations: 2,
		ForestCap:    8,
		KFolds:       2,
		Workers:      1,
		Seed:         7,
	}
	fw, err := core.New("szx", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Collect([]*field.Field{f}); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}

	probe, err := dataset.Generate("miranda", "density", dataset.Options{Nx: 16, Ny: 16, Nz: 8})
	if err != nil {
		t.Fatal(err)
	}
	opts := features.ParallelOptions{Workers: 1}
	for _, ratio := range []float64{2, 8, 32, 128} {
		want, err := fw.PredictErrorBound(probe, ratio)
		if err != nil {
			t.Fatal(err)
		}
		got, err := art.PredictErrorBound(probe, ratio, opts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("ratio %g: artifact predicts %x, framework predicts %x",
				ratio, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestParseFlagErrors(t *testing.T) {
	cases := [][]string{
		{},                       // missing everything
		{"-codec", "szx"},        // missing -model-dir
		{"-model-dir", "/tmp/x"}, // missing -codec
		{"-codec", "szx", "-model-dir", "/tmp/x", "-bounds", "1"}, // bounds too small
	}
	for _, c := range cases {
		if _, err := parseFlags(c); err == nil {
			t.Fatalf("parseFlags(%v) accepted", c)
		}
	}
}

func TestParseDims(t *testing.T) {
	nx, ny, nz, err := parseDims("16x8x4")
	if err != nil || nx != 16 || ny != 8 || nz != 4 {
		t.Fatalf("parseDims = %d %d %d %v", nx, ny, nz, err)
	}
	nx, ny, nz, err = parseDims("32")
	if err != nil || nx != 32 || ny != 1 || nz != 1 {
		t.Fatalf("parseDims(32) = %d %d %d %v", nx, ny, nz, err)
	}
	for _, bad := range []string{"", "0x2", "axb", "1x2x3x4", "-1"} {
		if _, _, _, err := parseDims(bad); err == nil {
			t.Fatalf("parseDims(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(tinyArgs(dir, "-datasets", "nosuch"), &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run(tinyArgs(dir, "-name", "Bad Name"), &out); err == nil {
		t.Fatal("invalid registry name accepted")
	}
	if err := run(tinyArgs(dir, "-codec", "nosuchcodec"), &out); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestRunGC(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := run(tinyArgs(dir), &out); err != nil {
			t.Fatal(err)
		}
	}
	out.Reset()
	if err := run(tinyArgs(dir, "-gc", "2"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gc removed versions [1 2]") {
		t.Fatalf("gc output:\n%s", out.String())
	}
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	versions, err := reg.Versions("szx")
	if err != nil || len(versions) != 2 || versions[0].Number != 3 {
		t.Fatalf("Versions after gc = %v, %v", versions, err)
	}
}

// TestRunZooBackends drives the multi-backend path: the published
// artifact must carry the zoo scoreboard and a backend tag matching the
// recorded winner.
func TestRunZooBackends(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(tinyArgs(dir, "-backends", "rf,boost,knn"), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"zoo: rf cv mse", "zoo: boost cv mse", "zoo: knn cv mse", "zoo: winner"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	latest, err := reg.Latest("szx")
	if err != nil {
		t.Fatal(err)
	}
	art, err := reg.Load(latest, safedec.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := art.ServingCheck(); err != nil {
		t.Fatalf("zoo artifact not servable: %v", err)
	}
	winner := art.Meta["zoo_best_backend"]
	if winner == "" || art.BackendTag() != winner {
		t.Fatalf("backend %q, scoreboard winner %q (meta %v)", art.BackendTag(), winner, art.Meta)
	}
	for _, b := range []string{"rf", "boost", "knn"} {
		if _, ok := art.Meta["zoo_cv_mse_"+b]; !ok {
			t.Fatalf("scoreboard missing %s: %v", b, art.Meta)
		}
	}
	if err := run(tinyArgs(dir, "-backends", "nope"), &out); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
