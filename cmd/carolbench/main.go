// Command carolbench regenerates the tables and figures of the CAROL paper
// (ICPP 2024) evaluation on synthetic stand-in datasets.
//
// Usage:
//
//	carolbench                      # run everything at quick scale
//	carolbench -experiment table5   # one artifact
//	carolbench -scale paper         # larger fields, 35-point sweeps
//	carolbench -list                # list available experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"carol/internal/experiments"
)

// errWriter wraps an io.Writer and remembers the first write error, so
// the exit path can detect a truncated report (e.g. stdout piped into a
// consumer that died) and fail loudly instead of exiting 0 with partial
// tables.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("experiment", "", "experiment id (default: all); see -list")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or paper")
	workers := flag.Int("workers", 0,
		"throughput experiment: sweep pipeline workers 1..N (0 = GOMAXPROCS); implies -experiment thr unless set")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	ew := &errWriter{w: os.Stdout}
	var out io.Writer = ew
	if *list {
		for _, r := range experiments.Registry() {
			fmt.Fprintf(out, "%-8s %s\n", r.ID, r.Title)
		}
		return exitCode(ew)
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	start := time.Now()
	switch {
	case *workers != 0 && (*exp == "" || *exp == "thr"):
		// An explicit -workers N runs the throughput sweep at that width.
		err = experiments.RunThroughput(out, scale, *workers)
	case *exp == "":
		err = experiments.RunAll(out, scale)
	default:
		var r experiments.Runner
		r, err = experiments.Find(*exp)
		if err == nil {
			err = r.Run(out, scale)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "carolbench:", err)
		return 1
	}
	// A failed write latches ew.err; exitCode reports it below.
	fmt.Fprintf(out, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	return exitCode(ew)
}

// exitCode maps an accumulated write error to the process exit status.
func exitCode(out *errWriter) int {
	if out.err != nil {
		fmt.Fprintln(os.Stderr, "carolbench: writing output:", out.err)
		return 1
	}
	return 0
}
