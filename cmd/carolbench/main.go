// Command carolbench regenerates the tables and figures of the CAROL paper
// (ICPP 2024) evaluation on synthetic stand-in datasets.
//
// Usage:
//
//	carolbench                      # run everything at quick scale
//	carolbench -experiment table5   # one artifact
//	carolbench -scale paper         # larger fields, 35-point sweeps
//	carolbench -list                # list available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"carol/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "", "experiment id (default: all); see -list")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or paper")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	if *exp == "" {
		err = experiments.RunAll(os.Stdout, scale)
	} else {
		var r experiments.Runner
		r, err = experiments.Find(*exp)
		if err == nil {
			err = r.Run(os.Stdout, scale)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "carolbench:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
