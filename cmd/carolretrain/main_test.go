package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"carol/internal/features"
	"carol/internal/registry"
	"carol/internal/trainset"
	"carol/internal/xrand"
)

func fillJournal(t *testing.T, dir, codec string, n int) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	j, err := trainset.OpenJournal(trainset.JournalPath(dir, codec), trainset.DefaultJournalCap)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(8)
	for i := 0; i < n; i++ {
		v := features.Vector{
			Mean:  rng.Float64(),
			Range: 1 + rng.Float64(),
			MND:   rng.Float64(),
			MLD:   rng.Float64(),
			MSD:   rng.Float64(),
		}
		ratio := 5 + rng.Float64()*40
		releb := math.Pow(10, -3+0.7*math.Log10(ratio)+0.02*rng.Norm())
		if err := j.Append(trainset.Record{Features: v, Ratio: ratio, RelEB: releb}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOneShotBootstrap runs the CLI end to end against a real journal and
// an empty registry: one cycle, bootstrap publish, operator report.
func TestOneShotBootstrap(t *testing.T) {
	dir := t.TempDir()
	harvest, regDir := filepath.Join(dir, "harvest"), filepath.Join(dir, "models")
	fillJournal(t, harvest, "szx", 120)
	var out strings.Builder
	err := run([]string{
		"-codec", "szx", "-model-dir", regDir, "-harvest-dir", harvest,
		"-kfolds", "3", "-backends", "rf,knn",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bootstrap: published szx v1") {
		t.Fatalf("output:\n%s", out.String())
	}
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Latest("szx"); err != nil {
		t.Fatalf("nothing published: %v", err)
	}
}

// TestOneShotTooFew: an underfilled journal must not create a model.
func TestOneShotTooFew(t *testing.T) {
	dir := t.TempDir()
	harvest, regDir := filepath.Join(dir, "harvest"), filepath.Join(dir, "models")
	fillJournal(t, harvest, "szx", 3)
	var out strings.Builder
	if err := run([]string{"-codec", "szx", "-model-dir", regDir, "-harvest-dir", harvest}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "too-few-samples: nothing published") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestFlagValidation(t *testing.T) {
	if err := run([]string{"-codec", "szx"}, &strings.Builder{}); err == nil {
		t.Fatal("missing dirs accepted")
	}
	if err := run([]string{"-codec", "szx", "-model-dir", "m", "-harvest-dir", "h", "-backends", "svm"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
