// Command carolretrain runs CAROL's continuous-retraining cycle: read
// the served-traffic journal carolserve harvested (-harvest-dir), train
// the full surrogate zoo on it, shadow-evaluate the winning candidate
// against the live registry model on the newest held-out traffic, and
// publish only when the candidate provably wins (DESIGN.md §17).
//
//	carolretrain -codec szx -model-dir ./models -harvest-dir ./harvest
//	carolretrain -codec sz3 -model-dir ./models -harvest-dir ./harvest \
//	    -interval 10m -min-samples 200 -margin 0.05 -gc 4
//
// One-shot by default; -interval turns it into a long-running controller.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"carol/internal/retrain"
	"carol/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "carolretrain:", err)
		os.Exit(1)
	}
}

func parseFlags(args []string) (retrain.Config, time.Duration, error) {
	var (
		cfg      retrain.Config
		backends string
		interval time.Duration
		kfolds   int
		seed     uint64
		workers  int
	)
	fs := flag.NewFlagSet("carolretrain", flag.ContinueOnError)
	fs.StringVar(&cfg.Codec, "codec", "", "compressor whose journal is retrained (szx|zfp|sz3|sperr|szp)")
	fs.StringVar(&cfg.Name, "name", "", "model name in the registry (default: codec name)")
	fs.StringVar(&cfg.RegistryDir, "model-dir", "", "registry root directory")
	fs.StringVar(&cfg.HarvestDir, "harvest-dir", "", "journal directory carolserve harvests into")
	fs.IntVar(&cfg.JournalCap, "journal-cap", 0, "newest journal records considered (0 = default)")
	fs.IntVar(&cfg.MinSamples, "min-samples", 0, "harvested records required before retraining (0 = default 20)")
	fs.Float64Var(&cfg.Holdout, "holdout", 0, "newest fraction of traffic held out for shadow eval (0 = default 0.25)")
	fs.Float64Var(&cfg.WinMargin, "margin", 0, "median shadow-error improvement required to publish (0 = default 0.02)")
	fs.IntVar(&cfg.GCKeep, "gc", 0, "after publishing, keep only the newest N versions (0 = keep all)")
	fs.StringVar(&backends, "backends", "", "comma-separated backend subset (default: all of rf,boost,knn)")
	fs.IntVar(&kfolds, "kfolds", 0, "zoo cross-validation folds (0 = default 5)")
	fs.Uint64Var(&seed, "seed", 1, "master seed for the zoo's fold split and trainers")
	fs.IntVar(&workers, "workers", 0, "CPU parallelism for training (0 = all cores)")
	fs.DurationVar(&interval, "interval", 0, "retraining period; 0 runs exactly one cycle and exits")
	if err := fs.Parse(args); err != nil {
		return cfg, 0, err
	}
	if cfg.Codec == "" || cfg.RegistryDir == "" || cfg.HarvestDir == "" {
		return cfg, 0, fmt.Errorf("need -codec, -model-dir and -harvest-dir")
	}
	cfg.Zoo = zoo.Config{KFolds: kfolds, Seed: seed, Workers: workers}
	if backends != "" {
		for _, b := range strings.Split(backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				cfg.Zoo.Backends = append(cfg.Zoo.Backends, b)
			}
		}
	}
	return cfg, interval, nil
}

// printReport renders one cycle for operators: split, scoreboard, shadow
// stats, verdict.
func printReport(out io.Writer, rep *retrain.Report) {
	fmt.Fprintf(out, "carolretrain: %s: harvested=%d train=%d holdout=%d\n",
		rep.Codec, rep.Harvested, rep.TrainRows, rep.HoldoutRows)
	if rep.CandidateBackend != "" {
		fmt.Fprintf(out, "carolretrain: candidate backend %s", rep.CandidateBackend)
		if mse, ok := rep.Scoreboard["zoo_cv_mse_"+rep.CandidateBackend]; ok {
			fmt.Fprintf(out, " (cv mse %s)", mse)
		}
		fmt.Fprintln(out)
	}
	if rep.Candidate != nil && rep.Live != nil {
		fmt.Fprintf(out, "carolretrain: shadow eval on %d samples: candidate p50=%.4g p90=%.4g, live p50=%.4g p90=%.4g\n",
			rep.Candidate.N, rep.Candidate.P50, rep.Candidate.P90, rep.Live.P50, rep.Live.P90)
	}
	if rep.Published != nil {
		fmt.Fprintf(out, "carolretrain: %s: published %s v%d (%d bytes, sha256 %s…)\n",
			rep.Verdict, rep.Published.Name, rep.Published.Number, rep.Published.Size, rep.Published.SHA256[:12])
	} else {
		fmt.Fprintf(out, "carolretrain: %s: nothing published\n", rep.Verdict)
	}
}

func run(args []string, out io.Writer) error {
	cfg, interval, err := parseFlags(args)
	if err != nil {
		return err
	}
	if interval <= 0 {
		rep, err := retrain.RunOnce(cfg)
		if err != nil {
			return err
		}
		printReport(out, rep)
		return nil
	}
	ctrl, err := retrain.NewController(cfg, interval)
	if err != nil {
		return err
	}
	ctrl.Observe = func(rep *retrain.Report, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "carolretrain: cycle failed:", err)
			return
		}
		printReport(out, rep)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(out, "carolretrain: retraining %s every %v (ctrl-c to stop)\n", cfg.Codec, interval)
	ctrl.Run(ctx)
	return nil
}
