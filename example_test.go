package carol_test

import (
	"fmt"

	"carol"
	"carol/internal/dataset"
	"carol/internal/trainset"
)

// ExampleCompress demonstrates plain error-bounded compression without any
// ratio model.
func ExampleCompress() {
	f, err := dataset.Generate("miranda", "density", dataset.Options{Nx: 32, Ny: 32, Nz: 16})
	if err != nil {
		panic(err)
	}
	stream, err := carol.Compress("sz3", f, 1e-3) // 0.1% of the value range
	if err != nil {
		panic(err)
	}
	recon, err := carol.Decompress("sz3", stream)
	if err != nil {
		panic(err)
	}
	bound := 1e-3 * f.ValueRange()
	fmt.Println("within bound:", carol.MaxAbsError(f, recon) <= bound)
	fmt.Println("compressed:", carol.Ratio(f, stream) > 1)
	// Output:
	// within bound: true
	// compressed: true
}

// ExampleNew shows the full fixed-ratio workflow: collect, train, compress
// to a requested ratio.
func ExampleNew() {
	fw, err := carol.New("szx", carol.Config{
		ErrorBounds:  trainset.GeometricBounds(1e-4, 1e-1, 8),
		BOIterations: 4,
		ForestCap:    5,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	var train []*carol.Field
	for _, name := range []string{"density", "pressure"} {
		f, err := dataset.Generate("miranda", name, dataset.Options{Nx: 24, Ny: 24, Nz: 12})
		if err != nil {
			panic(err)
		}
		train = append(train, f)
	}
	if _, err := fw.Collect(train); err != nil {
		panic(err)
	}
	if _, err := fw.Train(); err != nil {
		panic(err)
	}
	test, err := dataset.Generate("miranda", "viscosity", dataset.Options{Nx: 24, Ny: 24, Nz: 12})
	if err != nil {
		panic(err)
	}
	stream, achieved, err := fw.CompressToRatio(test, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("got a stream:", len(stream) > 0)
	fmt.Println("achieved something close to 4:1:", achieved > 2 && achieved < 8)
	// Output:
	// got a stream: true
	// achieved something close to 4:1: true
}

// ExampleIterativeCompressToRatio shows the FRaZ-style baseline that needs
// no training.
func ExampleIterativeCompressToRatio() {
	f, err := dataset.Generate("miranda", "viscosity", dataset.Options{Nx: 24, Ny: 24, Nz: 12})
	if err != nil {
		panic(err)
	}
	res, err := carol.IterativeCompressToRatio("szx", f, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("multiple compressor runs:", res.CompressorRuns > 1)
	// Output:
	// multiple compressor runs: true
}
