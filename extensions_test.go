package carol

import (
	"bytes"
	"strings"
	"testing"

	"carol/internal/trainset"
)

func TestSaveLoadCheckpoint(t *testing.T) {
	fw, err := New("szx", Config{
		ErrorBounds:  trainset.GeometricBounds(1e-3, 1e-1, 6),
		BOIterations: 4,
		ForestCap:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := testField(t, "density")
	if _, err := fw.Collect([]*Field{f}); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}
	ckpt := fw.Checkpoint()
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, ckpt); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(ckpt) {
		t.Fatalf("loaded %d observations, want %d", len(loaded), len(ckpt))
	}
	for i := range ckpt {
		if loaded[i].Score != ckpt[i].Score || len(loaded[i].U) != len(ckpt[i].U) { //carol:allow floateq bit-exact: checkpoint round trip must not perturb scores
			t.Fatalf("observation %d corrupted by round trip", i)
		}
	}
	// The loaded checkpoint must be restorable into a fresh framework.
	fresh, err := New("szx", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreCheckpoint(loaded); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

func TestIterativeCompressToRatio(t *testing.T) {
	f := testField(t, "viscosity")
	// Pick an achievable target.
	probe, err := Compress("sz3", f, 3e-3)
	if err != nil {
		t.Fatal(err)
	}
	target := Ratio(f, probe)
	res, err := IterativeCompressToRatio("sz3", f, target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: achieved %g for %g", res.Achieved, target)
	}
	if res.CompressorRuns < 2 {
		t.Fatalf("suspicious run count %d", res.CompressorRuns)
	}
	if _, err := Decompress("sz3", res.Stream); err != nil {
		t.Fatal(err)
	}
	if _, err := IterativeCompressToRatio("nope", f, 10); err == nil {
		t.Fatal("unknown compressor accepted")
	}
}

func TestChunkedRoundTrip(t *testing.T) {
	f := testField(t, "pressure")
	for _, name := range []string{"szx", "szp"} {
		stream, err := CompressChunked(name, f, 1e-3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := DecompressChunked(name, stream)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eb := 1e-3 * f.ValueRange()
		if got := MaxAbsError(f, g); got > eb*1.01 {
			t.Fatalf("%s: chunked max error %g > %g", name, got, eb)
		}
	}
	if _, err := CompressChunked("szx", f, 0); err == nil {
		t.Fatal("zero bound accepted")
	}
	if _, err := CompressChunked("nope", f, 1e-3); err == nil {
		t.Fatal("unknown compressor accepted")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	f := testField(t, "pressure")
	for _, name := range []string{"szx", "sz3"} {
		var serial, parallel bytes.Buffer
		if err := CompressStream(name, &serial, f, 1e-3, StreamOptions{Workers: 1}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := CompressStream(name, &parallel, f, 1e-3, StreamOptions{Workers: 4}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
			t.Fatalf("%s: stream bytes differ between 1 and 4 workers", name)
		}
		g, err := DecompressStream(name, &parallel, StreamOptions{Workers: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eb := 1e-3 * f.ValueRange()
		if got := MaxAbsError(f, g); got > eb*1.01 {
			t.Fatalf("%s: streaming max error %g > %g", name, got, eb)
		}
	}
	if err := CompressStream("szx", &bytes.Buffer{}, f, 0, StreamOptions{}); err == nil {
		t.Fatal("zero bound accepted")
	}
	if err := CompressStream("nope", &bytes.Buffer{}, f, 1e-3, StreamOptions{}); err == nil {
		t.Fatal("unknown compressor accepted")
	}
	if _, err := DecompressStream("szx", strings.NewReader("garbage"), StreamOptions{}); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

func TestExtendedCompressors(t *testing.T) {
	ext := ExtendedCompressors()
	if len(ext) != 5 || ext[4] != "szp" {
		t.Fatalf("ExtendedCompressors = %v", ext)
	}
	// The extension codec must work through the plain API too.
	f := testField(t, "density")
	stream, err := Compress("szp", f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress("szp", stream)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsError(f, g) > 1e-3*f.ValueRange()*1.01 {
		t.Fatal("szp bound violated via public API")
	}
}

func TestPointwiseRelAPI(t *testing.T) {
	f := testField(t, "density")
	// Inject dynamic range so the mode matters.
	for i := range f.Data {
		if i%7 == 0 {
			f.Data[i] *= 1e4
		}
		if i%11 == 0 {
			f.Data[i] = 0
		}
	}
	stream, err := CompressPointwiseRel("sz3", f, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecompressPointwiseRel("sz3", stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		a, b := float64(f.Data[i]), float64(g.Data[i])
		if a == 0 { //carol:allow floateq bit-exact: exact-zero sentinel
			if b != 0 { //carol:allow floateq bit-exact: exact-zero sentinel
				t.Fatalf("zero at %d -> %g", i, b)
			}
			continue
		}
		if rel := abs64(b-a) / abs64(a); rel > 1.05e-2 {
			t.Fatalf("sample %d rel err %g", i, rel)
		}
	}
	if _, err := CompressPointwiseRel("nope", f, 1e-2); err == nil {
		t.Fatal("unknown compressor accepted")
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestFrameworkWithExtensionCodec(t *testing.T) {
	// CAROL end-to-end on szp: surrogate exists, so New should work.
	fw, err := New("szp", Config{
		ErrorBounds:  trainset.GeometricBounds(1e-3, 1e-1, 6),
		BOIterations: 4,
		ForestCap:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var train []*Field
	for _, n := range []string{"density", "pressure"} {
		train = append(train, testField(t, n))
	}
	if _, err := fw.Collect(train); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}
	f := testField(t, "viscosity")
	_, achieved, err := fw.CompressToRatio(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if achieved <= 0 {
		t.Fatal("degenerate prediction")
	}
}
