package carol

import (
	"testing"

	"carol/internal/dataset"
	"carol/internal/trainset"
)

func testField(t *testing.T, name string) *Field {
	t.Helper()
	f, err := dataset.Generate("miranda", name, dataset.Options{Nx: 32, Ny: 32, Nz: 16})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCompressors(t *testing.T) {
	names := Compressors()
	if len(names) != 4 {
		t.Fatalf("Compressors() = %v", names)
	}
	for _, n := range names {
		c, err := Lookup(n)
		if err != nil || c.Name() != n {
			t.Fatalf("Lookup(%q) = %v, %v", n, c, err)
		}
		s, err := Surrogate(n)
		if err != nil || s.Name() != n {
			t.Fatalf("Surrogate(%q) = %v, %v", n, s, err)
		}
	}
	if _, err := Lookup("bzip2"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	f := testField(t, "density")
	for _, name := range Compressors() {
		stream, err := Compress(name, f, 1e-3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := Decompress(name, stream)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eb := 1e-3 * f.ValueRange()
		if got := MaxAbsError(f, g); got > eb*1.01 {
			t.Fatalf("%s: max error %g > bound %g", name, got, eb)
		}
		if Ratio(f, stream) <= 1 {
			t.Fatalf("%s: no compression", name)
		}
		if PSNR(f, g) < 30 {
			t.Fatalf("%s: PSNR %g dB", name, PSNR(f, g))
		}
	}
}

func TestCompressValidation(t *testing.T) {
	f := testField(t, "density")
	if _, err := Compress("szx", f, 0); err == nil {
		t.Fatal("zero bound accepted")
	}
	if _, err := Compress("nope", f, 1e-3); err == nil {
		t.Fatal("unknown compressor accepted")
	}
	if _, err := Decompress("nope", nil); err == nil {
		t.Fatal("unknown compressor accepted for decompress")
	}
}

func TestEndToEndFixedRatio(t *testing.T) {
	fw, err := New("szx", Config{
		ErrorBounds:  trainset.GeometricBounds(1e-4, 1e-1, 10),
		BOIterations: 5,
		ForestCap:    10,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	train := []*Field{testField(t, "density"), testField(t, "pressure"), testField(t, "viscosity")}
	if _, err := fw.Collect(train); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}
	test := testField(t, "velocityx")
	// Request a ratio SZx can plausibly hit on this data.
	probe, err := Compress("szx", test, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	target := Ratio(test, probe)
	stream, achieved, err := fw.CompressToRatio(test, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) == 0 || achieved <= 0 {
		t.Fatal("empty result")
	}
	relErr := achieved/target - 1
	if relErr < -0.6 || relErr > 0.6 {
		t.Fatalf("achieved %g for target %g", achieved, target)
	}
	// The stream must decompress with the same codec.
	if _, err := Decompress("szx", stream); err != nil {
		t.Fatal(err)
	}
}

func TestFieldHelpers(t *testing.T) {
	f := NewField("x", 4, 2, 1)
	if f.Len() != 8 {
		t.Fatal("NewField broken")
	}
	g := FieldFromData("y", 2, 2, 1, []float32{1, 2, 3, 4})
	if g.At(1, 1, 0) != 4 { //carol:allow floateq bit-exact: constructor stores samples verbatim
		t.Fatal("FieldFromData broken")
	}
}
