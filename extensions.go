package carol

import (
	"encoding/json"
	"fmt"
	"io"

	"carol/internal/bayesopt"
	"carol/internal/chunked"
	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/fraz"
	"carol/internal/pipeline"
	"carol/internal/pwrel"
	"carol/internal/quality"
)

// This file holds the public surface of the repository's extensions beyond
// the paper's core design: checkpoint persistence, the FRaZ-style
// trial-and-error baseline, and chunk-parallel whole-field compression.

// SaveCheckpoint serializes a framework checkpoint (JSON) so a later
// process can resume training with Framework.RestoreCheckpoint after
// LoadCheckpoint.
func SaveCheckpoint(w io.Writer, ckpt Checkpoint) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(ckpt); err != nil {
		return fmt.Errorf("carol: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reverses SaveCheckpoint.
func LoadCheckpoint(r io.Reader) (Checkpoint, error) {
	var ckpt []bayesopt.Observation
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ckpt); err != nil {
		return nil, fmt.Errorf("carol: load checkpoint: %w", err)
	}
	return ckpt, nil
}

// TrialAndErrorResult reports an IterativeCompressToRatio outcome.
type TrialAndErrorResult struct {
	// Stream is the compressed output.
	Stream []byte
	// RelErrorBound is the relative error bound the search selected.
	RelErrorBound float64
	// Achieved is the resulting compression ratio.
	Achieved float64
	// CompressorRuns counts the full compressions performed (the cost a
	// trained CAROL model avoids).
	CompressorRuns int
	// Converged reports whether Achieved is within 5% of the target.
	Converged bool
}

// IterativeCompressToRatio reaches a target compression ratio without any
// trained model, by FRaZ-style bisection on the error bound with the real
// compressor (Underwood et al., IPDPS 2020). It is exact but costs many
// compressor runs — the baseline a trained Framework replaces with a single
// prediction.
func IterativeCompressToRatio(compressorName string, f *Field, targetRatio float64) (TrialAndErrorResult, error) {
	codec, err := codecs.ByName(compressorName)
	if err != nil {
		return TrialAndErrorResult{}, err
	}
	res, err := fraz.Search(codec, f, targetRatio, fraz.Options{})
	if err != nil {
		return TrialAndErrorResult{}, err
	}
	return TrialAndErrorResult{
		Stream:         res.Stream,
		RelErrorBound:  res.RelEB,
		Achieved:       res.Achieved,
		CompressorRuns: res.Runs,
		Converged:      res.Converged,
	}, nil
}

// CompressChunked compresses f slab-parallel across the host's cores with
// the named compressor at a value-range-relative error bound, producing a
// self-describing chunk container (decode with DecompressChunked). The
// error bound guarantee is unchanged; only the container format differs
// from Compress.
func CompressChunked(compressorName string, f *Field, relErrorBound float64) ([]byte, error) {
	codec, err := codecs.ByName(compressorName)
	if err != nil {
		return nil, err
	}
	if !(relErrorBound > 0) {
		return nil, fmt.Errorf("carol: invalid relative error bound %g", relErrorBound)
	}
	return chunked.Compress(codec, f, compressor.AbsBound(f, relErrorBound), chunked.Options{})
}

// DecompressChunked reverses CompressChunked.
func DecompressChunked(compressorName string, stream []byte) (*Field, error) {
	codec, err := codecs.ByName(compressorName)
	if err != nil {
		return nil, err
	}
	return chunked.Decompress(codec, stream, chunked.Options{})
}

// StreamOptions tunes the streaming endpoints. The zero value takes
// defaults (GOMAXPROCS blocks and workers).
type StreamOptions struct {
	// Blocks is the number of slabs the field is split into. More blocks
	// smooth load balancing; each costs a per-block codec header.
	Blocks int
	// Workers bounds concurrent codec invocations.
	Workers int
}

// CompressStream compresses f block-parallel with the named compressor at a
// value-range-relative error bound, writing the pipeline container (CPL1)
// to w as blocks complete: neither the compressed stream nor more than a
// bounded window of in-flight blocks is ever resident at once. The output
// is bit-identical for every StreamOptions.Workers value; decode it with
// DecompressStream.
func CompressStream(compressorName string, w io.Writer, f *Field, relErrorBound float64, opts StreamOptions) error {
	codec, err := codecs.ByName(compressorName)
	if err != nil {
		return err
	}
	if !(relErrorBound > 0) {
		return fmt.Errorf("carol: invalid relative error bound %g", relErrorBound)
	}
	p := pipeline.New(codec, pipeline.Options{Blocks: opts.Blocks, Workers: opts.Workers})
	return p.CompressStream(w, f, compressor.AbsBound(f, relErrorBound))
}

// DecompressStream reverses CompressStream, reading block frames from r one
// at a time and decoding them in parallel. Input claimed by a hostile or
// corrupt stream is validated against the default safedec limits before
// anything is allocated from it; r is never buffered in full.
func DecompressStream(compressorName string, r io.Reader, opts StreamOptions) (*Field, error) {
	codec, err := codecs.ByName(compressorName)
	if err != nil {
		return nil, err
	}
	p := pipeline.New(codec, pipeline.Options{Blocks: opts.Blocks, Workers: opts.Workers})
	return p.DecompressStream(r)
}

// ExtendedCompressors lists every available compressor including the
// extension codecs beyond the paper's four (currently "szp").
func ExtendedCompressors() []string { return append([]string(nil), codecs.ExtendedNames...) }

// QualityReport summarizes reconstruction fidelity: scalar metrics, bound
// violations, an error histogram, worst-slab localization and residual
// autocorrelation. See AnalyzeQuality.
type QualityReport = quality.Report

// AnalyzeQuality produces the QC report for a reconstruction. Pass the
// absolute error bound the stream was produced with (0 if unknown).
func AnalyzeQuality(orig, recon *Field, bound float64) (*QualityReport, error) {
	return quality.Analyze(orig, recon, bound)
}

// CompressPointwiseRel compresses with a POINT-WISE relative error bound:
// every reconstructed sample satisfies |v' - v| <= rel*|v|, zeros and signs
// restored exactly (the SZ family's PW_REL mode, realized via the standard
// logarithmic transform on top of any codec). rel must lie in (0, 1).
func CompressPointwiseRel(compressorName string, f *Field, rel float64) ([]byte, error) {
	codec, err := codecs.ByName(compressorName)
	if err != nil {
		return nil, err
	}
	return pwrel.Compress(codec, f, rel)
}

// DecompressPointwiseRel reverses CompressPointwiseRel.
func DecompressPointwiseRel(compressorName string, stream []byte) (*Field, error) {
	codec, err := codecs.ByName(compressorName)
	if err != nil {
		return nil, err
	}
	return pwrel.Decompress(codec, stream)
}
