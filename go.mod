module carol

go 1.22
