// Benchmark harness: one benchmark family per timing table/figure of the
// CAROL paper's evaluation, plus ablation benches for the design choices
// called out in DESIGN.md §6. The printable, paper-formatted versions of
// the same experiments live in cmd/carolbench.
package carol

import (
	"fmt"
	"testing"

	"carol/internal/bayesopt"
	"carol/internal/calib"
	"carol/internal/chunked"
	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/core"
	"carol/internal/dataset"
	"carol/internal/features"
	"carol/internal/fxrz"
	"carol/internal/gridsearch"
	"carol/internal/rf"
	"carol/internal/secre"
	"carol/internal/sz3"
	"carol/internal/trainset"
	"carol/internal/xrand"
)

func benchField(b *testing.B, ds, name string, n int) *Field {
	b.Helper()
	f, err := dataset.Generate(ds, name, dataset.Options{Nx: n, Ny: n, Nz: n})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// --- Compressor throughput (context for Figure 2 / Table 4 rows) ---

func BenchmarkCompressorCompress(b *testing.B) {
	f := benchField(b, "miranda", "viscosity", 48)
	eb := compressor.AbsBound(f, 1e-3)
	for _, name := range codecs.Names {
		codec, err := codecs.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(f.SizeBytes()))
			for i := 0; i < b.N; i++ {
				if _, err := codec.Compress(f, eb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompressorDecompress(b *testing.B) {
	f := benchField(b, "miranda", "viscosity", 48)
	eb := compressor.AbsBound(f, 1e-3)
	for _, name := range codecs.Names {
		codec, err := codecs.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		stream, err := codec.Compress(f, eb)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(f.SizeBytes()))
			for i := 0; i < b.N; i++ {
				if _, err := codec.Decompress(stream); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 2 / Table 4: full-compressor vs SECRE estimation sweeps ---

func BenchmarkTable4CollectionFull(b *testing.B) {
	f := benchField(b, "miranda", "viscosity", 40)
	bounds := trainset.GeometricBounds(1e-4, 1e-1, 10)
	for _, name := range codecs.Names {
		codec, err := codecs.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, rel := range bounds {
					if _, err := codec.Compress(f, compressor.AbsBound(f, rel)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkTable4CollectionSECRE(b *testing.B) {
	f := benchField(b, "miranda", "viscosity", 40)
	bounds := trainset.GeometricBounds(1e-4, 1e-1, 10)
	for _, name := range codecs.Names {
		sur, err := codecs.SurrogateByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, rel := range bounds {
					if _, err := sur.EstimateRatio(f, compressor.AbsBound(f, rel)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Table 5: calibration cost at 3/4/5 points (ablation 1) ---

func BenchmarkTable5Calibration(b *testing.B) {
	f := benchField(b, "miranda", "viscosity", 40)
	codec, err := codecs.ByName("sz3")
	if err != nil {
		b.Fatal(err)
	}
	sur, err := codecs.SurrogateByName("sz3")
	if err != nil {
		b.Fatal(err)
	}
	lo := compressor.AbsBound(f, 1e-3)
	hi := compressor.AbsBound(f, 1e-1)
	for _, points := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("points=%d", points), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := calib.Fit(codec, sur, f, calib.PickCalibrationBounds(lo, hi, points)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures 6 and 9: feature extraction strategies ---

func BenchmarkFig6Features(b *testing.B) {
	f := benchField(b, "nyx", "baryon_density", 64)
	b.Run("serial-full", func(b *testing.B) {
		b.SetBytes(int64(f.SizeBytes()))
		for i := 0; i < b.N; i++ {
			features.ExtractFull(f)
		}
	})
	b.Run("serial-sampled", func(b *testing.B) {
		b.SetBytes(int64(f.SizeBytes()))
		for i := 0; i < b.N; i++ {
			features.ExtractSampled(f, 4)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(f.SizeBytes()))
		for i := 0; i < b.N; i++ {
			features.ExtractParallel(f, features.ParallelOptions{})
		}
	})
}

func BenchmarkFig9FeaturesPerDataset(b *testing.B) {
	for _, spec := range []struct{ ds, field string }{
		{"miranda", "viscosity"}, {"nyx", "baryon_density"}, {"hcci", "temperature"},
	} {
		f := benchField(b, spec.ds, spec.field, 64)
		b.Run(spec.ds+"/fxrz", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				features.ExtractSampled(f, 4)
			}
		})
		b.Run(spec.ds+"/carol", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				features.ExtractParallel(f, features.ParallelOptions{})
			}
		})
	}
}

// --- Figure 5a: training strategies ---

func benchTrainData(b *testing.B, n int) ([][]float64, []float64) {
	b.Helper()
	rng := xrand.New(9)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, c, d := rng.Float64(), rng.Float64(), rng.Float64()
		X[i] = []float64{a, c, d, rng.Float64(), rng.Float64(), 1 + 2*rng.Float64()}
		y[i] = -3 + a - c*c + 0.5*d
	}
	return X, y
}

func BenchmarkFig5aGridSearch(b *testing.B) {
	X, y := benchTrainData(b, 1000)
	for i := 0; i < b.N; i++ {
		if _, err := gridsearch.Search(X, y, 4, 3, 1, 20, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5aBayesOpt(b *testing.B) {
	X, y := benchTrainData(b, 1000)
	for i := 0; i < b.N; i++ {
		opt := bayesopt.New(gridsearch.BOSpace(), 1)
		for it := 0; it < 4; it++ {
			v := opt.Suggest()
			cfg, err := gridsearch.ConfigFromValues(v, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg.NEstimators = 20
			score, err := rf.CrossValidate(X, y, cfg, 3, 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := opt.Observe(v, score); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig5aBayesOptCheckpointed(b *testing.B) {
	X, y := benchTrainData(b, 1000)
	// Pre-trained checkpoint outside the timed region.
	warm := bayesopt.New(gridsearch.BOSpace(), 1)
	for it := 0; it < 6; it++ {
		v := warm.Suggest()
		cfg, err := gridsearch.ConfigFromValues(v, 1)
		if err != nil {
			b.Fatal(err)
		}
		cfg.NEstimators = 20
		score, err := rf.CrossValidate(X, y, cfg, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := warm.Observe(v, score); err != nil {
			b.Fatal(err)
		}
	}
	ckpt := warm.Observations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := bayesopt.New(gridsearch.BOSpace(), 2)
		if err := opt.Restore(ckpt); err != nil {
			b.Fatal(err)
		}
		for it := 0; it < 2; it++ {
			v := opt.Suggest()
			cfg, err := gridsearch.ConfigFromValues(v, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg.NEstimators = 20
			score, err := rf.CrossValidate(X, y, cfg, 3, 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := opt.Observe(v, score); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 8: end-to-end setup, FXRZ vs CAROL ---

func setupFields(b *testing.B) []*Field {
	b.Helper()
	var out []*Field
	for _, name := range []string{"density", "pressure", "viscosity"} {
		out = append(out, benchField(b, "miranda", name, 32))
	}
	return out
}

func BenchmarkFig8SetupFXRZ(b *testing.B) {
	fields := setupFields(b)
	bounds := trainset.GeometricBounds(1e-4, 1e-1, 8)
	codec, err := codecs.ByName("sz3")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		fw := fxrz.New(codec, fxrz.Config{ErrorBounds: bounds, GridConfigs: 4, ForestCap: 10, Seed: 1})
		if _, err := fw.Collect(fields); err != nil {
			b.Fatal(err)
		}
		if _, err := fw.Train(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SetupCAROL(b *testing.B) {
	fields := setupFields(b)
	bounds := trainset.GeometricBounds(1e-4, 1e-1, 8)
	for i := 0; i < b.N; i++ {
		fw, err := core.New("sz3", core.Config{ErrorBounds: bounds, BOIterations: 4, ForestCap: 10, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fw.Collect(fields); err != nil {
			b.Fatal(err)
		}
		if _, err := fw.Train(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Prediction latency (Figure 9's end-to-end counterpart) ---

func BenchmarkPredictErrorBound(b *testing.B) {
	fields := setupFields(b)
	fw, err := core.New("szx", core.Config{
		ErrorBounds:  trainset.GeometricBounds(1e-4, 1e-1, 8),
		BOIterations: 4, ForestCap: 10, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := fw.Collect(fields); err != nil {
		b.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		b.Fatal(err)
	}
	test := benchField(b, "miranda", "velocityx", 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.PredictErrorBound(test, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 2: surrogate sampling aggressiveness ---

func BenchmarkAblationSamplingSZ3Stride(b *testing.B) {
	f := benchField(b, "miranda", "viscosity", 48)
	eb := compressor.AbsBound(f, 1e-2)
	for _, stride := range []int{2, 5, 8} {
		est, err := secre.New("sz3", secre.Options{SZ3Stride: stride})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("stride=%d", stride), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := est.EstimateRatio(f, eb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation 3: BO exploration parameter ---

func BenchmarkAblationBOXi(b *testing.B) {
	X, y := benchTrainData(b, 400)
	for _, xi := range []float64{0.001, 0.01, 0.1} {
		b.Run(fmt.Sprintf("xi=%g", xi), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := bayesopt.New(gridsearch.BOSpace(), 1)
				opt.Xi = xi
				for it := 0; it < 6; it++ {
					v := opt.Suggest()
					cfg, err := gridsearch.ConfigFromValues(v, 1)
					if err != nil {
						b.Fatal(err)
					}
					cfg.NEstimators = 10
					score, err := rf.CrossValidate(X, y, cfg, 3, 1)
					if err != nil {
						b.Fatal(err)
					}
					if err := opt.Observe(v, score); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Ablation 4: forest size vs prediction cost ---

func BenchmarkAblationForestSize(b *testing.B) {
	X, y := benchTrainData(b, 500)
	for _, trees := range []int{10, 50, 200} {
		cfg := rf.DefaultConfig()
		cfg.NEstimators = trees
		forest, err := rf.Train(X, y, cfg)
		if err != nil {
			b.Fatal(err)
		}
		probe := X[0]
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := forest.Predict(probe); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation 6: SZ3 predictor mode (interpolation vs Lorenzo) ---

func BenchmarkAblationSZ3Mode(b *testing.B) {
	f := benchField(b, "miranda", "viscosity", 48)
	eb := compressor.AbsBound(f, 1e-3)
	for _, m := range []struct {
		name string
		mode sz3.Mode
	}{{"interpolation", sz3.ModeInterpolation}, {"lorenzo", sz3.ModeLorenzo}} {
		codec := sz3.NewMode(m.mode)
		b.Run(m.name, func(b *testing.B) {
			b.SetBytes(int64(f.SizeBytes()))
			for i := 0; i < b.N; i++ {
				if _, err := codec.Compress(f, eb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Extension: chunk-parallel compression vs single-stream ---

func BenchmarkChunkedVsWhole(b *testing.B) {
	codec, err := codecs.ByName("sperr")
	if err != nil {
		b.Fatal(err)
	}
	f := benchField(b, "miranda", "density", 48)
	eb := compressor.AbsBound(f, 1e-3)
	b.Run("whole", func(b *testing.B) {
		b.SetBytes(int64(f.SizeBytes()))
		for i := 0; i < b.N; i++ {
			if _, err := codec.Compress(f, eb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("chunked", func(b *testing.B) {
		b.SetBytes(int64(f.SizeBytes()))
		for i := 0; i < b.N; i++ {
			if _, err := chunked.Compress(codec, f, eb, chunked.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation 5: parallel feature-extraction block size ---

func BenchmarkAblationBlockSize(b *testing.B) {
	f := benchField(b, "nyx", "baryon_density", 64)
	for _, bs := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("block=%d", bs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				features.ExtractParallel(f, features.ParallelOptions{BlockSize: bs})
			}
		})
	}
}
