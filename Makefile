.PHONY: check build vet test race bench-rf

check: ## build + vet + race-enabled tests (the tier-1 gate)
	./scripts/check.sh

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# The model-training benchmarks whose before/after numbers are committed to
# BENCH_RF.json.
bench-rf:
	go test -run '^$$' -bench 'BenchmarkTrain|BenchmarkCrossValidate|BenchmarkPredict' -benchmem ./internal/rf/
