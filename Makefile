.PHONY: check build vet lint test race bench-rf bench-model bench-codecs bench-gate bench-select bench-zoo

check: ## build + vet + race-enabled tests + carollint (the tier-1 gate)
	./scripts/check.sh

build:
	go build ./...

vet:
	go vet ./...

# The repo's own static-analysis suite (internal/analysis): determinism,
# float discipline, bounded concurrency, and the interprocedural safedec /
# pooling / metric-label disciplines. See DESIGN.md §9 and §14. Runs twice:
# production packages, then with _test.go files included.
lint:
	go run ./cmd/carollint ./...
	go run ./cmd/carollint -tests ./...

test:
	go test ./...

race:
	go test -race ./...

# The model-training benchmarks whose before/after numbers are committed to
# BENCH_RF.json.
bench-rf:
	go test -run '^$$' -bench 'BenchmarkTrain|BenchmarkCrossValidate|BenchmarkPredict' -benchmem ./internal/rf/

# The artifact load/predict benchmarks whose numbers are committed to
# BENCH_MODEL.json (carolserve's warm-load and serving hot paths).
bench-model:
	go test -run '^$$' -bench 'BenchmarkArtifact' -benchmem ./internal/model/

# Codec throughput through the block pipeline plus the huffman coder
# steady-state hot path; numbers committed to BENCH_CODECS.json.
bench-codecs:
	go test -run '^$$' -bench 'BenchmarkCodec(Compress|Decompress)|SteadyState' \
		-benchmem -benchtime 3x ./internal/pipeline/ ./internal/huffman/

# The fleet-routing benchmarks whose numbers are committed to
# BENCH_GATE.json: consistent-hash lookup and the gate's routing decision.
bench-gate:
	go test -run '^$$' -bench 'BenchmarkRing|BenchmarkGateRoute' -benchmem \
		./internal/ring/ ./cmd/carolgate/

# The adaptive-selection benchmarks whose numbers are committed to
# BENCH_SELECT.json: the lock-held decide/observe hot paths (must stay
# allocation-free) and the full surrogate-scored Select.
bench-select:
	go test -run '^$$' -bench 'BenchmarkAutoSelect' -benchmem ./internal/selector/

# The surrogate-zoo benchmarks whose numbers are committed to
# BENCH_ZOO.json: per-backend training (incl. the shared CV fold sweep)
# and batch prediction through the published artifact.
bench-zoo:
	go test -run '^$$' -bench 'BenchmarkZoo' -benchmem -benchtime 3x ./internal/zoo/
