// Quickstart: train a CAROL framework on a few representative fields and
// compress new data to a requested compression ratio.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"carol"
	"carol/internal/dataset"
)

func main() {
	// 1. Create a framework for one of the built-in compressors.
	fw, err := carol.New("sz3", carol.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Collect training data from representative fields. Here we use the
	// built-in synthetic Miranda turbulence generator; real applications
	// load raw dumps with carol.ReadRawField.
	opts := dataset.Options{Nx: 48, Ny: 48, Nz: 48}
	var training []*carol.Field
	for _, name := range []string{"density", "pressure", "viscosity"} {
		f, err := dataset.Generate("miranda", name, opts)
		if err != nil {
			log.Fatal(err)
		}
		training = append(training, f)
	}
	cs, err := fw.Collect(training)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d samples in %v (%d full-compressor calibration runs, %d surrogate runs)\n",
		cs.Samples, cs.Duration.Round(1e6), cs.FullCompressorRuns, cs.SurrogateRuns)

	// 3. Train the ratio->error-bound model with Bayesian optimization.
	ts, err := fw.Train()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v (%d BO evaluations, best forest: %d trees, depth %d)\n",
		ts.Duration.Round(1e6), ts.Evaluated, ts.BestConfig.NEstimators, ts.BestConfig.MaxDepth)

	// 4. Compress a new field to a fixed ratio.
	test, err := dataset.Generate("miranda", "velocityx", opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, target := range []float64{20, 50, 100} {
		stream, achieved, err := fw.CompressToRatio(test, target)
		if err != nil {
			log.Fatal(err)
		}
		recon, err := carol.Decompress("sz3", stream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("requested %5.0f:1  achieved %6.1f:1  (%d bytes, PSNR %.1f dB)\n",
			target, achieved, len(stream), carol.PSNR(test, recon))
	}
}
