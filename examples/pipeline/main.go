// Pipeline: an end-to-end in-situ workflow — a time-evolving simulation
// emits snapshots, each snapshot must fit a fixed per-step storage budget,
// the fixed-ratio model refines itself from its own outcomes (feedback),
// and every step lands in one snapshot archive on disk.
//
//	go run ./examples/pipeline
package main

import (
	"bytes"
	"fmt"
	"log"

	"carol"
	"carol/internal/archive"
	"carol/internal/dataset"
)

const (
	compressorName = "zfp"
	steps          = 6
	// Budget: each snapshot (3 fields) must compress below this fraction.
	budgetFraction = 0.25
)

func main() {
	// The model trains once on the first snapshot and then rides along,
	// feeding back what each step actually achieved.
	fw, err := carol.New(compressorName, carol.Config{
		Feedback:      true,
		FeedbackEvery: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fieldNames := []string{"P", "TC", "QVAPOR"}
	opts := dataset.Options{Nx: 40, Ny: 40, Nz: 16}

	snapshot := func(step int) []*carol.Field {
		var out []*carol.Field
		for _, fn := range fieldNames {
			o := opts
			o.TimeStep = step
			f, err := dataset.Generate("hurricane", fn, o)
			if err != nil {
				log.Fatal(err)
			}
			f.Name = fmt.Sprintf("%s@%02d", fn, step)
			out = append(out, f)
		}
		return out
	}

	first := snapshot(0)
	if _, err := fw.Collect(first); err != nil {
		log.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		log.Fatal(err)
	}

	w := archive.NewWriter()
	var rawTotal, packedTotal int
	for step := 0; step < steps; step++ {
		fields := snapshot(step * 6)
		var rawBytes int
		for _, f := range fields {
			rawBytes += f.SizeBytes()
		}
		budget := int(float64(rawBytes) * budgetFraction)
		target := float64(rawBytes) / float64(budget) * 1.05

		var stepBytes int
		for _, f := range fields {
			stream, achieved, err := fw.CompressToRatio(f, target)
			if err != nil {
				log.Fatal(err)
			}
			if err := w.AddRaw(archive.Entry{Name: f.Name, Codec: compressorName, Stream: stream}); err != nil {
				log.Fatal(err)
			}
			stepBytes += len(stream)
			_ = achieved
		}
		status := "OK"
		if stepBytes > budget {
			status = "OVER"
		}
		fmt.Printf("step %2d: %6d bytes of %6d budget  [%s]\n", step*6, stepBytes, budget, status)
		rawTotal += rawBytes
		packedTotal += stepBytes
	}

	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narchive: %d entries, %d bytes (overall ratio %.1f)\n",
		w.Len(), buf.Len(), float64(rawTotal)/float64(buf.Len()))

	// Prove the archive round-trips.
	a, err := archive.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	probe := fieldNames[0] + "@00"
	f, err := a.Field(probe)
	if err != nil {
		log.Fatal(err)
	}
	orig := snapshot(0)[0]
	fmt.Printf("restored %s: PSNR %.1f dB, Pearson %.4f\n",
		probe, carol.PSNR(orig, f), carol.Pearson(orig, f))
}
