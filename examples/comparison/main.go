// Comparison: FXRZ vs CAROL head-to-head on the same workload — setup cost
// (data collection + training) and end-to-end fixed-ratio accuracy, the
// trade-off Figure 8 and Table 3 of the paper quantify.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"time"

	"carol"
	"carol/internal/codecs"
	"carol/internal/dataset"
	"carol/internal/fxrz"
	"carol/internal/stats"
)

const compressorName = "sz3"

func main() {
	opts := dataset.Options{Nx: 48, Ny: 48, Nz: 48}
	var train []*carol.Field
	for _, name := range []string{"density", "pressure", "velocityy", "viscosity"} {
		f, err := dataset.Generate("miranda", name, opts)
		if err != nil {
			log.Fatal(err)
		}
		train = append(train, f)
	}
	test, err := dataset.Generate("miranda", "velocityx", opts)
	if err != nil {
		log.Fatal(err)
	}
	targets := []float64{10, 25, 50}

	// --- FXRZ baseline: full-compressor collection + grid search.
	codec, err := codecs.ByName(compressorName)
	if err != nil {
		log.Fatal(err)
	}
	fx := fxrz.New(codec, fxrz.Config{ForestCap: 50})
	start := time.Now()
	if _, err := fx.Collect(train); err != nil {
		log.Fatal(err)
	}
	if _, err := fx.Train(); err != nil {
		log.Fatal(err)
	}
	fxSetup := time.Since(start)
	var fxAlpha stats.Accumulator
	for _, t := range targets {
		_, achieved, err := fx.CompressToRatio(test, t)
		if err != nil {
			log.Fatal(err)
		}
		fxAlpha.Add(stats.PctError(achieved, t))
	}

	// --- CAROL: surrogate collection + calibration + Bayesian optimization.
	ca, err := carol.New(compressorName, carol.Config{ForestCap: 50})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := ca.Collect(train); err != nil {
		log.Fatal(err)
	}
	if _, err := ca.Train(); err != nil {
		log.Fatal(err)
	}
	caSetup := time.Since(start)
	var caAlpha stats.Accumulator
	for _, t := range targets {
		_, achieved, err := ca.CompressToRatio(test, t)
		if err != nil {
			log.Fatal(err)
		}
		caAlpha.Add(stats.PctError(achieved, t))
	}

	fmt.Printf("compressor: %s, %d training fields, %d targets on held-out field\n\n",
		compressorName, len(train), len(targets))
	fmt.Printf("%-8s %12s %14s\n", "", "setup time", "ratio error α")
	fmt.Printf("%-8s %12v %13.1f%%\n", "FXRZ", fxSetup.Round(time.Millisecond), fxAlpha.Mean())
	fmt.Printf("%-8s %12v %13.1f%%\n", "CAROL", caSetup.Round(time.Millisecond), caAlpha.Mean())
	fmt.Printf("\nCAROL setup speedup: %.1fx, accuracy difference: %.1f points\n",
		float64(fxSetup)/float64(caSetup), caAlpha.Mean()-fxAlpha.Mean())
}
