// Storage budget (use case 1 of the paper): a simulation snapshot with many
// fields must fit into a fixed storage quota shared on a supercomputer.
// Fixed-ratio compression makes the output size predictable: we derive the
// required per-field ratio from the quota, ask CAROL for it, and verify the
// snapshot lands under budget while error-bounded mode alone could not have
// told us the size in advance.
//
//	go run ./examples/storagebudget
package main

import (
	"fmt"
	"log"

	"carol"
	"carol/internal/dataset"
)

func main() {
	const compressorName = "sperr"

	// The snapshot: all seven Miranda fields.
	opts := dataset.Options{Nx: 48, Ny: 48, Nz: 48}
	fields, err := dataset.GenerateAll("miranda", opts)
	if err != nil {
		log.Fatal(err)
	}
	var rawBytes int
	for _, f := range fields {
		rawBytes += f.SizeBytes()
	}
	// Quota: 2% of the raw snapshot size.
	budget := rawBytes / 50
	targetRatio := float64(rawBytes) / float64(budget)
	fmt.Printf("snapshot: %d fields, %.1f MiB raw; quota %.2f MiB -> need %.0f:1\n",
		len(fields), mib(rawBytes), mib(budget), targetRatio)

	// Train on the snapshot's own fields (they are the best predictor of
	// their own compressibility).
	fw, err := carol.New(compressorName, carol.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fw.Collect(fields); err != nil {
		log.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		log.Fatal(err)
	}

	// Compress every field to the target ratio, retrying with a stiffer
	// request when the prediction lands a field over its share. This
	// ask-check-adjust loop is exactly what fixed-ratio prediction enables:
	// one cheap retry instead of a blind error-bound search.
	perField := budget / len(fields)
	var total int
	for _, f := range fields {
		request := targetRatio * 1.05 // small safety margin up front
		var stream []byte
		var achieved float64
		for attempt := 0; attempt < 3; attempt++ {
			var err error
			stream, achieved, err = fw.CompressToRatio(f, request)
			if err != nil {
				log.Fatal(err)
			}
			if len(stream) <= perField {
				break
			}
			request *= float64(len(stream)) / float64(perField) * 1.05
		}
		total += len(stream)
		recon, err := carol.Decompress(compressorName, stream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %8d bytes (ratio %6.1f, max err %.3g)\n",
			f.Name, len(stream), achieved, carol.MaxAbsError(f, recon))
	}
	fmt.Printf("total: %.3f MiB of %.3f MiB quota", mib(total), mib(budget))
	if total <= budget {
		fmt.Println("  -> within budget")
	} else {
		over := 100 * (float64(total)/float64(budget) - 1)
		fmt.Printf("  -> %.1f%% over budget\n", over)
	}
}

func mib(b int) float64 { return float64(b) / (1 << 20) }
