// Time series (the paper's Hurricane Isabel scenario): data characteristics
// drift across simulation time steps, so a model trained on early steps
// degrades later. CAROL's checkpointed Bayesian optimization folds new
// steps in cheaply (Framework.Refine); this example measures prediction
// error before and after refinement on late hurricane time steps.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"log"

	"carol"
	"carol/internal/dataset"
	"carol/internal/stats"
)

const fieldName = "P" // sea-level pressure, where the eye is most visible

func step(t int) *carol.Field {
	f, err := dataset.Generate("hurricane", fieldName, dataset.Options{
		Nx: 48, Ny: 48, Nz: 16, TimeStep: t,
	})
	if err != nil {
		log.Fatal(err)
	}
	return f
}

// alphaAt measures the end-to-end fixed-ratio error on one time step. The
// requested ratios are probed from what the compressor can actually reach
// on this data, so α reflects model fidelity rather than impossible asks.
func alphaAt(fw *carol.Framework, f *carol.Field) float64 {
	var acc stats.Accumulator
	for _, rel := range []float64{2e-3, 1e-2, 5e-2} {
		probe, err := carol.Compress("zfp", f, rel)
		if err != nil {
			log.Fatal(err)
		}
		target := carol.Ratio(f, probe)
		_, achieved, err := fw.CompressToRatio(f, target)
		if err != nil {
			log.Fatal(err)
		}
		acc.Add(stats.PctError(achieved, target))
	}
	return acc.Mean()
}

func main() {
	fw, err := carol.New("zfp", carol.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Train on the first few time steps of the simulation.
	var early []*carol.Field
	for t := 0; t < 4; t++ {
		early = append(early, step(t))
	}
	if _, err := fw.Collect(early); err != nil {
		log.Fatal(err)
	}
	ts, err := fw.Train()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial training: %d BO evaluations in %v\n", ts.Evaluated, ts.Duration.Round(1e6))

	// As the hurricane evolves, check accuracy on later steps.
	late := step(36)
	before := alphaAt(fw, late)
	fmt.Printf("step 36 before refinement: α = %.1f%%\n", before)

	// Refine with mid-simulation steps; the BO search resumes from its
	// checkpoint instead of restarting (ts.Resumed).
	var mid []*carol.Field
	for t := 20; t < 32; t += 4 {
		mid = append(mid, step(t))
	}
	_, rts, err := fw.Refine(mid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refinement: %d extra BO evaluations in %v (resumed=%v)\n",
		rts.Evaluated, rts.Duration.Round(1e6), rts.Resumed)

	after := alphaAt(fw, late)
	fmt.Printf("step 36 after refinement:  α = %.1f%%\n", after)
	if after <= before {
		fmt.Println("refinement improved (or held) late-step accuracy")
	} else {
		fmt.Println("refinement did not help on this run — collect more steps")
	}

	// The checkpoint survives process boundaries: serialize-observations
	// and restore into a fresh framework.
	ckpt := fw.Checkpoint()
	fresh, err := carol.New("zfp", carol.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := fresh.RestoreCheckpoint(ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint carries %d observations into the next session\n", len(ckpt))
}
