#!/bin/sh
# smoke_train.sh — end-to-end continuous-training loop (DESIGN.md §17):
# publish a deliberately weak offline baseline with caroltrain, boot
# carolserve with -harvest-dir and -registry-watch, drive varied traffic
# so outcomes land in the harvest journal, then run carolretrain twice:
#
#   1. the zoo candidate (trained on the served traffic) wins the shadow
#      evaluation against the stale baseline and is auto-published; the
#      watching carolserve hot-swaps to it without a signal, visible in
#      /v1/models as a new version + backend tag;
#   2. an immediate rerun on the unchanged journal trains a bit-identical
#      candidate, which ties — and a tie is not a win, so nothing is
#      published and the registry provably stays at the retrained version.
#
# Everything is seeded and the traffic is fixed, so both verdicts are
# deterministic. Pure sh + curl; helpers in scripts/lib.sh.
set -eu

scriptdir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
bindir=$(mktemp -d)
workdir=$(mktemp -d)
. "$scriptdir/lib.sh"
server_pid=
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$bindir" "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bindir" ./cmd/carolserve ./cmd/caroltrain ./cmd/carolretrain ./cmd/carolgen

echo "== generate traffic fields"
dims=32x32x8
"$bindir/carolgen" -dataset miranda -field velocityx -dims $dims -out "$workdir/f1.raw"
"$bindir/carolgen" -dataset miranda -field pressure -dims $dims -out "$workdir/f2.raw"
"$bindir/carolgen" -dataset hurricane -field TC -step 3 -dims $dims -out "$workdir/f3.raw"
"$bindir/carolgen" -dataset nyx -field temperature -dims $dims -out "$workdir/f4.raw"
"$bindir/carolgen" -dataset it -field velocity_magnitude -dims $dims -out "$workdir/f5.raw"

echo "== caroltrain: publish weak offline baseline as szx v1"
# Tiny budget on a mismatched grid: the point is a live model the
# traffic-trained candidate can beat.
"$bindir/caroltrain" -codec szx -model-dir "$workdir/models" \
    -datasets miranda:velocityx -dims 16x16x8 -bounds 4 -bo-iters 1 \
    -forest-cap 4 -kfolds 2 -seed 7

addr="127.0.0.1:$(random_port)"
echo "== boot carolserve on $addr with -harvest-dir and -registry-watch"
"$bindir/carolserve" -addr "$addr" -model-dir "$workdir/models" \
    -harvest-dir "$workdir/harvest" -registry-watch 200ms \
    >"$(log_path carolserve)" 2>&1 &
server_pid=$!
wait_healthz carolserve "$addr" "$server_pid"
curl -fsS "http://$addr/v1/models" | grep -q '"version":1' || {
    echo "smoke_train: carolserve did not load baseline v1" >&2
    exit 1
}

echo "== serve traffic: 30 rel-bounded compressions across 5 fields"
for f in f1 f2 f3 f4 f5; do
    for rel in 3e-2 1e-2 3e-3 1e-3 3e-4 1e-4; do
        curl -fsS -o /dev/null --data-binary @"$workdir/$f.raw" \
            "http://$addr/v1/compress?codec=szx&rel=$rel&dims=$dims"
    done
done
[ -f "$workdir/harvest/szx.journal" ] || {
    echo "smoke_train: no harvest journal written" >&2
    dump_log carolserve
    exit 1
}

echo "== carolretrain cycle 1: traffic-trained candidate must win and publish v2"
"$bindir/carolretrain" -codec szx -model-dir "$workdir/models" \
    -harvest-dir "$workdir/harvest" -min-samples 20 -margin 0.001 \
    -seed 11 -workers 2 | tee "$workdir/retrain1.txt"
grep -q "published szx v2" "$workdir/retrain1.txt" || {
    echo "smoke_train: first retrain cycle did not publish v2" >&2
    exit 1
}
winner=$(sed -n 's/^carolretrain: candidate backend \([a-z]*\).*/\1/p' "$workdir/retrain1.txt")
[ -n "$winner" ] || { echo "smoke_train: no candidate backend in report" >&2; exit 1; }
echo "   zoo winner: $winner"

echo "== registry-watch hot-swap: /v1/models must show v2 + backend \"$winner\""
wait_for carolserve 50 sh -c "curl -fsS 'http://$addr/v1/models' | grep -q '\"version\":2'"
curl -fsS "http://$addr/v1/models" >"$workdir/models.json"
cat "$workdir/models.json"; echo
grep -q "\"backend\":\"$winner\"" "$workdir/models.json" || {
    echo "smoke_train: /v1/models backend tag does not match retrain winner" >&2
    exit 1
}
curl -fsS --data-binary @"$workdir/f1.raw" \
    "http://$addr/v1/predict?ratio=10,50&dims=$dims" | grep -q '"version":2' || {
    echo "smoke_train: /v1/predict still serving v1 after hot-swap" >&2
    exit 1
}

echo "== carolretrain cycle 2: unchanged traffic ties, must NOT publish"
"$bindir/carolretrain" -codec szx -model-dir "$workdir/models" \
    -harvest-dir "$workdir/harvest" -min-samples 20 -margin 0.001 \
    -seed 11 -workers 2 | tee "$workdir/retrain2.txt"
grep -q "no-win: nothing published" "$workdir/retrain2.txt" || {
    echo "smoke_train: second retrain cycle should be a no-win" >&2
    exit 1
}
curl -fsS "http://$addr/v1/models" | grep -q '"version":2' || {
    echo "smoke_train: registry advanced past v2 after a losing candidate" >&2
    exit 1
}

echo "== harvest metrics"
curl -fsS "http://$addr/metrics" | grep "harvest_records_total" || {
    echo "smoke_train: /metrics missing harvest_records_total" >&2
    exit 1
}

echo "== graceful shutdown (SIGTERM)"
stop_graceful carolserve "$server_pid"
server_pid=
echo "== smoke_train passed"
