#!/bin/sh
# Tier-1 gate: everything must build, vet clean, pass with the race
# detector on (the rf engine, CV folds, batch prediction and feature
# extraction all run goroutine pools), and pass carollint — the repo's own
# determinism/float-discipline/bounded-concurrency analyzers (DESIGN.md §9).
set -eux

go build ./...
go vet ./...
go test -race ./...
go run ./cmd/carollint ./...

# Replay the checked-in fuzz seed corpora as plain tests (no mutation): every
# seed under testdata/fuzz/ must decode-or-reject without panicking.
go test -run '^Fuzz' ./internal/codecs ./internal/archive ./internal/chunked ./internal/model
