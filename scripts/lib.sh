# lib.sh — shared boot/poll/teardown helpers for the smoke scripts.
# Sourced (not executed) by smoke.sh and smoke_fleet.sh. POSIX sh.
#
# Callers may set SMOKE_LOG_DIR to collect server logs somewhere CI can
# upload as artifacts; by default logs land in the caller's $workdir and
# vanish with it.

# log_path NAME: where NAME's server log lives.
log_path() {
    echo "${SMOKE_LOG_DIR:-${workdir:?log_path: set workdir or SMOKE_LOG_DIR}}/$1.log"
}

# dump_log NAME: tail NAME's log to stderr for post-mortem diagnostics.
dump_log() {
    _f=$(log_path "$1")
    if [ -f "$_f" ]; then
        echo "---- $1 log ($_f, last 100 lines) ----" >&2
        tail -n 100 "$_f" >&2
        echo "---- end $1 log ----" >&2
    else
        echo "---- no log for $1 at $_f ----" >&2
    fi
}

# random_port [SALT]: pseudo-random loopback port derived from the pid,
# salted so one script can pick several distinct ports.
random_port() {
    echo $((20000 + ($$ + ${1:-0} * 131) % 20000))
}

# wait_healthz NAME ADDR PID [DEADLINE_TENTHS]: poll http://ADDR/healthz
# until it answers 200. Fails — dumping NAME's log — when the process
# dies first or the deadline (default 10s) passes, so a wedged boot never
# hangs the script and always leaves a diagnostic.
wait_healthz() {
    _name=$1; _addr=$2; _pid=$3; _deadline=${4:-100}
    _i=0
    until curl -fsS -o /dev/null "http://$_addr/healthz" 2>/dev/null; do
        _i=$((_i + 1))
        if [ "$_i" -ge "$_deadline" ]; then
            echo "smoke: $_name never became healthy on $_addr within $((_deadline / 10))s" >&2
            dump_log "$_name"
            return 1
        fi
        if ! kill -0 "$_pid" 2>/dev/null; then
            echo "smoke: $_name exited before becoming healthy" >&2
            dump_log "$_name"
            return 1
        fi
        sleep 0.1
    done
}

# wait_for NAME DEADLINE_TENTHS CMD...: poll CMD until it succeeds;
# after the deadline, dump NAME's log and fail.
wait_for() {
    _name=$1; _deadline=$2; shift 2
    _i=0
    until "$@" 2>/dev/null; do
        _i=$((_i + 1))
        if [ "$_i" -ge "$_deadline" ]; then
            echo "smoke: $_name: condition never held: $*" >&2
            dump_log "$_name"
            return 1
        fi
        sleep 0.1
    done
}

# stop_graceful NAME PID: SIGTERM, wait, and require a zero exit — the
# graceful-drain contract every server in this repo makes.
stop_graceful() {
    _name=$1; _pid=$2
    kill -TERM "$_pid" 2>/dev/null || true
    _status=0
    wait "$_pid" || _status=$?
    if [ "$_status" -ne 0 ]; then
        echo "smoke: $_name exited $_status after SIGTERM, want 0" >&2
        dump_log "$_name"
        return 1
    fi
}
