#!/bin/sh
# smoke_fleet.sh — multi-process fleet topology smoke test: boot three
# carolserve shards over one shared model registry plus one carolgate
# front door, then verify the behaviors the fleet promises:
#
#   1. whole-field requests route through the gate and round-trip
#   2. large fields slab-fan across shards into a CCH1 container that
#      decompresses back through the gate
#   3. /v1/fleet reports 3 healthy shards with converged models
#   4. killing a shard degrades the fleet but not correctness
#   5. publishing a new model version converges every shard via the
#      registry-watch poll (no SIGHUP fan-out)
#   6. the async job API accepts, runs, and serves a chunked compress
#   7. mode=auto picks a codec adaptively — whole-routed (shard decides)
#      and fan-out (gate decides once for all slabs) — and the bandit
#      state is inspectable at /v1/selector on gate and shards
#   8. SIGTERM drains gate and shards to clean exits
#
# Pure sh + curl. Set SMOKE_LOG_DIR to keep per-process logs (CI uploads
# them as artifacts on failure).
set -eu

scriptdir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
bindir=$(mktemp -d)
workdir=$(mktemp -d)
. "$scriptdir/lib.sh"

s1_pid=; s2_pid=; s3_pid=; gate_pid=
cleanup() {
    for p in "$gate_pid" "$s1_pid" "$s2_pid" "$s3_pid"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$bindir" "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bindir" ./cmd/carolserve ./cmd/carolgate ./cmd/caroltrain

echo "== caroltrain: publish model version 1 into the shared registry"
"$bindir/caroltrain" -codec szx -model-dir "$workdir/models" \
    -datasets miranda:velocityx -dims 16x16x8 -bounds 6 -bo-iters 2 \
    -forest-cap 8 -kfolds 2 -seed 7

p1=$(random_port 1); p2=$(random_port 2); p3=$(random_port 3); pg=$(random_port 4)
a1="127.0.0.1:$p1"; a2="127.0.0.1:$p2"; a3="127.0.0.1:$p3"; ag="127.0.0.1:$pg"

echo "== boot 3 shards on $a1 $a2 $a3 (registry-watch 200ms)"
for i in 1 2 3; do
    eval "addr=\$a$i"
    "$bindir/carolserve" -addr "$addr" -model-dir "$workdir/models" \
        -registry-watch 200ms >"$(log_path "shard$i")" 2>&1 &
    eval "s${i}_pid=$!"
done
wait_healthz shard1 "$a1" "$s1_pid"
wait_healthz shard2 "$a2" "$s2_pid"
wait_healthz shard3 "$a3" "$s3_pid"

echo "== boot carolgate on $ag over the 3 shards"
"$bindir/carolgate" -addr "$ag" \
    -shards "http://$a1,http://$a2,http://$a3" \
    -chunk-threshold-kib 16 -probe-interval 200ms \
    >"$(log_path carolgate)" 2>&1 &
gate_pid=$!
wait_healthz carolgate "$ag" "$gate_pid"
wait_for carolgate 100 curl -fsS -o /dev/null "http://$ag/readyz"

echo "== whole-field round trip through the gate (4 KiB, below threshold)"
dd if=/dev/zero of="$workdir/small.raw" bs=4096 count=1 2>/dev/null
curl -fsS -o "$workdir/small.bin" -D "$workdir/small-headers.txt" \
    --data-binary @"$workdir/small.raw" \
    "http://$ag/v1/compress?codec=szx&rel=1e-3&dims=32x32x1"
grep -i "X-Carol-Achieved-Ratio" "$workdir/small-headers.txt"
curl -fsS -o "$workdir/small-restored.raw" --data-binary @"$workdir/small.bin" \
    "http://$ag/v1/decompress?codec=szx"
restored=$(wc -c <"$workdir/small-restored.raw")
if [ "$restored" -ne 4096 ]; then
    echo "smoke-fleet: whole-field round trip restored $restored bytes, want 4096" >&2
    dump_log carolgate
    exit 1
fi

echo "== chunked fan-out round trip through the gate (64 KiB field)"
dd if=/dev/zero of="$workdir/big.raw" bs=65536 count=1 2>/dev/null
curl -fsS -o "$workdir/big.cch" -D "$workdir/big-headers.txt" \
    --data-binary @"$workdir/big.raw" \
    "http://$ag/v1/compress?codec=szx&rel=1e-3&dims=64x16x16"
head -c 4 "$workdir/big.cch" | grep -q CCH1 || {
    echo "smoke-fleet: large compress did not answer a CCH1 container" >&2
    dump_log carolgate
    exit 1
}
grep -i "X-Carol-Fanout-Chunks: 3" "$workdir/big-headers.txt" || {
    echo "smoke-fleet: fan-out did not use 3 chunks" >&2
    cat "$workdir/big-headers.txt" >&2
    exit 1
}
curl -fsS -o "$workdir/big-restored.raw" --data-binary @"$workdir/big.cch" \
    "http://$ag/v1/decompress?codec=szx"
restored=$(wc -c <"$workdir/big-restored.raw")
if [ "$restored" -ne 65536 ]; then
    echo "smoke-fleet: chunked round trip restored $restored bytes, want 65536" >&2
    dump_log carolgate
    exit 1
fi

echo "== /v1/fleet: 3 healthy shards, models converged at version 1"
wait_for carolgate 100 sh -c \
    "curl -fsS 'http://$ag/v1/fleet' | grep -q '\"healthy_shards\":3'"
curl -fsS "http://$ag/v1/fleet" >"$workdir/fleet1.json"
cat "$workdir/fleet1.json"; echo
grep -q '"models_converged":true' "$workdir/fleet1.json" || {
    echo "smoke-fleet: fleet not converged at boot" >&2
    exit 1
}

echo "== kill shard 2: degraded but correct"
kill -KILL "$s2_pid" 2>/dev/null
wait "$s2_pid" 2>/dev/null || true
s2_pid=
# The gate notices via probe or first failed request; routing must keep
# answering either way (retry-on-next-replica).
curl -fsS -o "$workdir/degraded.bin" --data-binary @"$workdir/small.raw" \
    "http://$ag/v1/compress?codec=szx&rel=1e-3&dims=32x32x1" || {
    echo "smoke-fleet: compress failed with one shard down" >&2
    dump_log carolgate
    exit 1
}
wait_for carolgate 100 sh -c \
    "curl -fsS 'http://$ag/v1/fleet' | grep -q '\"healthy_shards\":2'"
# Chunked traffic must also survive on the 2 survivors.
curl -fsS -o "$workdir/big2.cch" --data-binary @"$workdir/big.raw" \
    "http://$ag/v1/compress?codec=szx&rel=1e-3&dims=64x16x16"
curl -fsS -o "$workdir/big2-restored.raw" --data-binary @"$workdir/big2.cch" \
    "http://$ag/v1/decompress?codec=szx"
restored=$(wc -c <"$workdir/big2-restored.raw")
if [ "$restored" -ne 65536 ]; then
    echo "smoke-fleet: degraded chunked round trip restored $restored bytes, want 65536" >&2
    dump_log carolgate
    exit 1
fi

echo "== publish model version 2: registry watch converges surviving shards"
"$bindir/caroltrain" -codec szx -model-dir "$workdir/models" \
    -datasets miranda:velocityx -dims 16x16x8 -bounds 6 -bo-iters 2 \
    -forest-cap 8 -kfolds 2 -seed 8
wait_for carolgate 150 sh -c \
    "curl -fsS 'http://$ag/v1/fleet' >'$workdir/fleet2.json' \
     && grep -q '\"szx\":2' '$workdir/fleet2.json' \
     && ! grep -q '\"szx\":1' '$workdir/fleet2.json' \
     && grep -q '\"models_converged\":true' '$workdir/fleet2.json'"
cat "$workdir/fleet2.json"; echo

echo "== async job: submit, poll, fetch result"
curl -fsS -o "$workdir/job.json" -H "X-Carol-Tenant: smoke" \
    --data-binary @"$workdir/big.raw" \
    "http://$ag/v1/jobs/compress?codec=szx&rel=1e-3&dims=64x16x16"
cat "$workdir/job.json"; echo
job_id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$workdir/job.json")
if [ -z "$job_id" ]; then
    echo "smoke-fleet: job submit returned no id" >&2
    exit 1
fi
wait_for carolgate 100 sh -c \
    "curl -fsS 'http://$ag/v1/jobs/$job_id' | grep -q '\"state\":\"done\"'"
curl -fsS -o "$workdir/job-result.cch" "http://$ag/v1/jobs/$job_id/result"
head -c 4 "$workdir/job-result.cch" | grep -q CCH1 || {
    echo "smoke-fleet: job result is not a CCH1 container" >&2
    dump_log carolgate
    exit 1
}
curl -fsS -o "$workdir/job-restored.raw" --data-binary @"$workdir/job-result.cch" \
    "http://$ag/v1/decompress?codec=szx"
restored=$(wc -c <"$workdir/job-restored.raw")
if [ "$restored" -ne 65536 ]; then
    echo "smoke-fleet: job round trip restored $restored bytes, want 65536" >&2
    exit 1
fi

echo "== mode=auto: whole-routed adaptive compress through the gate"
curl -fsS -o "$workdir/auto-small.bin" -D "$workdir/auto-small-headers.txt" \
    --data-binary @"$workdir/small.raw" \
    "http://$ag/v1/compress?mode=auto&rel=1e-3&dims=32x32x1"
chosen=$(tr -d '\r' <"$workdir/auto-small-headers.txt" \
    | sed -n 's/^[Xx]-[Cc]arol-[Cc]odec-[Cc]hosen: //p')
if [ -z "$chosen" ]; then
    echo "smoke-fleet: auto compress returned no X-Carol-Codec-Chosen" >&2
    cat "$workdir/auto-small-headers.txt" >&2
    dump_log carolgate
    exit 1
fi
echo "   chosen codec: $chosen"
curl -fsS -o "$workdir/auto-small-restored.raw" \
    --data-binary @"$workdir/auto-small.bin" \
    "http://$ag/v1/decompress?codec=$chosen"
restored=$(wc -c <"$workdir/auto-small-restored.raw")
if [ "$restored" -ne 4096 ]; then
    echo "smoke-fleet: auto whole round trip restored $restored bytes, want 4096" >&2
    exit 1
fi

echo "== mode=auto: chunked fan-out resolves one codec at the gate"
curl -fsS -o "$workdir/auto-big.cch" -D "$workdir/auto-big-headers.txt" \
    --data-binary @"$workdir/big.raw" \
    "http://$ag/v1/compress?mode=auto&rel=1e-3&dims=64x16x16"
head -c 4 "$workdir/auto-big.cch" | grep -q CCH1 || {
    echo "smoke-fleet: auto fan-out did not answer a CCH1 container" >&2
    dump_log carolgate
    exit 1
}
gchosen=$(tr -d '\r' <"$workdir/auto-big-headers.txt" \
    | sed -n 's/^[Xx]-[Cc]arol-[Cc]odec-[Cc]hosen: //p')
if [ -z "$gchosen" ]; then
    echo "smoke-fleet: auto fan-out returned no X-Carol-Codec-Chosen" >&2
    exit 1
fi
echo "   gate chose: $gchosen"
curl -fsS -o "$workdir/auto-big-restored.raw" \
    --data-binary @"$workdir/auto-big.cch" \
    "http://$ag/v1/decompress?codec=$gchosen"
restored=$(wc -c <"$workdir/auto-big-restored.raw")
if [ "$restored" -ne 65536 ]; then
    echo "smoke-fleet: auto chunked round trip restored $restored bytes, want 65536" >&2
    exit 1
fi

echo "== /v1/selector: bandit state inspectable on gate and live shards"
for ep in "$ag" "$a1" "$a3"; do
    curl -fsS "http://$ep/v1/selector" >"$workdir/selector-$ep.json" || {
        echo "smoke-fleet: /v1/selector failed on $ep" >&2
        exit 1
    }
    grep -q '"decisions"' "$workdir/selector-$ep.json" || {
        echo "smoke-fleet: /v1/selector on $ep missing decisions field" >&2
        cat "$workdir/selector-$ep.json" >&2
        exit 1
    }
done

echo "== gate /metrics sanity"
curl -fsS "http://$ag/metrics" >"$workdir/gate-metrics.txt"
for metric in gate_requests_total gate_routed_total carol_fleet_healthy_shards \
    gate_fanout_total gate_shard_request_seconds; do
    grep -q "$metric" "$workdir/gate-metrics.txt" || {
        echo "smoke-fleet: gate /metrics missing $metric" >&2
        exit 1
    }
done

echo "== graceful shutdown: gate first, then shards"
stop_graceful carolgate "$gate_pid"; gate_pid=
stop_graceful shard1 "$s1_pid"; s1_pid=
stop_graceful shard3 "$s3_pid"; s3_pid=
echo "== smoke-fleet passed"
