#!/bin/sh
# Short-budget fuzzing sweep over every fuzz target in the repo. Each target
# gets FUZZTIME (default 20s) of coverage-guided mutation on top of the
# checked-in seed corpus; any crasher fails the script and leaves the
# reproducer under the package's testdata/fuzz/ directory for triage.
#
# Usage: scripts/fuzz.sh [fuzztime]
set -eu

FUZZTIME="${1:-20s}"

run() {
	pkg="$1"
	target="$2"
	echo "==> go test -fuzz=^${target}\$ -fuzztime=${FUZZTIME} ${pkg}"
	go test -fuzz="^${target}\$" -fuzztime="${FUZZTIME}" "${pkg}"
}

run ./internal/codecs FuzzDecompressSZx
run ./internal/codecs FuzzDecompressZFP
run ./internal/codecs FuzzDecompressSZ3
run ./internal/codecs FuzzDecompressSPERR
run ./internal/codecs FuzzDecompressSZP
run ./internal/codecs FuzzCompressRoundTrip
run ./internal/archive FuzzArchiveRead
run ./internal/chunked FuzzChunkedDecompress
run ./internal/model FuzzModelRead
run ./internal/selector FuzzAutoSelect

echo "fuzz sweep clean"
