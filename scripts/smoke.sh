#!/bin/sh
# smoke.sh — build the CLIs, boot carolserve on a random loopback port, hit
# the core endpoints and shut it down gracefully. Any non-200 answer or a
# non-zero server exit fails the script. Pure sh + curl.
set -eu

bindir=$(mktemp -d)
workdir=$(mktemp -d)
server_pid=
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$bindir" "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bindir" ./cmd/carolserve ./cmd/carolbench

echo "== carolbench -list"
"$bindir/carolbench" -list

port=$((20000 + $$ % 20000))
addr="127.0.0.1:$port"
echo "== boot carolserve on $addr"
"$bindir/carolserve" -addr "$addr" &
server_pid=$!

# Wait for the listener (up to ~5s).
i=0
until curl -fsS -o /dev/null "http://$addr/healthz" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: server never became healthy on $addr" >&2
        exit 1
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "smoke: server exited before becoming healthy" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== GET /v1/codecs"
curl -fsS "http://$addr/v1/codecs"
echo

echo "== POST /v1/compress"
# 32x32x1 float32 zeros = 4096 bytes.
dd if=/dev/zero of="$workdir/field.raw" bs=4096 count=1 2>/dev/null
curl -fsS -o "$workdir/stream.bin" -D "$workdir/headers.txt" \
    --data-binary @"$workdir/field.raw" \
    "http://$addr/v1/compress?codec=szx&rel=1e-3&dims=32x32x1"
grep -i "X-Carol-Achieved-Ratio" "$workdir/headers.txt"

echo "== GET /metrics"
curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
for metric in http_requests_total http_request_seconds_bucket codec_compress_seconds; do
    grep -q "$metric" "$workdir/metrics.txt" || {
        echo "smoke: /metrics missing $metric" >&2
        exit 1
    }
done
wc -l "$workdir/metrics.txt"

echo "== GET /debug/vars"
curl -fsS -o /dev/null "http://$addr/debug/vars"

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=
if [ "$status" -ne 0 ]; then
    echo "smoke: server exited $status after SIGTERM, want 0" >&2
    exit 1
fi
echo "== smoke passed"
