#!/bin/sh
# smoke.sh — build the CLIs, train and publish a model with caroltrain,
# boot carolserve on a random loopback port with the model registry
# mounted, hit the core endpoints (including /v1/predict and a SIGHUP
# hot reload to a second model version) and shut down gracefully. Any
# non-200 answer or a non-zero server exit fails the script. Pure sh + curl.
set -eu

bindir=$(mktemp -d)
workdir=$(mktemp -d)
server_pid=
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$bindir" "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bindir" ./cmd/carolserve ./cmd/carolbench ./cmd/caroltrain ./cmd/carolc

echo "== carolbench -list"
"$bindir/carolbench" -list

echo "== caroltrain: publish model version 1"
"$bindir/caroltrain" -codec szx -model-dir "$workdir/models" \
    -datasets miranda:velocityx -dims 16x16x8 -bounds 6 -bo-iters 2 \
    -forest-cap 8 -kfolds 2 -seed 7

port=$((20000 + $$ % 20000))
addr="127.0.0.1:$port"
echo "== boot carolserve on $addr with -model-dir"
"$bindir/carolserve" -addr "$addr" -model-dir "$workdir/models" &
server_pid=$!

# Wait for the listener (up to ~5s).
i=0
until curl -fsS -o /dev/null "http://$addr/healthz" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: server never became healthy on $addr" >&2
        exit 1
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "smoke: server exited before becoming healthy" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== GET /v1/codecs"
curl -fsS "http://$addr/v1/codecs"
echo

echo "== POST /v1/compress"
# 32x32x1 float32 zeros = 4096 bytes.
dd if=/dev/zero of="$workdir/field.raw" bs=4096 count=1 2>/dev/null
curl -fsS -o "$workdir/stream.bin" -D "$workdir/headers.txt" \
    --data-binary @"$workdir/field.raw" \
    "http://$addr/v1/compress?codec=szx&rel=1e-3&dims=32x32x1"
grep -i "X-Carol-Achieved-Ratio" "$workdir/headers.txt"

echo "== streaming CLI path: carolc -stream round trip (CPL1 container)"
"$bindir/carolc" -stream -compressor sz3 -dims 32x32x1 -eb 1e-3 \
    -in "$workdir/field.raw" -out "$workdir/field.cpl"
head -c 4 "$workdir/field.cpl" | grep -q CPL1 || {
    echo "smoke: carolc -stream did not write a CPL1 container" >&2
    exit 1
}
"$bindir/carolc" -d -compressor sz3 -in "$workdir/field.cpl" -out "$workdir/field.restored"
restored=$(wc -c <"$workdir/field.restored")
if [ "$restored" -ne 4096 ]; then
    echo "smoke: streaming round trip restored $restored bytes, want 4096" >&2
    exit 1
fi

echo "== POST /v1/compress?stream=1 (pipeline container) and decompress auto-detect"
curl -fsS -o "$workdir/stream-cpl.bin" --data-binary @"$workdir/field.raw" \
    "http://$addr/v1/compress?codec=szx&rel=1e-3&stream=1&dims=32x32x1"
head -c 4 "$workdir/stream-cpl.bin" | grep -q CPL1 || {
    echo "smoke: stream=1 did not answer a CPL1 container" >&2
    exit 1
}
curl -fsS -o "$workdir/stream-restored.raw" --data-binary @"$workdir/stream-cpl.bin" \
    "http://$addr/v1/decompress?codec=szx"
restored=$(wc -c <"$workdir/stream-restored.raw")
if [ "$restored" -ne 4096 ]; then
    echo "smoke: server streaming round trip restored $restored bytes, want 4096" >&2
    exit 1
fi

echo "== GET /readyz"
curl -fsS "http://$addr/readyz"

echo "== GET /v1/models"
curl -fsS "http://$addr/v1/models" >"$workdir/models.json"
cat "$workdir/models.json"; echo
grep -q '"version":1' "$workdir/models.json" || {
    echo "smoke: /v1/models does not list version 1" >&2
    exit 1
}

echo "== POST /v1/predict"
curl -fsS --data-binary @"$workdir/field.raw" \
    "http://$addr/v1/predict?ratio=10,100&dims=32x32x1" >"$workdir/predict1.json"
cat "$workdir/predict1.json"; echo
grep -q '"error_bounds"' "$workdir/predict1.json" || {
    echo "smoke: /v1/predict returned no error bounds" >&2
    exit 1
}

echo "== caroltrain: publish model version 2, then SIGHUP hot reload"
"$bindir/caroltrain" -codec szx -model-dir "$workdir/models" \
    -datasets miranda:velocityx -dims 16x16x8 -bounds 6 -bo-iters 2 \
    -forest-cap 8 -kfolds 2 -seed 8
kill -HUP "$server_pid"
i=0
until curl -fsS "http://$addr/v1/models" | grep -q '"version":2'; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: server never swapped to model version 2 after SIGHUP" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS --data-binary @"$workdir/field.raw" \
    "http://$addr/v1/predict?ratio=10,100&dims=32x32x1" | grep -q '"version":2' || {
    echo "smoke: /v1/predict still serving old version after reload" >&2
    exit 1
}

echo "== GET /metrics"
curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
for metric in http_requests_total http_request_seconds_bucket codec_compress_seconds \
    model_loaded_version model_load_total model_predict_seconds model_forest_trees; do
    grep -q "$metric" "$workdir/metrics.txt" || {
        echo "smoke: /metrics missing $metric" >&2
        exit 1
    }
done
wc -l "$workdir/metrics.txt"

echo "== GET /debug/vars"
curl -fsS -o /dev/null "http://$addr/debug/vars"

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=
if [ "$status" -ne 0 ]; then
    echo "smoke: server exited $status after SIGTERM, want 0" >&2
    exit 1
fi
echo "== smoke passed"
