#!/bin/sh
# smoke.sh — build the CLIs, train and publish a model with caroltrain,
# boot carolserve on a random loopback port with the model registry
# mounted, hit the core endpoints (including /v1/predict and a SIGHUP
# hot reload to a second model version) and shut down gracefully. Any
# non-200 answer or a non-zero server exit fails the script. Pure sh + curl.
#
# Boot/poll/teardown helpers live in scripts/lib.sh (shared with
# smoke_fleet.sh); every wait is bounded and dumps the server log on
# timeout. Set SMOKE_LOG_DIR to keep logs after the run (CI uploads them
# as artifacts on failure).
set -eu

scriptdir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
bindir=$(mktemp -d)
workdir=$(mktemp -d)
. "$scriptdir/lib.sh"
server_pid=
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$bindir" "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bindir" ./cmd/carolserve ./cmd/carolbench ./cmd/caroltrain ./cmd/carolc

echo "== carolbench -list"
"$bindir/carolbench" -list

echo "== caroltrain: publish model version 1"
"$bindir/caroltrain" -codec szx -model-dir "$workdir/models" \
    -datasets miranda:velocityx -dims 16x16x8 -bounds 6 -bo-iters 2 \
    -forest-cap 8 -kfolds 2 -seed 7

addr="127.0.0.1:$(random_port)"
echo "== boot carolserve on $addr with -model-dir"
"$bindir/carolserve" -addr "$addr" -model-dir "$workdir/models" \
    >"$(log_path carolserve)" 2>&1 &
server_pid=$!
wait_healthz carolserve "$addr" "$server_pid"

echo "== GET /v1/codecs"
curl -fsS "http://$addr/v1/codecs"
echo

echo "== POST /v1/compress"
# 32x32x1 float32 zeros = 4096 bytes.
dd if=/dev/zero of="$workdir/field.raw" bs=4096 count=1 2>/dev/null
curl -fsS -o "$workdir/stream.bin" -D "$workdir/headers.txt" \
    --data-binary @"$workdir/field.raw" \
    "http://$addr/v1/compress?codec=szx&rel=1e-3&dims=32x32x1"
grep -i "X-Carol-Achieved-Ratio" "$workdir/headers.txt"

echo "== streaming CLI path: carolc -stream round trip (CPL1 container)"
"$bindir/carolc" -stream -compressor sz3 -dims 32x32x1 -eb 1e-3 \
    -in "$workdir/field.raw" -out "$workdir/field.cpl"
head -c 4 "$workdir/field.cpl" | grep -q CPL1 || {
    echo "smoke: carolc -stream did not write a CPL1 container" >&2
    exit 1
}
"$bindir/carolc" -d -compressor sz3 -in "$workdir/field.cpl" -out "$workdir/field.restored"
restored=$(wc -c <"$workdir/field.restored")
if [ "$restored" -ne 4096 ]; then
    echo "smoke: streaming round trip restored $restored bytes, want 4096" >&2
    exit 1
fi

echo "== POST /v1/compress?stream=1 (pipeline container) and decompress auto-detect"
curl -fsS -o "$workdir/stream-cpl.bin" --data-binary @"$workdir/field.raw" \
    "http://$addr/v1/compress?codec=szx&rel=1e-3&stream=1&dims=32x32x1"
head -c 4 "$workdir/stream-cpl.bin" | grep -q CPL1 || {
    echo "smoke: stream=1 did not answer a CPL1 container" >&2
    exit 1
}
curl -fsS -o "$workdir/stream-restored.raw" --data-binary @"$workdir/stream-cpl.bin" \
    "http://$addr/v1/decompress?codec=szx"
restored=$(wc -c <"$workdir/stream-restored.raw")
if [ "$restored" -ne 4096 ]; then
    echo "smoke: server streaming round trip restored $restored bytes, want 4096" >&2
    exit 1
fi

echo "== GET /readyz"
curl -fsS "http://$addr/readyz"

echo "== GET /v1/models"
curl -fsS "http://$addr/v1/models" >"$workdir/models.json"
cat "$workdir/models.json"; echo
grep -q '"version":1' "$workdir/models.json" || {
    echo "smoke: /v1/models does not list version 1" >&2
    exit 1
}

echo "== POST /v1/predict"
curl -fsS --data-binary @"$workdir/field.raw" \
    "http://$addr/v1/predict?ratio=10,100&dims=32x32x1" >"$workdir/predict1.json"
cat "$workdir/predict1.json"; echo
grep -q '"error_bounds"' "$workdir/predict1.json" || {
    echo "smoke: /v1/predict returned no error bounds" >&2
    exit 1
}

echo "== caroltrain: publish model version 2, then SIGHUP hot reload"
"$bindir/caroltrain" -codec szx -model-dir "$workdir/models" \
    -datasets miranda:velocityx -dims 16x16x8 -bounds 6 -bo-iters 2 \
    -forest-cap 8 -kfolds 2 -seed 8
kill -HUP "$server_pid"
wait_for carolserve 50 sh -c "curl -fsS 'http://$addr/v1/models' | grep -q '\"version\":2'"
curl -fsS --data-binary @"$workdir/field.raw" \
    "http://$addr/v1/predict?ratio=10,100&dims=32x32x1" | grep -q '"version":2' || {
    echo "smoke: /v1/predict still serving old version after reload" >&2
    exit 1
}

echo "== GET /metrics"
curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
for metric in http_requests_total http_request_seconds_bucket codec_compress_seconds \
    model_loaded_version model_load_total model_predict_seconds model_forest_trees \
    carol_model_version; do
    grep -q "$metric" "$workdir/metrics.txt" || {
        echo "smoke: /metrics missing $metric" >&2
        exit 1
    }
done
wc -l "$workdir/metrics.txt"

echo "== GET /debug/vars"
curl -fsS -o /dev/null "http://$addr/debug/vars"

echo "== graceful shutdown (SIGTERM)"
stop_graceful carolserve "$server_pid"
server_pid=
echo "== smoke passed"
