#!/bin/sh
# benchdiff.sh — compare fresh `go test -bench` output against one or more
# committed BENCH_*.json baselines and fail on a time-per-op regression.
#
# Usage:
#   scripts/benchdiff.sh bench-fresh.txt     # compare a `go test -bench` log
#   scripts/benchdiff.sh -selftest           # prove the gate works both ways,
#                                            # once per known baseline format
#
# Environment:
#   BASELINE             baseline JSON, or a space-separated list of them
#                        (default BENCH_RF.json); every baseline's "after"
#                        benchmarks must appear in the fresh log
#   BENCHDIFF_THRESHOLD  max allowed fresh/baseline ns-per-op ratio
#                        (default 1.25 = fail on > 25% slowdown)
#
# Benchmark names are normalised on both sides before matching:
#   - the trailing -N GOMAXPROCS suffix go test appends is stripped
#   - workers=all(N) collapses to workers=all (N varies with the host)
# Every benchmark present in the baseline "after" section must appear in the
# fresh output — a silently skipped benchmark is a failure, not a pass. Only
# ns/op is gated: allocation counts are asserted exactly by unit tests, and
# CI time variance makes byte-level gates flaky.
#
# Pure POSIX sh + awk: runs on the CI image and on developer laptops with no
# extra tooling (deliberately no jq).
set -eu

BASELINE=${BASELINE:-BENCH_RF.json}
THRESHOLD=${BENCHDIFF_THRESHOLD:-1.25}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

usage() {
    echo "usage: $0 [-selftest] bench-output.txt" >&2
    exit 2
}

# baseline_ns: print "name ns_per_op" pairs from the "after" section of every
# baseline in $BASELINE, names normalised. $BASELINE is intentionally
# unquoted where it expands: a space-separated list diffs several baselines
# (e.g. BASELINE="BENCH_RF.json BENCH_CODECS.json") in one run.
baseline_ns() {
    for b in $BASELINE; do
        [ -f "$b" ] || { echo "benchdiff: no such baseline: $b" >&2; exit 2; }
        awk '
            /"after":/   { in_after = 1; next }
            /"summary":/ { in_after = 0 }
            in_after && /"Benchmark/ {
                if (match($0, /"Benchmark[^"]*"/) == 0) next
                name = substr($0, RSTART + 1, RLENGTH - 2)
                if (match($0, /"ns_per_op": *[0-9]+/) == 0) next
                ns = substr($0, RSTART, RLENGTH)
                sub(/.*: */, "", ns)
                gsub(/all\([0-9]+\)/, "all", name)
                print name, ns
            }
        ' "$b"
    done
}

# fresh_ns: print "name ns_per_op" pairs from `go test -bench` output, names
# normalised the same way.
fresh_ns() {
    awk '
        /^Benchmark/ && / ns\/op/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            gsub(/all\([0-9]+\)/, "all", name)
            for (i = 3; i <= NF; i++)
                if ($i == "ns/op") print name, $(i - 1)
        }
    ' "$1"
}

# run_diff bench-log: one report line per baseline benchmark; exit 1 on any
# regression past THRESHOLD or any baseline benchmark missing from the run.
run_diff() {
    baseline_ns >"$workdir/base.txt"
    fresh_ns "$1" >"$workdir/fresh.txt"
    awk -v threshold="$THRESHOLD" '
        NR == FNR { base[$1] = $2; next }
        $1 in base { fresh[$1] = $2 }
        END {
            status = 0
            n = 0
            for (name in base) names[++n] = name
            # deterministic report order
            for (i = 1; i < n; i++)
                for (j = i + 1; j <= n; j++)
                    if (names[j] < names[i]) {
                        t = names[i]; names[i] = names[j]; names[j] = t
                    }
            for (i = 1; i <= n; i++) {
                name = names[i]
                if (!(name in fresh)) {
                    printf "MISSING    %-45s baseline %d ns/op, absent from fresh run\n", name, base[name]
                    status = 1
                    continue
                }
                ratio = fresh[name] / base[name]
                verdict = "ok"
                if (ratio > threshold) { verdict = "REGRESSION"; status = 1 }
                printf "%-10s %-45s %12d -> %12d ns/op  (%.2fx, limit %.2fx)\n", \
                    verdict, name, base[name], fresh[name], ratio, threshold
            }
            if (n == 0) { print "no benchmarks found in baseline"; status = 1 }
            exit status
        }
    ' "$workdir/base.txt" "$workdir/fresh.txt"
}

selftest_one() {
    # Synthesise a bench log from the baseline itself, dressed up with the
    # -N suffix, an MB/s column and the all(N) decoration a real run
    # carries: must pass. The MB/s column is what the codec-throughput
    # format (BENCH_CODECS.json) adds via b.SetBytes; the parser must not
    # mistake it for ns/op.
    baseline_ns | awk '{
        name = $1
        sub(/workers=all/, "workers=all(8)", name)
        printf "%s-8 \t       3 \t %d ns/op \t 123.45 MB/s \t 1234 B/op \t 5 allocs/op\n", name, $2
    }' >"$workdir/same.txt"
    echo "== selftest [$BASELINE]: identical numbers must pass"
    run_diff "$workdir/same.txt"
    # The same log with every ns/op doubled: must fail.
    awk '{
        for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") { $i = $i * 2; break }
        print
    }' "$workdir/same.txt" >"$workdir/slow.txt"
    echo "== selftest [$BASELINE]: 2x slowdown must fail"
    if run_diff "$workdir/slow.txt"; then
        echo "selftest FAILED: 2x slowdown was not detected in $BASELINE" >&2
        exit 1
    fi
}

selftest() {
    # Exercise the gate against every committed baseline shape — the rf/model
    # formats and the codec-throughput format with its slashed sub-benchmark
    # names and workers=all(N) suffixes — then once against all of them
    # diffed in a single multi-baseline run.
    all=""
    for base in BENCH_RF.json BENCH_MODEL.json BENCH_CODECS.json BENCH_GATE.json BENCH_SELECT.json BENCH_ZOO.json; do
        [ -f "$base" ] || continue
        ( BASELINE=$base; selftest_one )
        all="$all $base"
    done
    [ -n "$all" ] || { echo "selftest: no baselines found" >&2; exit 1; }
    ( BASELINE=$all; selftest_one )
    echo "== selftest passed"
}

[ $# -eq 1 ] || usage
case "$1" in
-selftest) selftest ;;
-*) usage ;;
*)
    [ -f "$1" ] || { echo "benchdiff: no such file: $1" >&2; exit 2; }
    run_diff "$1"
    ;;
esac
