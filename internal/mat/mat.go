// Package mat provides the small dense linear-algebra kernels the Gaussian
// process in package bayesopt needs: Cholesky factorization and triangular
// solves for symmetric positive-definite systems.
package mat

import (
	"errors"
	"math"
)

// ErrNotPD is returned when a matrix is not positive definite.
var ErrNotPD = errors.New("mat: matrix not positive definite")

// Cholesky computes the lower-triangular L with L Lᵀ = A for a symmetric
// positive-definite A (given as rows). A is not modified.
func Cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		if len(a[i]) != n {
			return nil, errors.New("mat: non-square matrix")
		}
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPD
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// SolveChol solves A x = b given the Cholesky factor L of A, via forward
// then backward substitution.
func SolveChol(l [][]float64, b []float64) []float64 {
	n := len(l)
	// Forward: L z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * z[k]
		}
		z[i] = sum / l[i][i]
	}
	// Backward: Lᵀ x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// ForwardSolve solves L z = b for lower-triangular L.
func ForwardSolve(l [][]float64, b []float64) []float64 {
	n := len(l)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * z[k]
		}
		z[i] = sum / l[i][i]
	}
	return z
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
