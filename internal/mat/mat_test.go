package mat

import (
	"math"
	"testing"
	"testing/quick"

	"carol/internal/xrand"
)

func TestCholeskyKnown(t *testing.T) {
	a := [][]float64{
		{4, 2, 2},
		{2, 5, 3},
		{2, 3, 6},
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Verify L Lᵀ = A.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += l[i][k] * l[j][k]
			}
			if math.Abs(s-a[i][j]) > 1e-12 {
				t.Fatalf("(LLᵀ)[%d][%d] = %g, want %g", i, j, s, a[i][j])
			}
		}
	}
	// Upper part of L must be zero.
	if l[0][1] != 0 || l[0][2] != 0 || l[1][2] != 0 {
		t.Fatal("L not lower triangular")
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 1}, // eigenvalues 3, -1
	}
	if _, err := Cholesky(a); err != ErrNotPD {
		t.Fatalf("err = %v, want ErrNotPD", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := Cholesky([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestSolveChol(t *testing.T) {
	a := [][]float64{
		{4, 2, 2},
		{2, 5, 3},
		{2, 3, 6},
	}
	want := []float64{1, -2, 0.5}
	b := make([]float64, 3)
	for i := range b {
		for j := range want {
			b[i] += a[i][j] * want[j]
		}
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := SolveChol(l, b)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestForwardSolve(t *testing.T) {
	l := [][]float64{
		{2, 0},
		{1, 3},
	}
	// L z = [4, 7] -> z = [2, 5/3].
	z := ForwardSolve(l, []float64{4, 7})
	if math.Abs(z[0]-2) > 1e-12 || math.Abs(z[1]-5.0/3) > 1e-12 {
		t.Fatalf("z = %v", z)
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot broken")
	}
}

// Property: for random SPD matrices (A = B Bᵀ + εI), Cholesky+solve
// reproduces a known solution.
func TestQuickSolveRandomSPD(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.Intn(8) + 2
		bmat := make([][]float64, n)
		for i := range bmat {
			bmat[i] = make([]float64, n)
			for j := range bmat[i] {
				bmat[i][j] = rng.Norm()
			}
		}
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				for k := 0; k < n; k++ {
					a[i][j] += bmat[i][k] * bmat[j][k]
				}
				if i == j {
					a[i][j] += 0.5
				}
			}
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Range(-3, 3)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			for j := range want {
				rhs[i] += a[i][j] * want[j]
			}
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := SolveChol(l, rhs)
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
