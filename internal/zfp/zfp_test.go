package zfp

import (
	"math"
	"testing"
	"testing/quick"

	"carol/internal/bitstream"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/xrand"
)

func newTestWriter() *bitstream.Writer { return bitstream.NewWriter(1024) }

func newTestReader(w *bitstream.Writer) *bitstream.Reader {
	return bitstream.NewReader(w.Bytes(), w.BitLen())
}

func smoothField(nx, ny, nz int, seed uint64) *field.Field {
	n := xrand.NewNoise(seed)
	f := field.New("smooth", nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				f.Set(x, y, z, float32(10*n.FBm(float64(x)/16, float64(y)/16, float64(z)/16, 4, 0.5)))
			}
		}
	}
	return f
}

func TestLiftRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 200; trial++ {
		p := make([]int32, 4)
		q := make([]int32, 4)
		for i := range p {
			p[i] = int32(rng.Intn(1<<28) - 1<<27)
			q[i] = p[i]
		}
		fwdLift(q, 0, 1)
		invLift(q, 0, 1)
		// ZFP's integer lifting is only approximately invertible: the
		// right shifts discard low bits (this is why guard bits exist).
		for i := range p {
			d := int64(p[i]) - int64(q[i])
			if d < -8 || d > 8 {
				t.Fatalf("lift round trip trial %d: %v != %v", trial, p, q)
			}
		}
	}
}

func TestXformRoundTrip3D(t *testing.T) {
	sh := shapes[3]
	rng := xrand.New(2)
	blk := make([]int32, sh.size)
	orig := make([]int32, sh.size)
	for i := range blk {
		blk[i] = int32(rng.Intn(1<<26) - 1<<25)
		orig[i] = blk[i]
	}
	fwdXform(blk, sh)
	invXform(blk, sh)
	// Three cascaded approximate liftings: allow a few dozen LSBs of drift.
	for i := range blk {
		d := int64(blk[i]) - int64(orig[i])
		if d < -64 || d > 64 {
			t.Fatalf("xform round trip at %d: %d != %d", i, blk[i], orig[i])
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 1 << 20, -(1 << 20), math.MaxInt32 / 2, math.MinInt32 / 2} {
		if got := nb2int(int2nb(v)); got != v {
			t.Fatalf("negabinary(%d) -> %d", v, got)
		}
	}
}

func TestSequencyPermValid(t *testing.T) {
	for dims := 1; dims <= 3; dims++ {
		sh := shapes[dims]
		seen := make([]bool, sh.size)
		for _, p := range sh.perm {
			if p < 0 || p >= sh.size || seen[p] {
				t.Fatalf("dims=%d: invalid perm", dims)
			}
			seen[p] = true
		}
		// First entry must be the DC coefficient (index 0).
		if sh.perm[0] != 0 {
			t.Fatalf("dims=%d: perm[0] = %d", dims, sh.perm[0])
		}
	}
}

func TestPlaneCodingRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 100; trial++ {
		size := []int{4, 16, 64}[trial%3]
		u := make([]uint32, size)
		for i := range u {
			// Exponentially decaying magnitudes, like sequency-ordered data.
			shift := uint(rng.Intn(28))
			u[i] = uint32(rng.Uint64()) >> shift >> uint(i/4)
		}
		kmin := rng.Intn(8)
		w := newTestWriter()
		encodePlanes(w, u, kmin, -1)
		r := newTestReader(w)
		got := make([]uint32, size)
		decodePlanes(r, got, kmin, -1)
		mask := ^uint32(0) << uint(kmin)
		for i := range u {
			if got[i] != u[i]&mask {
				t.Fatalf("trial %d size %d kmin %d: coeff %d = %#x, want %#x",
					trial, size, kmin, i, got[i], u[i]&mask)
			}
		}
	}
}

func TestRoundTripBound(t *testing.T) {
	c := New()
	for _, dims := range [][3]int{{256, 1, 1}, {40, 24, 1}, {20, 16, 12}} {
		f := smoothField(dims[0], dims[1], dims[2], 4)
		for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5} {
			eb := compressor.AbsBound(f, rel)
			stream, err := c.Compress(f, eb)
			if err != nil {
				t.Fatalf("dims=%v rel=%g: %v", dims, rel, err)
			}
			g, err := c.Decompress(stream)
			if err != nil {
				t.Fatalf("dims=%v rel=%g: %v", dims, rel, err)
			}
			if err := compressor.CheckBound(f, g, eb); err != nil {
				t.Fatalf("dims=%v rel=%g: %v (maxerr %g)", dims, rel, err, compressor.MaxAbsErr(f, g))
			}
		}
	}
}

func TestMonotoneRatio(t *testing.T) {
	c := New()
	f := smoothField(48, 48, 16, 5)
	var prev float64
	for _, rel := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		stream, err := c.Compress(f, compressor.AbsBound(f, rel))
		if err != nil {
			t.Fatal(err)
		}
		ratio := compressor.Ratio(f, stream)
		if ratio+1e-9 < prev {
			t.Fatalf("ratio decreased as eb grew: %g -> %g at rel %g", prev, ratio, rel)
		}
		prev = ratio
	}
	if prev < 4 {
		t.Fatalf("loose-bound ratio only %g", prev)
	}
}

func TestZeroField(t *testing.T) {
	c := New()
	f := field.New("zero", 64, 64, 1)
	stream, err := c.Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := compressor.Ratio(f, stream); ratio < 100 {
		t.Fatalf("zero field ratio %g, want >= 100", ratio)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Data {
		if v != 0 {
			t.Fatalf("zero field sample %d = %v", i, v)
		}
	}
}

func TestTinyBoundRawFallbackIsLossless(t *testing.T) {
	c := New()
	f := smoothField(16, 16, 1, 6)
	stream, err := c.Compress(f, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Equalish(g, 0); err != nil {
		t.Fatalf("raw fallback not lossless: %v", err)
	}
}

func TestPartialBlocks(t *testing.T) {
	c := New()
	f := smoothField(13, 7, 5, 7) // no dimension divisible by 4
	eb := compressor.AbsBound(f, 1e-3)
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, eb); err != nil {
		t.Fatal(err)
	}
}

func TestFixedRateExactRatio(t *testing.T) {
	f := smoothField(64, 64, 1, 8)
	for _, rate := range []float64{2, 4, 8, 16} {
		stream, err := CompressFixedRate(f, rate)
		if err != nil {
			t.Fatal(err)
		}
		payload := len(stream) - HeaderOverheadBytes
		wantBits := rate * float64(f.Len())
		gotBits := float64(payload * 8)
		if math.Abs(gotBits-wantBits) > wantBits*0.05+64 {
			t.Fatalf("rate %g: payload %g bits, want ~%g", rate, gotBits, wantBits)
		}
		g, err := DecompressFixedRate(stream)
		if err != nil {
			t.Fatal(err)
		}
		if g.Nx != f.Nx || g.Ny != f.Ny {
			t.Fatal("fixed-rate dims mismatch")
		}
	}
}

func TestFixedRateQualityImprovesWithRate(t *testing.T) {
	f := smoothField(64, 64, 1, 9)
	var prevErr = math.Inf(1)
	for _, rate := range []float64{2, 6, 12, 24} {
		stream, err := CompressFixedRate(f, rate)
		if err != nil {
			t.Fatal(err)
		}
		g, err := DecompressFixedRate(stream)
		if err != nil {
			t.Fatal(err)
		}
		e := compressor.MaxAbsErr(f, g)
		if e > prevErr*1.5 { // allow small non-monotonicity noise
			t.Fatalf("error grew sharply with rate: %g -> %g at rate %g", prevErr, e, rate)
		}
		prevErr = e
	}
	if prevErr > compressor.AbsBound(f, 1e-3) {
		t.Fatalf("24 bits/sample still has error %g", prevErr)
	}
}

func TestFixedRateLowerQualityThanAccuracyMode(t *testing.T) {
	// The paper's §2.2 point: at a matched compression ratio, fixed-rate
	// compression yields worse data quality than error-bounded mode.
	c := New()
	f := smoothField(64, 64, 16, 10)
	eb := compressor.AbsBound(f, 1e-3)
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	ratio := compressor.Ratio(f, stream)
	rate := 32 / ratio // matched rate
	fr, err := CompressFixedRate(f, rate)
	if err != nil {
		t.Fatal(err)
	}
	gAcc, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	gFr, err := DecompressFixedRate(fr)
	if err != nil {
		t.Fatal(err)
	}
	if compressor.MaxAbsErr(f, gFr) <= compressor.MaxAbsErr(f, gAcc) {
		t.Fatalf("fixed-rate max error %g not worse than accuracy mode %g",
			compressor.MaxAbsErr(f, gFr), compressor.MaxAbsErr(f, gAcc))
	}
}

func TestEstimateSampledBitsFullSamplingMatchesEncoder(t *testing.T) {
	c := New()
	f := smoothField(32, 32, 8, 11)
	eb := compressor.AbsBound(f, 1e-3)
	bits, sampled, total := EstimateSampledBits(f, eb, 1)
	if sampled != total {
		t.Fatalf("every=1 sampled %d of %d blocks", sampled, total)
	}
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	payloadBits := uint64(len(stream)-HeaderOverheadBytes) * 8
	if bits > payloadBits || payloadBits-bits > 64 {
		t.Fatalf("estimate %d bits vs stream %d bits", bits, payloadBits)
	}
}

func TestEstimateSampledBitsSubsampling(t *testing.T) {
	f := smoothField(64, 64, 1, 12)
	eb := compressor.AbsBound(f, 1e-3)
	_, sampled, total := EstimateSampledBits(f, eb, 4)
	frac := float64(sampled) / float64(total)
	if frac > 0.2 || frac < 0.02 {
		t.Fatalf("every=4 2D sampling fraction %g, want ~1/16", frac)
	}
}

func TestDecompressErrors(t *testing.T) {
	c := New()
	if _, err := c.Decompress(nil); err == nil {
		t.Error("nil stream accepted")
	}
	f := smoothField(8, 8, 1, 13)
	stream, err := c.Compress(f, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), stream...)
	bad[0] = 0x00
	if _, err := c.Decompress(bad); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, err := c.Decompress(stream[:25]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestQuickRoundTripBound(t *testing.T) {
	c := New()
	f := func(seed uint64, relExp uint8) bool {
		rng := xrand.New(seed)
		nx, ny, nz := rng.Intn(20)+1, rng.Intn(20)+1, rng.Intn(6)+1
		fl := field.New("q", nx, ny, nz)
		for i := range fl.Data {
			fl.Data[i] = float32(rng.Range(-50, 50))
		}
		eb := compressor.AbsBound(fl, math.Pow(10, -float64(relExp%5)-1))
		stream, err := c.Compress(fl, eb)
		if err != nil {
			return false
		}
		g, err := c.Decompress(stream)
		if err != nil {
			return false
		}
		return compressor.CheckBound(fl, g, eb) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	c := New()
	f := smoothField(64, 64, 64, 1)
	eb := compressor.AbsBound(f, 1e-3)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(f, eb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	c := New()
	f := smoothField(64, 64, 64, 1)
	eb := compressor.AbsBound(f, 1e-3)
	stream, err := c.Compress(f, eb)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}
