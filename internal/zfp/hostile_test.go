package zfp

import (
	"errors"
	"testing"

	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/safedec"
)

// TestFixedRateHostileRate is the regression test for the unvalidated rate
// in the EB header slot: a hostile stream claiming an absurd bits-per-sample
// rate used to drive the per-block bit budget to int64 extremes. The rate
// must be validated against the 64 bits/sample physical ceiling first.
func TestFixedRateHostileRate(t *testing.T) {
	for _, rate := range []float64{1e30, 65, 1e308} {
		stream := compressor.AppendHeader(nil, compressor.Header{
			Magic: compressor.MagicZFP, Nx: 8, Ny: 1, Nz: 1, EB: rate,
		})
		stream = append(stream, make([]byte, 16)...) // bit length 0 + slack
		_, err := DecompressFixedRate(stream)
		if err == nil {
			t.Fatalf("rate %g accepted", rate)
		}
		if !errors.Is(err, compressor.ErrBadStream) {
			t.Fatalf("rate %g: err = %v, want ErrBadStream", rate, err)
		}
	}
}

// TestFixedRateLimitedRoundTrip checks the limit plumbing on the fixed-rate
// path: a valid stream decodes under default limits and is refused with
// ErrLimit under a tight element ceiling.
func TestFixedRateLimitedRoundTrip(t *testing.T) {
	f := field.New("fr", 16, 16, 1)
	for i := range f.Data {
		f.Data[i] = float32(i % 7)
	}
	stream, err := CompressFixedRate(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecompressFixedRateLimited(stream, safedec.Default())
	if err != nil {
		t.Fatal(err)
	}
	if g.Nx != 16 || g.Ny != 16 || g.Nz != 1 {
		t.Fatalf("dims %dx%dx%d", g.Nx, g.Ny, g.Nz)
	}
	if _, err := DecompressFixedRateLimited(stream, safedec.Limits{MaxElements: 100}); !errors.Is(err, safedec.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

// TestBitLengthBeyondPayloadRejected: a header-claimed bit length larger
// than the payload actually present must be rejected up front.
func TestBitLengthBeyondPayloadRejected(t *testing.T) {
	f := field.New("bl", 64, 1, 1)
	for i := range f.Data {
		f.Data[i] = float32(i)
	}
	stream, err := New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// The 8 bytes after the 25-byte header are the big-endian bit length.
	bad := append([]byte(nil), stream...)
	for i := 25; i < 33; i++ {
		bad[i] = 0xFF
	}
	if _, err := New().Decompress(bad); !errors.Is(err, compressor.ErrBadStream) {
		t.Fatalf("err = %v, want ErrBadStream", err)
	}
}
