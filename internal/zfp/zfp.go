// Package zfp reimplements the ZFP transform-based lossy compressor
// (Lindstrom, TVCG 2014) in pure Go. ZFP is the "transformation-based
// high-throughput" compressor of the CAROL evaluation.
//
// The pipeline follows the original design: the field is split into blocks
// of 4 samples per (non-trivial) dimension; each block is converted to a
// block-floating-point fixed-point representation under a common exponent,
// decorrelated with ZFP's non-orthogonal integer lifting transform, reordered
// by total sequency, mapped to negabinary, and entropy-coded with ZFP's
// embedded group-tested bit-plane code.
//
// Two modes are provided:
//   - fixed accuracy (error-bounded): Compress / Decompress, the mode the
//     CAROL framework targets;
//   - fixed rate: CompressFixedRate / DecompressFixedRate, the baseline
//     "fixed-ratio by construction" mode §2.2 of the paper discusses.
package zfp

import (
	"fmt"
	"math"
	mbits "math/bits"
	"sort"

	"carol/internal/bitstream"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/safedec"
)

// side is the block edge length (4, as in ZFP).
const side = 4

// intBits is the fixed-point width used per coefficient.
const intBits = 30

// Codec is the fixed-accuracy ZFP compressor.
type Codec struct{}

// New returns a ZFP codec.
func New() *Codec { return &Codec{} }

// Name implements compressor.Codec.
func (*Codec) Name() string { return "zfp" }

var _ compressor.Codec = (*Codec)(nil)

// blockShape describes the block geometry for a field's dimensionality.
type blockShape struct {
	dims  int
	sx    int // block side along x (always 4)
	sy    int
	sz    int
	size  int   // samples per block
	perm  []int // total-sequency permutation
	guard int   // guard bits for the error-bound -> plane cutoff
}

var shapes = [4]blockShape{1: makeShape(1), 2: makeShape(2), 3: makeShape(3)}

func makeShape(dims int) blockShape {
	sh := blockShape{dims: dims, sx: side, sy: 1, sz: 1}
	if dims >= 2 {
		sh.sy = side
	}
	if dims >= 3 {
		sh.sz = side
	}
	sh.size = sh.sx * sh.sy * sh.sz
	sh.perm = sequencyPerm(sh)
	sh.guard = 2*(dims+1) + 1
	return sh
}

// sequencyPerm orders block-local indices by total coordinate sum (low
// sequency first), matching ZFP's energy-concentrating traversal.
func sequencyPerm(sh blockShape) []int {
	perm := make([]int, sh.size)
	for i := range perm {
		perm[i] = i
	}
	coordSum := func(i int) int {
		x := i % sh.sx
		y := (i / sh.sx) % sh.sy
		z := i / (sh.sx * sh.sy)
		return x + y + z
	}
	sort.SliceStable(perm, func(a, b int) bool {
		sa, sb := coordSum(perm[a]), coordSum(perm[b])
		if sa != sb {
			return sa < sb
		}
		return perm[a] < perm[b]
	})
	return perm
}

// fwdLift applies ZFP's forward decorrelating lifting to 4 values at stride s.
func fwdLift(p []int32, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// invLift reverses fwdLift.
func invLift(p []int32, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

func fwdXform(blk []int32, sh blockShape) {
	for i := 0; i < sh.size; i += side {
		fwdLift(blk, i, 1)
	}
	if sh.dims >= 2 {
		for z := 0; z < sh.sz; z++ {
			for x := 0; x < sh.sx; x++ {
				fwdLift(blk, z*sh.sx*sh.sy+x, sh.sx)
			}
		}
	}
	if sh.dims >= 3 {
		for y := 0; y < sh.sy; y++ {
			for x := 0; x < sh.sx; x++ {
				fwdLift(blk, y*sh.sx+x, sh.sx*sh.sy)
			}
		}
	}
}

func invXform(blk []int32, sh blockShape) {
	if sh.dims >= 3 {
		for y := 0; y < sh.sy; y++ {
			for x := 0; x < sh.sx; x++ {
				invLift(blk, y*sh.sx+x, sh.sx*sh.sy)
			}
		}
	}
	if sh.dims >= 2 {
		for z := 0; z < sh.sz; z++ {
			for x := 0; x < sh.sx; x++ {
				invLift(blk, z*sh.sx*sh.sy+x, sh.sx)
			}
		}
	}
	for i := 0; i < sh.size; i += side {
		invLift(blk, i, 1)
	}
}

// int32 <-> negabinary uint32.
const nbMask = 0xaaaaaaaa

func int2nb(i int32) uint32 { return (uint32(i) + nbMask) ^ nbMask }
func nb2int(u uint32) int32 { return int32((u ^ nbMask) - nbMask) }

// encodePlanes writes the embedded bit-plane code for the (sequency-ordered)
// negabinary coefficients, from plane 31 down to kmin. budget < 0 means
// unlimited. Returns bits written.
func encodePlanes(w *bitstream.Writer, u []uint32, kmin int, budget int64) int64 {
	size := len(u)
	// Transpose coefficients into per-plane masks, touching each set bit
	// exactly once.
	var planes [32]uint64
	for i, c := range u {
		for c != 0 {
			k := mbits.TrailingZeros32(c)
			planes[k] |= 1 << uint(i)
			c &= c - 1
		}
	}
	var written int64
	emit := func(bit uint64) bool {
		if budget >= 0 && written >= budget {
			return false
		}
		w.WriteBits(bit, 1)
		written++
		return true
	}
	n := 0
	for k := 31; k >= kmin; k-- {
		x := planes[k]
		// Verbatim bits for the first n coefficients, batched. The stream
		// order is coefficient 0 first, so reverse the low n bits.
		if n > 0 {
			m := n
			if budget >= 0 && written+int64(m) > budget {
				m = int(budget - written)
			}
			if m > 0 {
				w.WriteBits(mbits.Reverse64(x)>>uint(64-m), uint(m))
				written += int64(m)
			}
			if m < n {
				return written
			}
		}
		i := n
		for i < size {
			rem := x >> uint(i)
			if rem == 0 {
				if !emit(0) {
					return written
				}
				break
			}
			if !emit(1) {
				return written
			}
			for i < size-1 {
				b := (x >> uint(i)) & 1
				if !emit(b) {
					return written
				}
				if b != 0 {
					break
				}
				i++
			}
			i++
		}
		n = i
	}
	return written
}

// decodePlanes mirrors encodePlanes. budget < 0 means unlimited; when the
// budget (or the stream) is exhausted, the partially decoded plane is
// discarded and remaining planes decode as zero.
func decodePlanes(r *bitstream.Reader, u []uint32, kmin int, budget int64) int64 {
	size := len(u)
	var consumed int64
	grab := func() (uint64, bool) {
		if budget >= 0 && consumed >= budget {
			return 0, false
		}
		b, err := r.ReadBits(1)
		if err != nil {
			return 0, false
		}
		consumed++
		return b, true
	}
	n := 0
planes:
	for k := 31; k >= kmin; k-- {
		var x uint64
		if n > 0 {
			// Batched verbatim bits (reverse of the encoder's order).
			if budget >= 0 && consumed+int64(n) > budget {
				break planes
			}
			v, err := r.ReadBits(uint(n))
			if err != nil {
				break planes
			}
			consumed += int64(n)
			x = mbits.Reverse64(v << uint(64-n))
		}
		i := n
		for i < size {
			gb, ok := grab()
			if !ok {
				break planes
			}
			if gb == 0 {
				break
			}
			found := false
			for i < size-1 {
				b, ok := grab()
				if !ok {
					break planes
				}
				if b != 0 {
					x |= 1 << uint(i)
					found = true
					break
				}
				i++
			}
			if !found {
				x |= 1 << uint(size-1)
				i = size - 1
			}
			i++
		}
		n = i
		for j := range u {
			u[j] |= uint32((x>>uint(j))&1) << uint(k)
		}
	}
	return consumed
}

// gatherBlock copies the block at (bx, by, bz) into blk (float64), padding
// partial blocks by edge replication.
func gatherBlock(f *field.Field, sh blockShape, bx, by, bz int, blk []float64) {
	for z := 0; z < sh.sz; z++ {
		zz := bz + z
		if zz >= f.Nz {
			zz = f.Nz - 1
		}
		for y := 0; y < sh.sy; y++ {
			yy := by + y
			if yy >= f.Ny {
				yy = f.Ny - 1
			}
			for x := 0; x < sh.sx; x++ {
				xx := bx + x
				if xx >= f.Nx {
					xx = f.Nx - 1
				}
				blk[(z*sh.sy+y)*sh.sx+x] = float64(f.At(xx, yy, zz))
			}
		}
	}
}

// scatterBlock writes the valid region of blk back into f.
func scatterBlock(f *field.Field, sh blockShape, bx, by, bz int, blk []float64) {
	for z := 0; z < sh.sz && bz+z < f.Nz; z++ {
		for y := 0; y < sh.sy && by+y < f.Ny; y++ {
			for x := 0; x < sh.sx && bx+x < f.Nx; x++ {
				f.Set(bx+x, by+y, bz+z, float32(blk[(z*sh.sy+y)*sh.sx+x]))
			}
		}
	}
}

// blockEmax returns the common block exponent: the smallest e with
// max|v| <= 2^e. Returns ok=false for an all-zero block.
func blockEmax(blk []float64) (int, bool) {
	var m float64
	for _, v := range blk {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	if m == 0 { //carol:allow floateq all-zero block is an exact, common case
		return 0, false
	}
	_, e := math.Frexp(m) // m = f * 2^e, f in [0.5, 1)
	return e, true
}

// planeCutoff returns the lowest bit plane that must be kept so the total
// reconstruction error stays below eb.
func planeCutoff(emax int, eb float64, sh blockShape) int {
	// Fixed-point LSB magnitude is 2^(emax-intBits); plane k contributes up
	// to ~2^k LSBs; the inverse transform amplifies by at most ~2^(dims+1).
	lsb := math.Ldexp(1, emax-intBits)
	return int(math.Floor(math.Log2(eb/lsb))) - sh.guard
}

func transformToNB(blk []float64, sh blockShape, emax int, u []uint32) {
	scale := math.Ldexp(1, intBits-emax)
	var intsBuf [64]int32
	ints := intsBuf[:sh.size]
	for i, v := range blk {
		q := v * scale
		if q > (1<<intBits)-1 {
			q = (1 << intBits) - 1
		} else if q < -(1 << intBits) {
			q = -(1 << intBits)
		}
		ints[i] = int32(q)
	}
	fwdXform(ints, sh)
	for i, p := range sh.perm {
		u[i] = int2nb(ints[p])
	}
}

func nbToSamples(u []uint32, sh blockShape, emax int, blk []float64) {
	var intsBuf [64]int32
	ints := intsBuf[:sh.size]
	for i, p := range sh.perm {
		ints[p] = nb2int(u[i])
	}
	invXform(ints, sh)
	scale := math.Ldexp(1, emax-intBits)
	for i, q := range ints {
		blk[i] = float64(q) * scale
	}
}

// encodeBlock writes one block in fixed-accuracy mode.
//
// Layout: 1 zero-block bit; if nonzero: 1 raw bit; raw blocks carry 32 bits
// per sample; coded blocks carry a 16-bit biased exponent, a 6-bit plane
// cutoff (63 = nothing coded), then the embedded planes.
func encodeBlock(w *bitstream.Writer, blk []float64, sh blockShape, eb float64) {
	emax, ok := blockEmax(blk)
	if !ok {
		w.WriteBit(1)
		return
	}
	w.WriteBit(0)
	kmin := planeCutoff(emax, eb, sh)
	switch {
	case kmin > 31:
		if math.Ldexp(1, emax) <= eb {
			// All content below the bound: decode as zeros.
			w.WriteBit(0)
			w.WriteBits(uint64(emax+1024), 16)
			w.WriteBits(63, 6)
			return
		}
		writeRawBlock(w, blk)
	case kmin < 0:
		// eb finer than fixed-point resolution: store raw.
		writeRawBlock(w, blk)
	default:
		w.WriteBit(0)
		w.WriteBits(uint64(emax+1024), 16)
		w.WriteBits(uint64(kmin), 6)
		var uBuf [64]uint32
		u := uBuf[:sh.size]
		transformToNB(blk, sh, emax, u)
		encodePlanes(w, u, kmin, -1)
	}
}

func writeRawBlock(w *bitstream.Writer, blk []float64) {
	w.WriteBit(1)
	for _, v := range blk {
		w.WriteBits(uint64(math.Float32bits(float32(v))), 32)
	}
}

func decodeBlock(r *bitstream.Reader, blk []float64, sh blockShape) error {
	zero, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("%w: zfp block flag: %w", compressor.ErrBadStream, err)
	}
	if zero == 1 {
		zeroFill(blk)
		return nil
	}
	raw, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("%w: zfp raw flag: %w", compressor.ErrBadStream, err)
	}
	if raw == 1 {
		for i := range blk {
			b, err := r.ReadBits(32)
			if err != nil {
				return fmt.Errorf("%w: zfp raw sample: %w", compressor.ErrBadStream, err)
			}
			blk[i] = float64(math.Float32frombits(uint32(b)))
		}
		return nil
	}
	e64, err := r.ReadBits(16)
	if err != nil {
		return fmt.Errorf("%w: zfp exponent: %w", compressor.ErrBadStream, err)
	}
	emax := int(e64) - 1024
	k64, err := r.ReadBits(6)
	if err != nil {
		return fmt.Errorf("%w: zfp kmin: %w", compressor.ErrBadStream, err)
	}
	kmin := int(k64)
	if kmin == 63 {
		zeroFill(blk)
		return nil
	}
	if kmin > 31 {
		return fmt.Errorf("%w: zfp kmin %d", compressor.ErrBadStream, kmin)
	}
	var uBuf [64]uint32
	u := uBuf[:sh.size]
	decodePlanes(r, u, kmin, -1)
	nbToSamples(u, sh, emax, blk)
	return nil
}

func zeroFill(blk []float64) {
	for i := range blk {
		blk[i] = 0
	}
}

// Compress implements compressor.Codec (fixed-accuracy mode).
func (*Codec) Compress(f *field.Field, eb float64) ([]byte, error) {
	if err := compressor.ValidateArgs(f, eb); err != nil {
		return nil, err
	}
	sh := shapes[f.Dims()]
	w := bitstream.NewWriter(f.SizeBytes() / 4)
	blk := make([]float64, sh.size)
	for bz := 0; bz < f.Nz; bz += sh.sz {
		for by := 0; by < f.Ny; by += sh.sy {
			for bx := 0; bx < f.Nx; bx += sh.sx {
				gatherBlock(f, sh, bx, by, bz, blk)
				encodeBlock(w, blk, sh, eb)
			}
		}
	}
	return sealStream(compressor.MagicZFP, f, eb, w), nil
}

// sealStream assembles header + bit length + payload.
func sealStream(magic byte, f *field.Field, eb float64, w *bitstream.Writer) []byte {
	out := compressor.AppendHeader(nil, compressor.Header{
		Magic: magic, Nx: f.Nx, Ny: f.Ny, Nz: f.Nz, EB: eb,
	})
	bits := w.BitLen()
	var lenBuf [8]byte
	for i := 0; i < 8; i++ {
		lenBuf[i] = byte(bits >> (56 - 8*i))
	}
	out = append(out, lenBuf[:]...)
	return append(out, w.Bytes()...)
}

func openStream(stream []byte, magic byte, lim safedec.Limits) (compressor.Header, *bitstream.Reader, error) {
	h, rest, err := compressor.ParseHeaderLimited(stream, magic, lim)
	if err != nil {
		return compressor.Header{}, nil, err
	}
	sr := safedec.NewReader(rest)
	bits, err := sr.BE64("zfp bit length")
	if err != nil {
		return compressor.Header{}, nil, fmt.Errorf("%w: missing bit length: %w", compressor.ErrBadStream, err)
	}
	payload := sr.Rest()
	if bits > uint64(len(payload))*8 {
		return compressor.Header{}, nil, fmt.Errorf("%w: bit length exceeds payload", compressor.ErrBadStream)
	}
	return h, bitstream.NewReader(payload, bits), nil
}

// Decompress implements compressor.Codec (default safedec limits).
func (c *Codec) Decompress(stream []byte) (*field.Field, error) {
	return c.DecompressLimited(stream, safedec.Default())
}

// DecompressLimited implements compressor.LimitedDecoder.
func (*Codec) DecompressLimited(stream []byte, lim safedec.Limits) (*field.Field, error) {
	h, r, err := openStream(stream, compressor.MagicZFP, lim)
	if err != nil {
		return nil, err
	}
	f := field.New("zfp", h.Nx, h.Ny, h.Nz)
	sh := shapes[f.Dims()]
	blk := make([]float64, sh.size)
	for bz := 0; bz < f.Nz; bz += sh.sz {
		for by := 0; by < f.Ny; by += sh.sy {
			for bx := 0; bx < f.Nx; bx += sh.sx {
				if err := decodeBlock(r, blk, sh); err != nil {
					return nil, err
				}
				scatterBlock(f, sh, bx, by, bz, blk)
			}
		}
	}
	return f, nil
}

// CompressFixedRate encodes f at a fixed rate of `rate` bits per sample
// (the GPU-ZFP mode of §2.2). The achieved compression ratio is exactly
// 32/rate regardless of content; reconstruction error is NOT bounded.
func CompressFixedRate(f *field.Field, rate float64) ([]byte, error) {
	if err := compressor.ValidateArgs(f, 1); err != nil {
		return nil, err
	}
	sh := shapes[f.Dims()]
	budget := int64(rate * float64(sh.size))
	minBits := int64(16 + 1) // exponent + zero flag
	if budget < minBits {
		budget = minBits
	}
	w := bitstream.NewWriter(f.SizeBytes() / 4)
	blk := make([]float64, sh.size)
	u := make([]uint32, sh.size)
	for bz := 0; bz < f.Nz; bz += sh.sz {
		for by := 0; by < f.Ny; by += sh.sy {
			for bx := 0; bx < f.Nx; bx += sh.sx {
				gatherBlock(f, sh, bx, by, bz, blk)
				start := int64(w.BitLen())
				emax, ok := blockEmax(blk)
				if !ok {
					w.WriteBit(1)
				} else {
					w.WriteBit(0)
					w.WriteBits(uint64(emax+1024), 16)
					for i := range u {
						u[i] = 0
					}
					transformToNB(blk, sh, emax, u)
					used := int64(w.BitLen()) - start
					encodePlanes(w, u, 0, budget-used)
				}
				// Pad the block to exactly `budget` bits.
				for int64(w.BitLen())-start < budget {
					w.WriteBit(0)
				}
			}
		}
	}
	// Encode the rate (bits-per-sample scaled by 2^16) in the EB header slot.
	return sealStream(compressor.MagicZFP, f, rate, w), nil
}

// DecompressFixedRate reverses CompressFixedRate under default limits.
func DecompressFixedRate(stream []byte) (*field.Field, error) {
	return DecompressFixedRateLimited(stream, safedec.Default())
}

// DecompressFixedRateLimited reverses CompressFixedRate, enforcing lim. The
// rate travels in the EB header slot; a hostile stream can claim any float64
// there, so it is validated against the 64 bits/sample ceiling before the
// per-block bit budget is derived from it.
func DecompressFixedRateLimited(stream []byte, lim safedec.Limits) (*field.Field, error) {
	h, r, err := openStream(stream, compressor.MagicZFP, lim)
	if err != nil {
		return nil, err
	}
	if !(h.EB > 0) || h.EB > 64 {
		return nil, fmt.Errorf("%w: zfp-fr rate %g out of range (0, 64]", compressor.ErrBadStream, h.EB)
	}
	f := field.New("zfp-fr", h.Nx, h.Ny, h.Nz)
	sh := shapes[f.Dims()]
	budget := int64(h.EB * float64(sh.size))
	minBits := int64(16 + 1)
	if budget < minBits {
		budget = minBits
	}
	blk := make([]float64, sh.size)
	u := make([]uint32, sh.size)
	for bz := 0; bz < f.Nz; bz += sh.sz {
		for by := 0; by < f.Ny; by += sh.sy {
			for bx := 0; bx < f.Nx; bx += sh.sx {
				start := int64(r.Consumed())
				zero, err := r.ReadBit()
				if err != nil {
					return nil, fmt.Errorf("%w: zfp-fr flag: %w", compressor.ErrBadStream, err)
				}
				if zero == 1 {
					zeroFill(blk)
				} else {
					e64, err := r.ReadBits(16)
					if err != nil {
						return nil, fmt.Errorf("%w: zfp-fr exponent: %w", compressor.ErrBadStream, err)
					}
					for i := range u {
						u[i] = 0
					}
					used := int64(r.Consumed()) - start
					decodePlanes(r, u, 0, budget-used)
					nbToSamples(u, sh, int(e64)-1024, blk)
				}
				// Skip padding.
				for int64(r.Consumed())-start < budget {
					if _, err := r.ReadBit(); err != nil {
						return nil, fmt.Errorf("%w: zfp-fr padding: %w", compressor.ErrBadStream, err)
					}
				}
				scatterBlock(f, sh, bx, by, bz, blk)
			}
		}
	}
	return f, nil
}

// EstimateSampledBits runs the real per-block encoder on one block of every
// `every` along each non-trivial dimension and reports the payload bits it
// produced plus the sampled and total block counts, for compression-ratio
// extrapolation. This is the computational core of the SECRE ZFP surrogate.
func EstimateSampledBits(f *field.Field, eb float64, every int) (bits uint64, sampled, total int) {
	if every < 1 {
		every = 1
	}
	sh := shapes[f.Dims()]
	blk := make([]float64, sh.size)
	w := bitstream.NewWriter(1024)
	stepX := sh.sx * every
	stepY := sh.sy
	stepZ := sh.sz
	if f.Ny > 1 {
		stepY *= every
	}
	if f.Nz > 1 {
		stepZ *= every
	}
	for bz := 0; bz < f.Nz; bz += sh.sz {
		for by := 0; by < f.Ny; by += sh.sy {
			for bx := 0; bx < f.Nx; bx += sh.sx {
				total++
				if bx%stepX == 0 && by%stepY == 0 && bz%stepZ == 0 {
					gatherBlock(f, sh, bx, by, bz, blk)
					encodeBlock(w, blk, sh, eb)
					sampled++
				}
			}
		}
	}
	return w.BitLen(), sampled, total
}

// HeaderOverheadBytes is the fixed stream overhead (header + bit length).
const HeaderOverheadBytes = 25 + 8
