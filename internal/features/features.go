// Package features computes the five compressibility features FXRZ
// identified and CAROL reuses (§5.4 of the paper): mean value, value range,
// mean neighbor difference (MND), mean Lorenzo difference (MLD) and mean
// spline difference (MSD).
//
// Three extraction strategies are provided, matching the paper's Figure 6:
//
//   - ExtractFull: serial, every interior point (FXRZ without sampling);
//   - ExtractSampled: serial with point-wise stride sampling (FXRZ's
//     production configuration, stride 4);
//   - ExtractParallel: CAROL's accelerated extractor. The paper runs this
//     on a GPU; this repository maps the same design onto goroutines —
//     surface points are excluded (no boundary branches in the inner loop),
//     sampling is block-wise rather than point-wise (coalesced access), and
//     each worker accumulates into private partial sums (the shared-memory
//     reduction). See DESIGN.md §2 for the substitution rationale.
package features

import (
	"math"
	"runtime"
	"sync"
	"time"

	"carol/internal/field"
	"carol/internal/obs"
)

// ExtractParallel metrics (obs.Default). The plan/scan split mirrors the
// GPU original's kernel-launch vs kernel-execution phases: plan is the
// serial block-sampling setup, scan is the workers' accumulation pass.
// Worker busy time is observed once per worker per call, so the spread of
// the features_extract_scan_seconds histogram exposes load imbalance
// across the block distribution.
var (
	extractSeconds     = obs.Default.Histogram("features_extract_seconds", obs.LatencyBuckets())
	extractPlanSeconds = obs.Default.Histogram("features_extract_plan_seconds", obs.LatencyBuckets())
	extractScanSeconds = obs.Default.Histogram("features_extract_scan_seconds", obs.LatencyBuckets())
	extractCalls       = obs.Default.Counter("features_extract_calls_total")
	extractBlocks      = obs.Default.Counter("features_extract_blocks_total")
	extractPoints      = obs.Default.Counter("features_extract_points_total")
)

// Count is the number of features in a Vector.
const Count = 5

// Vector holds the five FXRZ features of a field.
type Vector struct {
	Mean  float64 // mean value
	Range float64 // value range (max - min)
	MND   float64 // mean |neighbor difference|
	MLD   float64 // mean |Lorenzo prediction residual|
	MSD   float64 // mean |spline prediction residual|, summed over axes
}

// Slice returns the features in canonical order, for model input.
func (v Vector) Slice() []float64 {
	return []float64{v.Mean, v.Range, v.MND, v.MLD, v.MSD}
}

// Names returns the canonical feature names.
func Names() []string { return []string{"mean", "range", "mnd", "mld", "msd"} }

// accum collects partial sums over a set of points.
type accum struct {
	n                      int
	sum                    float64
	min, max               float64
	sumMND, sumMLD, sumMSD float64
}

func (a *accum) merge(b accum) {
	if b.n > 0 {
		if a.n == 0 || b.min < a.min {
			a.min = b.min
		}
		if a.n == 0 || b.max > a.max {
			a.max = b.max
		}
	}
	a.n += b.n
	a.sum += b.sum
	a.sumMND += b.sumMND
	a.sumMLD += b.sumMLD
	a.sumMSD += b.sumMSD
}

// pointFeatures accumulates the MND/MLD/MSD contributions of an interior
// point. Callers guarantee 3 <= x < nx-3 etc. for non-trivial dimensions.
func pointFeatures(f *field.Field, x, y, z int, a *accum) {
	d := float64(f.At(x, y, z))
	if a.n == 0 || d < a.min {
		a.min = d
	}
	if a.n == 0 || d > a.max {
		a.max = d
	}
	a.sum += d

	// MND: average of the 2*dims axis neighbors.
	var nbSum float64
	nb := 0
	nbSum += float64(f.At(x-1, y, z)) + float64(f.At(x+1, y, z))
	nb += 2
	if f.Ny > 1 {
		nbSum += float64(f.At(x, y-1, z)) + float64(f.At(x, y+1, z))
		nb += 2
	}
	if f.Nz > 1 {
		nbSum += float64(f.At(x, y, z-1)) + float64(f.At(x, y, z+1))
		nb += 2
	}
	a.sumMND += math.Abs(d - nbSum/float64(nb))

	// MLD: Lorenzo prediction residual (order matched to dimensionality).
	var pred float64
	switch {
	case f.Nz > 1:
		pred = float64(f.At(x-1, y, z)) + float64(f.At(x, y-1, z)) + float64(f.At(x, y, z-1)) +
			float64(f.At(x-1, y-1, z-1)) -
			float64(f.At(x-1, y-1, z)) - float64(f.At(x-1, y, z-1)) - float64(f.At(x, y-1, z-1))
	case f.Ny > 1:
		pred = float64(f.At(x-1, y, z)) + float64(f.At(x, y-1, z)) - float64(f.At(x-1, y-1, z))
	default:
		pred = float64(f.At(x-1, y, z))
	}
	a.sumMLD += math.Abs(d - pred)

	// MSD: cubic spline residual along each non-trivial axis.
	spline := func(m3, m1, p1, p3 float64) float64 {
		return (-m3 + 9*m1 + 9*p1 - p3) / 16
	}
	msd := math.Abs(d - spline(
		float64(f.At(x-3, y, z)), float64(f.At(x-1, y, z)),
		float64(f.At(x+1, y, z)), float64(f.At(x+3, y, z))))
	if f.Ny > 1 {
		msd += math.Abs(d - spline(
			float64(f.At(x, y-3, z)), float64(f.At(x, y-1, z)),
			float64(f.At(x, y+1, z)), float64(f.At(x, y+3, z))))
	}
	if f.Nz > 1 {
		msd += math.Abs(d - spline(
			float64(f.At(x, y, z-3)), float64(f.At(x, y, z-1)),
			float64(f.At(x, y, z+1)), float64(f.At(x, y, z+3))))
	}
	a.sumMSD += msd
	a.n++
}

// interiorRanges returns the inclusive interior coordinate ranges and
// whether the field has any interior points at all. The x dimension always
// needs ±3 neighbors; y and z only when non-trivial. Dimensions smaller
// than 7 leave no interior.
func interiorRanges(f *field.Field) (x0, x1, y0, y1, z0, z1 int, ok bool) {
	if f.Nx < 7 {
		return 0, 0, 0, 0, 0, 0, false
	}
	x0, x1 = 3, f.Nx-4
	switch {
	case f.Ny == 1:
		y0, y1 = 0, 0
	case f.Ny < 7:
		return 0, 0, 0, 0, 0, 0, false
	default:
		y0, y1 = 3, f.Ny-4
	}
	switch {
	case f.Nz == 1:
		z0, z1 = 0, 0
	case f.Nz < 7:
		return 0, 0, 0, 0, 0, 0, false
	default:
		z0, z1 = 3, f.Nz-4
	}
	return x0, x1, y0, y1, z0, z1, true
}

// finish combines the accumulated sums into a Vector. Mean and range come
// from the visited points (the sampled extractors see only their sample, as
// FXRZ's do); degenerate fields with no interior fall back to a full pass.
func finish(f *field.Field, a accum) Vector {
	if a.n == 0 {
		return Vector{Mean: f.Mean(), Range: f.ValueRange()}
	}
	return Vector{
		Mean:  a.sum / float64(a.n),
		Range: a.max - a.min,
		MND:   a.sumMND / float64(a.n),
		MLD:   a.sumMLD / float64(a.n),
		MSD:   a.sumMSD / float64(a.n),
	}
}

// ExtractFull computes the features over every interior point, serially.
func ExtractFull(f *field.Field) Vector {
	var a accum
	x0, x1, y0, y1, z0, z1, ok := interiorRanges(f)
	if !ok {
		return finish(f, a)
	}
	for z := z0; z <= z1; z++ {
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				pointFeatures(f, x, y, z, &a)
			}
		}
	}
	return finish(f, a)
}

// ExtractSampled computes the features over interior points on a strided
// sub-grid (FXRZ uses stride 4, visiting ~1.5% of a 3D dataset).
func ExtractSampled(f *field.Field, stride int) Vector {
	if stride < 1 {
		stride = 1
	}
	var a accum
	x0, x1, y0, y1, z0, z1, ok := interiorRanges(f)
	if !ok {
		return finish(f, a)
	}
	for z := z0; z <= z1; z += stride {
		for y := y0; y <= y1; y += stride {
			for x := x0; x <= x1; x += stride {
				pointFeatures(f, x, y, z, &a)
			}
		}
	}
	return finish(f, a)
}

// ParallelOptions tunes ExtractParallel. The zero value uses the paper's
// parameters (32-element blocks, 1 of every 4, all cores).
type ParallelOptions struct {
	// BlockSize is the block edge length per non-trivial dimension.
	// Default 32, clamped to the field dimensions.
	BlockSize int
	// Every keeps one block of every N along each dimension. Default 4.
	Every int
	// Workers is the goroutine count. Default runtime.GOMAXPROCS(0).
	Workers int
}

func (o ParallelOptions) withDefaults() ParallelOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = 32
	}
	if o.Every <= 0 {
		o.Every = 4
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// blockTask is one sampled block to process.
type blockTask struct {
	x0, x1, y0, y1, z0, z1 int
}

// axisPlan places n sampled blocks of width bs at spacing step along one
// axis, starting at base and never exceeding limit.
type axisPlan struct {
	base, limit, bs, step, n int
}

// slot returns the inclusive coordinate range of block i.
func (p axisPlan) slot(i int) (lo, hi int) {
	lo = p.base + i*p.step
	hi = lo + p.bs - 1
	if hi > p.limit {
		hi = p.limit
	}
	return lo, hi
}

// planAxis computes the sampling plan for one axis's interior range.
func planAxis(lo, hi int, opts ParallelOptions, sampled bool) axisPlan {
	if !sampled || hi <= lo {
		return axisPlan{base: lo, limit: hi, bs: hi - lo + 1, step: 1, n: 1}
	}
	extent := hi - lo + 1
	span := opts.BlockSize * opts.Every
	n := (extent + span - 1) / span
	bs := (extent + opts.Every*n - 1) / (opts.Every * n)
	step := (extent + n - 1) / n
	return axisPlan{base: lo, limit: hi, bs: bs, step: step, n: n}
}

// ExtractParallel computes the features with CAROL's accelerated strategy:
// block-wise sampling, surface exclusion, and per-worker partial sums merged
// at the end.
func ExtractParallel(f *field.Field, opts ParallelOptions) Vector {
	start := time.Now()
	defer extractSeconds.ObserveSince(start)
	extractCalls.Inc()
	opts = opts.withDefaults()
	x0, x1, y0, y1, z0, z1, ok := interiorRanges(f)
	if !ok {
		return finish(f, accum{})
	}
	// Per-axis sampling plan: keep a 1/Every fraction of each axis in
	// contiguous blocks of (up to) BlockSize, evenly spread. On the paper's
	// 512^3 inputs this reduces to "32-wide blocks, one of every four"; on
	// scaled-down fields the block width shrinks so the sampled fraction
	// stays (1/Every)^dims instead of ballooning.
	planX := planAxis(x0, x1, opts, f.Nx > 1)
	planY := planAxis(y0, y1, opts, f.Ny > 1)
	planZ := planAxis(z0, z1, opts, f.Nz > 1)
	var tasks []blockTask
	for iz := 0; iz < planZ.n; iz++ {
		zlo, zhi := planZ.slot(iz)
		for iy := 0; iy < planY.n; iy++ {
			ylo, yhi := planY.slot(iy)
			for ix := 0; ix < planX.n; ix++ {
				xlo, xhi := planX.slot(ix)
				tasks = append(tasks, blockTask{xlo, xhi, ylo, yhi, zlo, zhi})
			}
		}
	}

	extractPlanSeconds.ObserveSince(start)
	extractBlocks.Add(int64(len(tasks)))

	workers := opts.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	partials := make([]accum, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker busy time: one observation per worker per call, so
			// the histogram spread shows scan-phase load imbalance.
			scanStart := time.Now()
			defer extractScanSeconds.ObserveSince(scanStart)
			// Accumulate into a stack-local struct to avoid false sharing
			// between workers; publish once at the end.
			var local accum
			a := &local
			defer func() { partials[w] = local }()
			for ti := w; ti < len(tasks); ti += workers {
				t := tasks[ti]
				for z := t.z0; z <= t.z1; z++ {
					for y := t.y0; y <= t.y1; y++ {
						for x := t.x0; x <= t.x1; x++ {
							pointFeatures(f, x, y, z, a)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var total accum
	for _, p := range partials {
		total.merge(p)
	}
	extractPoints.Add(int64(total.n))
	return finish(f, total)
}
