package features

import (
	"math"
	"testing"

	"carol/internal/field"
	"carol/internal/xrand"
)

func smoothField(nx, ny, nz int, seed uint64) *field.Field {
	n := xrand.NewNoise(seed)
	f := field.New("smooth", nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				f.Set(x, y, z, float32(5*n.FBm(float64(x)/20, float64(y)/20, float64(z)/20, 4, 0.5)))
			}
		}
	}
	return f
}

func roughField(nx, ny, nz int, seed uint64) *field.Field {
	rng := xrand.New(seed)
	f := field.New("rough", nx, ny, nz)
	for i := range f.Data {
		f.Data[i] = float32(rng.Norm() * 5)
	}
	return f
}

func TestVectorSliceAndNames(t *testing.T) {
	v := Vector{Mean: 1, Range: 2, MND: 3, MLD: 4, MSD: 5}
	s := v.Slice()
	want := []float64{1, 2, 3, 4, 5}
	if len(s) != Count || len(Names()) != Count {
		t.Fatal("feature count mismatch")
	}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("Slice[%d] = %g", i, s[i])
		}
	}
}

func TestConstantFieldHasZeroSmoothnessFeatures(t *testing.T) {
	f := field.New("const", 32, 32, 8)
	for i := range f.Data {
		f.Data[i] = 7
	}
	v := ExtractFull(f)
	if v.Mean != 7 || v.Range != 0 {
		t.Fatalf("Mean/Range = %g/%g", v.Mean, v.Range)
	}
	if v.MND != 0 || v.MLD != 0 || v.MSD != 0 {
		t.Fatalf("smoothness features nonzero: %+v", v)
	}
}

func TestLinearRampHasZeroLorenzoAndSpline(t *testing.T) {
	// A perfectly linear field is exactly predicted by both the Lorenzo
	// predictor and the cubic spline.
	f := field.New("ramp", 32, 16, 8)
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			for x := 0; x < f.Nx; x++ {
				f.Set(x, y, z, float32(2*x+3*y+5*z))
			}
		}
	}
	v := ExtractFull(f)
	if v.MLD > 1e-4 {
		t.Fatalf("MLD on linear ramp = %g", v.MLD)
	}
	if v.MSD > 1e-4 {
		t.Fatalf("MSD on linear ramp = %g", v.MSD)
	}
	// The symmetric neighbor average is exact on a linear field too.
	if v.MND > 1e-4 {
		t.Fatalf("MND on linear ramp = %g", v.MND)
	}
}

func TestRoughVsSmoothOrdering(t *testing.T) {
	smooth := ExtractFull(smoothField(32, 32, 8, 1))
	rough := ExtractFull(roughField(32, 32, 8, 2))
	if rough.MND <= smooth.MND || rough.MLD <= smooth.MLD || rough.MSD <= smooth.MSD {
		t.Fatalf("rough field not rougher: smooth %+v rough %+v", smooth, rough)
	}
}

func TestSampledApproximatesFull(t *testing.T) {
	f := smoothField(64, 64, 16, 3)
	full := ExtractFull(f)
	sampled := ExtractSampled(f, 4)
	for i, name := range Names() {
		fv, sv := full.Slice()[i], sampled.Slice()[i]
		if fv == 0 {
			continue
		}
		if math.Abs(fv-sv)/math.Abs(fv) > 0.25 {
			t.Errorf("%s: sampled %g vs full %g", name, sv, fv)
		}
	}
}

func TestParallelApproximatesFull(t *testing.T) {
	f := smoothField(64, 64, 16, 4)
	full := ExtractFull(f)
	par := ExtractParallel(f, ParallelOptions{BlockSize: 8, Every: 2})
	for i, name := range Names() {
		fv, pv := full.Slice()[i], par.Slice()[i]
		if fv == 0 {
			continue
		}
		if math.Abs(fv-pv)/math.Abs(fv) > 0.25 {
			t.Errorf("%s: parallel %g vs full %g", name, pv, fv)
		}
	}
}

func TestParallelDeterministic(t *testing.T) {
	// Partial sums merge in worker order, so results must be identical
	// across runs and worker counts up to float addition order within a
	// worker (fixed by the task striding).
	f := smoothField(48, 48, 8, 5)
	a := ExtractParallel(f, ParallelOptions{Workers: 4, BlockSize: 8, Every: 2})
	b := ExtractParallel(f, ParallelOptions{Workers: 4, BlockSize: 8, Every: 2})
	if a != b {
		t.Fatalf("parallel extraction not deterministic: %+v vs %+v", a, b)
	}
}

func TestParallelSingleWorkerMatchesManyApprox(t *testing.T) {
	f := smoothField(48, 48, 8, 6)
	one := ExtractParallel(f, ParallelOptions{Workers: 1, BlockSize: 8, Every: 2})
	many := ExtractParallel(f, ParallelOptions{Workers: 8, BlockSize: 8, Every: 2})
	for i, name := range Names() {
		ov, mv := one.Slice()[i], many.Slice()[i]
		if ov == 0 {
			continue
		}
		if math.Abs(ov-mv)/math.Abs(ov) > 1e-9 {
			t.Errorf("%s: 1 worker %g vs 8 workers %g", name, ov, mv)
		}
	}
}

func TestSmallAndDegenerateFields(t *testing.T) {
	// Fields too small to have interior points must not panic and must
	// still report mean/range.
	for _, dims := range [][3]int{{1, 1, 1}, {4, 4, 1}, {6, 6, 6}, {7, 1, 1}} {
		f := roughField(dims[0], dims[1], dims[2], 7)
		for _, v := range []Vector{
			ExtractFull(f),
			ExtractSampled(f, 4),
			ExtractParallel(f, ParallelOptions{}),
		} {
			if math.IsNaN(v.Mean) || math.IsNaN(v.MND) {
				t.Fatalf("dims %v: NaN features %+v", dims, v)
			}
		}
	}
}

func Test2DFieldFeatures(t *testing.T) {
	f := smoothField(64, 64, 1, 8)
	v := ExtractFull(f)
	if v.MND == 0 || v.MLD == 0 || v.MSD == 0 {
		t.Fatalf("2D features degenerate: %+v", v)
	}
	s := ExtractSampled(f, 4)
	if math.Abs(s.MND-v.MND)/v.MND > 0.3 {
		t.Fatalf("2D sampled MND %g vs full %g", s.MND, v.MND)
	}
}

func Test1DFieldFeatures(t *testing.T) {
	f := smoothField(512, 1, 1, 9)
	v := ExtractFull(f)
	if v.MND == 0 || v.MSD == 0 {
		t.Fatalf("1D features degenerate: %+v", v)
	}
}

func BenchmarkExtractFull(b *testing.B) {
	f := smoothField(64, 64, 64, 1)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExtractFull(f)
	}
}

func BenchmarkExtractSampled(b *testing.B) {
	f := smoothField(64, 64, 64, 1)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExtractSampled(f, 4)
	}
}

func BenchmarkExtractParallel(b *testing.B) {
	f := smoothField(64, 64, 64, 1)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExtractParallel(f, ParallelOptions{})
	}
}
