// Package stats provides the small statistical helpers the evaluation uses:
// running accumulators and the paper's estimation-error metric α
// (equations (1) and (2) of the CAROL paper).
package stats

import "math"

// Accumulator tracks running mean, min, max and count of a series.
// The zero value is ready to use.
type Accumulator struct {
	n   int
	sum float64
	min float64
	max float64
}

// Add incorporates v.
func (a *Accumulator) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
}

// Count returns the number of samples added.
func (a *Accumulator) Count() int { return a.n }

// Mean returns the arithmetic mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Sum returns the total of the samples.
func (a *Accumulator) Sum() float64 { return a.sum }

// Min returns the smallest sample (0 for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 for an empty accumulator).
func (a *Accumulator) Max() float64 { return a.max }

// PctError returns the percentage estimation error α_i of one estimate
// against its ground truth (equation (2)): 100 * |est - truth| / truth.
// It returns 0 when truth is 0.
func PctError(est, truth float64) float64 {
	if truth == 0 { //carol:allow floateq exact-zero ground truth guard before dividing
		return 0
	}
	return 100 * math.Abs(est-truth) / math.Abs(truth)
}

// EstimationError returns the mean percentage estimation error α over a
// sample of estimates (equation (1)). The slices must be equal length.
func EstimationError(est, truth []float64) float64 {
	if len(est) != len(truth) || len(est) == 0 {
		return 0
	}
	var acc Accumulator
	for i := range est {
		acc.Add(PctError(est[i], truth[i]))
	}
	return acc.Mean()
}

// MeanSquaredError returns the MSE between two equal-length series.
func MeanSquaredError(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum / float64(len(a))
}

// Interp1D linearly interpolates y(x) through the (ascending xs, ys) sample,
// clamping outside the range. It is the interpolation both FXRZ and CAROL
// use to turn sampled (error bound, ratio) pairs into a continuous
// compression function f(e).
func Interp1D(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return ys[lo] + t*(ys[hi]-ys[lo])
}

// InvInterp1D inverts a monotone non-decreasing sampled function: it returns
// the x at which the interpolated y(x) equals target, clamped to the sample
// range. This is how a framework converts a desired compression ratio into
// an error bound once f(e) is known.
func InvInterp1D(xs, ys []float64, target float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if target <= ys[0] {
		return xs[0]
	}
	if target >= ys[n-1] {
		return xs[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ys[mid] <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	if ys[hi] == ys[lo] { //carol:allow floateq flat interpolation segment guard before dividing
		return xs[lo]
	}
	t := (target - ys[lo]) / (ys[hi] - ys[lo])
	return xs[lo] + t*(xs[hi]-xs[lo])
}
