package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Count() != 0 || a.Mean() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatal("zero value not clean")
	}
	for _, v := range []float64{3, -1, 7, 2} {
		a.Add(v)
	}
	if a.Count() != 4 {
		t.Fatalf("Count = %d", a.Count())
	}
	if a.Mean() != 2.75 {
		t.Fatalf("Mean = %g", a.Mean())
	}
	if a.Min() != -1 || a.Max() != 7 {
		t.Fatalf("Min/Max = %g/%g", a.Min(), a.Max())
	}
	if a.Sum() != 11 {
		t.Fatalf("Sum = %g", a.Sum())
	}
}

func TestPctError(t *testing.T) {
	cases := []struct{ est, truth, want float64 }{
		{110, 100, 10},
		{90, 100, 10},
		{100, 100, 0},
		{5, 0, 0},
		{-50, -100, 50},
	}
	for _, c := range cases {
		if got := PctError(c.est, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PctError(%g, %g) = %g, want %g", c.est, c.truth, got, c.want)
		}
	}
}

func TestEstimationError(t *testing.T) {
	est := []float64{110, 90, 100}
	truth := []float64{100, 100, 100}
	if got := EstimationError(est, truth); math.Abs(got-20.0/3) > 1e-12 {
		t.Fatalf("α = %g", got)
	}
	if EstimationError(est, truth[:2]) != 0 {
		t.Fatal("length mismatch not rejected")
	}
	if EstimationError(nil, nil) != 0 {
		t.Fatal("empty input")
	}
}

func TestMeanSquaredError(t *testing.T) {
	if got := MeanSquaredError([]float64{1, 2}, []float64{3, 2}); got != 2 {
		t.Fatalf("MSE = %g", got)
	}
	if MeanSquaredError([]float64{1}, []float64{}) != 0 {
		t.Fatal("mismatch not rejected")
	}
}

func TestInterp1D(t *testing.T) {
	xs := []float64{0, 1, 3}
	ys := []float64{0, 10, 30}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {2, 20}, {3, 30}, {9, 30},
	}
	for _, c := range cases {
		if got := Interp1D(xs, ys, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Interp1D(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if Interp1D(nil, nil, 1) != 0 {
		t.Fatal("empty sample")
	}
}

func TestInvInterp1D(t *testing.T) {
	xs := []float64{0, 1, 3}
	ys := []float64{0, 10, 30}
	cases := []struct{ target, want float64 }{
		{-5, 0}, {0, 0}, {5, 0.5}, {10, 1}, {20, 2}, {30, 3}, {99, 3},
	}
	for _, c := range cases {
		if got := InvInterp1D(xs, ys, c.target); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("InvInterp1D(%g) = %g, want %g", c.target, got, c.want)
		}
	}
}

func TestInvInterp1DFlatSegment(t *testing.T) {
	// Step-wise functions (like ZFP's ratio curve) have flat segments; the
	// inverse must not divide by zero.
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 10}
	got := InvInterp1D(xs, ys, 10)
	if math.IsNaN(got) || got < 1 || got > 2 {
		t.Fatalf("flat segment inverse = %g", got)
	}
}

// Property: InvInterp1D is a right-inverse of Interp1D for strictly
// increasing samples, within the sampled range.
func TestQuickInverseConsistency(t *testing.T) {
	f := func(seed int64, t01 float64) bool {
		t01 = math.Abs(math.Mod(t01, 1))
		xs := []float64{0, 1, 2, 4, 8}
		ys := []float64{1, 3, 7, 20, 100}
		target := 1 + t01*99
		x := InvInterp1D(xs, ys, target)
		back := Interp1D(xs, ys, x)
		return math.Abs(back-target) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
