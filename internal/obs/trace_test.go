package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceSpansAndHistograms(t *testing.T) {
	r := NewRegistry()
	tr := r.StartTrace("op")
	s := tr.StartSpan("parse")
	time.Sleep(time.Millisecond)
	if d := s.End(); d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	s = tr.StartSpan("work")
	s.End()
	if d := tr.End(); d <= 0 {
		t.Fatalf("trace duration %v", d)
	}

	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Stage != "parse" || spans[1].Stage != "work" {
		t.Fatalf("spans = %v", spans)
	}
	str := tr.String()
	if !strings.HasPrefix(str, "parse=") || !strings.Contains(str, " work=") {
		t.Fatalf("String() = %q", str)
	}

	if got := r.Histogram("op_parse_seconds", LatencyBuckets()).Count(); got != 1 {
		t.Fatalf("per-stage histogram count = %d", got)
	}
	if got := r.Histogram("op_seconds", LatencyBuckets()).Count(); got != 1 {
		t.Fatalf("total histogram count = %d", got)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	s := tr.StartSpan("x")
	if d := s.End(); d != 0 {
		t.Fatalf("nil span End = %v", d)
	}
	if d := tr.End(); d != 0 {
		t.Fatalf("nil trace End = %v", d)
	}
	if tr.Spans() != nil || tr.String() != "" {
		t.Fatal("nil trace not a no-op")
	}
}
