package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	if c2 := r.Counter("reqs_total"); c2 != c {
		t.Fatal("get-or-create returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 { //carol:allow floateq exact value stored and reloaded
		t.Fatalf("Value() = %g, want 2.5", got)
	}
	g.Add(-1.5)
	if got := g.Value(); got != 1 { //carol:allow floateq exact float arithmetic on representable values
		t.Fatalf("after Add: Value() = %g, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	bounds, counts := h.Snapshot()
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v", bounds)
	}
	want := []int64{2, 1, 1, 1} // 0.5 and 1 (inclusive) in le=1; NaN dropped
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-556.5) > 1e-9 {
		t.Fatalf("Sum() = %g, want 556.5", got)
	}
}

func TestHistogramFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{10, 20, 30})
	if h1 != h2 {
		t.Fatal("second registration returned a different histogram")
	}
	bounds, _ := h1.Snapshot()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v, want first registration's", bounds)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering counter name as gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestLabel(t *testing.T) {
	got := Label("http_requests_total", "endpoint", "/v1/compress", "code", "200")
	want := `http_requests_total{endpoint="/v1/compress",code="200"}`
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
	if got := Label("m", "k", `a"b\c`); got != `m{k="a\"b\\c"}` {
		t.Fatalf("escaped Label = %q", got)
	}
	if got := Label("plain"); got != "plain" {
		t.Fatalf("no-label Label = %q", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 1, 4)
	for i, want := range []float64{1, 2, 3, 4} {
		if lin[i] != want { //carol:allow floateq exact linear bucket construction
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	exp := ExpBuckets(1e-6, 4, 3)
	if exp[0] != 1e-6 || exp[2] != 1.6e-5 { //carol:allow floateq exact binary-representable products
		t.Fatalf("ExpBuckets = %v", exp)
	}
	if n := len(LatencyBuckets()); n != 13 {
		t.Fatalf("LatencyBuckets len = %d", n)
	}
}

// TestConcurrentObserve exercises every hot-path operation from many
// goroutines under -race and checks the totals are exact (no lost updates).
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets())
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				// Concurrent get-or-create of the same names must be safe too.
				r.Counter("c").Add(0)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker { //carol:allow floateq integral float adds are exact
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "has space", "has\nnewline"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	r.Histogram("bad", []float64{1, 1})
}

func TestSplitName(t *testing.T) {
	base, labels := splitName(`m{a="1",b="2"}`)
	if base != "m" || labels != `a="1",b="2"` {
		t.Fatalf("splitName = %q, %q", base, labels)
	}
	base, labels = splitName("plain")
	if base != "plain" || labels != "" {
		t.Fatalf("splitName plain = %q, %q", base, labels)
	}
}

func TestDefaultRegistryShared(t *testing.T) {
	name := "obs_test_default_counter"
	Default.Counter(name).Inc()
	var sb strings.Builder
	if err := Default.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), name+" ") {
		t.Fatal("default registry exposition missing test counter")
	}
}
