// Package obs is the repository's observability substrate: a pure-stdlib
// registry of counters, gauges and fixed-bucket latency histograms, plus a
// lightweight per-request trace/span API (trace.go) for multi-stage timing.
//
// Design constraints (DESIGN.md §10):
//
//   - Hot-path operations (Counter.Add, Gauge.Set, Histogram.Observe) are
//     lock-free atomics and allocate nothing. Instrumented packages hold
//     metric handles in package-level variables so the registry map is
//     only consulted at init time, never per observation.
//   - Exposition is deterministic: metric families are emitted in sorted
//     name order and floats are formatted with strconv's shortest
//     round-trip form, so two snapshots of the same state are
//     byte-identical (the same discipline carollint's maporder check
//     enforces everywhere else in the repo).
//   - Readers never block writers. Snapshots are atomic per value, not
//     across values: a histogram scraped mid-Observe may transiently show
//     sum and bucket counts from adjacent observations. For monitoring
//     that skew is harmless and the price of an uncontended hot path.
//
// The process-global Default registry is what the instrumented packages
// (features, fraz, rf, secre, compressor) and carolserve's /metrics
// endpoint share. Tests that need isolation construct their own registry
// with NewRegistry.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-global registry used by the instrumented packages
// and exposed by carolserve's /metrics and /debug/vars endpoints.
var Default = NewRegistry()

// Registry holds named metrics. Lookup is guarded by a mutex; the returned
// handles are lock-free. Get-or-create methods are idempotent: asking for
// an existing name returns the existing metric (first registration wins,
// including histogram bucket bounds), and asking for a name registered as
// a different kind panics — that is a programming error, not a runtime
// condition.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// checkName panics on names the text exposition cannot represent.
func checkName(name string) {
	if name == "" || strings.ContainsAny(name, " \n\t") {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

// checkKind panics when name is already registered under another kind.
// Callers hold r.mu.
func (r *Registry) checkKind(name, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	checkName(name)
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkKind(name, "counter")
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	checkName(name)
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkKind(name, "gauge")
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed. Bounds must be strictly
// increasing; an implicit +Inf bucket is always appended. If the name is
// already registered the existing histogram (and its original bounds) is
// returned.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	checkName(name)
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkKind(name, "histogram")
	h = newHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Label formats a metric name with label pairs in canonical form:
// name{k1="v1",k2="v2"}. Pairs are emitted in the order given (callers
// pass them in a fixed order, keeping names deterministic); values are
// escaped for quotes, backslashes and newlines. It panics on an odd
// number of key/value arguments.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: Label(%q): odd key/value count %d", name, len(kv)))
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, `"\`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitName separates a Label-formatted name into its base and the label
// body (without braces). Names without labels return labels == "".
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// Counter is a monotonically non-decreasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: Counter.Add with negative delta; use a Gauge")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is lock-free
// and allocation-free; the bucket scan is a short linear pass over the
// bounds slice (bounded by the bucket count, typically ≤ 24).
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds (exclusive of +Inf)
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at index %d", i))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
}

// Observe records v into its bucket and the running sum. NaN observations
// are dropped — they would poison the sum and fit no bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations (sum of bucket counts).
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the bucket upper bounds (with a trailing +Inf) and the
// per-bucket counts at one instant.
func (h *Histogram) Snapshot() (bounds []float64, counts []int64) {
	bounds = make([]float64, len(h.bounds)+1)
	copy(bounds, h.bounds)
	bounds[len(h.bounds)] = math.Inf(1)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: LinearBuckets needs n >= 1 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n >= 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the shared bucket layout for *_seconds histograms:
// 1µs to ~34s in ×4 steps (13 bounds + implicit +Inf), wide enough to
// straddle everything from a single histogram update to a paper-scale
// compression run.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 4, 13) }

// sortedKeys returns the keys of a metric map in sorted order.
// (Collect-then-sort is the maporder-sanctioned pattern; exposition output
// must be byte-identical across runs.)
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
