package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strconv"
)

// WriteText writes the registry in a Prometheus-style text exposition:
// one `# TYPE` line per metric family followed by its sample lines,
// families in sorted name order. Histograms expand into cumulative
// `_bucket{le="..."}` lines plus `_sum` and `_count`. Output is
// deterministic: identical registry state yields byte-identical text.
//
// The document is assembled in memory (bytes.Buffer writes cannot fail)
// and flushed with a single checked Write, so a broken scrape connection
// surfaces exactly one error.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	counterNames := sortedKeys(r.counters)
	gaugeNames := sortedKeys(r.gauges)
	histNames := sortedKeys(r.histograms)
	counters := make([]*Counter, len(counterNames))
	for i, n := range counterNames {
		counters[i] = r.counters[n]
	}
	gauges := make([]*Gauge, len(gaugeNames))
	for i, n := range gaugeNames {
		gauges[i] = r.gauges[n]
	}
	hists := make([]*Histogram, len(histNames))
	for i, n := range histNames {
		hists[i] = r.histograms[n]
	}
	r.mu.RUnlock()

	var buf bytes.Buffer
	lastFamily := ""
	typeLine := func(name, kind string) {
		family, _ := splitName(name)
		if family != lastFamily {
			buf.WriteString("# TYPE ")
			buf.WriteString(family)
			buf.WriteByte(' ')
			buf.WriteString(kind)
			buf.WriteByte('\n')
			lastFamily = family
		}
	}

	for i, name := range counterNames {
		typeLine(name, "counter")
		buf.WriteString(name)
		buf.WriteByte(' ')
		buf.WriteString(strconv.FormatInt(counters[i].Value(), 10))
		buf.WriteByte('\n')
	}
	for i, name := range gaugeNames {
		typeLine(name, "gauge")
		buf.WriteString(name)
		buf.WriteByte(' ')
		buf.WriteString(formatFloat(gauges[i].Value()))
		buf.WriteByte('\n')
	}
	for i, name := range histNames {
		typeLine(name, "histogram")
		writeHistogramText(&buf, name, hists[i])
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// writeHistogramText emits the cumulative bucket, sum and count lines for
// one histogram, merging any labels already present in name with the
// per-bucket le label.
func writeHistogramText(buf *bytes.Buffer, name string, h *Histogram) {
	base, labels := splitName(name)
	bounds, counts := h.Snapshot()
	var cum int64
	for i, ub := range bounds {
		cum += counts[i]
		buf.WriteString(base)
		buf.WriteString("_bucket{")
		if labels != "" {
			buf.WriteString(labels)
			buf.WriteByte(',')
		}
		buf.WriteString(`le="`)
		buf.WriteString(formatLe(ub))
		buf.WriteString(`"} `)
		buf.WriteString(strconv.FormatInt(cum, 10))
		buf.WriteByte('\n')
	}
	suffix := func(s string) string {
		if labels == "" {
			return base + s
		}
		return base + s + "{" + labels + "}"
	}
	buf.WriteString(suffix("_sum"))
	buf.WriteByte(' ')
	buf.WriteString(formatFloat(h.Sum()))
	buf.WriteByte('\n')
	buf.WriteString(suffix("_count"))
	buf.WriteByte(' ')
	buf.WriteString(strconv.FormatInt(cum, 10))
	buf.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLe(ub float64) string {
	if math.IsInf(ub, 1) {
		return "+Inf"
	}
	return formatFloat(ub)
}

// histogramJSON is the JSON shape of one histogram in WriteJSON output.
type histogramJSON struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []bucketJSON `json:"buckets"`
}

type bucketJSON struct {
	Le    string `json:"le"`
	Count int64  `json:"count"` // per-bucket (non-cumulative) count
}

// WriteJSON writes the registry as a /debug/vars-style JSON document with
// top-level "counters", "gauges" and "histograms" objects. encoding/json
// sorts map keys, so the output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]histogramJSON, len(r.histograms))
	for name, h := range r.histograms {
		bounds, counts := h.Snapshot()
		buckets := make([]bucketJSON, len(bounds))
		for i, ub := range bounds {
			buckets[i] = bucketJSON{Le: formatLe(ub), Count: counts[i]}
		}
		var n int64
		for _, c := range counts {
			n += c
		}
		hists[name] = histogramJSON{Count: n, Sum: h.Sum(), Buckets: buckets}
	}
	r.mu.RUnlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	})
}
