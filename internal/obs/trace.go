package obs

import (
	"strings"
	"sync"
	"time"
)

// Trace times the stages of one logical operation (an HTTP request, a
// ratio search, a training run). Each StartSpan/End pair records the
// stage's duration both into the trace's own record — retrievable with
// Spans or String for a response header or log line — and into a
// registry histogram named <trace>_<stage>_seconds, so per-stage latency
// distributions accumulate across requests without any extra bookkeeping
// at the call sites.
//
// A nil *Trace is valid: every method is a no-op, so instrumented code can
// thread an optional trace through without nil checks at each stage.
type Trace struct {
	reg   *Registry
	name  string
	start time.Time
	total *Histogram

	mu    sync.Mutex
	spans []SpanRecord
}

// SpanRecord is one completed stage of a trace.
type SpanRecord struct {
	Stage    string
	Duration time.Duration
}

// Span is an in-progress stage of a trace.
type Span struct {
	t     *Trace
	stage string
	start time.Time
	h     *Histogram
}

// StartTrace begins a trace named name. The trace's total duration is
// recorded into the histogram <name>_seconds when End is called.
func (r *Registry) StartTrace(name string) *Trace {
	return &Trace{
		reg:   r,
		name:  name,
		start: time.Now(),
		total: r.Histogram(name+"_seconds", LatencyBuckets()),
	}
}

// StartSpan begins timing one stage.
func (t *Trace) StartSpan(stage string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:     t,
		stage: stage,
		start: time.Now(),
		h:     t.reg.Histogram(t.name+"_"+stage+"_seconds", LatencyBuckets()),
	}
}

// End completes the span, recording its duration into the trace and the
// per-stage histogram, and returns the duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, SpanRecord{Stage: s.stage, Duration: d})
	s.t.mu.Unlock()
	return d
}

// End completes the trace, recording the total elapsed time into the
// <name>_seconds histogram, and returns it.
func (t *Trace) End() time.Duration {
	if t == nil {
		return 0
	}
	d := time.Since(t.start)
	t.total.Observe(d.Seconds())
	return d
}

// Spans returns a copy of the completed spans, in completion order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// String renders the completed spans as "stage1=1.2ms stage2=340µs" — the
// compact form carolserve puts in its X-Carol-Trace response header.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for i, s := range t.spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Stage)
		b.WriteByte('=')
		b.WriteString(s.Duration.String())
	}
	return b.String()
}
