package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func populated() *Registry {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Counter(Label("a_total", "k", "v1")).Add(1)
	r.Counter(Label("a_total", "k", "v2")).Add(2)
	r.Gauge("g_ratio").Set(1.5)
	h := r.Histogram(Label("h_seconds", "stage", "scan"), []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	return r
}

func TestWriteTextDeterministicAndSorted(t *testing.T) {
	r := populated()
	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two expositions of identical state differ")
	}
	want := `# TYPE a_total counter
a_total{k="v1"} 1
a_total{k="v2"} 2
# TYPE b_total counter
b_total 3
# TYPE g_ratio gauge
g_ratio 1.5
# TYPE h_seconds histogram
h_seconds_bucket{stage="scan",le="0.001"} 1
h_seconds_bucket{stage="scan",le="0.01"} 2
h_seconds_bucket{stage="scan",le="+Inf"} 3
h_seconds_sum{stage="scan"} 5.0055
h_seconds_count{stage="scan"} 3
`
	if a.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", a.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := populated()
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]histogramJSON `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if doc.Counters["b_total"] != 3 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	h, ok := doc.Histograms[`h_seconds{stage="scan"}`]
	if !ok || h.Count != 3 || len(h.Buckets) != 3 {
		t.Fatalf("histograms = %v", doc.Histograms)
	}
	if h.Buckets[2].Le != "+Inf" || h.Buckets[2].Count != 1 {
		t.Fatalf("overflow bucket = %+v", h.Buckets[2])
	}
	// Deterministic output: encoding/json sorts map keys.
	var sb2 strings.Builder
	if err := r.WriteJSON(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatal("two JSON expositions of identical state differ")
	}
}

func TestEmptyRegistryExposition(t *testing.T) {
	r := NewRegistry()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Fatalf("empty exposition = %q", sb.String())
	}
	sb.Reset()
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"counters": {}`) {
		t.Fatalf("empty JSON = %q", sb.String())
	}
}
