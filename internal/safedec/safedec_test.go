package safedec

import (
	"encoding/binary"
	"errors"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrTruncated, "truncated"},
		{ErrCorrupt, "corrupt"},
		{ErrLimit, "limit"},
		{errors.New("unrelated"), ""},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
	// Wrapped errors classify through the chain; truncated wins over corrupt
	// when both are present (the common "malformed because it ended early"
	// double wrap).
	both := errors.Join(ErrCorrupt, ErrTruncated)
	if got := Classify(both); got != "truncated" {
		t.Errorf("Classify(corrupt+truncated) = %q, want truncated", got)
	}
}

func TestLimitsNorm(t *testing.T) {
	var l Limits
	n := l.Norm()
	d := Default()
	if n != d {
		t.Fatalf("zero Limits normalized to %+v, want defaults %+v", n, d)
	}
	n = Limits{MaxElements: -5, MaxAlloc: 7, MaxCount: 3}.Norm()
	if n.MaxElements != d.MaxElements || n.MaxAlloc != 7 || n.MaxCount != 3 {
		t.Fatalf("partial Limits normalized to %+v", n)
	}
}

func TestLimitsElements(t *testing.T) {
	l := Limits{MaxElements: 1000}
	if n, err := l.Elements(10, 10, 10); err != nil || n != 1000 {
		t.Fatalf("Elements(10,10,10) = %d, %v", n, err)
	}
	if _, err := l.Elements(10, 10, 11); !errors.Is(err, ErrLimit) {
		t.Fatalf("over-limit product: %v", err)
	}
	for _, d := range [][3]int{{0, 1, 1}, {-1, 1, 1}, {1, 1 << 31, 1}} {
		if _, err := l.Elements(d[0], d[1], d[2]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("dims %v: err = %v, want ErrCorrupt", d, err)
		}
	}
	// A product that would overflow int64 must be rejected, not wrapped.
	big := 1 << 30
	if _, err := l.Elements(big, big, big); err == nil {
		t.Fatal("overflowing product accepted")
	}
}

func TestLimitsAllocCount(t *testing.T) {
	l := Limits{MaxAlloc: 100, MaxCount: 4}
	if err := l.Alloc("payload", 100); err != nil {
		t.Fatal(err)
	}
	if err := l.Alloc("payload", 101); !errors.Is(err, ErrLimit) {
		t.Fatalf("alloc over limit: %v", err)
	}
	if err := l.Alloc("payload", -1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative alloc: %v", err)
	}
	if err := l.Count("chunks", 4); err != nil {
		t.Fatal(err)
	}
	if err := l.Count("chunks", 5); !errors.Is(err, ErrLimit) {
		t.Fatalf("count over limit: %v", err)
	}
	if err := l.Count("chunks", -1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative count: %v", err)
	}
}

func TestReaderFixedWidth(t *testing.T) {
	buf := make([]byte, 0, 32)
	buf = append(buf, 0x7F)
	buf = binary.LittleEndian.AppendUint32(buf, 0xDEADBEEF)
	buf = binary.LittleEndian.AppendUint64(buf, 0x0123456789ABCDEF)
	buf = binary.BigEndian.AppendUint64(buf, 42)
	r := NewReader(buf)
	if b, err := r.U8("flag"); err != nil || b != 0x7F {
		t.Fatalf("U8 = %x, %v", b, err)
	}
	if v, err := r.U32("len"); err != nil || v != 0xDEADBEEF {
		t.Fatalf("U32 = %x, %v", v, err)
	}
	if v, err := r.U64("len64"); err != nil || v != 0x0123456789ABCDEF {
		t.Fatalf("U64 = %x, %v", v, err)
	}
	if v, err := r.BE64("bits"); err != nil || v != 42 {
		t.Fatalf("BE64 = %d, %v", v, err)
	}
	if r.Remaining() != 0 || r.Offset() != len(buf) {
		t.Fatalf("remaining %d offset %d", r.Remaining(), r.Offset())
	}
	// Every fixed-width read past the end is ErrTruncated.
	if _, err := r.U8("x"); !errors.Is(err, ErrTruncated) {
		t.Fatalf("U8 past end: %v", err)
	}
	if _, err := r.U32("x"); !errors.Is(err, ErrTruncated) {
		t.Fatalf("U32 past end: %v", err)
	}
	if _, err := r.U64("x"); !errors.Is(err, ErrTruncated) {
		t.Fatalf("U64 past end: %v", err)
	}
	if _, err := r.BE64("x"); !errors.Is(err, ErrTruncated) {
		t.Fatalf("BE64 past end: %v", err)
	}
}

func TestReaderVarintAndTake(t *testing.T) {
	buf := binary.AppendUvarint(nil, 300)
	buf = append(buf, 'a', 'b', 'c')
	r := NewReader(buf)
	if v, err := r.Uvarint("count"); err != nil || v != 300 {
		t.Fatalf("Uvarint = %d, %v", v, err)
	}
	b, err := r.Take("name", 3)
	if err != nil || string(b) != "abc" {
		t.Fatalf("Take = %q, %v", b, err)
	}
	if _, err := r.Take("more", 1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Take past end: %v", err)
	}
	if _, err := NewReader(nil).Uvarint("count"); !errors.Is(err, ErrTruncated) {
		t.Fatal("varint on empty input must be truncated")
	}
	// Non-terminated varint (all continuation bits).
	if _, err := NewReader([]byte{0x80, 0x80}).Uvarint("count"); !errors.Is(err, ErrTruncated) {
		t.Fatal("unterminated varint must be truncated")
	}
	// Overlong varint (>10 bytes of continuation) is corrupt.
	over := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}
	if _, err := NewReader(over).Uvarint("count"); !errors.Is(err, ErrCorrupt) {
		t.Fatal("overlong varint must be corrupt")
	}
	if _, err := NewReader(buf).Take("neg", -1); !errors.Is(err, ErrCorrupt) {
		t.Fatal("negative Take must be corrupt")
	}
}

func TestReaderRest(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if _, err := r.U8("b"); err != nil {
		t.Fatal(err)
	}
	rest := r.Rest()
	if len(rest) != 2 || rest[0] != 2 || r.Remaining() != 0 {
		t.Fatalf("Rest = %v, remaining %d", rest, r.Remaining())
	}
}
