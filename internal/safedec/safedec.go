// Package safedec is the shared decode-hardening layer under every
// decoder in this repository (the five codecs, the huffman entropy stage,
// and the chunked/archive container formats). Compressed streams arrive
// over the network (carolserve's /v1/decompress), so every header field —
// lengths, counts, dimensions — is attacker-controlled. safedec gives the
// decoders three things:
//
//   - an error taxonomy (ErrTruncated, ErrCorrupt, ErrLimit) so callers can
//     distinguish bad input from bugs and map each class to the right
//     HTTP status / metric;
//   - a Limits struct, threaded from callers, bounding how much memory a
//     single decode may commit to on the strength of header claims alone;
//   - a bounds-enforcing byte reader whose fixed-width and varint reads
//     return ErrTruncated instead of slicing out of range.
//
// The invariant every decoder retrofitted onto this package maintains:
// Decompress(arbitrary bytes) returns an error — it never panics and never
// allocates unbounded memory from a hostile length field. DESIGN.md §11
// documents the threat model.
package safedec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The three decode-failure classes. Every error a hardened decoder returns
// wraps exactly one of these (checkable with errors.Is):
//
//   - ErrTruncated: the input ended before the structure it claims to hold;
//     retrying with the complete stream could succeed.
//   - ErrCorrupt: the input is structurally invalid (bad magic, checksum
//     mismatch, impossible field values); no amount of retrying helps.
//   - ErrLimit: the input is not provably invalid but decoding it would
//     exceed the caller's configured resource limits.
var (
	ErrTruncated = errors.New("safedec: truncated input")
	ErrCorrupt   = errors.New("safedec: corrupt input")
	ErrLimit     = errors.New("safedec: decode limit exceeded")
)

// Classify maps err to a short reason label for metrics ("limit",
// "truncated", "corrupt"), or "" when err does not belong to the taxonomy.
// Truncation is checked before corruption: a truncated stream is usually
// also wrapped as malformed, and the more specific class wins.
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrLimit):
		return "limit"
	case errors.Is(err, ErrTruncated):
		return "truncated"
	case errors.Is(err, ErrCorrupt):
		return "corrupt"
	}
	return ""
}

// maxDim bounds any single grid dimension, keeping products of three
// dimensions far from int64 overflow.
const maxDim = 1 << 30

// Limits bounds the resources a single decode may commit on the strength
// of header-claimed values. The zero value of any field means "use the
// package default" (the Default values), so callers can override only the
// knobs they care about.
type Limits struct {
	// MaxElements caps the decoded field's element count (the product of
	// the header-claimed dimensions). Default 1<<28 — a 1 GiB float32
	// field, matching the historical ParseHeader cap.
	MaxElements int64
	// MaxAlloc caps any single decode-side allocation sized by a claimed
	// length rather than by the dimensions (inflated payload bytes, symbol
	// counts, archive entry streams). Default 1<<32.
	MaxAlloc int64
	// MaxCount caps structural counts a container header may claim
	// (archive fields, chunked slabs, huffman alphabet size). Default 1<<20.
	MaxCount int64
}

// Default returns the library's permissive defaults, sized so that every
// stream a seed-era decoder accepted still decodes. Services exposed to
// untrusted traffic should configure far tighter values (carolserve does,
// via -max-decode-* flags).
func Default() Limits {
	return Limits{MaxElements: 1 << 28, MaxAlloc: 1 << 32, MaxCount: 1 << 20}
}

// Norm fills zero fields with the Default values. Negative values are
// normalized to the defaults too: there is no meaningful "minus one byte"
// budget, and clamping beats silently disabling the guard.
func (l Limits) Norm() Limits {
	d := Default()
	if l.MaxElements <= 0 {
		l.MaxElements = d.MaxElements
	}
	if l.MaxAlloc <= 0 {
		l.MaxAlloc = d.MaxAlloc
	}
	if l.MaxCount <= 0 {
		l.MaxCount = d.MaxCount
	}
	return l
}

// Elements validates header-claimed grid dimensions and returns their
// product. It rejects non-positive or oversized dimensions (ErrCorrupt)
// and products beyond MaxElements (ErrLimit), without ever overflowing.
func (l Limits) Elements(nx, ny, nz int) (int, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 || nx > maxDim || ny > maxDim || nz > maxDim {
		return 0, fmt.Errorf("%w: bad dims %dx%dx%d", ErrCorrupt, nx, ny, nz)
	}
	n := int64(nx) * int64(ny)
	if n > l.Norm().MaxElements || n*int64(nz) > l.Norm().MaxElements {
		return 0, fmt.Errorf("%w: %dx%dx%d grid exceeds %d elements",
			ErrLimit, nx, ny, nz, l.Norm().MaxElements)
	}
	return nx * ny * nz, nil
}

// Alloc validates a claimed-length allocation of n bytes for `what`.
func (l Limits) Alloc(what string, n int64) error {
	if n < 0 {
		return fmt.Errorf("%w: negative %s size", ErrCorrupt, what)
	}
	if n > l.Norm().MaxAlloc {
		return fmt.Errorf("%w: %s claims %d bytes (max %d)", ErrLimit, what, n, l.Norm().MaxAlloc)
	}
	return nil
}

// Count validates a claimed structural count of n items of `what`.
func (l Limits) Count(what string, n int64) error {
	if n < 0 {
		return fmt.Errorf("%w: negative %s count", ErrCorrupt, what)
	}
	if n > l.Norm().MaxCount {
		return fmt.Errorf("%w: %s count %d (max %d)", ErrLimit, what, n, l.Norm().MaxCount)
	}
	return nil
}

// Reader consumes a byte slice with bounds-enforced reads: every method
// returns ErrTruncated (wrapped, with the offset) instead of reading past
// the end. It never copies the underlying buffer.
type Reader struct {
	buf []byte
	pos int
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Remaining reports the unread byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// Offset reports how many bytes have been consumed.
func (r *Reader) Offset() int { return r.pos }

func (r *Reader) short(what string, n int) error {
	return fmt.Errorf("%w: need %d bytes for %s at offset %d, have %d",
		ErrTruncated, n, what, r.pos, r.Remaining())
}

// U8 reads one byte.
func (r *Reader) U8(what string) (byte, error) {
	if r.Remaining() < 1 {
		return 0, r.short(what, 1)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// U32 reads a little-endian uint32.
func (r *Reader) U32(what string) (uint32, error) {
	if r.Remaining() < 4 {
		return 0, r.short(what, 4)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

// U64 reads a little-endian uint64.
func (r *Reader) U64(what string) (uint64, error) {
	if r.Remaining() < 8 {
		return 0, r.short(what, 8)
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v, nil
}

// BE64 reads a big-endian uint64 (the codecs' bit-length prefixes).
func (r *Reader) BE64(what string) (uint64, error) {
	if r.Remaining() < 8 {
		return 0, r.short(what, 8)
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v, nil
}

// Uvarint reads an unsigned varint. Overlong or non-terminated encodings
// are ErrCorrupt / ErrTruncated respectively.
func (r *Reader) Uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	switch {
	case n > 0:
		r.pos += n
		return v, nil
	case n == 0:
		return 0, r.short(what, 1)
	default:
		return 0, fmt.Errorf("%w: overlong varint for %s at offset %d", ErrCorrupt, what, r.pos)
	}
}

// Take returns the next n bytes as a subslice (no copy).
func (r *Reader) Take(what string, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative length for %s", ErrCorrupt, what)
	}
	if r.Remaining() < n {
		return nil, r.short(what, n)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// Rest returns everything unread (no copy) and advances to the end.
func (r *Reader) Rest() []byte {
	b := r.buf[r.pos:]
	r.pos = len(r.buf)
	return b
}
