package knn

import (
	"math"
	"testing"

	"carol/internal/xrand"
)

func synthData(n int, seed uint64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b * 1000} // deliberately mismatched scales
		y[i] = 2*a + b
	}
	return X, y
}

func TestLearnsWithStandardization(t *testing.T) {
	X, y := synthData(800, 1)
	m, err := Train(X, y, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	teX, teY := synthData(100, 2)
	var mse float64
	for i := range teX {
		p, err := m.Predict(teX[i])
		if err != nil {
			t.Fatal(err)
		}
		d := p - teY[i]
		mse += d * d
	}
	mse /= float64(len(teX))
	if mse > 0.01 {
		t.Fatalf("MSE %g: standardization or neighbour logic broken", mse)
	}
}

func TestExactNeighborDominates(t *testing.T) {
	X := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	y := []float64{10, 20, 30, 40}
	m, err := Train(X, y, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-20) > 0.5 {
		t.Fatalf("exact-match prediction %g, want ~20", p)
	}
}

func TestKClamping(t *testing.T) {
	X := [][]float64{{0}, {1}}
	y := []float64{1, 2}
	m, err := Train(X, y, Config{K: 99})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 {
		t.Fatalf("K = %d", m.K())
	}
}

func TestConstantFeatureNoNaN(t *testing.T) {
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}}
	y := []float64{1, 2, 3}
	m, err := Train(X, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict([]float64{2, 5})
	if err != nil || math.IsNaN(p) {
		t.Fatalf("constant-feature predict = %g, %v", p, err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{1, 2}, Config{}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	m, err := Train([][]float64{{1}, {2}}, []float64{1, 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Fatal("wrong dims accepted")
	}
}
