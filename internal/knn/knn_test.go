package knn

import (
	"math"
	"testing"

	"carol/internal/xrand"
)

func synthData(n int, seed uint64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b * 1000} // deliberately mismatched scales
		y[i] = 2*a + b
	}
	return X, y
}

func TestLearnsWithStandardization(t *testing.T) {
	X, y := synthData(800, 1)
	m, err := Train(X, y, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	teX, teY := synthData(100, 2)
	var mse float64
	for i := range teX {
		p, err := m.Predict(teX[i])
		if err != nil {
			t.Fatal(err)
		}
		d := p - teY[i]
		mse += d * d
	}
	mse /= float64(len(teX))
	if mse > 0.01 {
		t.Fatalf("MSE %g: standardization or neighbour logic broken", mse)
	}
}

func TestExactNeighborDominates(t *testing.T) {
	X := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	y := []float64{10, 20, 30, 40}
	m, err := Train(X, y, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-20) > 0.5 {
		t.Fatalf("exact-match prediction %g, want ~20", p)
	}
}

func TestKClamping(t *testing.T) {
	X := [][]float64{{0}, {1}}
	y := []float64{1, 2}
	m, err := Train(X, y, Config{K: 99})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 {
		t.Fatalf("K = %d", m.K())
	}
}

func TestConstantFeatureNoNaN(t *testing.T) {
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}}
	y := []float64{1, 2, 3}
	m, err := Train(X, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict([]float64{2, 5})
	if err != nil || math.IsNaN(p) {
		t.Fatalf("constant-feature predict = %g, %v", p, err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{1, 2}, Config{}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	m, err := Train([][]float64{{1}, {2}}, []float64{1, 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Fatal("wrong dims accepted")
	}
}

// TestWorkersDeterminism pins the rf parallelism contract on the k-NN
// model: fitted state and predictions are bit-identical for any
// Config.Workers value.
func TestWorkersDeterminism(t *testing.T) {
	X, y := synthData(400, 3)
	qX, _ := synthData(80, 4)
	var refFlat *Flat
	var refPred []float64
	for _, workers := range []int{1, 2, 3, 8} {
		m, err := Train(X, y, Config{K: 7, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fl := m.Flatten()
		pred, err := m.PredictBatch(qX)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if refFlat == nil {
			refFlat, refPred = fl, pred
			continue
		}
		if fl.K != refFlat.K || fl.Dims != refFlat.Dims {
			t.Fatalf("workers=%d: shape differs", workers)
		}
		for _, pair := range [][2][]float64{{fl.Mean, refFlat.Mean}, {fl.Scale, refFlat.Scale}, {fl.X, refFlat.X}, {fl.Y, refFlat.Y}} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("workers=%d: flat array lengths differ", workers)
			}
			for i := range pair[0] {
				if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
					t.Fatalf("workers=%d: flat array value %d differs", workers, i)
				}
			}
		}
		for i := range pred {
			if math.Float64bits(pred[i]) != math.Float64bits(refPred[i]) {
				t.Fatalf("workers=%d: prediction %d differs: %g vs %g", workers, i, pred[i], refPred[i])
			}
		}
	}
}

func TestFlatRoundTrip(t *testing.T) {
	X, y := synthData(120, 5)
	qX, _ := synthData(30, 6)
	m, err := Train(X, y, Config{K: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.PredictBatch(qX)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FromFlat(m.Flatten())
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.PredictBatch(qX)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("row %d: round-trip prediction %g, want %g", i, got[i], want[i])
		}
	}
	if m2.K() != m.K() || m2.Dims() != m.Dims() || m2.Len() != m.Len() {
		t.Fatal("round trip changed model shape")
	}
}

func TestFromFlatRejectsCorrupt(t *testing.T) {
	X, y := synthData(30, 7)
	m, err := Train(X, y, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(fl *Flat)
	}{
		{"zero dims", func(fl *Flat) { fl.Dims = 0 }},
		{"no samples", func(fl *Flat) { fl.Y = nil }},
		{"k too small", func(fl *Flat) { fl.K = 0 }},
		{"k too large", func(fl *Flat) { fl.K = len(fl.Y) + 1 }},
		{"mean length", func(fl *Flat) { fl.Mean = fl.Mean[:1] }},
		{"x length", func(fl *Flat) { fl.X = fl.X[:len(fl.X)-1] }},
		{"nan mean", func(fl *Flat) { fl.Mean[0] = math.NaN() }},
		{"zero scale", func(fl *Flat) { fl.Scale[1] = 0 }},
		{"negative scale", func(fl *Flat) { fl.Scale[0] = -1 }},
		{"inf x", func(fl *Flat) { fl.X[2] = math.Inf(-1) }},
		{"nan y", func(fl *Flat) { fl.Y[0] = math.NaN() }},
	}
	for _, tc := range cases {
		fl := m.Flatten()
		tc.mutate(fl)
		if _, err := FromFlat(fl); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	X, y := synthData(90, 8)
	qX, _ := synthData(40, 9)
	m, err := Train(X, y, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	m.SetWorkers(4)
	batch, err := m.PredictBatch(qX)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qX {
		single, err := m.Predict(qX[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(single) != math.Float64bits(batch[i]) {
			t.Fatalf("row %d: batch %g, single %g", i, batch[i], single)
		}
	}
	if _, err := m.PredictBatch([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("wrong-dims batch accepted")
	}
}
