// Package knn implements an inverse-distance-weighted k-nearest-neighbour
// regressor — the second alternative model (alongside package boost) for
// the CAROL paper's "different machine learning models" future-work
// direction. Features are standardized per dimension so the distance metric
// is not dominated by large-magnitude features like the value range.
//
// Parallelism follows the package rf contract: Config.Workers only bounds
// CPU concurrency (row standardization in Train, per-query fan-out in
// PredictBatch); the fitted model and every prediction are bit-identical
// for any Workers value.
package knn

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Config tunes the regressor.
type Config struct {
	// K is the neighbour count. Default 5 (clamped to the training size).
	K int
	// Workers bounds the goroutines used for training-set standardization
	// and batch prediction: 0 uses every core, 1 forces the serial path.
	// It never affects the fitted model or its predictions.
	Workers int
}

// Model is a fitted k-NN regressor.
type Model struct {
	k       int
	x       [][]float64 // standardized training inputs
	y       []float64
	mean    []float64
	scale   []float64
	workers int // machine-local; never serialized
}

func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// parallelRows runs fn(i) for every row index in [0, n), split over up to
// `workers` goroutines in contiguous chunks. Each index is visited exactly
// once, so any fn writing only to slot i is deterministic.
func parallelRows(n, workers int, fn func(i int)) {
	// Below this many rows per goroutine the spawn overhead dominates.
	const minRowsPerWorker = 16
	workers = resolveWorkers(workers)
	if maxW := n / minRowsPerWorker; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Train stores the (standardized) training set.
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("knn: empty or mismatched training data")
	}
	k := cfg.K
	if k <= 0 {
		k = 5
	}
	if k > len(X) {
		k = len(X)
	}
	dims := len(X[0])
	m := &Model{k: k, y: append([]float64(nil), y...), mean: make([]float64, dims), scale: make([]float64, dims), workers: cfg.Workers}
	// Mean/variance accumulation stays serial: float addition is not
	// associative, and the bit-identical-for-any-Workers contract forbids
	// reduction orders that depend on the goroutine count.
	for _, row := range X {
		if len(row) != dims {
			return nil, errors.New("knn: ragged training rows")
		}
		for d, v := range row {
			m.mean[d] += v
		}
	}
	for d := range m.mean {
		m.mean[d] /= float64(len(X))
	}
	for _, row := range X {
		for d, v := range row {
			dv := v - m.mean[d]
			m.scale[d] += dv * dv
		}
	}
	for d := range m.scale {
		m.scale[d] = math.Sqrt(m.scale[d] / float64(len(X)))
		if m.scale[d] == 0 { //carol:allow floateq exact-zero variance guard before dividing
			m.scale[d] = 1
		}
	}
	// Row standardization is embarrassingly parallel: each output slot is
	// written by exactly one index.
	m.x = make([][]float64, len(X))
	parallelRows(len(X), cfg.Workers, func(i int) {
		m.x[i] = m.standardize(X[i])
	})
	return m, nil
}

func (m *Model) standardize(row []float64) []float64 {
	out := make([]float64, len(row))
	for d, v := range row {
		out[d] = (v - m.mean[d]) / m.scale[d]
	}
	return out
}

// Predict returns the inverse-distance-weighted mean of the k nearest
// training targets.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != len(m.mean) {
		return 0, fmt.Errorf("knn: predict with %d features, trained on %d", len(x), len(m.mean))
	}
	return m.predictChecked(x), nil
}

// predictChecked is Predict without the dimension check (already validated
// by the caller). Extracted so PredictBatch's worker goroutines share it.
func (m *Model) predictChecked(x []float64) float64 {
	q := m.standardize(x)
	type hit struct {
		d2 float64
		y  float64
	}
	hits := make([]hit, len(m.x))
	for i, row := range m.x {
		var d2 float64
		for d := range row {
			dv := row[d] - q[d]
			d2 += dv * dv
		}
		hits[i] = hit{d2, m.y[i]}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].d2 < hits[j].d2 })
	var num, den float64
	for _, h := range hits[:m.k] {
		w := 1 / (math.Sqrt(h.d2) + 1e-9)
		num += w * h.y
		den += w
	}
	return num / den
}

// PredictBatch predicts every row, fanning queries over up to Workers
// goroutines. Each row's result is bit-identical to a Predict call on it.
func (m *Model) PredictBatch(rows [][]float64) ([]float64, error) {
	for i, row := range rows {
		if len(row) != len(m.mean) {
			return nil, fmt.Errorf("knn: row %d has %d features, trained on %d", i, len(row), len(m.mean))
		}
	}
	out := make([]float64, len(rows))
	parallelRows(len(rows), m.workers, func(i int) {
		out[i] = m.predictChecked(rows[i])
	})
	return out, nil
}

// K returns the neighbour count in effect.
func (m *Model) K() int { return m.k }

// Dims returns the input dimensionality the model was trained on.
func (m *Model) Dims() int { return len(m.mean) }

// Len returns the number of stored training samples.
func (m *Model) Len() int { return len(m.y) }

// SetWorkers rebinds batch-prediction parallelism without touching the
// model (predictions are bit-identical for every value). A deserialized
// model carries no Workers setting; serving processes call this to use
// their own core budget.
func (m *Model) SetWorkers(w int) { m.workers = w }

// Flat is the flattened, serialization-ready form of a Model: the scalar
// hyper-state plus the standardized training set in row-major order. It
// carries no unexported state, so internal/model can encode it field by
// field and reconstruct an identical model with FromFlat.
type Flat struct {
	K     int
	Dims  int
	Mean  []float64 // per-dimension training means, len Dims
	Scale []float64 // per-dimension training stddevs (>0), len Dims
	X     []float64 // standardized training rows, row-major, len n*Dims
	Y     []float64 // training targets, len n
}

// Flatten exports the model into its serialization form.
func (m *Model) Flatten() *Flat {
	fl := &Flat{
		K:     m.k,
		Dims:  len(m.mean),
		Mean:  append([]float64(nil), m.mean...),
		Scale: append([]float64(nil), m.scale...),
		Y:     append([]float64(nil), m.y...),
	}
	fl.X = make([]float64, 0, len(m.x)*fl.Dims)
	for _, row := range m.x {
		fl.X = append(fl.X, row...)
	}
	return fl
}

// FromFlat validates fl and reconstructs the model. Validation is total —
// fl may come from an attacker-controlled artifact: every scalar must be
// finite, scales strictly positive, K within [1, n], and the row-major X
// must factor exactly into n rows of Dims columns.
func FromFlat(fl *Flat) (*Model, error) {
	if fl.Dims < 1 {
		return nil, fmt.Errorf("knn: flat model with %d input dims", fl.Dims)
	}
	n := len(fl.Y)
	if n < 1 {
		return nil, errors.New("knn: flat model with no training samples")
	}
	if fl.K < 1 || fl.K > n {
		return nil, fmt.Errorf("knn: flat model K %d outside [1, %d]", fl.K, n)
	}
	if len(fl.Mean) != fl.Dims || len(fl.Scale) != fl.Dims {
		return nil, fmt.Errorf("knn: flat model mean/scale lengths %d/%d, want %d", len(fl.Mean), len(fl.Scale), fl.Dims)
	}
	if len(fl.X) != n*fl.Dims {
		return nil, fmt.Errorf("knn: flat model X length %d, want %d", len(fl.X), n*fl.Dims)
	}
	for d := 0; d < fl.Dims; d++ {
		if math.IsNaN(fl.Mean[d]) || math.IsInf(fl.Mean[d], 0) {
			return nil, fmt.Errorf("knn: flat model mean[%d] not finite", d)
		}
		if !(fl.Scale[d] > 0) || math.IsInf(fl.Scale[d], 0) {
			return nil, fmt.Errorf("knn: flat model scale[%d] = %g outside (0, inf)", d, fl.Scale[d])
		}
	}
	for i, v := range fl.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("knn: flat model X[%d] not finite", i)
		}
	}
	for i, v := range fl.Y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("knn: flat model Y[%d] not finite", i)
		}
	}
	m := &Model{
		k:     fl.K,
		y:     append([]float64(nil), fl.Y...),
		mean:  append([]float64(nil), fl.Mean...),
		scale: append([]float64(nil), fl.Scale...),
	}
	m.x = make([][]float64, n)
	for i := 0; i < n; i++ {
		m.x[i] = append([]float64(nil), fl.X[i*fl.Dims:(i+1)*fl.Dims]...)
	}
	return m, nil
}
