// Package knn implements an inverse-distance-weighted k-nearest-neighbour
// regressor — the second alternative model (alongside package boost) for
// the CAROL paper's "different machine learning models" future-work
// direction. Features are standardized per dimension so the distance metric
// is not dominated by large-magnitude features like the value range.
package knn

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Config tunes the regressor.
type Config struct {
	// K is the neighbour count. Default 5 (clamped to the training size).
	K int
}

// Model is a fitted k-NN regressor.
type Model struct {
	k     int
	x     [][]float64 // standardized training inputs
	y     []float64
	mean  []float64
	scale []float64
}

// Train stores the (standardized) training set.
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("knn: empty or mismatched training data")
	}
	k := cfg.K
	if k <= 0 {
		k = 5
	}
	if k > len(X) {
		k = len(X)
	}
	dims := len(X[0])
	m := &Model{k: k, y: append([]float64(nil), y...), mean: make([]float64, dims), scale: make([]float64, dims)}
	for _, row := range X {
		if len(row) != dims {
			return nil, errors.New("knn: ragged training rows")
		}
		for d, v := range row {
			m.mean[d] += v
		}
	}
	for d := range m.mean {
		m.mean[d] /= float64(len(X))
	}
	for _, row := range X {
		for d, v := range row {
			dv := v - m.mean[d]
			m.scale[d] += dv * dv
		}
	}
	for d := range m.scale {
		m.scale[d] = math.Sqrt(m.scale[d] / float64(len(X)))
		if m.scale[d] == 0 { //carol:allow floateq exact-zero variance guard before dividing
			m.scale[d] = 1
		}
	}
	m.x = make([][]float64, len(X))
	for i, row := range X {
		m.x[i] = m.standardize(row)
	}
	return m, nil
}

func (m *Model) standardize(row []float64) []float64 {
	out := make([]float64, len(row))
	for d, v := range row {
		out[d] = (v - m.mean[d]) / m.scale[d]
	}
	return out
}

// Predict returns the inverse-distance-weighted mean of the k nearest
// training targets.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != len(m.mean) {
		return 0, fmt.Errorf("knn: predict with %d features, trained on %d", len(x), len(m.mean))
	}
	q := m.standardize(x)
	type hit struct {
		d2 float64
		y  float64
	}
	hits := make([]hit, len(m.x))
	for i, row := range m.x {
		var d2 float64
		for d := range row {
			dv := row[d] - q[d]
			d2 += dv * dv
		}
		hits[i] = hit{d2, m.y[i]}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].d2 < hits[j].d2 })
	var num, den float64
	for _, h := range hits[:m.k] {
		w := 1 / (math.Sqrt(h.d2) + 1e-9)
		num += w * h.y
		den += w
	}
	return num / den, nil
}

// K returns the neighbour count in effect.
func (m *Model) K() int { return m.k }
