// Package retrain closes CAROL's model-lifecycle loop: it turns the
// served-traffic journal written by carolserve (-harvest-dir) into fresh
// training data, trains the full surrogate zoo on it, shadow-evaluates
// the winning candidate against the live registry model on a held-out
// window of the newest real traffic, and publishes the candidate only
// when it provably wins (DESIGN.md §17).
//
// The controller is deliberately conservative: too few harvested samples
// → no retrain; no measurable improvement on real traffic → no publish.
// The only unconditional publish is the bootstrap case, when the registry
// has no live model at all.
package retrain

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"carol/internal/model"
	"carol/internal/registry"
	"carol/internal/safedec"
	"carol/internal/trainset"
	"carol/internal/zoo"
)

// Verdict labels the outcome of one retraining cycle.
type Verdict string

const (
	// VerdictTooFewSamples: the journal has not accumulated MinSamples
	// harvested records yet; nothing was trained.
	VerdictTooFewSamples Verdict = "too-few-samples"
	// VerdictNoCandidate: every zoo backend failed to train.
	VerdictNoCandidate Verdict = "no-candidate"
	// VerdictBootstrap: no live model existed, the candidate was published
	// without a shadow comparison.
	VerdictBootstrap Verdict = "bootstrap"
	// VerdictPublished: the candidate beat the live model on the held-out
	// window and was published.
	VerdictPublished Verdict = "published"
	// VerdictNoWin: the candidate did not beat the live model; nothing was
	// published.
	VerdictNoWin Verdict = "no-win"
)

// Config tunes one retraining controller.
type Config struct {
	// Codec is the compressor whose journal is harvested and whose model
	// is retrained.
	Codec string
	// Name is the registry model name. Default: Codec.
	Name string
	// RegistryDir is the registry root to read the live model from and
	// publish winners into.
	RegistryDir string
	// HarvestDir is the journal directory carolserve writes (-harvest-dir).
	HarvestDir string
	// JournalCap bounds how many newest journal records are read.
	// Default trainset.DefaultJournalCap.
	JournalCap int
	// Base optionally seeds training with an offline corpus; harvested
	// records are appended after it. The held-out window always comes
	// from harvested traffic only.
	Base *trainset.Set
	// Zoo configures the backend sweep.
	Zoo zoo.Config
	// MinSamples is the minimum number of harvested records before a
	// retrain is attempted. Default 20.
	MinSamples int
	// Holdout is the fraction (0,1) of the newest harvested records held
	// out for shadow evaluation. Default 0.25.
	Holdout float64
	// WinMargin is the relative improvement the candidate's median
	// shadow error must show over the live model's to publish.
	// Default 0.02 (2%).
	WinMargin float64
	// Limits bounds the live-model load. Zero value = no limits.
	Limits safedec.Limits
	// GCKeep > 0 trims the model's registry history to the newest GCKeep
	// versions after a successful publish.
	GCKeep int
	// Now stamps retrained_at metadata; nil uses time.Now (tests pin it).
	Now func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.Codec == "" {
		return c, errors.New("retrain: empty codec")
	}
	if c.RegistryDir == "" || c.HarvestDir == "" {
		return c, errors.New("retrain: need registry and harvest directories")
	}
	if c.Name == "" {
		c.Name = c.Codec
	}
	if err := registry.CheckName(c.Name); err != nil {
		return c, err
	}
	known := make(map[string]bool)
	for _, b := range model.KnownBackends() {
		known[b] = true
	}
	for _, b := range c.Zoo.Backends {
		if !known[b] {
			return c, fmt.Errorf("retrain: unknown backend %q", b)
		}
	}
	if c.JournalCap <= 0 {
		c.JournalCap = trainset.DefaultJournalCap
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.Holdout <= 0 || c.Holdout >= 1 {
		c.Holdout = 0.25
	}
	if c.WinMargin <= 0 {
		c.WinMargin = 0.02
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// EvalStats summarises one model's shadow evaluation: the distribution of
// relative prediction errors |predicted relEB − observed relEB| / observed
// over the held-out window, nearest-rank quantiles.
type EvalStats struct {
	N        int
	P50, P90 float64
}

// Report describes one retraining cycle.
type Report struct {
	Codec, Name string
	// Harvested is the number of journal records read; TrainRows and
	// HoldoutRows how they (plus the base corpus) were split.
	Harvested   int
	TrainRows   int
	HoldoutRows int
	// Scoreboard is the zoo's per-backend CV scoreboard (empty when no
	// zoo ran).
	Scoreboard map[string]string
	// CandidateBackend is the winning backend's tag ("" when none).
	CandidateBackend string
	// Candidate and Live are the shadow-evaluation results; Live is nil
	// in the bootstrap case, both are nil when no evaluation ran.
	Candidate *EvalStats
	Live      *EvalStats
	Verdict   Verdict
	// Published is set when the candidate was written to the registry.
	Published *registry.Version
}

// quantile returns the nearest-rank q-quantile (0 < q <= 1) of xs.
// xs is sorted in place.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	idx := int(math.Ceil(q*float64(len(xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}

// shadowEval runs one model over the held-out records and summarises its
// relative prediction error distribution.
func shadowEval(a *model.Artifact, holdout []trainset.Record) (*EvalStats, error) {
	rows := make([][]float64, len(holdout))
	for i, rec := range holdout {
		rows[i] = trainset.Row(rec.Features, rec.Ratio)
	}
	preds, err := a.PredictTargets(rows)
	if err != nil {
		return nil, err
	}
	errs := make([]float64, 0, len(preds))
	for i, p := range preds {
		predicted := trainset.EBFromTarget(p)
		observed := holdout[i].RelEB
		if !(observed > 0) {
			continue
		}
		errs = append(errs, math.Abs(predicted-observed)/observed)
	}
	if len(errs) == 0 {
		return nil, errors.New("retrain: no evaluable holdout samples")
	}
	st := &EvalStats{N: len(errs)}
	st.P50 = quantile(errs, 0.50)
	st.P90 = quantile(errs, 0.90)
	return st, nil
}

// wins decides the publish gate: the candidate's median shadow error must
// beat the live model's by at least margin, without regressing the tail.
func wins(cand, live *EvalStats, margin float64) bool {
	return cand.P50 <= live.P50*(1-margin) && cand.P90 <= live.P90
}

// RunOnce executes one full retraining cycle: harvest → zoo → shadow
// evaluation → conditional publish. It never mutates the registry unless
// the candidate wins (or no live model exists).
func RunOnce(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rep := &Report{Codec: cfg.Codec, Name: cfg.Name}
	records, err := trainset.ReadJournal(trainset.JournalPath(cfg.HarvestDir, cfg.Codec), cfg.JournalCap)
	if err != nil {
		return nil, err
	}
	rep.Harvested = len(records)
	if len(records) < cfg.MinSamples {
		rep.Verdict = VerdictTooFewSamples
		return rep, nil
	}
	// Newest Holdout fraction of real traffic is the shadow window; the
	// zoo never sees it. Journal order is append order, so the tail is
	// the newest traffic.
	nHold := int(cfg.Holdout * float64(len(records)))
	if nHold < 1 {
		nHold = 1
	}
	trainRecs, holdout := records[:len(records)-nHold], records[len(records)-nHold:]
	var set trainset.Set
	if cfg.Base != nil {
		set.Merge(cfg.Base)
	}
	for _, rec := range trainRecs {
		if err := set.Add(rec.Sample()); err != nil {
			return nil, fmt.Errorf("retrain: journal record: %w", err)
		}
	}
	X, y := set.Matrix()
	rep.TrainRows, rep.HoldoutRows = len(X), len(holdout)

	res, err := zoo.Train(X, y, cfg.Zoo)
	if err != nil {
		return nil, err
	}
	rep.Scoreboard = res.Scoreboard()
	best := res.Best()
	if best == nil {
		rep.Verdict = VerdictNoCandidate
		return rep, nil
	}
	rep.CandidateBackend = best.Backend

	reg, err := registry.Open(cfg.RegistryDir)
	if err != nil {
		return nil, err
	}
	var live *model.Artifact
	liveV, err := reg.Latest(cfg.Name)
	switch {
	case errors.Is(err, registry.ErrNotFound):
		// Bootstrap: nothing to shadow against.
	case err != nil:
		return nil, err
	default:
		if live, err = reg.Load(liveV, cfg.Limits); err != nil {
			return nil, err
		}
	}

	// The candidate inherits the live model's calibration: calibration
	// maps surrogate ratios to this codec's real ratios and is
	// independent of which regressor predicts error bounds.
	var calibState *model.CalibState
	if live != nil {
		calibState = live.Calib
	}
	meta := rep.Scoreboard
	meta["retrained_at"] = cfg.Now().UTC().Format(time.RFC3339)
	meta["harvested"] = strconv.Itoa(rep.Harvested)
	meta["train_rows"] = strconv.Itoa(rep.TrainRows)
	meta["holdout_rows"] = strconv.Itoa(rep.HoldoutRows)
	meta["source"] = "retrain"
	cand, err := best.Artifact(cfg.Codec, calibState, meta)
	if err != nil {
		return nil, err
	}

	if live == nil {
		rep.Verdict = VerdictBootstrap
	} else {
		if rep.Candidate, err = shadowEval(cand, holdout); err != nil {
			return nil, err
		}
		if rep.Live, err = shadowEval(live, holdout); err != nil {
			return nil, err
		}
		if !wins(rep.Candidate, rep.Live, cfg.WinMargin) {
			rep.Verdict = VerdictNoWin
			return rep, nil
		}
		rep.Verdict = VerdictPublished
	}

	buf, err := cand.Encode()
	if err != nil {
		return nil, err
	}
	v, err := reg.Publish(cfg.Name, buf)
	if err != nil {
		return nil, err
	}
	rep.Published = &v
	if cfg.GCKeep > 0 {
		if _, err := reg.GC(cfg.Name, cfg.GCKeep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// Controller runs RunOnce on a fixed schedule until the context ends.
type Controller struct {
	cfg      Config
	interval time.Duration
	// Observe, when non-nil, receives every cycle's report (or error).
	Observe func(*Report, error)
}

// NewController validates the config eagerly so a misconfigured
// controller fails at construction, not on its first tick.
func NewController(cfg Config, interval time.Duration) (*Controller, error) {
	if _, err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	if interval <= 0 {
		return nil, errors.New("retrain: non-positive interval")
	}
	return &Controller{cfg: cfg, interval: interval}, nil
}

// Run blocks, executing one retraining cycle per interval (first cycle
// immediately) until ctx is cancelled. Cycle errors are reported via
// Observe and do not stop the loop.
func (c *Controller) Run(ctx context.Context) {
	tick := time.NewTicker(c.interval)
	defer tick.Stop()
	for {
		rep, err := RunOnce(c.cfg)
		if c.Observe != nil {
			c.Observe(rep, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}
