package retrain

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"carol/internal/features"
	"carol/internal/model"
	"carol/internal/registry"
	"carol/internal/rf"
	"carol/internal/safedec"
	"carol/internal/trainset"
	"carol/internal/xrand"
	"carol/internal/zoo"
)

// fixedNow pins retrained_at so cycle outputs are reproducible in tests.
func fixedNow() time.Time { return time.Unix(1700000000, 0) }

// trafficRecord synthesises one served-traffic observation with a
// learnable relationship: log10(relEB) is an affine function of the
// features and the log-ratio plus small noise.
func trafficRecord(rng *xrand.Source) trainset.Record {
	v := features.Vector{
		Mean:  rng.Float64()*4 - 2,
		Range: 1 + rng.Float64()*9,
		MND:   rng.Float64(),
		MLD:   rng.Float64(),
		MSD:   rng.Float64() * 3,
	}
	ratio := 4 + rng.Float64()*60
	target := -3.2 + 0.8*math.Log10(ratio) + 0.15*v.Mean - 0.1*v.MND + 0.01*rng.Norm()
	return trainset.Record{Features: v, Ratio: ratio, RelEB: math.Pow(10, target)}
}

// writeJournal fills a harvest journal with n synthetic records.
func writeJournal(t *testing.T, dir string, n int, seed uint64) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	j, err := trainset.OpenJournal(trainset.JournalPath(dir, "szx"), trainset.DefaultJournalCap)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed)
	for i := 0; i < n; i++ {
		if err := j.Append(trafficRecord(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// publishBadLive publishes a deliberately terrible live model: an rf
// trained to predict a constant far from any real target.
func publishBadLive(t *testing.T, regDir string) {
	t.Helper()
	rng := xrand.New(99)
	X := make([][]float64, 60)
	y := make([]float64, 60)
	for i := range X {
		row := make([]float64, trainset.InputDim)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = -11 // constant, ~9 decades off the traffic's relEB scale
	}
	cfg := rf.DefaultConfig()
	cfg.NEstimators = 5
	f, err := rf.Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Artifact{Codec: "szx", Backend: model.BackendRF, Schema: model.CanonicalSchema(), Forest: f}
	buf, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("szx", buf); err != nil {
		t.Fatal(err)
	}
}

func testConfig(harvestDir, regDir string) Config {
	zcfg := zoo.Config{KFolds: 3, Seed: 5}
	zcfg.RF.NEstimators = 10
	zcfg.RF.MaxDepth = 8
	zcfg.RF.MinSamplesSplit = 4
	zcfg.RF.MinSamplesLeaf = 2
	zcfg.RF.Seed = 2
	zcfg.Boost.Rounds = 20
	zcfg.KNN.K = 5
	return Config{
		Codec:       "szx",
		RegistryDir: regDir,
		HarvestDir:  harvestDir,
		Zoo:         zcfg,
		Now:         fixedNow,
	}
}

func TestTooFewSamples(t *testing.T) {
	dir := t.TempDir()
	harvest, regDir := filepath.Join(dir, "harvest"), filepath.Join(dir, "models")
	writeJournal(t, harvest, 7, 1)
	rep, err := RunOnce(testConfig(harvest, regDir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictTooFewSamples || rep.Published != nil {
		t.Fatalf("verdict %s, published %v", rep.Verdict, rep.Published)
	}
	if rep.Harvested != 7 {
		t.Fatalf("harvested %d", rep.Harvested)
	}
	// Nothing may have been created in the registry.
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	names, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("registry gained models %v without a retrain", names)
	}
}

func TestBootstrapPublish(t *testing.T) {
	dir := t.TempDir()
	harvest, regDir := filepath.Join(dir, "harvest"), filepath.Join(dir, "models")
	writeJournal(t, harvest, 160, 2)
	rep, err := RunOnce(testConfig(harvest, regDir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictBootstrap {
		t.Fatalf("verdict %s", rep.Verdict)
	}
	if rep.Published == nil || rep.Published.Number != 1 {
		t.Fatalf("published %+v", rep.Published)
	}
	if rep.Live != nil {
		t.Fatal("bootstrap cycle evaluated a live model")
	}
	if rep.CandidateBackend == "" {
		t.Fatal("no candidate backend recorded")
	}
	// The published artifact carries the retrain provenance metadata.
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Latest("szx")
	if err != nil {
		t.Fatal(err)
	}
	a, err := reg.Load(v, safedec.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Meta["source"] != "retrain" || a.Meta["zoo_best_backend"] != rep.CandidateBackend {
		t.Fatalf("meta %v", a.Meta)
	}
	if a.BackendTag() != rep.CandidateBackend {
		t.Fatalf("backend %s, reported %s", a.BackendTag(), rep.CandidateBackend)
	}
}

// TestWinThenNoWin drives the two decisive shadow paths back to back:
// a terrible live model must be displaced (win), and an immediate rerun
// on unchanged data must NOT publish again — the deterministic candidate
// ties the now-live model and a tie is not a win.
func TestWinThenNoWin(t *testing.T) {
	dir := t.TempDir()
	harvest, regDir := filepath.Join(dir, "harvest"), filepath.Join(dir, "models")
	writeJournal(t, harvest, 200, 3)
	publishBadLive(t, regDir)

	rep, err := RunOnce(testConfig(harvest, regDir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictPublished {
		t.Fatalf("verdict %s (cand %+v live %+v)", rep.Verdict, rep.Candidate, rep.Live)
	}
	if rep.Published == nil || rep.Published.Number != 2 {
		t.Fatalf("published %+v", rep.Published)
	}
	if rep.Candidate == nil || rep.Live == nil {
		t.Fatal("shadow stats missing")
	}
	if !(rep.Candidate.P50 < rep.Live.P50) {
		t.Fatalf("candidate p50 %g did not beat live %g", rep.Candidate.P50, rep.Live.P50)
	}
	if rep.Candidate.N != rep.HoldoutRows || rep.Live.N != rep.HoldoutRows {
		t.Fatalf("eval N cand=%d live=%d holdout=%d", rep.Candidate.N, rep.Live.N, rep.HoldoutRows)
	}

	rep2, err := RunOnce(testConfig(harvest, regDir))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Verdict != VerdictNoWin {
		t.Fatalf("rerun verdict %s (cand %+v live %+v)", rep2.Verdict, rep2.Candidate, rep2.Live)
	}
	if rep2.Published != nil {
		t.Fatal("losing candidate was published")
	}
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Latest("szx")
	if err != nil {
		t.Fatal(err)
	}
	if v.Number != 2 {
		t.Fatalf("registry advanced to v%d after a no-win cycle", v.Number)
	}
}

func TestBaseCorpusAndGC(t *testing.T) {
	dir := t.TempDir()
	harvest, regDir := filepath.Join(dir, "harvest"), filepath.Join(dir, "models")
	writeJournal(t, harvest, 120, 4)
	publishBadLive(t, regDir)

	var base trainset.Set
	rng := xrand.New(5)
	for i := 0; i < 40; i++ {
		rec := trafficRecord(rng)
		if err := base.Add(rec.Sample()); err != nil {
			t.Fatal(err)
		}
	}
	cfg := testConfig(harvest, regDir)
	cfg.Base = &base
	cfg.GCKeep = 1
	rep, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictPublished {
		t.Fatalf("verdict %s", rep.Verdict)
	}
	wantTrain := 40 + rep.Harvested - rep.HoldoutRows
	if rep.TrainRows != wantTrain {
		t.Fatalf("train rows %d, want %d", rep.TrainRows, wantTrain)
	}
	// GCKeep=1 leaves only the freshly published version behind.
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	versions, err := reg.Versions("szx")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 || versions[0].Number != rep.Published.Number {
		t.Fatalf("versions %+v", versions)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := quantile(append([]float64(nil), xs...), 0.5); got != 3 { //carol:allow floateq exact rank value
		t.Fatalf("p50 %g", got)
	}
	if got := quantile(append([]float64(nil), xs...), 0.9); got != 5 { //carol:allow floateq exact rank value
		t.Fatalf("p90 %g", got)
	}
	if got := quantile([]float64{7}, 0.9); got != 7 { //carol:allow floateq exact rank value
		t.Fatalf("single-sample %g", got)
	}
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
}

func TestWinRule(t *testing.T) {
	live := &EvalStats{N: 50, P50: 0.10, P90: 0.50}
	if !wins(&EvalStats{N: 50, P50: 0.05, P90: 0.40}, live, 0.02) {
		t.Fatal("clear improvement rejected")
	}
	if wins(&EvalStats{N: 50, P50: 0.10, P90: 0.40}, live, 0.02) {
		t.Fatal("tie accepted")
	}
	if wins(&EvalStats{N: 50, P50: 0.0999, P90: 0.40}, live, 0.02) {
		t.Fatal("sub-margin improvement accepted")
	}
	if wins(&EvalStats{N: 50, P50: 0.05, P90: 0.60}, live, 0.02) {
		t.Fatal("tail regression accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunOnce(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := RunOnce(Config{Codec: "szx"}); err == nil {
		t.Fatal("missing dirs accepted")
	}
	if _, err := RunOnce(Config{Codec: "szx", Name: "NOT/VALID", RegistryDir: "r", HarvestDir: "h"}); err == nil {
		t.Fatal("bad registry name accepted")
	}
	if _, err := NewController(Config{Codec: "szx", RegistryDir: "r", HarvestDir: "h"}, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

// TestControllerLoop drives the scheduled path: the first cycle fires
// immediately, reports flow through Observe, and cancel stops the loop.
func TestControllerLoop(t *testing.T) {
	dir := t.TempDir()
	harvest, regDir := filepath.Join(dir, "harvest"), filepath.Join(dir, "models")
	writeJournal(t, harvest, 3, 6)
	ctrl, err := NewController(testConfig(harvest, regDir), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan *Report, 1)
	ctrl.Observe = func(rep *Report, err error) {
		if err != nil {
			t.Errorf("cycle error: %v", err)
		}
		select {
		case got <- rep:
		default:
		}
		cancel()
	}
	done := make(chan struct{})
	go func() {
		ctrl.Run(ctx)
		close(done)
	}()
	select {
	case rep := <-got:
		if rep.Verdict != VerdictTooFewSamples {
			t.Errorf("verdict %s", rep.Verdict)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no cycle ran")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("controller did not stop on cancel")
	}
}
