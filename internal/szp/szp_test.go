package szp

import (
	"math"
	"testing"
	"testing/quick"

	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/xrand"
)

func smoothField(nx, ny, nz int, seed uint64) *field.Field {
	n := xrand.NewNoise(seed)
	f := field.New("smooth", nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				f.Set(x, y, z, float32(4*n.FBm(float64(x)/16, float64(y)/16, float64(z)/16, 4, 0.5)))
			}
		}
	}
	return f
}

func TestRoundTripBound(t *testing.T) {
	c := New()
	f := smoothField(32, 32, 16, 1)
	for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
		eb := compressor.AbsBound(f, rel)
		stream, err := c.Compress(f, eb)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		g, err := c.Decompress(stream)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		if err := compressor.CheckBound(f, g, eb); err != nil {
			t.Fatalf("rel %g: %v (maxerr %g)", rel, err, compressor.MaxAbsErr(f, g))
		}
	}
}

func TestMonotoneRatio(t *testing.T) {
	c := New()
	f := smoothField(64, 64, 1, 2)
	var prev float64
	for _, rel := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
		stream, err := c.Compress(f, compressor.AbsBound(f, rel))
		if err != nil {
			t.Fatal(err)
		}
		ratio := compressor.Ratio(f, stream)
		if ratio < prev {
			t.Fatalf("ratio decreased: %g -> %g at rel %g", prev, ratio, rel)
		}
		prev = ratio
	}
	if prev < 4 {
		t.Fatalf("loose-bound ratio only %g", prev)
	}
}

func TestConstantFieldZeroBlocks(t *testing.T) {
	c := New()
	f := field.New("const", 8192, 1, 1)
	for i := range f.Data {
		f.Data[i] = 7.5
	}
	stream, err := c.Compress(f, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Constant data: first block carries one delta burst, the rest are
	// 2-bit zero blocks -> ratio should be extreme.
	if ratio := compressor.Ratio(f, stream); ratio < 100 {
		t.Fatalf("constant-field ratio %g", ratio)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, 0.01); err != nil {
		t.Fatal(err)
	}
}

func TestHugeValuesFallBackToRaw(t *testing.T) {
	c := New()
	f := field.FromData("huge", 64, 1, 1, make([]float32, 64))
	for i := range f.Data {
		f.Data[i] = 3e30 // quantizes out of range for tiny eb
	}
	eb := 1e-12
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Equalish(g, 0); err != nil {
		t.Fatalf("raw fallback not exact: %v", err)
	}
}

func TestShortTailBlock(t *testing.T) {
	c := New()
	f := smoothField(BlockSize*3+5, 1, 1, 3)
	eb := compressor.AbsBound(f, 1e-2)
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, eb); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressErrors(t *testing.T) {
	c := New()
	for i, s := range [][]byte{nil, {1}, make([]byte, 26)} {
		if _, err := c.Decompress(s); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	f := smoothField(16, 16, 1, 4)
	stream, err := c.Compress(f, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(stream[:len(stream)-3]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestEstimateBlockBitsMatchesEncoder(t *testing.T) {
	f := smoothField(BlockSize*16, 1, 1, 5)
	eb := compressor.AbsBound(f, 1e-3)
	c := New()
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	var bits uint64
	prev := int64(0)
	for start := 0; start < len(f.Data); start += BlockSize {
		b, last := EstimateBlockBits(f.Data[start:start+BlockSize], eb, prev)
		bits += b
		prev = last
	}
	payloadBytes := len(stream) - 25 - 8
	wantBytes := int((bits + 7) / 8)
	if diff := payloadBytes - wantBytes; diff < -8 || diff > 8 {
		t.Fatalf("estimator %d bytes vs encoder %d", wantBytes, payloadBytes)
	}
}

func TestQuickRoundTripBound(t *testing.T) {
	c := New()
	fn := func(seed uint64, n16 uint16, ebExp uint8) bool {
		rng := xrand.New(seed)
		n := int(n16%3000) + 1
		fl := field.New("q", n, 1, 1)
		for i := range fl.Data {
			fl.Data[i] = float32(rng.Range(-50, 50))
		}
		eb := math.Pow(10, -float64(ebExp%5))
		stream, err := c.Compress(fl, eb)
		if err != nil {
			return false
		}
		g, err := c.Decompress(stream)
		if err != nil {
			return false
		}
		return compressor.CheckBound(fl, g, eb) == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	c := New()
	f := smoothField(64, 64, 64, 1)
	eb := compressor.AbsBound(f, 1e-3)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(f, eb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	c := New()
	f := smoothField(64, 64, 64, 1)
	eb := compressor.AbsBound(f, 1e-3)
	stream, err := c.Compress(f, eb)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}
