// Package szp reimplements the cuSZp ultra-fast error-bounded lossy
// compressor (Huang et al., SC'23) in pure Go. The CAROL paper's background
// section lists cuSZp alongside SZx in the delta-based family and its
// experimental-setup section names SZP among the reference compressors;
// this repository ships it as the extension codec beyond the four the
// paper's tables evaluate.
//
// Pipeline (following cuSZp's design): linear quantization of every sample
// under the error bound, first-order delta coding of the quantization
// integers in 32-sample blocks, a zero-block shortcut for runs of identical
// quantized values, and per-block fixed-length bit packing of the
// zigzag-coded deltas.
package szp

import (
	"fmt"
	"math"
	mbits "math/bits"

	"carol/internal/bitstream"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/safedec"
)

// BlockSize is the number of consecutive samples per block (cuSZp's
// per-thread chunk).
const BlockSize = 32

// MagicSZP identifies szp streams (extension codec, outside the four the
// compressor package predefines).
const MagicSZP byte = 0xA5

// maxQuant bounds the quantization integers; samples quantizing outside are
// stored raw (cuSZp assumes well-scaled inputs; we keep the bound anyway).
const maxQuant = 1 << 42

// rawWidth is the sentinel block width marking a raw (unquantizable) block.
const rawWidth = 63

// Codec is the SZP compressor.
type Codec struct{}

// New returns an SZP codec.
func New() *Codec { return &Codec{} }

// Name implements compressor.Codec.
func (*Codec) Name() string { return "szp" }

var _ compressor.Codec = (*Codec)(nil)

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }

// Compress implements compressor.Codec.
func (*Codec) Compress(f *field.Field, eb float64) ([]byte, error) {
	if err := compressor.ValidateArgs(f, eb); err != nil {
		return nil, err
	}
	w := bitstream.NewWriter(f.SizeBytes() / 4)
	twoEB := 2 * eb
	prev := int64(0)
	var quants [BlockSize]int64
	for start := 0; start < len(f.Data); start += BlockSize {
		end := start + BlockSize
		if end > len(f.Data) {
			end = len(f.Data)
		}
		block := f.Data[start:end]
		// Quantize the block; bail to raw if any sample is out of range.
		raw := false
		for i, v := range block {
			q := math.Round(float64(v) / twoEB)
			if math.Abs(q) >= maxQuant {
				raw = true
				break
			}
			quants[i] = int64(q)
		}
		if raw {
			// 1 raw flag bit + samples verbatim; prev resets to 0 so the
			// decoder stays in sync without decoding the raw values.
			w.WriteBit(1)
			for _, v := range block {
				w.WriteBits(uint64(math.Float32bits(v)), 32)
			}
			prev = 0
			continue
		}
		w.WriteBit(0)
		// Delta-code against the running previous quantized value.
		var width uint
		allZero := true
		p := prev
		for i := range block {
			d := quants[i] - p
			p = quants[i]
			if d != 0 {
				allZero = false
			}
			if wb := uint(mbits.Len64(zigzag(d))); wb > width {
				width = wb
			}
		}
		if allZero {
			// Zero block: every sample repeats the previous value.
			w.WriteBit(1)
			continue
		}
		w.WriteBit(0)
		w.WriteBits(uint64(width), 6)
		p = prev
		for i := range block {
			d := quants[i] - p
			p = quants[i]
			w.WriteBits(zigzag(d), width)
		}
		prev = p
	}
	out := compressor.AppendHeader(nil, compressor.Header{
		Magic: MagicSZP, Nx: f.Nx, Ny: f.Ny, Nz: f.Nz, EB: eb,
	})
	bits := w.BitLen()
	var lenBuf [8]byte
	for i := 0; i < 8; i++ {
		lenBuf[i] = byte(bits >> (56 - 8*i))
	}
	out = append(out, lenBuf[:]...)
	return append(out, w.Bytes()...), nil
}

// Decompress implements compressor.Codec (default safedec limits).
func (c *Codec) Decompress(stream []byte) (*field.Field, error) {
	return c.DecompressLimited(stream, safedec.Default())
}

// DecompressLimited implements compressor.LimitedDecoder.
func (*Codec) DecompressLimited(stream []byte, lim safedec.Limits) (*field.Field, error) {
	h, rest, err := compressor.ParseHeaderLimited(stream, MagicSZP, lim)
	if err != nil {
		return nil, err
	}
	sr := safedec.NewReader(rest)
	bits, err := sr.BE64("szp bit length")
	if err != nil {
		return nil, fmt.Errorf("%w: szp missing bit length: %w", compressor.ErrBadStream, err)
	}
	payload := sr.Rest()
	if bits > uint64(len(payload))*8 {
		return nil, fmt.Errorf("%w: szp bit length exceeds payload", compressor.ErrBadStream)
	}
	r := bitstream.NewReader(payload, bits)
	f := field.New("szp", h.Nx, h.Ny, h.Nz)
	twoEB := 2 * h.EB
	prev := int64(0)
	for start := 0; start < len(f.Data); start += BlockSize {
		end := start + BlockSize
		if end > len(f.Data) {
			end = len(f.Data)
		}
		block := f.Data[start:end]
		rawFlag, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("%w: szp raw flag: %w", compressor.ErrBadStream, err)
		}
		if rawFlag == 1 {
			for i := range block {
				b, err := r.ReadBits(32)
				if err != nil {
					return nil, fmt.Errorf("%w: szp raw sample: %w", compressor.ErrBadStream, err)
				}
				block[i] = math.Float32frombits(uint32(b))
			}
			prev = 0
			continue
		}
		zeroFlag, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("%w: szp zero flag: %w", compressor.ErrBadStream, err)
		}
		if zeroFlag == 1 {
			v := float32(float64(prev) * twoEB)
			for i := range block {
				block[i] = v
			}
			continue
		}
		w64, err := r.ReadBits(6)
		if err != nil {
			return nil, fmt.Errorf("%w: szp width: %w", compressor.ErrBadStream, err)
		}
		width := uint(w64)
		if width == 0 || width == rawWidth || width > 44 {
			return nil, fmt.Errorf("%w: szp invalid width %d", compressor.ErrBadStream, width)
		}
		for i := range block {
			u, err := r.ReadBits(width)
			if err != nil {
				return nil, fmt.Errorf("%w: szp delta: %w", compressor.ErrBadStream, err)
			}
			prev += unzig(u)
			block[i] = float32(float64(prev) * twoEB)
		}
	}
	return f, nil
}

// EstimateBlockBits returns the exact payload bits the encoder would emit
// for one block given the previous block's trailing quantized value; the
// SECRE-style surrogate samples blocks and extrapolates with this.
func EstimateBlockBits(block []float32, eb float64, prev int64) (bits uint64, lastQ int64) {
	twoEB := 2 * eb
	var width uint
	allZero := true
	p := prev
	for _, v := range block {
		q := math.Round(float64(v) / twoEB)
		if math.Abs(q) >= maxQuant {
			return 1 + 32*uint64(len(block)), 0
		}
		d := int64(q) - p
		p = int64(q)
		if d != 0 {
			allZero = false
		}
		if wb := uint(mbits.Len64(zigzag(d))); wb > width {
			width = wb
		}
	}
	if allZero {
		return 2, p
	}
	return 2 + 6 + uint64(width)*uint64(len(block)), p
}
