package wavelet

import (
	"math"
	"testing"
	"testing/quick"

	"carol/internal/xrand"
)

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestMirror(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 5, 0}, {4, 5, 4}, {5, 5, 3}, {6, 5, 2}, {-1, 5, 1}, {-2, 5, 2},
		{8, 5, 0}, {0, 1, 0}, {-7, 1, 0},
	}
	for _, c := range cases {
		if got := mirror(c.i, c.n); got != c.want {
			t.Errorf("mirror(%d, %d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func TestForwardInverse1DEven(t *testing.T) {
	rng := xrand.New(1)
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.Norm()
	}
	orig := append([]float64(nil), x...)
	Forward1D(x)
	Inverse1D(x)
	if d := maxAbsDiff(x, orig); d > 1e-10 {
		t.Fatalf("even-length round trip error %g", d)
	}
}

func TestForwardInverse1DOdd(t *testing.T) {
	rng := xrand.New(2)
	for _, n := range []int{3, 5, 7, 17, 33, 101} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Norm()
		}
		orig := append([]float64(nil), x...)
		Forward1D(x)
		Inverse1D(x)
		if d := maxAbsDiff(x, orig); d > 1e-9 {
			t.Fatalf("n=%d round trip error %g", n, d)
		}
	}
}

func TestShortSignalsUnchanged(t *testing.T) {
	for _, n := range []int{0, 1} {
		x := make([]float64, n)
		for i := range x {
			x[i] = 3.5
		}
		Forward1D(x)
		Inverse1D(x)
		for _, v := range x {
			if v != 3.5 {
				t.Fatalf("short signal modified: %v", x)
			}
		}
	}
}

func TestSmoothSignalEnergyCompaction(t *testing.T) {
	// For a smooth signal, the detail band must carry far less energy than
	// the approximation band — that is the property SPERR exploits.
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / float64(n))
	}
	Forward1D(x)
	nLow := (n + 1) / 2
	var eLow, eHigh float64
	for i, v := range x {
		if i < nLow {
			eLow += v * v
		} else {
			eHigh += v * v
		}
	}
	if eHigh > eLow/100 {
		t.Fatalf("detail energy %g not ≪ approximation energy %g", eHigh, eLow)
	}
}

func TestConstantSignalZeroDetails(t *testing.T) {
	x := make([]float64, 32)
	for i := range x {
		x[i] = 7
	}
	Forward1D(x)
	for i := 16; i < 32; i++ {
		if math.Abs(x[i]) > 1e-12 {
			t.Fatalf("constant signal produced detail %g at %d", x[i], i)
		}
	}
}

func TestLevels(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {8, 0}, {15, 0}, {16, 1}, {31, 2}, {32, 2}, {64, 3}, {512, 6},
	}
	for _, c := range cases {
		if got := Levels(c.n); got != c.want {
			t.Errorf("Levels(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGridRoundTrip3D(t *testing.T) {
	rng := xrand.New(3)
	g := NewGrid(17, 12, 9)
	for i := range g.Data {
		g.Data[i] = rng.Norm()
	}
	orig := append([]float64(nil), g.Data...)
	levels := 2
	g.Forward(levels)
	g.Inverse(levels)
	if d := maxAbsDiff(g.Data, orig); d > 1e-9 {
		t.Fatalf("3D grid round trip error %g", d)
	}
}

func TestGridRoundTrip2D(t *testing.T) {
	rng := xrand.New(4)
	g := NewGrid(33, 21, 1)
	for i := range g.Data {
		g.Data[i] = rng.Norm() * 100
	}
	orig := append([]float64(nil), g.Data...)
	g.Forward(3)
	g.Inverse(3)
	if d := maxAbsDiff(g.Data, orig); d > 1e-8 {
		t.Fatalf("2D grid round trip error %g", d)
	}
}

func TestGridForwardChangesData(t *testing.T) {
	g := NewGrid(16, 16, 1)
	for i := range g.Data {
		g.Data[i] = float64(i % 7)
	}
	orig := append([]float64(nil), g.Data...)
	g.Forward(1)
	if maxAbsDiff(g.Data, orig) == 0 {
		t.Fatal("Forward was a no-op")
	}
}

func TestGridSmooth3DCompaction(t *testing.T) {
	// Smooth 3D field: after 2 levels, coefficients outside the low corner
	// must be small relative to those inside.
	n := 32
	g := NewGrid(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				g.Data[g.idx(x, y, z)] = math.Sin(float64(x)/8) * math.Cos(float64(y)/9) * math.Sin(float64(z)/7+1)
			}
		}
	}
	g.Forward(2)
	corner := n / 4
	var eIn, eOut float64
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := g.Data[g.idx(x, y, z)]
				if x < corner && y < corner && z < corner {
					eIn += v * v
				} else {
					eOut += v * v
				}
			}
		}
	}
	if eOut > eIn/50 {
		t.Fatalf("3D energy not compacted: corner %g vs rest %g", eIn, eOut)
	}
}

func TestNewGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGrid(0, 4, 4)
}

func TestQuick1DRoundTrip(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16%500) + 2
		rng := xrand.New(seed)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Range(-1000, 1000)
		}
		orig := append([]float64(nil), x...)
		Forward1D(x)
		Inverse1D(x)
		return maxAbsDiff(x, orig) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGridRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nx, ny, nz := rng.Intn(30)+2, rng.Intn(30)+2, rng.Intn(10)+1
		g := NewGrid(nx, ny, nz)
		for i := range g.Data {
			g.Data[i] = rng.Norm()
		}
		orig := append([]float64(nil), g.Data...)
		levels := rng.Intn(3) + 1
		g.Forward(levels)
		g.Inverse(levels)
		return maxAbsDiff(g.Data, orig) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGridForward3D(b *testing.B) {
	g := NewGrid(64, 64, 64)
	rng := xrand.New(1)
	for i := range g.Data {
		g.Data[i] = rng.Norm()
	}
	b.SetBytes(int64(8 * len(g.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Forward(3)
		g.Inverse(3)
	}
}
