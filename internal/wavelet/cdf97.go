// Package wavelet implements the multi-level CDF 9/7 discrete wavelet
// transform (the transform SPERR uses) via the standard four-step lifting
// scheme with symmetric boundary extension. Transforms are provided for 1D
// signals and for 2D/3D grids as separable dimension-by-dimension passes.
package wavelet

import "fmt"

// CDF 9/7 lifting coefficients (Daubechies & Sweldens factorization).
const (
	alpha = -1.586134342059924
	beta  = -0.052980118572961
	gamma = 0.882911075530934
	delta = 0.443506852043971
	kappa = 1.230174104914001
)

// mirror reflects index i into [0, n) with whole-sample symmetric extension.
func mirror(i, n int) int {
	if n == 1 {
		return 0
	}
	period := 2 * (n - 1)
	i %= period
	if i < 0 {
		i += period
	}
	if i >= n {
		i = period - i
	}
	return i
}

// Forward1D applies one level of the CDF 9/7 transform in place, then
// de-interleaves: x[0:ceil(n/2)] holds the low-pass (approximation) band and
// x[ceil(n/2):] the high-pass (detail) band. Signals of length < 2 are
// returned unchanged.
func Forward1D(x []float64) { forward1D(x, nil) }

// forward1D is Forward1D with caller-provided de-interleave scratch (may be
// nil); Grid passes one buffer down so per-line transforms allocate nothing.
func forward1D(x, tmp []float64) {
	n := len(x)
	if n < 2 {
		return
	}
	at := func(i int) float64 { return x[mirror(i, n)] }
	// Predict 1.
	for i := 1; i < n; i += 2 {
		x[i] += alpha * (at(i-1) + at(i+1))
	}
	// Update 1.
	for i := 0; i < n; i += 2 {
		x[i] += beta * (at(i-1) + at(i+1))
	}
	// Predict 2.
	for i := 1; i < n; i += 2 {
		x[i] += gamma * (at(i-1) + at(i+1))
	}
	// Update 2.
	for i := 0; i < n; i += 2 {
		x[i] += delta * (at(i-1) + at(i+1))
	}
	// Scale.
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x[i] *= kappa
		} else {
			x[i] /= kappa
		}
	}
	deinterleave(x, tmp)
}

// Inverse1D reverses Forward1D.
func Inverse1D(x []float64) { inverse1D(x, nil) }

// inverse1D is Inverse1D with caller-provided interleave scratch (may be nil).
func inverse1D(x, tmp []float64) {
	n := len(x)
	if n < 2 {
		return
	}
	interleave(x, tmp)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x[i] /= kappa
		} else {
			x[i] *= kappa
		}
	}
	at := func(i int) float64 { return x[mirror(i, n)] }
	for i := 0; i < n; i += 2 {
		x[i] -= delta * (at(i-1) + at(i+1))
	}
	for i := 1; i < n; i += 2 {
		x[i] -= gamma * (at(i-1) + at(i+1))
	}
	for i := 0; i < n; i += 2 {
		x[i] -= beta * (at(i-1) + at(i+1))
	}
	for i := 1; i < n; i += 2 {
		x[i] -= alpha * (at(i-1) + at(i+1))
	}
}

func deinterleave(x, tmp []float64) {
	n := len(x)
	nLow := (n + 1) / 2
	if len(tmp) < n {
		tmp = make([]float64, n)
	}
	tmp = tmp[:n]
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			tmp[i/2] = x[i]
		} else {
			tmp[nLow+i/2] = x[i]
		}
	}
	copy(x, tmp)
}

func interleave(x, tmp []float64) {
	n := len(x)
	nLow := (n + 1) / 2
	if len(tmp) < n {
		tmp = make([]float64, n)
	}
	tmp = tmp[:n]
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			tmp[i] = x[i/2]
		} else {
			tmp[i] = x[nLow+i/2]
		}
	}
	copy(x, tmp)
}

// Levels returns the number of dyadic decomposition levels appropriate for a
// signal of length n (stop when the approximation band would drop below 8
// samples, as SPERR does).
func Levels(n int) int {
	levels := 0
	for n >= 16 {
		n = (n + 1) / 2
		levels++
	}
	return levels
}

// Grid is a 3D array of float64 coefficients with x fastest. 2D data uses
// Nz == 1. It is the working buffer for the SPERR transform stage.
type Grid struct {
	Nx, Ny, Nz int
	Data       []float64
}

// NewGrid allocates a zeroed grid.
func NewGrid(nx, ny, nz int) *Grid {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("wavelet: invalid grid %dx%dx%d", nx, ny, nz))
	}
	return &Grid{Nx: nx, Ny: ny, Nz: nz, Data: make([]float64, nx*ny*nz)}
}

func (g *Grid) idx(x, y, z int) int { return (z*g.Ny+y)*g.Nx + x }

// Forward applies `levels` levels of the separable 9/7 transform in place.
// Level l transforms the low-pass corner sub-grid of dimensions
// ceil(N/2^l) along each non-trivial axis.
func (g *Grid) Forward(levels int) {
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	buf := make([]float64, maxInt(nx, maxInt(ny, nz)))
	tmp := make([]float64, len(buf))
	for l := 0; l < levels; l++ {
		if nx >= 2 {
			for z := 0; z < nz; z++ {
				for y := 0; y < ny; y++ {
					row := buf[:nx]
					base := g.idx(0, y, z)
					copy(row, g.Data[base:base+nx])
					forward1D(row, tmp)
					copy(g.Data[base:base+nx], row)
				}
			}
		}
		if ny >= 2 {
			for z := 0; z < nz; z++ {
				for x := 0; x < nx; x++ {
					col := buf[:ny]
					for y := 0; y < ny; y++ {
						col[y] = g.Data[g.idx(x, y, z)]
					}
					forward1D(col, tmp)
					for y := 0; y < ny; y++ {
						g.Data[g.idx(x, y, z)] = col[y]
					}
				}
			}
		}
		if nz >= 2 {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					pil := buf[:nz]
					for z := 0; z < nz; z++ {
						pil[z] = g.Data[g.idx(x, y, z)]
					}
					forward1D(pil, tmp)
					for z := 0; z < nz; z++ {
						g.Data[g.idx(x, y, z)] = pil[z]
					}
				}
			}
		}
		nx, ny, nz = nextDim(nx), nextDim(ny), nextDim(nz)
	}
}

// Inverse reverses Forward with the same level count.
func (g *Grid) Inverse(levels int) {
	// Recompute the per-level sub-dimensions, then undo levels in reverse.
	type dims struct{ nx, ny, nz int }
	seq := make([]dims, levels)
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	for l := 0; l < levels; l++ {
		seq[l] = dims{nx, ny, nz}
		nx, ny, nz = nextDim(nx), nextDim(ny), nextDim(nz)
	}
	buf := make([]float64, maxInt(g.Nx, maxInt(g.Ny, g.Nz)))
	tmp := make([]float64, len(buf))
	for l := levels - 1; l >= 0; l-- {
		d := seq[l]
		if d.nz >= 2 {
			for y := 0; y < d.ny; y++ {
				for x := 0; x < d.nx; x++ {
					pil := buf[:d.nz]
					for z := 0; z < d.nz; z++ {
						pil[z] = g.Data[g.idx(x, y, z)]
					}
					inverse1D(pil, tmp)
					for z := 0; z < d.nz; z++ {
						g.Data[g.idx(x, y, z)] = pil[z]
					}
				}
			}
		}
		if d.ny >= 2 {
			for z := 0; z < d.nz; z++ {
				for x := 0; x < d.nx; x++ {
					col := buf[:d.ny]
					for y := 0; y < d.ny; y++ {
						col[y] = g.Data[g.idx(x, y, z)]
					}
					inverse1D(col, tmp)
					for y := 0; y < d.ny; y++ {
						g.Data[g.idx(x, y, z)] = col[y]
					}
				}
			}
		}
		if d.nx >= 2 {
			for z := 0; z < d.nz; z++ {
				for y := 0; y < d.ny; y++ {
					row := buf[:d.nx]
					base := g.idx(0, y, z)
					copy(row, g.Data[base:base+d.nx])
					inverse1D(row, tmp)
					copy(g.Data[base:base+d.nx], row)
				}
			}
		}
	}
}

func nextDim(n int) int {
	if n < 2 {
		return n
	}
	return (n + 1) / 2
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
