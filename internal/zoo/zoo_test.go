package zoo

import (
	"errors"
	"math"
	"testing"

	"carol/internal/model"
	"carol/internal/trainset"
	"carol/internal/xrand"
)

// synthData builds a canonical-dimensionality training set with a smooth
// signal plus noise.
func synthData(n int, seed uint64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, trainset.InputDim)
		for j := range row {
			row[j] = rng.Float64()*2 - 1
		}
		X[i] = row
		y[i] = -3 + row[0] - 0.7*row[1]*row[1] + 0.5*row[5] + 0.02*rng.Norm()
	}
	return X, y
}

func smallConfig(workers int) Config {
	cfg := Config{KFolds: 3, Seed: 7, Workers: workers}
	cfg.RF.NEstimators = 8
	cfg.RF.MaxDepth = 6
	cfg.RF.MinSamplesSplit = 4
	cfg.RF.MinSamplesLeaf = 2
	cfg.RF.Seed = 3
	cfg.Boost.Rounds = 15
	cfg.KNN.K = 5
	return cfg
}

func TestTrainAllBackends(t *testing.T) {
	X, y := synthData(240, 1)
	res, err := Train(X, y, smallConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 3 {
		t.Fatalf("%d candidates", len(res.Candidates))
	}
	for _, c := range res.Candidates {
		if c.Err != nil {
			t.Fatalf("backend %s failed: %v", c.Backend, c.Err)
		}
		if !(c.CVMSE >= 0) || math.IsInf(c.CVMSE, 0) {
			t.Fatalf("backend %s CVMSE %g", c.Backend, c.CVMSE)
		}
		n := 0
		if c.Forest != nil {
			n++
		}
		if c.Boost != nil {
			n++
		}
		if c.KNN != nil {
			n++
		}
		if n != 1 {
			t.Fatalf("backend %s carries %d models", c.Backend, n)
		}
	}
	best := res.Best()
	if best == nil {
		t.Fatal("no winner")
	}
	sb := res.Scoreboard()
	if sb["zoo_best_backend"] != best.Backend {
		t.Fatalf("scoreboard winner %q, best %q", sb["zoo_best_backend"], best.Backend)
	}
	for _, b := range model.KnownBackends() {
		if _, ok := sb["zoo_cv_mse_"+b]; !ok {
			t.Fatalf("scoreboard missing %s", b)
		}
	}
}

// TestDeterminism pins the whole zoo run: same data, same config →
// bit-identical scores and winner, for any Workers value.
func TestDeterminism(t *testing.T) {
	X, y := synthData(180, 2)
	ref, err := Train(X, y, smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		res, err := Train(X, y, smallConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Candidates {
			got, want := res.Candidates[i], ref.Candidates[i]
			if got.Backend != want.Backend {
				t.Fatalf("candidate order changed: %s vs %s", got.Backend, want.Backend)
			}
			if math.Float64bits(got.CVMSE) != math.Float64bits(want.CVMSE) {
				t.Fatalf("workers=%d: %s CVMSE %g != %g", workers, got.Backend, got.CVMSE, want.CVMSE)
			}
		}
		if res.Best().Backend != ref.Best().Backend {
			t.Fatalf("workers=%d: winner changed", workers)
		}
	}
}

// TestTieBreakPriority: equal scores must resolve to the earlier backend
// in priority order, and a strictly better score must win regardless.
func TestTieBreakPriority(t *testing.T) {
	r := &Result{Candidates: []Candidate{
		{Backend: "rf", CVMSE: 0.5},
		{Backend: "boost", CVMSE: 0.5},
		{Backend: "knn", CVMSE: 0.5},
	}}
	if r.Best().Backend != "rf" {
		t.Fatalf("tie resolved to %s", r.Best().Backend)
	}
	r.Candidates[2].CVMSE = 0.25
	if r.Best().Backend != "knn" {
		t.Fatalf("strict winner %s", r.Best().Backend)
	}
	r.Candidates[2].Err = errors.New("boom")
	if r.Best().Backend != "rf" {
		t.Fatalf("failed candidate won: %s", r.Best().Backend)
	}
	empty := &Result{Candidates: []Candidate{{Backend: "rf", Err: errors.New("x")}}}
	if empty.Best() != nil {
		t.Fatal("all-failed zoo produced a winner")
	}
}

func TestCandidateArtifact(t *testing.T) {
	X, y := synthData(150, 3)
	res, err := Train(X, y, smallConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Candidates {
		c := &res.Candidates[i]
		a, err := c.Artifact("szx", nil, res.Scoreboard())
		if err != nil {
			t.Fatalf("%s artifact: %v", c.Backend, err)
		}
		buf, err := a.Encode()
		if err != nil {
			t.Fatalf("%s encode: %v", c.Backend, err)
		}
		b, err := model.Read(buf)
		if err != nil {
			t.Fatalf("%s read: %v", c.Backend, err)
		}
		if b.BackendTag() != c.Backend {
			t.Fatalf("artifact backend %q, want %q", b.BackendTag(), c.Backend)
		}
		if b.Meta["zoo_best_backend"] != res.Best().Backend {
			t.Fatal("scoreboard metadata lost")
		}
	}
	failed := &Candidate{Backend: "rf", Err: errors.New("nope")}
	if _, err := failed.Artifact("szx", nil, nil); err == nil {
		t.Fatal("failed candidate produced artifact")
	}
}

func TestTrainValidation(t *testing.T) {
	X, y := synthData(30, 4)
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := Train(X[:4], y[:4], Config{KFolds: 3}); err == nil {
		t.Fatal("too-few samples accepted")
	}
	if _, err := Train(X, y, Config{KFolds: 2, Backends: []string{"svm"}}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := Train(X, y, Config{KFolds: 2, Backends: []string{"rf", "rf"}}); err == nil {
		t.Fatal("duplicate backend accepted")
	}
}

// TestSubsetBackends runs a restricted zoo (the caroltrain -backends flag
// path) and checks only the requested backends appear.
func TestSubsetBackends(t *testing.T) {
	X, y := synthData(100, 5)
	cfg := smallConfig(0)
	cfg.Backends = []string{"knn", "boost"}
	res, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 || res.Candidates[0].Backend != "knn" || res.Candidates[1].Backend != "boost" {
		t.Fatalf("candidates %+v", res.Candidates)
	}
	if _, ok := res.Scoreboard()["zoo_cv_mse_rf"]; ok {
		t.Fatal("unrequested backend scored")
	}
}
