// Package zoo trains and compares every registered surrogate-model
// backend (random forest, gradient boosting, k-NN) on one training set,
// scoring each with the same deterministic k-fold split so the comparison
// is fair, and picking the winner by cross-validated MSE with a
// deterministic tie-break (backend priority order). The black-box
// prediction literature (PAPERS.md) shows different statistical predictors
// win on different datasets — the zoo turns that observation into
// mechanism: caroltrain and the continuous-retraining controller
// (internal/retrain) both train the zoo and publish whichever backend
// actually wins on the data at hand (DESIGN.md §17).
package zoo

import (
	"errors"
	"fmt"
	"strconv"

	"carol/internal/boost"
	"carol/internal/knn"
	"carol/internal/model"
	"carol/internal/rf"
	"carol/internal/xrand"
)

// Config tunes one zoo run. Zero values take defaults.
type Config struct {
	// Backends lists the backend tags to train, in priority order (the
	// CV-score tie-break order). Default: model.KnownBackends().
	Backends []string
	// RF configures the random-forest backend. The zero value uses
	// rf.DefaultConfig(); caroltrain passes its BO-tuned incumbent here.
	RF rf.Config
	// Boost configures the gradient-boosting backend (zero = defaults).
	Boost boost.Config
	// KNN configures the k-NN backend (zero = defaults).
	KNN knn.Config
	// KFolds is the cross-validation fold count. Default 5.
	KFolds int
	// Seed drives the fold assignment (shared by every backend).
	Seed uint64
	// Workers bounds intra-backend training parallelism. Folds run
	// serially — determinism comes from fold order, speed from the
	// backends' own Workers contract.
	Workers int
}

func (c Config) withDefaults() Config {
	if len(c.Backends) == 0 {
		c.Backends = model.KnownBackends()
	}
	if c.RF.NEstimators == 0 {
		c.RF = rf.DefaultConfig()
	}
	if c.KFolds <= 0 {
		c.KFolds = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.RF.Workers = c.Workers
	c.Boost.Workers = c.Workers
	c.KNN.Workers = c.Workers
	return c
}

// Candidate is one trained backend with its cross-validation score.
type Candidate struct {
	Backend string
	// CVMSE is the k-fold cross-validated mean squared error (lower is
	// better) on the shared fold split.
	CVMSE float64
	// Err is non-nil when this backend failed to train or score; such a
	// candidate carries no model and never wins.
	Err error
	// Exactly one of the following is non-nil on success.
	Forest *rf.Forest
	Boost  *boost.Model
	KNN    *knn.Model
}

// Artifact wraps the candidate's model into a publishable artifact with
// the canonical schema.
func (c *Candidate) Artifact(codec string, calib *model.CalibState, meta map[string]string) (*model.Artifact, error) {
	if c.Err != nil {
		return nil, fmt.Errorf("zoo: backend %s failed: %w", c.Backend, c.Err)
	}
	a := &model.Artifact{
		Codec:   codec,
		Backend: c.Backend,
		Schema:  model.CanonicalSchema(),
		Calib:   calib,
		Forest:  c.Forest,
		Boost:   c.Boost,
		KNN:     c.KNN,
		Meta:    meta,
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Result holds every candidate, in the configured priority order.
type Result struct {
	Candidates []Candidate
}

// Best returns the winning candidate: lowest CVMSE among the backends
// that trained successfully, ties broken by priority order (the earlier
// backend wins — strict improvement is required to displace it). Nil when
// every backend failed.
func (r *Result) Best() *Candidate {
	var best *Candidate
	for i := range r.Candidates {
		c := &r.Candidates[i]
		if c.Err != nil {
			continue
		}
		if best == nil || c.CVMSE < best.CVMSE {
			best = c
		}
	}
	return best
}

// Scoreboard renders the per-backend CV scores (and the winner) as
// metadata pairs for artifact provenance. Failed backends record their
// error string instead of a score.
func (r *Result) Scoreboard() map[string]string {
	out := make(map[string]string, len(r.Candidates)+1)
	for i := range r.Candidates {
		c := &r.Candidates[i]
		if c.Err != nil {
			out["zoo_err_"+c.Backend] = c.Err.Error()
			continue
		}
		out["zoo_cv_mse_"+c.Backend] = strconv.FormatFloat(c.CVMSE, 'g', -1, 64)
	}
	if best := r.Best(); best != nil {
		out["zoo_best_backend"] = best.Backend
	}
	return out
}

// trainer adapts one backend to the shared CV loop.
type trainer struct {
	fit func(X [][]float64, y []float64) (predictBatch, error)
}

type predictBatch func(rows [][]float64) ([]float64, error)

func backendTrainer(backend string, cfg Config) (trainer, func(c *Candidate, X [][]float64, y []float64) error, error) {
	switch backend {
	case model.BackendRF:
		tr := trainer{fit: func(X [][]float64, y []float64) (predictBatch, error) {
			f, err := rf.Train(X, y, cfg.RF)
			if err != nil {
				return nil, err
			}
			return f.PredictBatch, nil
		}}
		final := func(c *Candidate, X [][]float64, y []float64) error {
			f, err := rf.Train(X, y, cfg.RF)
			c.Forest = f
			return err
		}
		return tr, final, nil
	case model.BackendBoost:
		tr := trainer{fit: func(X [][]float64, y []float64) (predictBatch, error) {
			m, err := boost.Train(X, y, cfg.Boost)
			if err != nil {
				return nil, err
			}
			return m.PredictBatch, nil
		}}
		final := func(c *Candidate, X [][]float64, y []float64) error {
			m, err := boost.Train(X, y, cfg.Boost)
			c.Boost = m
			return err
		}
		return tr, final, nil
	case model.BackendKNN:
		tr := trainer{fit: func(X [][]float64, y []float64) (predictBatch, error) {
			m, err := knn.Train(X, y, cfg.KNN)
			if err != nil {
				return nil, err
			}
			return m.PredictBatch, nil
		}}
		final := func(c *Candidate, X [][]float64, y []float64) error {
			m, err := knn.Train(X, y, cfg.KNN)
			c.KNN = m
			return err
		}
		return tr, final, nil
	}
	return trainer{}, nil, fmt.Errorf("zoo: unknown backend %q", backend)
}

// Train runs the zoo: every configured backend is cross-validated on the
// SAME deterministic fold split (seeded permutation, sample i in fold
// perm⁻¹(i) mod k) and then refit on the full data. Backends that fail
// are recorded on their candidate, not fatal — Train errors only when the
// data cannot support CV at all or a backend tag is unknown.
func Train(X [][]float64, y []float64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("zoo: empty or mismatched training data")
	}
	if len(X) < 2*cfg.KFolds {
		return nil, fmt.Errorf("zoo: %d samples cannot support %d-fold CV", len(X), cfg.KFolds)
	}
	seen := make(map[string]bool, len(cfg.Backends))
	for _, b := range cfg.Backends {
		if seen[b] {
			return nil, fmt.Errorf("zoo: duplicate backend %q", b)
		}
		seen[b] = true
	}
	k := cfg.KFolds
	perm := xrand.New(cfg.Seed).Perm(len(X))
	foldOf := make([]int, len(X))
	for i, p := range perm {
		foldOf[p] = i % k
	}
	res := &Result{Candidates: make([]Candidate, len(cfg.Backends))}
	for bi, backend := range cfg.Backends {
		c := &res.Candidates[bi]
		c.Backend = backend
		tr, final, err := backendTrainer(backend, cfg)
		if err != nil {
			return nil, err
		}
		c.CVMSE, c.Err = crossValidate(X, y, foldOf, k, tr)
		if c.Err != nil {
			continue
		}
		if err := final(c, X, y); err != nil {
			c.Err = err
			c.Forest, c.Boost, c.KNN = nil, nil, nil
		}
	}
	return res, nil
}

// crossValidate scores one backend over the shared folds: total squared
// error over every held-out sample divided by n. Folds run in order, so
// the accumulation order — and the score — never depends on scheduling.
func crossValidate(X [][]float64, y []float64, foldOf []int, k int, tr trainer) (float64, error) {
	var sse float64
	for fold := 0; fold < k; fold++ {
		trX := make([][]float64, 0, len(X))
		trY := make([]float64, 0, len(y))
		teX := make([][]float64, 0, len(X)/k+1)
		teY := make([]float64, 0, len(y)/k+1)
		for i := range X {
			if foldOf[i] == fold {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		predict, err := tr.fit(trX, trY)
		if err != nil {
			return 0, fmt.Errorf("zoo: fold %d: %w", fold, err)
		}
		preds, err := predict(teX)
		if err != nil {
			return 0, fmt.Errorf("zoo: fold %d predict: %w", fold, err)
		}
		for i, p := range preds {
			d := p - teY[i]
			sse += d * d
		}
	}
	return sse / float64(len(X)), nil
}
