package zoo

import (
	"fmt"
	"testing"

	"carol/internal/model"
)

// BenchmarkZooTrain measures one full zoo cycle per backend — k-fold CV
// plus the final full-data fit — on the workload the continuous-retraining
// controller hands it (a few hundred harvested samples). Numbers are
// committed to BENCH_ZOO.json and gated by scripts/benchdiff.sh.
func BenchmarkZooTrain(b *testing.B) {
	X, y := synthData(400, 11)
	for _, backend := range model.KnownBackends() {
		b.Run(backend, func(b *testing.B) {
			cfg := smallConfig(0)
			cfg.Backends = []string{backend}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Train(X, y, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Best() == nil {
					b.Fatal("no winner")
				}
			}
		})
	}
}

// BenchmarkZooPredict measures the serving-side batch prediction cost of
// each trained backend (512-row batch), the hot path a published artifact
// pays on every PredictErrorBounds call.
func BenchmarkZooPredict(b *testing.B) {
	X, y := synthData(400, 12)
	cfg := smallConfig(0)
	res, err := Train(X, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch, _ := synthData(512, 13)
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if c.Err != nil {
			b.Fatalf("backend %s failed: %v", c.Backend, c.Err)
		}
		a, err := c.Artifact("szx", nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Backend, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				preds, err := a.PredictTargets(batch)
				if err != nil {
					b.Fatal(err)
				}
				if len(preds) != len(batch) {
					b.Fatal(fmt.Errorf("got %d preds", len(preds)))
				}
			}
		})
	}
}
