// Stream codec layer: io.Writer/io.Reader-based compression endpoints.
//
// Slice-based Codecs hold the whole field, the whole compressed stream and
// every intermediate buffer resident at once; StreamCodec is the interface
// serving paths use so peak memory stops scaling with field size (the
// pipeline package provides the block-parallel implementation). NewStream
// adapts any existing Codec so every codec in the registry has a streaming
// form.
package compressor

import (
	"fmt"
	"io"

	"carol/internal/field"
	"carol/internal/safedec"
)

// StreamCodec is an error-bounded lossy compressor with streaming
// endpoints. CompressStream writes the compressed representation of f to w;
// DecompressStream reconstructs a field from r, reading only as much input
// as its safedec limits allow.
type StreamCodec interface {
	// Name returns the compressor's short identifier.
	Name() string
	// CompressStream encodes f under absolute error bound eb > 0 onto w.
	CompressStream(w io.Writer, f *field.Field, eb float64) error
	// DecompressStream reconstructs the field encoded on r.
	DecompressStream(r io.Reader) (*field.Field, error)
}

// streamAdapter lifts a slice-based Codec to StreamCodec. The bytes written
// by CompressStream are exactly Compress's output, so slice and streaming
// paths stay bit-compatible.
type streamAdapter struct {
	Codec
	lim safedec.Limits
}

// NewStream adapts c to the StreamCodec interface under the default safedec
// limits. If c already implements StreamCodec it is returned unchanged.
func NewStream(c Codec) StreamCodec {
	return NewStreamLimited(c, safedec.Default())
}

// NewStreamLimited adapts c to StreamCodec with explicit limits bounding
// how much compressed input DecompressStream will buffer. If c already
// implements StreamCodec it is returned unchanged.
func NewStreamLimited(c Codec, lim safedec.Limits) StreamCodec {
	if sc, ok := c.(StreamCodec); ok {
		return sc
	}
	return &streamAdapter{Codec: c, lim: lim.Norm()}
}

// CompressStream implements StreamCodec.
func (a *streamAdapter) CompressStream(w io.Writer, f *field.Field, eb float64) error {
	stream, err := a.Compress(f, eb)
	if err != nil {
		return err
	}
	if _, err := w.Write(stream); err != nil {
		return fmt.Errorf("%s: stream write: %w", a.Name(), err)
	}
	return nil
}

// DecompressStream implements StreamCodec. The input is consumed up to the
// adapter's MaxAlloc limit and no further: a stream larger than that is
// rejected with an error wrapping safedec.ErrLimit instead of being
// buffered without bound.
func (a *streamAdapter) DecompressStream(r io.Reader) (*field.Field, error) {
	stream, err := ReadAllLimited(r, a.lim)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name(), err)
	}
	return DecompressLimited(a.Codec, stream, a.lim)
}

// ReadAllLimited reads r to EOF, refusing (with an error wrapping
// safedec.ErrLimit) inputs longer than lim.MaxAlloc bytes. Unlike
// io.ReadAll over an unbounded reader, a hostile endless input stops
// consuming memory — and stops being read — at the limit.
func ReadAllLimited(r io.Reader, lim safedec.Limits) ([]byte, error) {
	lim = lim.Norm()
	buf, err := io.ReadAll(io.LimitReader(r, lim.MaxAlloc+1))
	if err != nil {
		return nil, fmt.Errorf("stream read: %w", err)
	}
	if int64(len(buf)) > lim.MaxAlloc {
		return nil, fmt.Errorf("stream of more than %d bytes: %w", lim.MaxAlloc, safedec.ErrLimit)
	}
	return buf, nil
}
