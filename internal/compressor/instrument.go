package compressor

import (
	"time"

	"carol/internal/field"
	"carol/internal/obs"
	"carol/internal/safedec"
)

// Instrument wraps c so every Compress/Decompress call records latency,
// throughput and error metrics into the obs.Default registry, labeled by
// codec name:
//
//	codec_compress_seconds{codec="sz3"}      latency histogram
//	codec_decompress_seconds{codec="sz3"}    latency histogram
//	codec_compress_in_bytes_total{...}       uncompressed bytes in
//	codec_compress_out_bytes_total{...}      compressed bytes out
//	codec_errors_total{codec,op}             failed calls
//	codec_decode_reject_total{codec,reason}  hostile-input rejections by
//	                                         safedec class (limit,
//	                                         truncated, corrupt)
//
// The wrapper is transparent (Name and results pass through unchanged)
// and idempotent: instrumenting an already-instrumented codec returns it
// as-is. Metric handles are resolved once at wrap time, so the per-call
// overhead is two clock reads and a few atomic adds — noise against even
// the fastest codec's block loop.
func Instrument(c Codec) Codec {
	if ic, ok := c.(*instrumentedCodec); ok {
		return ic
	}
	name := c.Name()
	return &instrumentedCodec{
		codec:             c,
		compressSeconds:   obs.Default.Histogram(obs.Label("codec_compress_seconds", "codec", name), obs.LatencyBuckets()),
		decompressSeconds: obs.Default.Histogram(obs.Label("codec_decompress_seconds", "codec", name), obs.LatencyBuckets()),
		inBytes:           obs.Default.Counter(obs.Label("codec_compress_in_bytes_total", "codec", name)),
		outBytes:          obs.Default.Counter(obs.Label("codec_compress_out_bytes_total", "codec", name)),
		compressErrors:    obs.Default.Counter(obs.Label("codec_errors_total", "codec", name, "op", "compress")),
		decompressErrors:  obs.Default.Counter(obs.Label("codec_errors_total", "codec", name, "op", "decompress")),
		decodeRejects: map[string]*obs.Counter{
			"limit":     obs.Default.Counter(obs.Label("codec_decode_reject_total", "codec", name, "reason", "limit")),
			"truncated": obs.Default.Counter(obs.Label("codec_decode_reject_total", "codec", name, "reason", "truncated")),
			"corrupt":   obs.Default.Counter(obs.Label("codec_decode_reject_total", "codec", name, "reason", "corrupt")),
		},
	}
}

type instrumentedCodec struct {
	codec             Codec
	compressSeconds   *obs.Histogram
	decompressSeconds *obs.Histogram
	inBytes           *obs.Counter
	outBytes          *obs.Counter
	compressErrors    *obs.Counter
	decompressErrors  *obs.Counter
	decodeRejects     map[string]*obs.Counter
}

// Name implements Codec.
func (ic *instrumentedCodec) Name() string { return ic.codec.Name() }

// Compress implements Codec, timing the underlying call.
func (ic *instrumentedCodec) Compress(f *field.Field, eb float64) ([]byte, error) {
	start := time.Now()
	stream, err := ic.codec.Compress(f, eb)
	ic.compressSeconds.ObserveSince(start)
	if err != nil {
		ic.compressErrors.Inc()
		return nil, err
	}
	ic.inBytes.Add(int64(f.SizeBytes()))
	ic.outBytes.Add(int64(len(stream)))
	return stream, nil
}

// Decompress implements Codec, timing the underlying call.
func (ic *instrumentedCodec) Decompress(stream []byte) (*field.Field, error) {
	start := time.Now()
	f, err := ic.codec.Decompress(stream)
	ic.decompressSeconds.ObserveSince(start)
	return ic.finishDecompress(f, err)
}

// DecompressLimited implements LimitedDecoder, forwarding the caller's
// limits to the wrapped codec.
func (ic *instrumentedCodec) DecompressLimited(stream []byte, lim safedec.Limits) (*field.Field, error) {
	start := time.Now()
	f, err := DecompressLimited(ic.codec, stream, lim)
	ic.decompressSeconds.ObserveSince(start)
	return ic.finishDecompress(f, err)
}

func (ic *instrumentedCodec) finishDecompress(f *field.Field, err error) (*field.Field, error) {
	if err != nil {
		ic.decompressErrors.Inc()
		if c, ok := ic.decodeRejects[safedec.Classify(err)]; ok {
			c.Inc()
		}
		return nil, err
	}
	return f, nil
}
