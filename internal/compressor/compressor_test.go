package compressor

import (
	"math"
	"testing"
	"testing/quick"

	"carol/internal/field"
)

func TestRatio(t *testing.T) {
	f := field.New("r", 100, 1, 1) // 400 bytes
	if got := Ratio(f, make([]byte, 40)); got != 10 {
		t.Fatalf("Ratio = %g", got)
	}
	if Ratio(f, nil) != 0 {
		t.Fatal("empty stream ratio should be 0")
	}
}

func TestAbsBound(t *testing.T) {
	f := field.FromData("a", 4, 1, 1, []float32{0, 5, 10, 2})
	if got := AbsBound(f, 0.01); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("AbsBound = %g", got)
	}
	// Zero-range field falls back to the raw value.
	z := field.New("z", 4, 1, 1)
	if got := AbsBound(z, 0.01); got != 0.01 {
		t.Fatalf("zero-range AbsBound = %g", got)
	}
}

func TestCheckBound(t *testing.T) {
	f := field.FromData("f", 3, 1, 1, []float32{1, 2, 3})
	g := field.FromData("g", 3, 1, 1, []float32{1.05, 2, 2.95})
	if err := CheckBound(f, g, 0.1); err != nil {
		t.Fatalf("within bound rejected: %v", err)
	}
	if err := CheckBound(f, g, 0.01); err == nil {
		t.Fatal("violation accepted")
	}
}

func TestMaxAbsErrAndPSNR(t *testing.T) {
	f := field.FromData("f", 4, 1, 1, []float32{0, 1, 2, 3})
	g := f.Clone()
	if MaxAbsErr(f, g) != 0 {
		t.Fatal("identical fields have nonzero error")
	}
	if !math.IsInf(PSNR(f, g), 1) {
		t.Fatal("identical fields should have infinite PSNR")
	}
	g.Data[2] += 0.5
	if got := MaxAbsErr(f, g); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("MaxAbsErr = %g", got)
	}
	p := PSNR(f, g)
	if math.IsInf(p, 0) || p < 10 || p > 40 {
		t.Fatalf("PSNR = %g", p)
	}
	// A worse reconstruction has lower PSNR.
	h := f.Clone()
	h.Data[2] += 1.5
	if PSNR(f, h) >= p {
		t.Fatal("PSNR not monotone in error")
	}
}

func TestNRMSE(t *testing.T) {
	f := field.FromData("f", 4, 1, 1, []float32{0, 2, 4, 8}) // range 8
	g := f.Clone()
	if NRMSE(f, g) != 0 {
		t.Fatal("identical fields NRMSE != 0")
	}
	for i := range g.Data {
		g.Data[i] += 0.8 // uniform offset: RMSE 0.8, range 8 -> 0.1
	}
	if got := NRMSE(f, g); math.Abs(got-0.1) > 1e-6 {
		t.Fatalf("NRMSE = %g", got)
	}
}

func TestPearson(t *testing.T) {
	f := field.FromData("f", 5, 1, 1, []float32{1, 2, 3, 4, 5})
	g := f.Clone()
	if got := Pearson(f, g); math.Abs(got-1) > 1e-9 {
		t.Fatalf("identical Pearson = %g", got)
	}
	// Perfect anti-correlation.
	h := field.FromData("h", 5, 1, 1, []float32{5, 4, 3, 2, 1})
	if got := Pearson(f, h); math.Abs(got+1) > 1e-9 {
		t.Fatalf("anti Pearson = %g", got)
	}
	// Constant reconstruction has zero variance.
	c := field.New("c", 5, 1, 1)
	if got := Pearson(f, c); got != 0 {
		t.Fatalf("constant Pearson = %g", got)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Magic: MagicSZ3, Nx: 12, Ny: 34, Nz: 5, EB: 2.5e-3}
	buf := AppendHeader([]byte{0xEE}, h) // with a prefix to keep honest
	got, rest, err := ParseHeader(buf[1:], MagicSZ3)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header round trip: %+v != %+v", got, h)
	}
	if len(rest) != 0 {
		t.Fatalf("unexpected payload remainder: %d", len(rest))
	}
}

func TestParseHeaderErrors(t *testing.T) {
	good := AppendHeader(nil, Header{Magic: MagicZFP, Nx: 2, Ny: 2, Nz: 2, EB: 0.1})
	if _, _, err := ParseHeader(good[:5], MagicZFP); err == nil {
		t.Error("short header accepted")
	}
	if _, _, err := ParseHeader(good, MagicSZx); err == nil {
		t.Error("wrong magic accepted")
	}
	badDims := AppendHeader(nil, Header{Magic: MagicZFP, Nx: 0, Ny: 2, Nz: 2, EB: 0.1})
	if _, _, err := ParseHeader(badDims, MagicZFP); err == nil {
		t.Error("zero dim accepted")
	}
	badEB := AppendHeader(nil, Header{Magic: MagicZFP, Nx: 2, Ny: 2, Nz: 2, EB: -1})
	if _, _, err := ParseHeader(badEB, MagicZFP); err == nil {
		t.Error("negative eb accepted")
	}
	huge := AppendHeader(nil, Header{Magic: MagicZFP, Nx: 1 << 20, Ny: 1 << 20, Nz: 1 << 20, EB: 0.1})
	if _, _, err := ParseHeader(huge, MagicZFP); err == nil {
		t.Error("oversized grid accepted")
	}
}

func TestValidateArgs(t *testing.T) {
	f := field.FromData("v", 2, 1, 1, []float32{1, 2})
	if err := ValidateArgs(f, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := ValidateArgs(nil, 0.1); err == nil {
		t.Error("nil field accepted")
	}
	for _, eb := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := ValidateArgs(f, eb); err == nil {
			t.Errorf("eb=%v accepted", eb)
		}
	}
	inf := field.FromData("i", 2, 1, 1, []float32{1, float32(math.Inf(-1))})
	if err := ValidateArgs(inf, 0.1); err == nil {
		t.Error("infinite sample accepted")
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	fn := func(nx, ny, nz uint16, eb float64) bool {
		h := Header{
			Magic: MagicSPERR,
			Nx:    int(nx%1000) + 1, Ny: int(ny%1000) + 1, Nz: int(nz%100) + 1,
			EB: math.Abs(eb) + 1e-9,
		}
		if math.IsInf(h.EB, 0) || math.IsNaN(h.EB) {
			return true
		}
		got, _, err := ParseHeader(AppendHeader(nil, h), MagicSPERR)
		return err == nil && got == h
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
