// Package compressor defines the error-bounded lossy compressor abstraction
// shared by the four compressor implementations (SZx, ZFP, SZ3, SPERR), the
// SECRE surrogate estimators, and the FXRZ/CAROL frameworks, plus the stream
// header and measurement helpers they all use.
package compressor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"carol/internal/field"
	"carol/internal/safedec"
)

// Codec is an error-bounded lossy compressor. Compress must guarantee that
// every reconstructed sample differs from the original by at most eb
// (absolute error bound).
type Codec interface {
	// Name returns the compressor's short identifier ("szx", "zfp", ...).
	Name() string
	// Compress encodes f under absolute error bound eb > 0.
	Compress(f *field.Field, eb float64) ([]byte, error)
	// Decompress reconstructs the field encoded in stream.
	Decompress(stream []byte) (*field.Field, error)
}

// Estimator predicts the compression ratio a Codec would achieve without
// producing (or retaining) a full compressed stream. SECRE surrogates
// implement this.
type Estimator interface {
	// Name returns the underlying compressor's identifier.
	Name() string
	// EstimateRatio predicts the compression ratio of the matching Codec on
	// f at absolute error bound eb.
	EstimateRatio(f *field.Field, eb float64) (float64, error)
}

// ErrBadStream is returned by Decompress implementations on malformed input.
// It belongs to the safedec taxonomy — errors.Is(ErrBadStream,
// safedec.ErrCorrupt) is true — so every decoder error wrapped with %w is
// classifiable by safedec.Classify without touching the wrap sites.
var ErrBadStream error = badStreamError{}

type badStreamError struct{}

func (badStreamError) Error() string { return "compressor: malformed stream" }

func (badStreamError) Is(target error) bool { return target == safedec.ErrCorrupt }

// LimitedDecoder is implemented by codecs whose decoder enforces
// safedec.Limits. All codecs in this repository implement it; the interface
// exists so wrappers (Instrument) and generic callers can thread limits
// without widening the Codec interface.
type LimitedDecoder interface {
	// DecompressLimited reconstructs the field encoded in stream, refusing
	// (with an error wrapping safedec.ErrLimit) any decode whose
	// header-claimed sizes exceed lim.
	DecompressLimited(stream []byte, lim safedec.Limits) (*field.Field, error)
}

// DecompressLimited decodes stream with c under lim when c supports limits
// (directly or through a wrapper), falling back to plain Decompress — whose
// own allocations are still bounded by the safedec defaults — otherwise.
func DecompressLimited(c Codec, stream []byte, lim safedec.Limits) (*field.Field, error) {
	if ld, ok := c.(LimitedDecoder); ok {
		return ld.DecompressLimited(stream, lim)
	}
	return c.Decompress(stream)
}

// Ratio returns the compression ratio achieved by stream on f
// (original bytes / compressed bytes).
func Ratio(f *field.Field, stream []byte) float64 {
	if len(stream) == 0 {
		return 0
	}
	return float64(f.SizeBytes()) / float64(len(stream))
}

// AbsBound converts a value-range-relative error bound to an absolute one
// for f. A rel of 1e-3 means 0.1% of the field's value range. Fields with
// zero range use rel directly so eb stays positive.
func AbsBound(f *field.Field, rel float64) float64 {
	r := f.ValueRange()
	if r <= 0 {
		return rel
	}
	return rel * r
}

// CheckBound verifies that g reconstructs f within eb at every sample and
// returns the first violation found. The slack term covers the half-ulp
// rounding incurred by storing reconstructions as float32 plus a small
// relative margin for boundary-exact quantization.
func CheckBound(f, g *field.Field, eb float64) error {
	var maxAbs float64
	for _, v := range f.Data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	slack := eb*1e-5 + maxAbs*math.Pow(2, -22)
	return f.Equalish(g, eb+slack)
}

// MaxAbsErr returns the largest absolute reconstruction error.
func MaxAbsErr(f, g *field.Field) float64 {
	var m float64
	for i := range f.Data {
		d := math.Abs(float64(f.Data[i]) - float64(g.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// NRMSE returns the root-mean-square reconstruction error normalized by
// the original field's value range — the headline fidelity metric of
// SDRBench-style evaluations.
func NRMSE(f, g *field.Field) float64 {
	var mse float64
	for i := range f.Data {
		d := float64(f.Data[i]) - float64(g.Data[i])
		mse += d * d
	}
	mse /= float64(len(f.Data))
	r := f.ValueRange()
	if r == 0 { //carol:allow floateq constant field has exactly zero range
		if mse == 0 { //carol:allow floateq zero error on a constant field is exact
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(mse) / r
}

// Pearson returns the Pearson correlation coefficient between original and
// reconstructed samples (1 for a perfect linear relationship).
func Pearson(f, g *field.Field) float64 {
	n := float64(len(f.Data))
	var sf, sg, sff, sgg, sfg float64
	for i := range f.Data {
		a, b := float64(f.Data[i]), float64(g.Data[i])
		sf += a
		sg += b
		sff += a * a
		sgg += b * b
		sfg += a * b
	}
	cov := sfg/n - (sf/n)*(sg/n)
	vf := sff/n - (sf/n)*(sf/n)
	vg := sgg/n - (sg/n)*(sg/n)
	if vf <= 0 || vg <= 0 {
		if vf == vg { //carol:allow floateq both-degenerate-variance case check
			return 1 // both constant (and equal up to the bound)
		}
		return 0
	}
	return cov / math.Sqrt(vf*vg)
}

// PSNR returns the peak signal-to-noise ratio of the reconstruction in dB.
func PSNR(f, g *field.Field) float64 {
	var mse float64
	for i := range f.Data {
		d := float64(f.Data[i]) - float64(g.Data[i])
		mse += d * d
	}
	mse /= float64(len(f.Data))
	if mse == 0 { //carol:allow floateq lossless reconstruction yields exactly zero MSE
		return math.Inf(1)
	}
	r := f.ValueRange()
	if r == 0 { //carol:allow floateq constant field has exactly zero range
		return math.Inf(1)
	}
	return 20*math.Log10(r) - 10*math.Log10(mse)
}

// Header is the common stream prefix every codec writes: a magic byte
// identifying the codec, grid dimensions, and the absolute error bound
// used. The encoded form carries an FNV-1a checksum so that header
// corruption (bit rot, truncated transfers) is detected before the decoder
// trusts the dimensions for allocations.
type Header struct {
	Magic byte
	Nx    int
	Ny    int
	Nz    int
	EB    float64
}

// headerLen is the encoded size of Header (fields + checksum).
const headerLen = 1 + 3*4 + 8 + 4

// headerSum computes the FNV-1a checksum of the header field bytes.
func headerSum(buf []byte) uint32 {
	var h uint32 = 2166136261
	for _, b := range buf {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// AppendHeader serializes h onto dst.
func AppendHeader(dst []byte, h Header) []byte {
	var buf [headerLen]byte
	buf[0] = h.Magic
	binary.LittleEndian.PutUint32(buf[1:], uint32(h.Nx))
	binary.LittleEndian.PutUint32(buf[5:], uint32(h.Ny))
	binary.LittleEndian.PutUint32(buf[9:], uint32(h.Nz))
	binary.LittleEndian.PutUint64(buf[13:], math.Float64bits(h.EB))
	binary.LittleEndian.PutUint32(buf[21:], headerSum(buf[:21]))
	return append(dst, buf[:]...)
}

// ParseHeader decodes a Header and returns the remaining payload, under
// the default safedec limits.
func ParseHeader(stream []byte, wantMagic byte) (Header, []byte, error) {
	return ParseHeaderLimited(stream, wantMagic, safedec.Default())
}

// ParseHeaderLimited decodes a Header and returns the remaining payload.
// The header-claimed dimensions are validated against lim before any
// caller allocates reconstruction buffers from them.
func ParseHeaderLimited(stream []byte, wantMagic byte, lim safedec.Limits) (Header, []byte, error) {
	if len(stream) < headerLen {
		return Header{}, nil, fmt.Errorf("%w: short header: %w", ErrBadStream, safedec.ErrTruncated)
	}
	if got := binary.LittleEndian.Uint32(stream[21:]); got != headerSum(stream[:21]) {
		return Header{}, nil, fmt.Errorf("%w: header checksum mismatch", ErrBadStream)
	}
	h := Header{
		Magic: stream[0],
		Nx:    int(binary.LittleEndian.Uint32(stream[1:])),
		Ny:    int(binary.LittleEndian.Uint32(stream[5:])),
		Nz:    int(binary.LittleEndian.Uint32(stream[9:])),
		EB:    math.Float64frombits(binary.LittleEndian.Uint64(stream[13:])),
	}
	if h.Magic != wantMagic {
		return Header{}, nil, fmt.Errorf("%w: magic %#x, want %#x", ErrBadStream, h.Magic, wantMagic)
	}
	if _, err := lim.Elements(h.Nx, h.Ny, h.Nz); err != nil {
		return Header{}, nil, fmt.Errorf("compressor: header dims: %w", err)
	}
	if !(h.EB > 0) || math.IsInf(h.EB, 0) {
		return Header{}, nil, fmt.Errorf("%w: bad error bound %g", ErrBadStream, h.EB)
	}
	return h, stream[headerLen:], nil
}

// Magic bytes for the four codecs.
const (
	MagicSZx   byte = 0xA1
	MagicZFP   byte = 0xA2
	MagicSZ3   byte = 0xA3
	MagicSPERR byte = 0xA4
)

// ValidateArgs performs the shared argument checks for Compress.
func ValidateArgs(f *field.Field, eb float64) error {
	if f == nil || f.Len() == 0 {
		return errors.New("compressor: empty field")
	}
	if !(eb > 0) || math.IsInf(eb, 0) || math.IsNaN(eb) {
		return fmt.Errorf("compressor: invalid error bound %g", eb)
	}
	for _, v := range f.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return errors.New("compressor: field contains non-finite samples")
		}
	}
	return nil
}
