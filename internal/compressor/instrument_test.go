package compressor

import (
	"errors"
	"testing"

	"carol/internal/field"
	"carol/internal/obs"
)

// fakeCodec round-trips a header-only stream and can be forced to fail.
type fakeCodec struct {
	fail bool
}

func (fakeCodec) Name() string { return "fake" }

func (c fakeCodec) Compress(f *field.Field, eb float64) ([]byte, error) {
	if c.fail {
		return nil, errors.New("boom")
	}
	return AppendHeader(nil, Header{Magic: MagicSZx, Nx: f.Nx, Ny: f.Ny, Nz: f.Nz, EB: eb}), nil
}

func (c fakeCodec) Decompress(stream []byte) (*field.Field, error) {
	if c.fail {
		return nil, errors.New("boom")
	}
	h, _, err := ParseHeader(stream, MagicSZx)
	if err != nil {
		return nil, err
	}
	return field.New("fake", h.Nx, h.Ny, h.Nz), nil
}

func TestInstrumentRecordsMetrics(t *testing.T) {
	f := field.New("t", 8, 1, 1)
	c := Instrument(fakeCodec{})
	if c.Name() != "fake" {
		t.Fatalf("Name = %q", c.Name())
	}

	sec := obs.Default.Histogram(obs.Label("codec_compress_seconds", "codec", "fake"), obs.LatencyBuckets())
	outBytes := obs.Default.Counter(obs.Label("codec_compress_out_bytes_total", "codec", "fake"))
	before, bytesBefore := sec.Count(), outBytes.Value()

	stream, err := c.Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(stream); err != nil {
		t.Fatal(err)
	}
	if got := sec.Count(); got != before+1 {
		t.Fatalf("compress histogram count %d, want %d", got, before+1)
	}
	if got := outBytes.Value(); got != bytesBefore+int64(len(stream)) {
		t.Fatalf("out bytes %d, want %d", got, bytesBefore+int64(len(stream)))
	}
}

func TestInstrumentCountsErrors(t *testing.T) {
	f := field.New("t", 8, 1, 1)
	c := Instrument(fakeCodec{fail: true})
	errs := obs.Default.Counter(obs.Label("codec_errors_total", "codec", "fake", "op", "compress"))
	before := errs.Value()
	if _, err := c.Compress(f, 1e-3); err == nil {
		t.Fatal("expected error")
	}
	if got := errs.Value(); got != before+1 {
		t.Fatalf("error counter %d, want %d", got, before+1)
	}
}

func TestInstrumentIdempotent(t *testing.T) {
	c := Instrument(fakeCodec{})
	if Instrument(c) != c {
		t.Fatal("double instrumentation wrapped again")
	}
}
