package szx

import (
	"math"
	"testing"
	"testing/quick"

	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/xrand"
)

func smoothField(nx, ny, nz int, seed uint64) *field.Field {
	n := xrand.NewNoise(seed)
	f := field.New("smooth", nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				f.Set(x, y, z, float32(n.FBm(float64(x)/16, float64(y)/16, float64(z)/16, 4, 0.5)))
			}
		}
	}
	return f
}

func roughField(n int, seed uint64) *field.Field {
	rng := xrand.New(seed)
	f := field.New("rough", n, 1, 1)
	for i := range f.Data {
		f.Data[i] = float32(rng.Norm())
	}
	return f
}

func TestRoundTripBoundSmooth(t *testing.T) {
	c := New()
	f := smoothField(32, 32, 16, 1)
	for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
		eb := compressor.AbsBound(f, rel)
		stream, err := c.Compress(f, eb)
		if err != nil {
			t.Fatalf("rel=%g: %v", rel, err)
		}
		g, err := c.Decompress(stream)
		if err != nil {
			t.Fatalf("rel=%g: %v", rel, err)
		}
		if err := compressor.CheckBound(f, g, eb); err != nil {
			t.Fatalf("rel=%g: bound violated: %v", rel, err)
		}
	}
}

func TestRoundTripBoundRough(t *testing.T) {
	c := New()
	f := roughField(5000, 2)
	eb := compressor.AbsBound(f, 1e-3)
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, eb); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneRatio(t *testing.T) {
	c := New()
	f := smoothField(64, 64, 1, 3)
	var prev float64
	for _, rel := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
		stream, err := c.Compress(f, compressor.AbsBound(f, rel))
		if err != nil {
			t.Fatal(err)
		}
		ratio := compressor.Ratio(f, stream)
		if ratio < prev {
			t.Fatalf("ratio decreased when eb grew: %g -> %g at rel=%g", prev, ratio, rel)
		}
		prev = ratio
	}
	if prev < 2 {
		t.Fatalf("loose-bound ratio only %g, expected meaningful compression", prev)
	}
}

func TestConstantField(t *testing.T) {
	c := New()
	f := field.New("const", 1000, 1, 1)
	for i := range f.Data {
		f.Data[i] = 3.25
	}
	stream, err := c.Compress(f, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := compressor.Ratio(f, stream); ratio < 50 {
		t.Fatalf("constant field ratio = %g, want >= 50", ratio)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, 0.01); err != nil {
		t.Fatal(err)
	}
}

func TestTinyErrorBoundFallsBackToRaw(t *testing.T) {
	c := New()
	f := roughField(300, 4)
	eb := 1e-12 // far below float32 resolution of the data
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Raw fallback is exact.
	if err := f.Equalish(g, 0); err != nil {
		t.Fatalf("raw fallback not lossless: %v", err)
	}
}

func TestShortTailBlock(t *testing.T) {
	c := New()
	f := roughField(BlockSize+7, 5)
	eb := compressor.AbsBound(f, 1e-2)
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, eb); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSampleField(t *testing.T) {
	c := New()
	f := field.FromData("one", 1, 1, 1, []float32{42})
	stream, err := c.Compress(f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(g.Data[0])-42) > 0.5 {
		t.Fatalf("got %v", g.Data[0])
	}
}

func TestInvalidArgs(t *testing.T) {
	c := New()
	f := smoothField(8, 8, 1, 6)
	for _, eb := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := c.Compress(f, eb); err == nil {
			t.Errorf("eb=%v accepted", eb)
		}
	}
	nan := f.Clone()
	nan.Data[3] = float32(math.NaN())
	if _, err := c.Compress(nan, 0.1); err == nil {
		t.Error("NaN field accepted")
	}
}

func TestDecompressErrors(t *testing.T) {
	c := New()
	cases := [][]byte{nil, {1, 2, 3}, make([]byte, 21)}
	for i, s := range cases {
		if _, err := c.Decompress(s); err == nil {
			t.Errorf("case %d: corrupt stream accepted", i)
		}
	}
	// Wrong magic.
	f := smoothField(8, 8, 1, 7)
	stream, err := c.Compress(f, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), stream...)
	bad[0] = 0xFF
	if _, err := c.Decompress(bad); err == nil {
		t.Error("wrong magic accepted")
	}
	// Truncated payload.
	if _, err := c.Decompress(stream[:len(stream)-4]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestEstimateBlockBitsMatchesEncoder(t *testing.T) {
	f := smoothField(64, 32, 1, 8)
	eb := compressor.AbsBound(f, 1e-3)
	c := New()
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	var estBits uint64
	for start := 0; start < len(f.Data); start += BlockSize {
		end := start + BlockSize
		if end > len(f.Data) {
			end = len(f.Data)
		}
		estBits += EstimateBlockBits(f.Data[start:end], eb)
	}
	// Stream = header(25) + bitlen(8) + payload bytes.
	payloadBytes := len(stream) - 25 - 8
	wantBytes := int((estBits + 7) / 8)
	if diff := payloadBytes - wantBytes; diff < -8 || diff > 8 {
		t.Fatalf("estimator %d bytes vs encoder %d bytes", wantBytes, payloadBytes)
	}
}

func TestSmootherDataCompressesBetter(t *testing.T) {
	c := New()
	smooth := smoothField(64, 64, 1, 9)
	rough := roughField(64*64, 10)
	// Use the same absolute bound scale for a fair comparison.
	ebS := compressor.AbsBound(smooth, 1e-2)
	ebR := compressor.AbsBound(rough, 1e-2)
	ss, err := c.Compress(smooth, ebS)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := c.Compress(rough, ebR)
	if err != nil {
		t.Fatal(err)
	}
	if compressor.Ratio(smooth, ss) <= compressor.Ratio(rough, sr) {
		t.Fatalf("smooth ratio %g <= rough ratio %g",
			compressor.Ratio(smooth, ss), compressor.Ratio(rough, sr))
	}
}

func TestQuickRoundTripBound(t *testing.T) {
	c := New()
	f := func(seed uint64, n16 uint16, ebExp uint8) bool {
		rng := xrand.New(seed)
		n := int(n16%2000) + 1
		fl := field.New("q", n, 1, 1)
		for i := range fl.Data {
			fl.Data[i] = float32(rng.Range(-100, 100))
		}
		eb := math.Pow(10, -float64(ebExp%5)) // 1 .. 1e-4
		stream, err := c.Compress(fl, eb)
		if err != nil {
			return false
		}
		g, err := c.Decompress(stream)
		if err != nil {
			return false
		}
		return compressor.CheckBound(fl, g, eb) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	c := New()
	f := smoothField(64, 64, 64, 1)
	eb := compressor.AbsBound(f, 1e-3)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(f, eb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	c := New()
	f := smoothField(64, 64, 64, 1)
	eb := compressor.AbsBound(f, 1e-3)
	stream, err := c.Compress(f, eb)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}
