// Package szx reimplements the SZx ultra-fast error-bounded lossy compressor
// (Yu et al., HPDC'22) in pure Go. SZx is the "delta-based" compressor of
// the CAROL evaluation: it splits the input into 1D blocks of 128 samples
// and encodes each block either as a constant (when the whole block fits
// within twice the error bound) or with a per-block fixed bit-width encoding
// of the samples' offsets from the block minimum — the byte/bit truncation
// of IEEE-754 payloads that gives SZx its speed.
//
// The encoded stream is self-describing: a common header followed by
// bit-packed blocks.
package szx

import (
	"fmt"
	"math"

	"carol/internal/bitstream"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/safedec"
)

// BlockSize is the number of consecutive samples per block (the value the
// SZx paper and the CAROL paper both use).
const BlockSize = 128

// rawWidth is the sentinel bit-width marking an uncompressed block.
const rawWidth = 63

// Codec is the SZx compressor. The zero value is ready to use.
type Codec struct{}

// New returns an SZx codec.
func New() *Codec { return &Codec{} }

// Name implements compressor.Codec.
func (*Codec) Name() string { return "szx" }

var _ compressor.Codec = (*Codec)(nil)

// Compress implements compressor.Codec.
func (*Codec) Compress(f *field.Field, eb float64) ([]byte, error) {
	if err := compressor.ValidateArgs(f, eb); err != nil {
		return nil, err
	}
	w := bitstream.NewWriter(f.SizeBytes() / 4)
	for start := 0; start < len(f.Data); start += BlockSize {
		end := start + BlockSize
		if end > len(f.Data) {
			end = len(f.Data)
		}
		encodeBlock(w, f.Data[start:end], eb)
	}
	out := compressor.AppendHeader(nil, compressor.Header{
		Magic: compressor.MagicSZx, Nx: f.Nx, Ny: f.Ny, Nz: f.Nz, EB: eb,
	})
	// Bit length so the decoder can cap its reader.
	bits := w.BitLen()
	var lenBuf [8]byte
	for i := 0; i < 8; i++ {
		lenBuf[i] = byte(bits >> (56 - 8*i))
	}
	out = append(out, lenBuf[:]...)
	return append(out, w.Bytes()...), nil
}

// encodeBlock writes one block.
//
// Layout: 1 flag bit; constant block: 32-bit float32 payload; otherwise
// 6-bit width, 32-bit float32 block minimum, then width bits per sample.
func encodeBlock(w *bitstream.Writer, block []float32, eb float64) {
	lo, hi := block[0], block[0]
	for _, v := range block[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// Constant-block attempt: representative value must land every sample
	// within eb even after float32 rounding.
	mid := float32((float64(lo) + float64(hi)) / 2)
	if math.Abs(float64(hi)-float64(mid)) <= eb && math.Abs(float64(lo)-float64(mid)) <= eb {
		w.WriteBit(1)
		w.WriteBits(uint64(math.Float32bits(mid)), 32)
		return
	}
	w.WriteBit(0)
	// Fixed-width offset encoding from the block minimum.
	rng := float64(hi) - float64(lo)
	levels := math.Floor(rng/(2*eb)) + 1
	width := uint(math.Ceil(math.Log2(levels)))
	if width == 0 {
		width = 1
	}
	if width >= 32 {
		// Error bound finer than float32 resolution: store samples raw.
		w.WriteBits(rawWidth, 6)
		for _, v := range block {
			w.WriteBits(uint64(math.Float32bits(v)), 32)
		}
		return
	}
	w.WriteBits(uint64(width), 6)
	w.WriteBits(uint64(math.Float32bits(lo)), 32)
	maxQ := uint64(1)<<width - 1
	for _, v := range block {
		q := uint64(math.Floor((float64(v) - float64(lo)) / (2 * eb)))
		if q > maxQ {
			q = maxQ
		}
		w.WriteBits(q, width)
	}
}

// Decompress implements compressor.Codec (default safedec limits).
func (c *Codec) Decompress(stream []byte) (*field.Field, error) {
	return c.DecompressLimited(stream, safedec.Default())
}

// DecompressLimited implements compressor.LimitedDecoder.
func (*Codec) DecompressLimited(stream []byte, lim safedec.Limits) (*field.Field, error) {
	h, rest, err := compressor.ParseHeaderLimited(stream, compressor.MagicSZx, lim)
	if err != nil {
		return nil, err
	}
	sr := safedec.NewReader(rest)
	bits, err := sr.BE64("szx bit length")
	if err != nil {
		return nil, fmt.Errorf("%w: missing bit length: %w", compressor.ErrBadStream, err)
	}
	payload := sr.Rest()
	if bits > uint64(len(payload))*8 {
		return nil, fmt.Errorf("%w: bit length %d exceeds payload", compressor.ErrBadStream, bits)
	}
	r := bitstream.NewReader(payload, bits)
	f := field.New("szx", h.Nx, h.Ny, h.Nz)
	for start := 0; start < len(f.Data); start += BlockSize {
		end := start + BlockSize
		if end > len(f.Data) {
			end = len(f.Data)
		}
		if err := decodeBlock(r, f.Data[start:end], h.EB); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func decodeBlock(r *bitstream.Reader, block []float32, eb float64) error {
	flag, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("%w: block flag: %w", compressor.ErrBadStream, err)
	}
	if flag == 1 {
		raw, err := r.ReadBits(32)
		if err != nil {
			return fmt.Errorf("%w: constant payload: %w", compressor.ErrBadStream, err)
		}
		c := math.Float32frombits(uint32(raw))
		for i := range block {
			block[i] = c
		}
		return nil
	}
	w64, err := r.ReadBits(6)
	if err != nil {
		return fmt.Errorf("%w: block width: %w", compressor.ErrBadStream, err)
	}
	width := uint(w64)
	if width == rawWidth {
		for i := range block {
			raw, err := r.ReadBits(32)
			if err != nil {
				return fmt.Errorf("%w: raw sample: %w", compressor.ErrBadStream, err)
			}
			block[i] = math.Float32frombits(uint32(raw))
		}
		return nil
	}
	if width == 0 || width >= 32 {
		return fmt.Errorf("%w: invalid block width %d", compressor.ErrBadStream, width)
	}
	loBits, err := r.ReadBits(32)
	if err != nil {
		return fmt.Errorf("%w: block min: %w", compressor.ErrBadStream, err)
	}
	lo := float64(math.Float32frombits(uint32(loBits)))
	for i := range block {
		q, err := r.ReadBits(width)
		if err != nil {
			return fmt.Errorf("%w: sample code: %w", compressor.ErrBadStream, err)
		}
		block[i] = float32(lo + (float64(q)+0.5)*2*eb)
	}
	return nil
}

// EstimateBlockBits returns the exact number of stream bits encodeBlock
// would produce for the given block, without writing anything. The SECRE
// SZx surrogate runs this on sampled blocks to extrapolate the ratio.
func EstimateBlockBits(block []float32, eb float64) uint64 {
	lo, hi := block[0], block[0]
	for _, v := range block[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	mid := float32((float64(lo) + float64(hi)) / 2)
	if math.Abs(float64(hi)-float64(mid)) <= eb && math.Abs(float64(lo)-float64(mid)) <= eb {
		return 1 + 32
	}
	rng := float64(hi) - float64(lo)
	levels := math.Floor(rng/(2*eb)) + 1
	width := uint64(math.Ceil(math.Log2(levels)))
	if width == 0 {
		width = 1
	}
	if width >= 32 {
		return 1 + 6 + 32*uint64(len(block))
	}
	return 1 + 6 + 32 + width*uint64(len(block))
}
