package szx

import (
	"errors"
	"testing"

	"carol/internal/compressor"
	"carol/internal/safedec"
)

// TestBitLengthBeyondPayloadRejected is the regression test for the missing
// bit-length validation: the prefix used to be trusted, so a tampered
// length claiming more bits than the payload holds sailed into the block
// loop instead of being rejected at the door.
func TestBitLengthBeyondPayloadRejected(t *testing.T) {
	f := compressor.Header{Magic: compressor.MagicSZx, Nx: 8, Ny: 1, Nz: 1, EB: 1e-3}
	stream := compressor.AppendHeader(nil, f)
	// Bit length claims 2^40 bits; zero payload bytes follow.
	stream = append(stream, 0, 0, 0x01, 0, 0, 0, 0, 0)
	_, err := New().Decompress(stream)
	if err == nil {
		t.Fatal("oversized bit length accepted")
	}
	if !errors.Is(err, compressor.ErrBadStream) {
		t.Fatalf("err = %v, want ErrBadStream", err)
	}
}

// TestDecompressLimited checks limit threading on the szx path.
func TestDecompressLimited(t *testing.T) {
	f := compressor.Header{Magic: compressor.MagicSZx, Nx: 1 << 10, Ny: 1 << 10, Nz: 4, EB: 1e-3}
	stream := compressor.AppendHeader(nil, f)
	_, err := New().DecompressLimited(stream, safedec.Limits{MaxElements: 1 << 20})
	if !errors.Is(err, safedec.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}
