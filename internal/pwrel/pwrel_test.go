package pwrel

import (
	"math"
	"testing"

	"carol/internal/codecs"
	"carol/internal/field"
	"carol/internal/xrand"
)

// dynamicField spans many decades with mixed signs and exact zeros — the
// regime point-wise relative bounds exist for.
func dynamicField(n int, seed uint64) *field.Field {
	rng := xrand.New(seed)
	f := field.New("dyn", n, 1, 1)
	for i := range f.Data {
		switch {
		case rng.Float64() < 0.05:
			f.Data[i] = 0
		default:
			mag := math.Pow(10, rng.Range(-6, 6))
			if rng.Float64() < 0.5 {
				mag = -mag
			}
			f.Data[i] = float32(mag)
		}
	}
	return f
}

func TestPointwiseBoundAllCodecs(t *testing.T) {
	f := dynamicField(4000, 1)
	for _, name := range codecs.ExtendedNames {
		codec, err := codecs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range []float64{1e-1, 1e-2, 1e-3} {
			stream, err := Compress(codec, f, rel)
			if err != nil {
				t.Fatalf("%s rel %g: %v", name, rel, err)
			}
			g, err := Decompress(codec, stream)
			if err != nil {
				t.Fatalf("%s rel %g: %v", name, rel, err)
			}
			if err := CheckPointwise(f, g, rel); err != nil {
				t.Fatalf("%s rel %g: %v", name, rel, err)
			}
		}
	}
}

func TestSignsAndZerosExact(t *testing.T) {
	f := field.FromData("sz", 6, 1, 1, []float32{0, -1.5, 2.5, 0, -1e-8 * 0, 3e5})
	codec, err := codecs.ByName("szx")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Compress(codec, f, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(codec, stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if f.Data[i] == 0 && g.Data[i] != 0 {
			t.Fatalf("zero at %d became %g", i, g.Data[i])
		}
		if (f.Data[i] < 0) != (g.Data[i] < 0) {
			t.Fatalf("sign flip at %d: %g -> %g", i, f.Data[i], g.Data[i])
		}
	}
}

func TestHugeDynamicRangeBeatsAbsolute(t *testing.T) {
	// The point of PW_REL: with 12 decades of dynamic range, an absolute
	// bound tight enough for the small values would barely compress; the
	// relative mode compresses well AND protects small values.
	f := dynamicField(8000, 2)
	codec, err := codecs.ByName("szp")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Compress(codec, f, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(f.SizeBytes()) / float64(len(stream)); ratio < 1.2 {
		t.Fatalf("pwrel ratio only %g", ratio)
	}
	g, err := Decompress(codec, stream)
	if err != nil {
		t.Fatal(err)
	}
	// Small values must keep their relative accuracy.
	for i, v := range f.Data {
		if v != 0 && math.Abs(float64(v)) < 1e-3 {
			relErr := math.Abs(float64(g.Data[i])-float64(v)) / math.Abs(float64(v))
			if relErr > 1.1e-2 {
				t.Fatalf("small value %g lost accuracy: rel err %g", v, relErr)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	codec, err := codecs.ByName("szx")
	if err != nil {
		t.Fatal(err)
	}
	f := dynamicField(100, 3)
	for _, rel := range []float64{0, -1, 1, 2} {
		if _, err := Compress(codec, f, rel); err == nil {
			t.Errorf("rel %g accepted", rel)
		}
	}
	if _, err := Decompress(codec, nil); err == nil {
		t.Error("nil stream accepted")
	}
	if _, err := Decompress(codec, []byte{255, 255, 255, 255, 0}); err == nil {
		t.Error("bad bitmap length accepted")
	}
}
