// Package pwrel adds point-wise relative error bounds on top of any
// absolute-error codec, via the standard logarithmic-transform technique
// the SZ family uses for its PW_REL mode: compressing log|v| under an
// absolute bound of log(1+rel) guarantees |v' - v| <= rel*|v| for every
// sample. Signs are carried in a separate bitmap; zeros (and denormals
// below a floor) are restored exactly.
package pwrel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"carol/internal/compressor"
	"carol/internal/field"
)

// zeroFloor is the magnitude below which samples are treated as exact
// zeros: the log transform cannot represent 0 and scientific data treats
// such values as padding anyway.
const zeroFloor = 1e-30

// Compress encodes f so every reconstructed sample satisfies
// |v' - v| <= rel*|v| (and exact restoration of zeros/signs).
//
// Layout: u32 sign/zero bitmap length, bitmap (2 bits per sample:
// zero flag, sign flag), then the wrapped codec's stream over log|v|.
func Compress(codec compressor.Codec, f *field.Field, rel float64) ([]byte, error) {
	if !(rel > 0) || rel >= 1 {
		return nil, fmt.Errorf("pwrel: relative bound %g outside (0, 1)", rel)
	}
	if err := compressor.ValidateArgs(f, rel); err != nil {
		return nil, err
	}
	logs := field.New(f.Name+"/log", f.Nx, f.Ny, f.Nz)
	bitmap := make([]byte, (f.Len()*2+7)/8)
	setBit := func(i int) { bitmap[i/8] |= 1 << (i % 8) }
	for i, v := range f.Data {
		a := math.Abs(float64(v))
		if a < zeroFloor {
			setBit(2 * i) // zero flag
			logs.Data[i] = 0
			continue
		}
		if v < 0 {
			setBit(2*i + 1) // sign flag
		}
		logs.Data[i] = float32(math.Log(a))
	}
	// |log v' - log v| <= eb  =>  v'/v in [e^-eb, e^eb]; choose eb so that
	// e^eb - 1 <= rel (the tighter side).
	eb := math.Log1p(rel)
	// Guard against float32 storage of the log values eating the margin.
	eb *= 0.95
	inner, err := codec.Compress(logs, eb)
	if err != nil {
		return nil, fmt.Errorf("pwrel: inner compress: %w", err)
	}
	out := make([]byte, 4, 4+len(bitmap)+len(inner))
	binary.LittleEndian.PutUint32(out, uint32(len(bitmap)))
	out = append(out, bitmap...)
	return append(out, inner...), nil
}

// Decompress reverses Compress.
func Decompress(codec compressor.Codec, stream []byte) (*field.Field, error) {
	if len(stream) < 4 {
		return nil, errors.New("pwrel: short stream")
	}
	bmLen := int(binary.LittleEndian.Uint32(stream))
	if bmLen < 0 || 4+bmLen > len(stream) {
		return nil, errors.New("pwrel: bitmap length out of range")
	}
	bitmap := stream[4 : 4+bmLen]
	logs, err := codec.Decompress(stream[4+bmLen:])
	if err != nil {
		return nil, fmt.Errorf("pwrel: inner decompress: %w", err)
	}
	if (logs.Len()*2+7)/8 != bmLen {
		return nil, errors.New("pwrel: bitmap does not match field size")
	}
	getBit := func(i int) bool { return bitmap[i/8]&(1<<(i%8)) != 0 }
	f := field.New("pwrel", logs.Nx, logs.Ny, logs.Nz)
	for i, lv := range logs.Data {
		if getBit(2 * i) {
			f.Data[i] = 0
			continue
		}
		v := math.Exp(float64(lv))
		if getBit(2*i + 1) {
			v = -v
		}
		f.Data[i] = float32(v)
	}
	return f, nil
}

// CheckPointwise verifies |g - f| <= rel*|f| at every sample (zeros must be
// exact), with a small slack for float32 storage rounding.
func CheckPointwise(f, g *field.Field, rel float64) error {
	if f.Len() != g.Len() {
		return errors.New("pwrel: length mismatch")
	}
	for i := range f.Data {
		a, b := float64(f.Data[i]), float64(g.Data[i])
		if math.Abs(a) < zeroFloor {
			if b != 0 { //carol:allow floateq zero samples must be restored bit-exactly
				return fmt.Errorf("pwrel: zero sample %d restored as %g", i, b)
			}
			continue
		}
		if math.Abs(b-a) > rel*math.Abs(a)*(1+1e-5)+math.Abs(a)*1e-6 {
			return fmt.Errorf("pwrel: sample %d: |%g - %g| > %g%%", i, b, a, 100*rel)
		}
	}
	return nil
}
