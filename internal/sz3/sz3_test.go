package sz3

import (
	"math"
	"testing"
	"testing/quick"

	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/xrand"
)

func smoothField(nx, ny, nz int, seed uint64) *field.Field {
	n := xrand.NewNoise(seed)
	f := field.New("smooth", nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				f.Set(x, y, z, float32(5*n.FBm(float64(x)/20, float64(y)/20, float64(z)/20, 3, 0.5)))
			}
		}
	}
	return f
}

// TestTraversalCoversAllNonAnchors is the key structural invariant: the
// multi-level traversal must visit every point that is not on the anchor
// grid exactly once.
func TestTraversalCoversAllNonAnchors(t *testing.T) {
	for _, dims := range [][3]int{{17, 1, 1}, {16, 9, 1}, {8, 7, 5}, {1, 1, 1}, {33, 32, 3}} {
		nx, ny, nz := dims[0], dims[1], dims[2]
		stride0 := anchorStride(nx, ny, nz)
		visited := make([]int, nx*ny*nz)
		forEachTarget(nx, ny, nz, stride0, func(tg target) {
			visited[(tg.z*ny+tg.y)*nx+tg.x]++
		})
		a2 := 2 * stride0
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					idx := (z*ny+y)*nx + x
					isAnchor := x%a2 == 0 && y%a2 == 0 && z%a2 == 0
					want := 1
					if isAnchor {
						want = 0
					}
					if visited[idx] != want {
						t.Fatalf("dims %v: point (%d,%d,%d) visited %d times, want %d",
							dims, x, y, z, visited[idx], want)
					}
				}
			}
		}
	}
}

func TestRoundTripBound(t *testing.T) {
	c := New()
	for _, dims := range [][3]int{{100, 1, 1}, {40, 30, 1}, {20, 18, 14}} {
		f := smoothField(dims[0], dims[1], dims[2], 1)
		for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
			eb := compressor.AbsBound(f, rel)
			stream, err := c.Compress(f, eb)
			if err != nil {
				t.Fatalf("dims %v rel %g: %v", dims, rel, err)
			}
			g, err := c.Decompress(stream)
			if err != nil {
				t.Fatalf("dims %v rel %g: %v", dims, rel, err)
			}
			if err := compressor.CheckBound(f, g, eb); err != nil {
				t.Fatalf("dims %v rel %g: %v (maxerr %g)", dims, rel, err,
					compressor.MaxAbsErr(f, g))
			}
		}
	}
}

func TestHighRatioOnSmoothData(t *testing.T) {
	// SZ3's defining property in the paper: compression ratios far above
	// the high-throughput group on smooth fields at loose bounds.
	c := New()
	f := smoothField(64, 64, 32, 2)
	stream, err := c.Compress(f, compressor.AbsBound(f, 1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := compressor.Ratio(f, stream); ratio < 30 {
		t.Fatalf("smooth-field ratio %g, want >= 30", ratio)
	}
}

func TestMonotoneRatio(t *testing.T) {
	c := New()
	f := smoothField(48, 48, 8, 3)
	var prev float64
	for _, rel := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		stream, err := c.Compress(f, compressor.AbsBound(f, rel))
		if err != nil {
			t.Fatal(err)
		}
		ratio := compressor.Ratio(f, stream)
		if ratio+1e-9 < prev*0.98 { // tolerate flate noise
			t.Fatalf("ratio dropped as eb grew: %g -> %g at rel %g", prev, ratio, rel)
		}
		prev = ratio
	}
}

func TestConstantField(t *testing.T) {
	c := New()
	f := field.New("const", 32, 32, 8)
	for i := range f.Data {
		f.Data[i] = -2.5
	}
	stream, err := c.Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := compressor.Ratio(f, stream); ratio < 100 {
		t.Fatalf("constant field ratio %g, want >= 100", ratio)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, 1e-3); err != nil {
		t.Fatal(err)
	}
}

func TestRoughDataWithOutliers(t *testing.T) {
	// Rough data with spikes forces outlier storage; bound must still hold.
	rng := xrand.New(4)
	f := field.New("spiky", 500, 1, 1)
	for i := range f.Data {
		f.Data[i] = float32(rng.Norm())
		if rng.Float64() < 0.02 {
			f.Data[i] *= 1e6
		}
	}
	c := New()
	eb := compressor.AbsBound(f, 1e-9) // tiny bound -> residuals overflow quantizer
	stream, err := c.Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, eb); err != nil {
		t.Fatal(err)
	}
}

func TestSinglePointField(t *testing.T) {
	c := New()
	f := field.FromData("one", 1, 1, 1, []float32{3.14})
	stream, err := c.Compress(f, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[0] != 3.14 {
		t.Fatalf("anchor point not exact: %v", g.Data[0])
	}
}

func TestDecompressErrors(t *testing.T) {
	c := New()
	for i, s := range [][]byte{nil, {1}, make([]byte, 30)} {
		if _, err := c.Decompress(s); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	f := smoothField(16, 16, 1, 5)
	stream, err := c.Compress(f, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), stream...)
	bad[0] = 0x00
	if _, err := c.Decompress(bad); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, err := c.Decompress(stream[:len(stream)/2]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestLastLevelCodesCount(t *testing.T) {
	f := smoothField(21, 17, 9, 6)
	codes := LastLevelCodes(f, compressor.AbsBound(f, 1e-3))
	// Count stride-1 targets directly.
	want := 0
	forEachTargetLevel(f.Nx, f.Ny, f.Nz, 1, func(target) { want++ })
	if len(codes) != want {
		t.Fatalf("LastLevelCodes returned %d codes, want %d", len(codes), want)
	}
	// Finest level covers most points: at least half for 3D data.
	if want < f.Len()/2 {
		t.Fatalf("last level has %d of %d points", want, f.Len())
	}
}

func TestLastLevelCodesCentered(t *testing.T) {
	// On smooth data nearly all codes should sit near the zero-residual bin.
	f := smoothField(32, 32, 8, 7)
	codes := LastLevelCodes(f, compressor.AbsBound(f, 1e-2))
	center := 0
	for _, c := range codes {
		if c >= quantRadius-2 && c <= quantRadius+2 {
			center++
		}
	}
	if float64(center) < 0.8*float64(len(codes)) {
		t.Fatalf("only %d/%d codes near center", center, len(codes))
	}
}

func TestLorenzoModeRoundTripBound(t *testing.T) {
	c := NewMode(ModeLorenzo)
	for _, dims := range [][3]int{{100, 1, 1}, {32, 24, 1}, {18, 16, 12}} {
		f := smoothField(dims[0], dims[1], dims[2], 21)
		for _, rel := range []float64{1e-1, 1e-2, 1e-3} {
			eb := compressor.AbsBound(f, rel)
			stream, err := c.Compress(f, eb)
			if err != nil {
				t.Fatalf("dims %v rel %g: %v", dims, rel, err)
			}
			g, err := c.Decompress(stream)
			if err != nil {
				t.Fatalf("dims %v rel %g: %v", dims, rel, err)
			}
			if err := compressor.CheckBound(f, g, eb); err != nil {
				t.Fatalf("dims %v rel %g: %v", dims, rel, err)
			}
		}
	}
}

func TestLorenzoStreamsDecodeWithDefaultCodec(t *testing.T) {
	// Streams are self-describing: the interpolation-mode codec must decode
	// Lorenzo-mode streams.
	f := smoothField(24, 24, 8, 22)
	eb := compressor.AbsBound(f, 1e-2)
	stream, err := NewMode(ModeLorenzo).Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New().Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, eb); err != nil {
		t.Fatal(err)
	}
}

func TestModeRatioComparison(t *testing.T) {
	// Both predictors must compress smooth data well; interpolation should
	// match or beat Lorenzo at loose bounds on smooth fields (the reason
	// SZ3 made it the default).
	f := smoothField(48, 48, 16, 23)
	eb := compressor.AbsBound(f, 1e-2)
	si, err := New().Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := NewMode(ModeLorenzo).Compress(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	ri, rl := compressor.Ratio(f, si), compressor.Ratio(f, sl)
	if rl < 5 {
		t.Fatalf("Lorenzo ratio only %g", rl)
	}
	if ri < rl*0.7 {
		t.Fatalf("interpolation (%g) far behind Lorenzo (%g)", ri, rl)
	}
}

func TestQuickRoundTripBound(t *testing.T) {
	c := New()
	f := func(seed uint64, relExp uint8) bool {
		rng := xrand.New(seed)
		nx, ny, nz := rng.Intn(24)+1, rng.Intn(16)+1, rng.Intn(8)+1
		fl := field.New("q", nx, ny, nz)
		for i := range fl.Data {
			fl.Data[i] = float32(rng.Range(-10, 10))
		}
		eb := compressor.AbsBound(fl, math.Pow(10, -float64(relExp%4)-1))
		stream, err := c.Compress(fl, eb)
		if err != nil {
			return false
		}
		g, err := c.Decompress(stream)
		if err != nil {
			return false
		}
		return compressor.CheckBound(fl, g, eb) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	c := New()
	f := smoothField(64, 64, 64, 1)
	eb := compressor.AbsBound(f, 1e-3)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(f, eb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	c := New()
	f := smoothField(64, 64, 64, 1)
	eb := compressor.AbsBound(f, 1e-3)
	stream, err := c.Compress(f, eb)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLastLevelCodes(b *testing.B) {
	f := smoothField(64, 64, 64, 1)
	eb := compressor.AbsBound(f, 1e-3)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LastLevelCodes(f, eb)
	}
}
