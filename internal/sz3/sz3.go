// Package sz3 reimplements the SZ3 prediction-based error-bounded lossy
// compressor (Liang et al., IEEE TBD 2023) in pure Go. SZ3 is one of the two
// "high compression ratio" compressors of the CAROL evaluation.
//
// The pipeline follows SZ3's interpolation mode: a coarse anchor grid is
// stored losslessly, then successive refinement levels predict the remaining
// points with cubic spline interpolation along each dimension (using
// previously *reconstructed* values, which keeps every point's error within
// the bound), quantize the prediction residuals with a linear quantizer,
// entropy-code the quantization bins with canonical Huffman coding, and
// finally pass the stream through DEFLATE (the stand-in for SZ3's Zstd
// stage; see DESIGN.md).
package sz3

import (
	"encoding/binary"
	"fmt"
	"math"

	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/huffman"
	"carol/internal/safedec"
	"carol/internal/zpool"
)

// quantRadius is half the quantizer's code range; residuals quantizing
// outside ±quantRadius bins are stored as raw outliers (code 0).
const quantRadius = 32768

// Mode selects SZ3's predictor (SZ3 is a modular framework; the paper's
// evaluation uses the interpolation mode, the SZ family's classic predictor
// is Lorenzo).
type Mode byte

const (
	// ModeInterpolation is the multi-level cubic-interpolation predictor.
	ModeInterpolation Mode = 0
	// ModeLorenzo is the first-order Lorenzo predictor in a single raster
	// scan.
	ModeLorenzo Mode = 1
)

// Codec is the SZ3 compressor.
type Codec struct {
	mode Mode
}

// New returns an SZ3 codec in interpolation mode (the paper's setting).
func New() *Codec { return &Codec{mode: ModeInterpolation} }

// NewMode returns an SZ3 codec with an explicit predictor mode. Streams are
// self-describing: Decompress handles either mode regardless of the
// receiver's configuration.
func NewMode(m Mode) *Codec { return &Codec{mode: m} }

// Name implements compressor.Codec.
func (*Codec) Name() string { return "sz3" }

var _ compressor.Codec = (*Codec)(nil)

// target identifies one point to predict during a traversal level.
type target struct {
	x, y, z int
	axis    int // 0=x, 1=y, 2=z
	stride  int
}

// forEachTarget invokes fn for every predicted point in the canonical SZ3
// traversal order: strides from coarse to fine; within each stride the x,
// y, then z interpolation phases; within each phase, z-major scan order.
// The encoder and decoder must agree on this order exactly.
func forEachTarget(nx, ny, nz, stride0 int, fn func(t target)) {
	for s := stride0; s >= 1; s /= 2 {
		s2 := 2 * s
		// Phase X: x ≡ s (mod 2s), y ≡ 0 (mod 2s), z ≡ 0 (mod 2s).
		for z := 0; z < nz; z += s2 {
			for y := 0; y < ny; y += s2 {
				for x := s; x < nx; x += s2 {
					fn(target{x, y, z, 0, s})
				}
			}
		}
		// Phase Y: y ≡ s (mod 2s), x ≡ 0 (mod s), z ≡ 0 (mod 2s).
		for z := 0; z < nz; z += s2 {
			for y := s; y < ny; y += s2 {
				for x := 0; x < nx; x += s {
					fn(target{x, y, z, 1, s})
				}
			}
		}
		// Phase Z: z ≡ s (mod 2s), x ≡ 0 (mod s), y ≡ 0 (mod s).
		for z := s; z < nz; z += s2 {
			for y := 0; y < ny; y += s {
				for x := 0; x < nx; x += s {
					fn(target{x, y, z, 2, s})
				}
			}
		}
	}
}

// anchorStride returns the spacing of the losslessly stored anchor grid.
func anchorStride(nx, ny, nz int) int {
	maxDim := nx
	if ny > maxDim {
		maxDim = ny
	}
	if nz > maxDim {
		maxDim = nz
	}
	s := 1
	for 2*s < maxDim {
		s *= 2
	}
	return s // first level stride; anchors live on the 2s grid
}

// predict computes the interpolation prediction for t from reconstructed
// values: cubic spline through the four stride-spaced neighbors along
// t.axis when available, linear through two, or nearest-copy at boundaries.
func predict(recon []float64, nx, ny, nz int, t target) float64 {
	var dx, dy, dz int
	switch t.axis {
	case 0:
		dx = 1
	case 1:
		dy = 1
	default:
		dz = 1
	}
	at := func(k int) (float64, bool) {
		x, y, z := t.x+k*dx*t.stride, t.y+k*dy*t.stride, t.z+k*dz*t.stride
		if x < 0 || x >= nx || y < 0 || y >= ny || z < 0 || z >= nz {
			return 0, false
		}
		return recon[(z*ny+y)*nx+x], true
	}
	m1, okM1 := at(-1)
	p1, okP1 := at(1)
	m3, okM3 := at(-3)
	p3, okP3 := at(3)
	switch {
	case okM3 && okM1 && okP1 && okP3:
		// Cubic spline midpoint: (-f(-3) + 9f(-1) + 9f(1) - f(3)) / 16.
		return (-m3 + 9*m1 + 9*p1 - p3) / 16
	case okM1 && okP1:
		return (m1 + p1) / 2
	case okM1:
		return m1
	case okP1:
		return p1
	default:
		return 0
	}
}

// lorenzoPredict computes the first-order Lorenzo prediction for the point
// at (x, y, z) from already-reconstructed raster-scan predecessors.
func lorenzoPredict(recon []float64, nx, ny int, x, y, z int) float64 {
	at := func(dx, dy, dz int) float64 {
		xx, yy, zz := x-dx, y-dy, z-dz
		if xx < 0 || yy < 0 || zz < 0 {
			return 0
		}
		return recon[(zz*ny+yy)*nx+xx]
	}
	return at(1, 0, 0) + at(0, 1, 0) + at(0, 0, 1) +
		at(1, 1, 1) - at(1, 1, 0) - at(1, 0, 1) - at(0, 1, 1)
}

// Compress implements compressor.Codec.
func (c *Codec) Compress(f *field.Field, eb float64) ([]byte, error) {
	if err := compressor.ValidateArgs(f, eb); err != nil {
		return nil, err
	}
	nx, ny, nz := f.Nx, f.Ny, f.Nz
	recon := make([]float64, len(f.Data))
	codes := make([]uint32, 0, len(f.Data))
	var anchors []float32
	var outliers []float32
	twoEB := 2 * eb

	quantize := func(idx int, pred float64) {
		v := float64(f.Data[idx])
		q := math.Round((v - pred) / twoEB)
		if math.Abs(q) < quantRadius {
			codes = append(codes, uint32(int32(q)+quantRadius))
			recon[idx] = pred + q*twoEB
		} else {
			codes = append(codes, 0)
			outliers = append(outliers, f.Data[idx])
			recon[idx] = v
		}
	}

	switch c.mode {
	case ModeLorenzo:
		// Single raster scan; no anchors (the first point predicts from 0).
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					idx := (z*ny+y)*nx + x
					quantize(idx, lorenzoPredict(recon, nx, ny, x, y, z))
				}
			}
		}
	default:
		for i, v := range f.Data {
			recon[i] = float64(v)
		}
		stride0 := anchorStride(nx, ny, nz)
		// Anchors (the 2*stride0 grid) are kept losslessly: recon already
		// holds their exact values; just record them for the stream.
		a2 := 2 * stride0
		for z := 0; z < nz; z += a2 {
			for y := 0; y < ny; y += a2 {
				for x := 0; x < nx; x += a2 {
					anchors = append(anchors, f.At(x, y, z))
				}
			}
		}
		forEachTarget(nx, ny, nz, stride0, func(t target) {
			idx := (t.z*ny+t.y)*nx + t.x
			quantize(idx, predict(recon, nx, ny, nz, t))
		})
	}

	// Assemble payload: mode byte, anchor count+values, outlier
	// count+values, Huffman stream; then DEFLATE the lot.
	payload := make([]byte, 0, 9+4*(len(anchors)+len(outliers))+len(codes))
	appendU32 := func(v uint32) {
		payload = binary.LittleEndian.AppendUint32(payload, v)
	}
	payload = append(payload, byte(c.mode))
	appendU32(uint32(len(anchors)))
	for _, a := range anchors {
		appendU32(math.Float32bits(a))
	}
	appendU32(uint32(len(outliers)))
	for _, o := range outliers {
		appendU32(math.Float32bits(o))
	}
	payload = huffman.AppendEncode(payload, codes)

	out := compressor.AppendHeader(nil, compressor.Header{
		Magic: compressor.MagicSZ3, Nx: nx, Ny: ny, Nz: nz, EB: eb,
	})
	out, err := zpool.AppendDeflate(out, payload)
	if err != nil {
		return nil, fmt.Errorf("sz3: flate: %w", err)
	}
	return out, nil
}

// Decompress implements compressor.Codec (default safedec limits).
func (c *Codec) Decompress(stream []byte) (*field.Field, error) {
	return c.DecompressLimited(stream, safedec.Default())
}

// DecompressLimited implements compressor.LimitedDecoder.
func (*Codec) DecompressLimited(stream []byte, lim safedec.Limits) (*field.Field, error) {
	lim = lim.Norm()
	h, rest, err := compressor.ParseHeaderLimited(stream, compressor.MagicSZ3, lim)
	if err != nil {
		return nil, err
	}
	// Bound the inflate output: a legitimate payload can never exceed a few
	// words per grid point, and a corrupted stream must not become a
	// decompression bomb.
	maxPayload := int64(h.Nx)*int64(h.Ny)*int64(h.Nz)*16 + 1<<20
	if maxPayload > lim.MaxAlloc {
		maxPayload = lim.MaxAlloc
	}
	payload, err := zpool.Inflate(rest, maxPayload+1)
	if err != nil {
		return nil, fmt.Errorf("%w: sz3 inflate: %v", compressor.ErrBadStream, err)
	}
	if int64(len(payload)) > maxPayload {
		return nil, fmt.Errorf("%w: sz3 payload exceeds plausible size: %w", compressor.ErrBadStream, safedec.ErrLimit)
	}
	sr := safedec.NewReader(payload)
	modeByte, err := sr.U8("sz3 mode")
	if err != nil {
		return nil, fmt.Errorf("%w: sz3 missing mode byte: %w", compressor.ErrBadStream, err)
	}
	mode := Mode(modeByte)
	if mode != ModeInterpolation && mode != ModeLorenzo {
		return nil, fmt.Errorf("%w: sz3 unknown mode %d", compressor.ErrBadStream, mode)
	}
	// readF32s validates the claimed count against both the field size and
	// the bytes actually present BEFORE allocating the destination slice, so
	// a hostile count cannot trigger a multi-GiB make([]float32, n).
	readF32s := func(what string) ([]float32, error) {
		n, err := sr.U32(what + " count")
		if err != nil {
			return nil, fmt.Errorf("%w: sz3 %s count: %w", compressor.ErrBadStream, what, err)
		}
		if uint64(n) > uint64(h.Nx)*uint64(h.Ny)*uint64(h.Nz) {
			return nil, fmt.Errorf("%w: sz3 %s count %d", compressor.ErrBadStream, what, n)
		}
		raw, err := sr.Take(what+" values", int(n)*4)
		if err != nil {
			return nil, fmt.Errorf("%w: sz3 %s payload: %w", compressor.ErrBadStream, what, err)
		}
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		return vals, nil
	}
	anchors, err := readF32s("anchor")
	if err != nil {
		return nil, err
	}
	outliers, err := readF32s("outlier")
	if err != nil {
		return nil, err
	}
	codes, err := huffman.DecodeLimited(sr.Rest(), lim)
	if err != nil {
		return nil, fmt.Errorf("%w: sz3 huffman: %w", compressor.ErrBadStream, err)
	}

	nx, ny, nz := h.Nx, h.Ny, h.Nz
	f := field.New("sz3", nx, ny, nz)
	recon := make([]float64, len(f.Data))
	ci, oi := 0, 0
	twoEB := 2 * h.EB
	var terr error
	reconstruct := func(idx int, pred float64) {
		if ci >= len(codes) {
			terr = fmt.Errorf("%w: sz3 codes exhausted", compressor.ErrBadStream)
			return
		}
		code := codes[ci]
		ci++
		if code == 0 {
			if oi >= len(outliers) {
				terr = fmt.Errorf("%w: sz3 outliers exhausted", compressor.ErrBadStream)
				return
			}
			recon[idx] = float64(outliers[oi])
			oi++
			return
		}
		recon[idx] = pred + float64(int32(code)-quantRadius)*twoEB
	}

	if mode == ModeLorenzo {
	lorenzo:
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					reconstruct((z*ny+y)*nx+x, lorenzoPredict(recon, nx, ny, x, y, z))
					if terr != nil {
						break lorenzo
					}
				}
			}
		}
	} else {
		stride0 := anchorStride(nx, ny, nz)
		a2 := 2 * stride0
		ai := 0
		for z := 0; z < nz; z += a2 {
			for y := 0; y < ny; y += a2 {
				for x := 0; x < nx; x += a2 {
					if ai >= len(anchors) {
						return nil, fmt.Errorf("%w: sz3 anchors exhausted", compressor.ErrBadStream)
					}
					recon[(z*ny+y)*nx+x] = float64(anchors[ai])
					ai++
				}
			}
		}
		forEachTarget(nx, ny, nz, stride0, func(t target) {
			if terr != nil {
				return
			}
			reconstruct((t.z*ny+t.y)*nx+t.x, predict(recon, nx, ny, nz, t))
		})
	}
	if terr != nil {
		return nil, terr
	}
	for i, v := range recon {
		f.Data[i] = float32(v)
	}
	return f, nil
}

// LastLevelCodes runs only the finest interpolation level (stride 1) on f,
// predicting each odd-coordinate point from the *original* even-coordinate
// values, and returns the quantization codes. This is the computation the
// SECRE SZ3 surrogate performs: the most expensive iteration of the
// interpolation cascade, with no reconstruction feedback, no Huffman stage
// and no Zstd stage.
func LastLevelCodes(f *field.Field, eb float64) []uint32 {
	nx, ny, nz := f.Nx, f.Ny, f.Nz
	recon := make([]float64, len(f.Data))
	for i, v := range f.Data {
		recon[i] = float64(v)
	}
	codes := make([]uint32, 0, len(f.Data))
	twoEB := 2 * eb
	forEachTargetLevel(nx, ny, nz, 1, func(t target) {
		idx := (t.z*ny+t.y)*nx + t.x
		pred := predict(recon, nx, ny, nz, t)
		q := math.Round((float64(f.Data[idx]) - pred) / twoEB)
		if math.Abs(q) < quantRadius {
			codes = append(codes, uint32(int32(q)+quantRadius))
		} else {
			codes = append(codes, 0)
		}
	})
	return codes
}

// forEachTargetLevel visits the targets of a single stride level.
func forEachTargetLevel(nx, ny, nz, s int, fn func(t target)) {
	s2 := 2 * s
	for z := 0; z < nz; z += s2 {
		for y := 0; y < ny; y += s2 {
			for x := s; x < nx; x += s2 {
				fn(target{x, y, z, 0, s})
			}
		}
	}
	for z := 0; z < nz; z += s2 {
		for y := s; y < ny; y += s2 {
			for x := 0; x < nx; x += s {
				fn(target{x, y, z, 1, s})
			}
		}
	}
	for z := s; z < nz; z += s2 {
		for y := 0; y < ny; y += s {
			for x := 0; x < nx; x += s {
				fn(target{x, y, z, 2, s})
			}
		}
	}
}
