package selector

import (
	"encoding/binary"
	"math"
	"testing"

	"carol/internal/field"
	"carol/internal/fuzzseed"
)

// autoSelectSeeds builds the checked-in seed corpus for FuzzAutoSelect:
// a selector seed byte, an epsilon byte, packed small dims, an eb exponent,
// a target byte, then raw float32 samples.
func autoSelectSeeds() [][]byte {
	base := make([]byte, 7+4*64)
	base[0], base[1] = 1, 10
	base[2], base[3], base[4] = 16, 4, 2
	base[5], base[6] = 3, 8
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint32(base[7+4*i:], math.Float32bits(float32(math.Sin(float64(i)/5))))
	}
	var out [][]byte
	out = append(out, base)

	flat := append([]byte(nil), base...)
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint32(flat[7+4*i:], math.Float32bits(2.5))
	}
	out = append(out, flat)

	hostile := append([]byte(nil), base...)
	binary.LittleEndian.PutUint32(hostile[7:], math.Float32bits(float32(math.NaN())))
	binary.LittleEndian.PutUint32(hostile[11:], math.Float32bits(float32(math.Inf(1))))
	out = append(out, hostile, base[:9], []byte{0})
	return out
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/ when CAROL_WRITE_CORPUS is set; otherwise it asserts the
// corpus exists.
func TestWriteFuzzCorpus(t *testing.T) {
	fuzzseed.Check(t, ".", map[string][][]byte{
		"FuzzAutoSelect": autoSelectSeeds(),
	})
}

// FuzzAutoSelect asserts the selector's totality contract on arbitrary
// inputs: whatever field, error bound, target and achieved-ratio bytes the
// fuzzer constructs, Select must never panic and never return a codec
// outside the configured set, and Observe must absorb arbitrary (including
// non-finite) outcomes without corrupting state.
func FuzzAutoSelect(f *testing.F) {
	for _, s := range autoSelectSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		sel, err := New(Config{
			Seed:    uint64(data[0]),
			Epsilon: float64(data[1]%128) / 100, // 0 .. 1.27, 0 = default
		})
		if err != nil {
			t.Fatal(err)
		}
		known := make(map[string]bool)
		for _, n := range sel.Codecs() {
			known[n] = true
		}
		nx := int(data[2])%32 + 1
		ny := int(data[3])%8 + 1
		nz := int(data[4])%4 + 1
		eb := math.Pow(10, -float64(int(data[5])%8)) // 1 .. 1e-7
		target := float64(data[6]) / 8               // 0 .. 31.9
		fld := field.New("fuzz", nx, ny, nz)
		samples := data[7:]
		for i := range fld.Data {
			if 4*i+4 <= len(samples) {
				fld.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(samples[4*i:]))
			} else {
				fld.Data[i] = float32(i % 13)
			}
		}
		dec, err := sel.Select(fld, eb, target)
		if err != nil {
			return // non-finite samples are rejected up front; that's fine
		}
		if !known[dec.Codec] {
			t.Fatalf("Select returned unregistered codec %q", dec.Codec)
		}
		// Feed an arbitrary outcome back — including NaN/Inf bit patterns —
		// then select again: state must stay usable.
		actual := float64(math.Float32frombits(binary.LittleEndian.Uint32(data[2:6])))
		sel.Observe(dec, actual)
		dec2, err := sel.Select(fld, eb, 0)
		if err != nil {
			t.Fatalf("second Select failed after Observe(%g): %v", actual, err)
		}
		if !known[dec2.Codec] {
			t.Fatalf("second Select returned unregistered codec %q", dec2.Codec)
		}
	})
}
