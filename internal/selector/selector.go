// Package selector implements online adaptive codec selection — the
// serving-side realization of Tao et al.'s "Automatic Online Selection
// between SZ and ZFP" generalized to every codec in the registry
// (ROADMAP item 3, DESIGN.md §16).
//
// A Selector scores every candidate codec with its SECRE surrogate
// (internal/secre), corrects each estimate with an online per-codec,
// per-field-shape bias learned from observed estimate-vs-actual pairs,
// and picks the cheapest candidate predicted to meet the caller's ratio
// target (or the best-compressing candidate when no target is given).
// An epsilon-greedy bandit layer keeps exploring the non-greedy arms so
// the bias estimates stay fresh; the reward closing the loop is exactly
// the estimate-vs-actual relative error that secre.RecordOutcome
// surfaces — a codec whose surrogate systematically overpromises on a
// tenant's field shapes sees its corrected score shrink and loses
// selection probability online.
//
// Contracts the serving layer relies on:
//
//   - Bounded state: one arm per (codec, shape bucket); the codec set is
//     fixed at construction and the bucket set is a compile-time constant,
//     so memory never grows with traffic.
//   - Race safety: Select and Observe may be called concurrently; the
//     surrogate estimates run outside the lock, only the decide/update
//     steps serialize.
//   - Determinism: all randomness comes from an explicit xrand seed, so a
//     fixed seed and a fixed request sequence reproduce the exact same
//     decisions (the smoke fleet and the regression tests pin outcomes).
//   - Total selection: Select never returns a codec outside the
//     configured set; if every surrogate fails it falls back to the
//     cheapest candidate rather than failing the request.
package selector

import (
	"fmt"
	"math"
	"sync"
	"time"

	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/features"
	"carol/internal/field"
	"carol/internal/obs"
	"carol/internal/secre"
	"carol/internal/xrand"
)

// costRank orders candidates by the compute cost of a full compression
// run, following the paper's throughput grouping: the delta-family codecs
// (SZx, SZP) are cheapest, ZFP's block transform is next, and the
// prediction/wavelet codecs (SZ3, SPERR) are the expensive
// high-compression end. "Cheapest candidate predicted to meet the target"
// means lowest rank here.
func costRank(name string) int {
	switch name {
	case "szx":
		return 0
	case "szp":
		return 1
	case "zfp":
		return 2
	case "sz3":
		return 3
	case "sperr":
		return 4
	default:
		return 5
	}
}

// Shape buckets: dimensionality × roughness. Per-bucket bias state is what
// makes the feedback loop shape-aware — a surrogate can be well calibrated
// on smooth 3D fields and badly biased on noisy 1D traces, and the two
// must not average each other out.
const bucketCount = 6

var bucketNames = [bucketCount]string{
	"1d-smooth", "1d-rough", "2d-smooth", "2d-rough", "3d-smooth", "3d-rough",
}

// roughFraction is the MND-to-range ratio above which a field counts as
// rough: smooth scientific fields sit well below it, white-noise-dominated
// ones well above.
const roughFraction = 0.02

// bucketOf maps a field and its extracted feature vector to a shape bucket.
func bucketOf(f *field.Field, v features.Vector) int {
	rough := 0
	if v.Range > 0 && v.MND > roughFraction*v.Range {
		rough = 1
	}
	return (f.Dims()-1)*2 + rough
}

// biasClamp bounds the bias EMA so one absurd outcome cannot zero a score
// forever (corrected = raw / (1 + bias), bias in [-0.9, 9]).
const (
	biasMin = -0.9
	biasMax = 9.0
)

// Config tunes a Selector. The zero value selects every registered codec
// with seed 0, epsilon 0.05 and bias EMA weight 0.3.
type Config struct {
	// Codecs is the candidate set, in cost order of preference for ties.
	// Default codecs.ExtendedNames. Every name must have a surrogate.
	Codecs []string
	// Seed seeds the exploration RNG. Same seed + same call sequence =
	// same decisions.
	Seed uint64
	// Epsilon is the exploration probability per decision. Default 0.05;
	// any negative value disables exploration entirely.
	Epsilon float64
	// BiasAlpha is the EMA weight of the newest estimate-vs-actual
	// relative error. Default 0.3.
	BiasAlpha float64
	// Estimators overrides the surrogate for the named codecs (tests
	// inject fixed-ratio estimators here). Codecs not in the map use
	// codecs.SurrogateByName.
	Estimators map[string]compressor.Estimator
	// Extract overrides feature extraction. Default features.ExtractParallel
	// with the paper's sampling parameters.
	Extract func(*field.Field) features.Vector
	// Registry receives the selector metrics. Default obs.Default.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if len(c.Codecs) == 0 {
		c.Codecs = append([]string(nil), codecs.ExtendedNames...)
	}
	if c.Epsilon == 0 { //carol:allow floateq zero value means "take the default", negative disables
		c.Epsilon = 0.05
	}
	if c.Epsilon < 0 {
		c.Epsilon = 0
	}
	if c.BiasAlpha <= 0 || c.BiasAlpha > 1 {
		c.BiasAlpha = 0.3
	}
	if c.Extract == nil {
		c.Extract = func(f *field.Field) features.Vector {
			return features.ExtractParallel(f, features.ParallelOptions{})
		}
	}
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	return c
}

// arm is the bounded per-(codec, bucket) bandit state.
type arm struct {
	decisions int64
	outcomes  int64
	// bias is the EMA of (estimated/actual - 1): positive means the
	// surrogate overpromises for this codec on this field shape.
	bias          float64
	lastPredicted float64
	lastAchieved  float64
}

// Selector is the online adaptive codec chooser. Create with New.
type Selector struct {
	cfg   Config
	names []string
	costs []int
	ests  []compressor.Estimator

	mu        sync.Mutex
	rng       *xrand.Source
	arms      []arm // codec-major: arms[codec*bucketCount+bucket]
	decisions int64
	explored  int64
	rejected  int64

	// Metric handles, resolved once at construction from the fixed codec
	// set (bounded label cardinality by construction).
	recorders     []*secre.OutcomeRecorder
	decTotal      []*obs.Counter
	outTotal      []*obs.Counter
	biasGauge     []*obs.Gauge
	predGauge     []*obs.Gauge
	achGauge      []*obs.Gauge
	exploreTotal  *obs.Counter
	rejectTotal   *obs.Counter
	selectSeconds *obs.Histogram
}

// New builds a Selector over cfg's candidate set.
func New(cfg Config) (*Selector, error) {
	cfg = cfg.withDefaults()
	s := &Selector{
		cfg:           cfg,
		names:         append([]string(nil), cfg.Codecs...),
		rng:           xrand.New(cfg.Seed),
		arms:          make([]arm, len(cfg.Codecs)*bucketCount),
		exploreTotal:  cfg.Registry.Counter("selector_explore_total"),
		rejectTotal:   cfg.Registry.Counter("selector_outcome_rejects_total"),
		selectSeconds: cfg.Registry.Histogram("selector_select_seconds", obs.LatencyBuckets()),
	}
	seen := make(map[string]bool, len(s.names))
	for _, name := range s.names {
		if seen[name] {
			return nil, fmt.Errorf("selector: duplicate codec %q", name)
		}
		seen[name] = true
		s.costs = append(s.costs, costRank(name))
		est := cfg.Estimators[name]
		if est == nil {
			var err error
			est, err = codecs.SurrogateByName(name)
			if err != nil {
				return nil, fmt.Errorf("selector: %w", err)
			}
		}
		s.ests = append(s.ests, est)
		s.recorders = append(s.recorders, secre.NewOutcomeRecorder(name))
		s.decTotal = append(s.decTotal, cfg.Registry.Counter(obs.Label("selector_decisions_total", "codec", name)))
		s.outTotal = append(s.outTotal, cfg.Registry.Counter(obs.Label("selector_outcomes_total", "codec", name)))
		s.biasGauge = append(s.biasGauge, cfg.Registry.Gauge(obs.Label("selector_bias_ema", "codec", name)))
		s.predGauge = append(s.predGauge, cfg.Registry.Gauge(obs.Label("selector_last_predicted_ratio", "codec", name)))
		s.achGauge = append(s.achGauge, cfg.Registry.Gauge(obs.Label("selector_last_achieved_ratio", "codec", name)))
	}
	return s, nil
}

// Codecs returns the candidate set in configured order.
func (s *Selector) Codecs() []string { return append([]string(nil), s.names...) }

// Prediction is one candidate's scored estimate inside a Decision.
type Prediction struct {
	Codec string `json:"codec"`
	// Raw is the uncorrected surrogate estimate (0 when the surrogate
	// failed).
	Raw float64 `json:"raw,omitempty"`
	// Corrected is Raw divided by (1 + bias EMA) — the score selection
	// actually compared.
	Corrected float64 `json:"corrected,omitempty"`
	// Err carries the surrogate's failure, if any.
	Err string `json:"error,omitempty"`
}

// Decision is one selection outcome. Pass it back to Observe with the
// achieved ratio to close the feedback loop.
type Decision struct {
	// Codec is the chosen candidate — always a member of the configured
	// set.
	Codec string `json:"codec"`
	// Bucket names the shape bucket the decision was scored in.
	Bucket string `json:"bucket"`
	// Explored reports an epsilon-greedy exploration pick (as opposed to
	// the greedy winner).
	Explored bool `json:"explored"`
	// EB and TargetRatio echo the request.
	EB          float64 `json:"eb"`
	TargetRatio float64 `json:"target_ratio,omitempty"`
	// Predictions holds every candidate's scored estimate, in configured
	// codec order.
	Predictions []Prediction `json:"predictions"`

	index  int // chosen candidate index
	bucket int // shape bucket index
}

// PredictedRatio returns the corrected prediction of the chosen codec
// (0 when its surrogate failed and the choice was a cost fallback).
func (d Decision) PredictedRatio() float64 {
	if d.index < 0 || d.index >= len(d.Predictions) {
		return 0
	}
	return d.Predictions[d.index].Corrected
}

// rawPredicted returns the chosen codec's uncorrected estimate.
func (d Decision) rawPredicted() float64 {
	if d.index < 0 || d.index >= len(d.Predictions) {
		return 0
	}
	return d.Predictions[d.index].Raw
}

// Select extracts the field's feature vector and picks a codec for
// compressing f under absolute error bound eb. targetRatio > 0 asks for
// the cheapest candidate predicted to reach at least that ratio;
// targetRatio == 0 asks for the best predicted ratio. The returned
// Decision always names a configured codec.
func (s *Selector) Select(f *field.Field, eb, targetRatio float64) (Decision, error) {
	if err := compressor.ValidateArgs(f, eb); err != nil {
		return Decision{}, err
	}
	if targetRatio < 0 || math.IsNaN(targetRatio) || math.IsInf(targetRatio, 0) {
		return Decision{}, fmt.Errorf("selector: invalid target ratio %g", targetRatio)
	}
	return s.SelectVec(f, s.cfg.Extract(f), eb, targetRatio)
}

// SelectVec is Select with a caller-supplied feature vector (callers that
// already extracted features for other purposes skip the second pass).
func (s *Selector) SelectVec(f *field.Field, vec features.Vector, eb, targetRatio float64) (Decision, error) {
	start := time.Now()
	defer s.selectSeconds.ObserveSince(start)
	if err := compressor.ValidateArgs(f, eb); err != nil {
		return Decision{}, err
	}
	if targetRatio < 0 || math.IsNaN(targetRatio) || math.IsInf(targetRatio, 0) {
		return Decision{}, fmt.Errorf("selector: invalid target ratio %g", targetRatio)
	}
	bucket := bucketOf(f, vec)
	// Surrogate estimates are the expensive part; they run outside the
	// lock so concurrent requests overlap their sampling passes.
	preds := make([]Prediction, len(s.names))
	raws := make([]float64, len(s.names))
	for i, est := range s.ests {
		r, err := est.EstimateRatio(f, eb)
		preds[i].Codec = s.names[i]
		if err != nil || !(r > 0) || math.IsInf(r, 0) {
			raws[i] = math.NaN()
			if err != nil {
				preds[i].Err = err.Error()
			} else {
				preds[i].Err = fmt.Sprintf("surrogate returned unusable ratio %g", r)
			}
			continue
		}
		raws[i] = r
		preds[i].Raw = r
	}

	scores := make([]float64, len(s.names))
	s.mu.Lock()
	for i := range scores {
		if math.IsNaN(raws[i]) {
			scores[i] = math.NaN()
			continue
		}
		scores[i] = raws[i] / (1 + s.arms[i*bucketCount+bucket].bias)
	}
	choice, explored := s.decideLocked(scores, targetRatio)
	s.arms[choice*bucketCount+bucket].decisions++
	s.decisions++
	if explored {
		s.explored++
	}
	s.mu.Unlock()

	for i := range preds {
		if !math.IsNaN(scores[i]) {
			preds[i].Corrected = scores[i]
		}
	}
	s.decTotal[choice].Inc()
	if explored {
		s.exploreTotal.Inc()
	}
	return Decision{
		Codec:       s.names[choice],
		Bucket:      bucketNames[bucket],
		Explored:    explored,
		EB:          eb,
		TargetRatio: targetRatio,
		Predictions: preds,
		index:       choice,
		bucket:      bucket,
	}, nil
}

// decideLocked is the allocation-free decision core: given the corrected
// scores (NaN = unusable candidate) and the ratio target, pick an index.
// Caller holds s.mu (the RNG draw and the bias reads serialize there).
//
// Greedy policy: with a target, the cheapest candidate whose score meets
// it (ties: higher score); with no target or no candidate meeting it, the
// highest score (ties: cheaper). Epsilon-greedy exploration picks
// uniformly from the same eligible pool. All surrogates failing falls
// back to the cheapest candidate.
func (s *Selector) decideLocked(scores []float64, target float64) (choice int, explored bool) {
	valid, eligible := 0, 0
	best, cheapEligible := -1, -1
	for i, sc := range scores {
		if math.IsNaN(sc) {
			continue
		}
		valid++
		if best < 0 || sc > scores[best] ||
			(sc == scores[best] && s.costs[i] < s.costs[best]) { //carol:allow floateq deterministic cost tie-break on equal scores
			best = i
		}
		if target > 0 && sc >= target {
			eligible++
			if cheapEligible < 0 || s.costs[i] < s.costs[cheapEligible] ||
				(s.costs[i] == s.costs[cheapEligible] && sc > scores[cheapEligible]) {
				cheapEligible = i
			}
		}
	}
	if valid == 0 {
		// Every surrogate failed: serve with the cheapest candidate rather
		// than failing the request.
		cheapest := 0
		for i := 1; i < len(s.costs); i++ {
			if s.costs[i] < s.costs[cheapest] {
				cheapest = i
			}
		}
		return cheapest, false
	}
	pool := valid
	if eligible > 0 {
		pool = eligible
	}
	if s.cfg.Epsilon > 0 && pool > 1 && s.rng.Float64() < s.cfg.Epsilon {
		k := s.rng.Intn(pool)
		for i, sc := range scores {
			if math.IsNaN(sc) {
				continue
			}
			if eligible > 0 && !(target > 0 && sc >= target) {
				continue
			}
			if k == 0 {
				return i, true
			}
			k--
		}
	}
	if cheapEligible >= 0 {
		return cheapEligible, false
	}
	return best, false
}

// Observe closes the bandit loop: the caller compressed with d.Codec and
// achieved `actual`. The pair feeds the per-arm bias EMA and the shared
// secre estimate-vs-actual gauges. Non-finite or non-positive outcomes
// (and decisions whose surrogate failed) are rejected with a counter
// instead of poisoning the state.
func (s *Selector) Observe(d Decision, actual float64) {
	raw := d.rawPredicted()
	if d.index < 0 || d.index >= len(s.names) || d.bucket < 0 || d.bucket >= bucketCount ||
		!(actual > 0) || math.IsInf(actual, 0) || !(raw > 0) || math.IsInf(raw, 0) {
		s.rejectTotal.Inc()
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return
	}
	s.recorders[d.index].Record(raw, actual)
	relErr := raw/actual - 1
	s.mu.Lock()
	a := &s.arms[d.index*bucketCount+d.bucket]
	a.outcomes++
	if a.outcomes == 1 {
		a.bias = relErr
	} else {
		a.bias = (1-s.cfg.BiasAlpha)*a.bias + s.cfg.BiasAlpha*relErr
	}
	if a.bias < biasMin {
		a.bias = biasMin
	}
	if a.bias > biasMax {
		a.bias = biasMax
	}
	bias := a.bias
	a.lastPredicted = raw
	a.lastAchieved = actual
	s.mu.Unlock()
	s.outTotal[d.index].Inc()
	s.biasGauge[d.index].Set(bias)
	s.predGauge[d.index].Set(raw)
	s.achGauge[d.index].Set(actual)
}

// ArmStats is one (codec, bucket) arm's snapshot.
type ArmStats struct {
	Codec         string  `json:"codec"`
	Bucket        string  `json:"bucket"`
	Decisions     int64   `json:"decisions"`
	Outcomes      int64   `json:"outcomes"`
	BiasEMA       float64 `json:"bias_ema"`
	LastPredicted float64 `json:"last_predicted_ratio,omitempty"`
	LastAchieved  float64 `json:"last_achieved_ratio,omitempty"`
}

// Stats is the /v1/selector debug snapshot.
type Stats struct {
	Codecs    []string `json:"codecs"`
	Seed      uint64   `json:"seed"`
	Epsilon   float64  `json:"epsilon"`
	BiasAlpha float64  `json:"bias_alpha"`
	Decisions int64    `json:"decisions"`
	Explored  int64    `json:"explored"`
	// RejectedOutcomes counts Observe calls dropped for non-finite or
	// unusable inputs.
	RejectedOutcomes int64 `json:"rejected_outcomes"`
	// Arms lists every arm that has seen a decision or an outcome, in
	// codec-major, bucket-minor order (deterministic).
	Arms []ArmStats `json:"arms"`
}

// Stats snapshots the selector state for the debug endpoint.
func (s *Selector) Stats() Stats {
	st := Stats{
		Codecs:    append([]string(nil), s.names...),
		Seed:      s.cfg.Seed,
		Epsilon:   s.cfg.Epsilon,
		BiasAlpha: s.cfg.BiasAlpha,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Decisions = s.decisions
	st.Explored = s.explored
	st.RejectedOutcomes = s.rejected
	for ci, name := range s.names {
		for b := 0; b < bucketCount; b++ {
			a := s.arms[ci*bucketCount+b]
			if a.decisions == 0 && a.outcomes == 0 {
				continue
			}
			st.Arms = append(st.Arms, ArmStats{
				Codec:         name,
				Bucket:        bucketNames[b],
				Decisions:     a.decisions,
				Outcomes:      a.outcomes,
				BiasEMA:       a.bias,
				LastPredicted: a.lastPredicted,
				LastAchieved:  a.lastAchieved,
			})
		}
	}
	return st
}
