package selector

import (
	"testing"

	"carol/internal/compressor"
)

// BenchmarkAutoSelect measures the selection cost at three depths: the
// bare decision core (must stay allocation-free — it runs under the state
// lock), the outcome-observation path (also lock-holding, also
// allocation-free), and the full Select including feature extraction and
// all five SECRE surrogate estimates.
func BenchmarkAutoSelect(b *testing.B) {
	sel, err := New(Config{Seed: 1, Epsilon: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	f := smoothGrid("bench", 64, 32, 16, 9)
	eb := compressor.AbsBound(f, 1e-3)
	dec, err := sel.Select(f, eb, 0)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("decide", func(b *testing.B) {
		scores := []float64{4.1, 8.9, 6.5, 12.2, 11.7}
		sel.mu.Lock()
		defer sel.mu.Unlock()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = sel.decideLocked(scores, 7)
		}
	})

	b.Run("observe", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sel.Observe(dec, 5.5)
		}
	})

	b.Run("select", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sel.Select(f, eb, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestDecideZeroAlloc pins the allocation-free contract of the lock-held
// hot path independently of the bench gate.
func TestDecideZeroAlloc(t *testing.T) {
	sel, err := New(Config{Seed: 1, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	scores := []float64{4.1, 8.9, 6.5, 12.2, 11.7}
	sel.mu.Lock()
	allocs := testing.AllocsPerRun(200, func() {
		_, _ = sel.decideLocked(scores, 7)
	})
	sel.mu.Unlock()
	if allocs != 0 { //carol:allow floateq AllocsPerRun returns an exact integer count
		t.Fatalf("decideLocked allocates %.1f per run, want 0", allocs)
	}
	f := smoothGrid("za", 48, 8, 1, 9)
	d, err := sel.Select(f, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() { sel.Observe(d, 5.5) })
	if allocs != 0 { //carol:allow floateq AllocsPerRun returns an exact integer count
		t.Fatalf("Observe allocates %.1f per run, want 0", allocs)
	}
}
