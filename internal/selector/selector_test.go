package selector

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/xrand"
)

// --- synthetic field grid -------------------------------------------------

func smoothGrid(name string, nx, ny, nz int, seed uint64) *field.Field {
	n := xrand.NewNoise(seed)
	f := field.New(name, nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				f.Set(x, y, z, float32(10*n.FBm(float64(x)/16, float64(y)/16, float64(z)/16, 3, 0.5)))
			}
		}
	}
	return f
}

func noisyGrid(name string, nx, ny, nz int, seed uint64) *field.Field {
	src := xrand.New(seed)
	f := field.New(name, nx, ny, nz)
	for i := range f.Data {
		f.Data[i] = float32(src.Norm() * 3)
	}
	return f
}

func constantGrid(name string, nx, ny, nz int) *field.Field {
	f := field.New(name, nx, ny, nz)
	for i := range f.Data {
		f.Data[i] = 42.5
	}
	return f
}

type gridCase struct {
	name string
	f    *field.Field
}

// conformanceGrid is the smooth/noisy/constant × 1D/2D/3D grid the issue
// asks for. Sizes stay small enough for a full static-codec sweep per case.
func conformanceGrid() []gridCase {
	return []gridCase{
		{"smooth-1d", smoothGrid("s1", 512, 1, 1, 1)},
		{"smooth-2d", smoothGrid("s2", 48, 40, 1, 2)},
		{"smooth-3d", smoothGrid("s3", 20, 18, 12, 3)},
		{"noisy-1d", noisyGrid("n1", 512, 1, 1, 4)},
		{"noisy-2d", noisyGrid("n2", 48, 40, 1, 5)},
		{"noisy-3d", noisyGrid("n3", 20, 18, 12, 6)},
		{"const-1d", constantGrid("c1", 512, 1, 1)},
		{"const-2d", constantGrid("c2", 48, 40, 1)},
		{"const-3d", constantGrid("c3", 20, 18, 12)},
	}
}

// TestSelectionConformance: over the full shape grid and an eb sweep, the
// chosen codec must (a) be a registered candidate, (b) round-trip within
// the bound, and (c) never achieve a worse ratio than the worst static
// codec would have (trivially true because the choice IS one of the static
// codecs — the assertion pins that invariant against future drift, e.g. a
// selector that post-processes streams).
func TestSelectionConformance(t *testing.T) {
	sel, err := New(Config{Seed: 7, Epsilon: -1}) // pure exploitation
	if err != nil {
		t.Fatal(err)
	}
	known := make(map[string]bool)
	for _, n := range sel.Codecs() {
		known[n] = true
	}
	for _, tc := range conformanceGrid() {
		for _, rel := range []float64{1e-2, 1e-3, 1e-4} {
			eb := compressor.AbsBound(tc.f, rel)
			dec, err := sel.Select(tc.f, eb, 0)
			if err != nil {
				t.Fatalf("%s rel=%g: Select: %v", tc.name, rel, err)
			}
			if !known[dec.Codec] {
				t.Fatalf("%s rel=%g: chose unregistered codec %q", tc.name, rel, dec.Codec)
			}
			c, err := codecs.ByName(dec.Codec)
			if err != nil {
				t.Fatalf("%s: ByName(%s): %v", tc.name, dec.Codec, err)
			}
			stream, err := c.Compress(tc.f, eb)
			if err != nil {
				t.Fatalf("%s rel=%g: %s compress: %v", tc.name, rel, dec.Codec, err)
			}
			g, err := c.Decompress(stream)
			if err != nil {
				t.Fatalf("%s rel=%g: %s decompress: %v", tc.name, rel, dec.Codec, err)
			}
			if err := compressor.CheckBound(tc.f, g, eb); err != nil {
				t.Fatalf("%s rel=%g: %s bound violated: %v", tc.name, rel, dec.Codec, err)
			}
			achieved := compressor.Ratio(tc.f, stream)
			sel.Observe(dec, achieved)

			worst := math.Inf(1)
			for _, name := range sel.Codecs() {
				sc, err := codecs.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				ss, err := sc.Compress(tc.f, eb)
				if err != nil {
					continue // a static codec failing only shrinks the comparison set
				}
				if r := compressor.Ratio(tc.f, ss); r < worst {
					worst = r
				}
			}
			if achieved < worst-1e-9 {
				t.Errorf("%s rel=%g: chosen %s achieved %.3f, below worst static %.3f",
					tc.name, rel, dec.Codec, achieved, worst)
			}
		}
	}
}

// TestDeterministicUnderSeed: two selectors with the same seed fed the same
// request sequence (including exploration draws and observations) must
// produce identical decision streams.
func TestDeterministicUnderSeed(t *testing.T) {
	build := func() *Selector {
		s, err := New(Config{Seed: 99, Epsilon: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	grid := conformanceGrid()
	type pick struct {
		codec    string
		explored bool
	}
	run := func(s *Selector) []pick {
		var out []pick
		for round := 0; round < 4; round++ {
			for _, tc := range grid {
				eb := compressor.AbsBound(tc.f, 1e-3)
				d, err := s.Select(tc.f, eb, 0)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, pick{d.Codec, d.Explored})
				// Feed a deterministic synthetic outcome so bias state also
				// evolves identically.
				s.Observe(d, 4+float64(round))
			}
		}
		return out
	}
	pa, pb := run(a), run(b)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("decision %d diverged under same seed: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

// --- injected-estimator tests --------------------------------------------

type fixedEst struct {
	name  string
	ratio float64
	err   error
}

func (e fixedEst) Name() string { return e.name }

func (e fixedEst) EstimateRatio(f *field.Field, eb float64) (float64, error) {
	return e.ratio, e.err
}

func twoCodecSelector(t *testing.T, ratioSZx, ratioZFP float64) *Selector {
	t.Helper()
	s, err := New(Config{
		Codecs:  []string{"szx", "zfp"},
		Seed:    1,
		Epsilon: -1,
		Estimators: map[string]compressor.Estimator{
			"szx": fixedEst{name: "szx", ratio: ratioSZx},
			"zfp": fixedEst{name: "zfp", ratio: ratioZFP},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMispredictionShiftsSelection is the closed-loop acceptance test: szx's
// surrogate overpromises (predicts 10, real outcomes land at 2), and after a
// few observed outcomes the bias correction must move selection to zfp,
// whose honest 8 now wins.
func TestMispredictionShiftsSelection(t *testing.T) {
	sel := twoCodecSelector(t, 10, 8)
	f := smoothGrid("m", 64, 1, 1, 11)

	d, err := sel.Select(f, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Codec != "szx" {
		t.Fatalf("initial pick = %s, want szx (highest raw prediction)", d.Codec)
	}
	shifted := false
	for i := 0; i < 12; i++ {
		sel.Observe(d, 2) // szx actually achieves 2, not 10
		d, err = sel.Select(f, 1e-3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.Codec == "zfp" {
			shifted = true
			break
		}
	}
	if !shifted {
		t.Fatalf("selection never shifted away from overpromising szx; stats: %+v", sel.Stats())
	}
	// The learned bias must be visible in the snapshot.
	var sawBias bool
	for _, a := range sel.Stats().Arms {
		if a.Codec == "szx" && a.BiasEMA > 1 {
			sawBias = true
		}
	}
	if !sawBias {
		t.Error("szx arm bias EMA not reflecting the observed overprediction")
	}
}

// TestTargetPicksCheapestEligible: with a ratio target, the cheapest codec
// predicted to meet it wins even when another predicts more.
func TestTargetPicksCheapestEligible(t *testing.T) {
	sel := twoCodecSelector(t, 6, 20) // szx cheaper, both eligible at target 5
	f := smoothGrid("tg", 64, 1, 1, 12)
	d, err := sel.Select(f, 1e-3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Codec != "szx" {
		t.Fatalf("target=5 pick = %s, want cheapest eligible szx", d.Codec)
	}
	// Target nobody meets: fall back to best prediction.
	d, err = sel.Select(f, 1e-3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Codec != "zfp" {
		t.Fatalf("unreachable target pick = %s, want best-prediction zfp", d.Codec)
	}
}

// TestFallbackAllEstimatorsFail: every surrogate erroring must still yield
// a valid (cheapest) codec, never a panic or an error.
func TestFallbackAllEstimatorsFail(t *testing.T) {
	s, err := New(Config{
		Codecs:  []string{"sperr", "szx"},
		Seed:    1,
		Epsilon: -1,
		Estimators: map[string]compressor.Estimator{
			"sperr": fixedEst{name: "sperr", err: errFixed},
			"szx":   fixedEst{name: "szx", err: errFixed},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := smoothGrid("fb", 64, 1, 1, 13)
	d, err := s.Select(f, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Codec != "szx" {
		t.Fatalf("all-failed fallback = %s, want cheapest szx", d.Codec)
	}
	if d.PredictedRatio() != 0 { //carol:allow floateq zero is the documented "no prediction" sentinel
		t.Fatalf("fallback predicted ratio = %g, want 0", d.PredictedRatio())
	}
	// Observing a fallback decision (no usable prediction) must reject, not
	// corrupt state.
	before := s.Stats().RejectedOutcomes
	s.Observe(d, 3)
	if got := s.Stats().RejectedOutcomes - before; got != 1 {
		t.Fatalf("fallback observe rejects = %d, want 1", got)
	}
}

var errFixed = errEstimator("estimator down")

type errEstimator string

func (e errEstimator) Error() string { return string(e) }

// TestObserveRejectsNonFinite: NaN/Inf/non-positive achieved ratios must
// not move the bias state.
func TestObserveRejectsNonFinite(t *testing.T) {
	sel := twoCodecSelector(t, 10, 8)
	f := smoothGrid("nf", 64, 1, 1, 14)
	d, err := sel.Select(f, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -2} {
		sel.Observe(d, bad)
	}
	st := sel.Stats()
	if st.RejectedOutcomes != 5 {
		t.Errorf("rejected = %d, want 5", st.RejectedOutcomes)
	}
	for _, a := range st.Arms {
		if a.Outcomes != 0 {
			t.Errorf("arm %s/%s recorded %d outcomes from garbage", a.Codec, a.Bucket, a.Outcomes)
		}
	}
	// State still works afterwards.
	sel.Observe(d, 9)
	if got := sel.Stats().Arms; len(got) == 0 {
		t.Fatal("no arms after valid observe")
	}
}

// TestSelectValidation: invalid fields and targets error cleanly.
func TestSelectValidation(t *testing.T) {
	sel := twoCodecSelector(t, 10, 8)
	f := smoothGrid("v", 64, 1, 1, 15)
	if _, err := sel.Select(nil, 1e-3, 0); err == nil {
		t.Error("nil field accepted")
	}
	if _, err := sel.Select(f, 0, 0); err == nil {
		t.Error("zero eb accepted")
	}
	if _, err := sel.Select(f, math.NaN(), 0); err == nil {
		t.Error("NaN eb accepted")
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := sel.Select(f, 1e-3, bad); err == nil {
			t.Errorf("target %g accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Codecs: []string{"szx", "szx"}}); err == nil {
		t.Error("duplicate codec accepted")
	}
	if _, err := New(Config{Codecs: []string{"nope"}}); err == nil {
		t.Error("unknown codec without injected estimator accepted")
	}
}

// TestConcurrentAutoHammer drives Select+Observe+Stats from many
// goroutines; run with -race it is the bandit-state race check the issue
// asks for.
func TestConcurrentAutoHammer(t *testing.T) {
	sel, err := New(Config{Seed: 5, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	fields := []*field.Field{
		smoothGrid("h1", 96, 1, 1, 21),
		noisyGrid("h2", 16, 12, 1, 22),
		constantGrid("h3", 16, 8, 4),
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				f := fields[(w+i)%len(fields)]
				eb := compressor.AbsBound(f, 1e-3)
				d, err := sel.Select(f, eb, 0)
				if err != nil {
					t.Error(err)
					return
				}
				sel.Observe(d, 3+float64(i%7))
				if i%10 == 0 {
					_ = sel.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := sel.Stats()
	if want := int64(workers * 30); st.Decisions != want {
		t.Fatalf("decisions = %d, want %d", st.Decisions, want)
	}
}

// TestStatsJSON: the /v1/selector payload shape must marshal and carry the
// fields the smoke tests grep for.
func TestStatsJSON(t *testing.T) {
	sel := twoCodecSelector(t, 10, 8)
	f := smoothGrid("j", 64, 1, 1, 31)
	d, err := sel.Select(f, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	sel.Observe(d, 7)
	raw, err := json.Marshal(sel.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"codecs", "seed", "epsilon", "decisions", "arms"} {
		if _, ok := back[key]; !ok {
			t.Errorf("stats JSON missing %q: %s", key, raw)
		}
	}
}
