package boost

import (
	"math"
	"reflect"
	"testing"

	"carol/internal/rf"
	"carol/internal/xrand"
)

func synthData(n int, seed uint64, noise float64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		X[i] = []float64{a, b, c}
		y[i] = 3*a - 2*b*b + math.Sin(4*c) + noise*rng.Norm()
	}
	return X, y
}

func mse(t *testing.T, predict func([]float64) (float64, error), X [][]float64, y []float64) float64 {
	t.Helper()
	var s float64
	for i := range X {
		p, err := predict(X[i])
		if err != nil {
			t.Fatal(err)
		}
		d := p - y[i]
		s += d * d
	}
	return s / float64(len(X))
}

func TestLearnsSignal(t *testing.T) {
	X, y := synthData(600, 1, 0.01)
	teX, teY := synthData(200, 2, 0)
	m, err := Train(X, y, Config{Rounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	if got := mse(t, m.Predict, teX, teY); got > 0.05 {
		t.Fatalf("test MSE %g", got)
	}
}

func TestMoreRoundsHelp(t *testing.T) {
	X, y := synthData(500, 3, 0.05)
	teX, teY := synthData(200, 4, 0)
	few, err := Train(X, y, Config{Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Train(X, y, Config{Rounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	if mse(t, many.Predict, teX, teY) >= mse(t, few.Predict, teX, teY) {
		t.Fatal("120 rounds not better than 5")
	}
}

func TestConstantTargetStopsEarly(t *testing.T) {
	X, _ := synthData(50, 5, 0)
	y := make([]float64, len(X))
	for i := range y {
		y[i] = -7
	}
	m, err := Train(X, y, Config{Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds() > 2 {
		t.Fatalf("constant target used %d rounds", m.Rounds())
	}
	p, err := m.Predict(X[0])
	if err != nil || p != -7 {
		t.Fatalf("Predict = %g, %v", p, err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty data accepted")
	}
	X, y := synthData(20, 6, 0)
	m, err := Train(X, y, Config{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("wrong dims accepted")
	}
}

func TestComparableToForest(t *testing.T) {
	// Boosting should be in the same accuracy league as a random forest on
	// this smooth problem (the paper's future-work hypothesis).
	X, y := synthData(500, 7, 0.05)
	teX, teY := synthData(200, 8, 0)
	gb, err := Train(X, y, Config{Rounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	fcfg := rf.DefaultConfig()
	fcfg.NEstimators = 50
	forest, err := rf.Train(X, y, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	gbMSE := mse(t, gb.Predict, teX, teY)
	rfMSE := mse(t, forest.Predict, teX, teY)
	if gbMSE > 4*rfMSE+0.01 {
		t.Fatalf("boosting far behind forest: %g vs %g", gbMSE, rfMSE)
	}
}

func BenchmarkTrain(b *testing.B) {
	rng := xrand.New(1)
	X := make([][]float64, 500)
	y := make([]float64, 500)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = X[i][0] - X[i][1]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, Config{Rounds: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWorkersDeterminism pins the rf parallelism contract on the booster:
// the trained model (structure and predictions) is bit-identical for any
// Config.Workers value.
func TestWorkersDeterminism(t *testing.T) {
	X, y := synthData(300, 9, 0.05)
	qX, _ := synthData(64, 10, 0)
	var refFlat *Flat
	var refPred []float64
	for _, workers := range []int{1, 2, 3, 8} {
		m, err := Train(X, y, Config{Rounds: 25, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fl := m.Flatten()
		for _, st := range fl.Stages {
			st.Cfg.Workers = 0 // machine-local knob, excluded from identity
		}
		pred, err := m.PredictBatch(qX)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if refFlat == nil {
			refFlat, refPred = fl, pred
			continue
		}
		if !reflect.DeepEqual(flatBits(t, fl), flatBits(t, refFlat)) {
			t.Fatalf("workers=%d: flattened model differs from workers=1", workers)
		}
		for i := range pred {
			if math.Float64bits(pred[i]) != math.Float64bits(refPred[i]) {
				t.Fatalf("workers=%d: prediction %d differs: %g vs %g", workers, i, pred[i], refPred[i])
			}
		}
	}
}

// flatBits converts a Flat into an all-integer shadow so reflect.DeepEqual
// compares float fields bit-for-bit (NaN-safe, no float ==).
func flatBits(t *testing.T, fl *Flat) [][]uint64 {
	t.Helper()
	out := [][]uint64{{math.Float64bits(fl.Base), math.Float64bits(fl.Shrinkage), uint64(fl.Dims), uint64(len(fl.Stages))}}
	for _, st := range fl.Stages {
		row := []uint64{uint64(st.Dims), uint64(st.Cfg.NEstimators), uint64(st.Cfg.MaxDepth), uint64(st.Cfg.Seed)}
		for _, n := range st.TreeNodes {
			row = append(row, uint64(n))
		}
		for i := range st.Feature {
			row = append(row, uint64(uint32(st.Feature[i])), uint64(uint32(st.Left[i])), uint64(uint32(st.Right[i])),
				math.Float64bits(st.Thresh[i]), math.Float64bits(st.Value[i]), math.Float64bits(st.Gain[i]))
		}
		out = append(out, row)
	}
	return out
}

func TestFlatRoundTrip(t *testing.T) {
	X, y := synthData(200, 11, 0.05)
	qX, _ := synthData(50, 12, 0)
	m, err := Train(X, y, Config{Rounds: 12, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.PredictBatch(qX)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := FromFlat(m.Flatten())
	if err != nil {
		t.Fatal(err)
	}
	got, err := got2.PredictBatch(qX)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("row %d: round-trip prediction %g, want %g", i, got[i], want[i])
		}
	}
	if got2.Rounds() != m.Rounds() || got2.Dims() != m.Dims() {
		t.Fatalf("round trip shape: %d rounds/%d dims, want %d/%d", got2.Rounds(), got2.Dims(), m.Rounds(), m.Dims())
	}
}

func TestFromFlatRejectsCorrupt(t *testing.T) {
	X, y := synthData(60, 13, 0)
	m, err := Train(X, y, Config{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(fl *Flat)
	}{
		{"nan base", func(fl *Flat) { fl.Base = math.NaN() }},
		{"zero shrinkage", func(fl *Flat) { fl.Shrinkage = 0 }},
		{"negative shrinkage", func(fl *Flat) { fl.Shrinkage = -0.1 }},
		{"inf shrinkage", func(fl *Flat) { fl.Shrinkage = math.Inf(1) }},
		{"zero dims", func(fl *Flat) { fl.Dims = 0 }},
		{"no stages", func(fl *Flat) { fl.Stages = nil }},
		{"nil stage", func(fl *Flat) { fl.Stages[1] = nil }},
		{"stage dims mismatch", func(fl *Flat) { fl.Stages[0].Dims = 7; fl.Dims = 7 }},
		{"corrupt stage", func(fl *Flat) { fl.Stages[0].Feature[0] = 99 }},
	}
	for _, tc := range cases {
		fl := m.Flatten()
		tc.mutate(fl)
		if _, err := FromFlat(fl); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	X, y := synthData(150, 14, 0.05)
	qX, _ := synthData(40, 15, 0)
	m, err := Train(X, y, Config{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := m.PredictBatch(qX)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qX {
		single, err := m.Predict(qX[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(single) != math.Float64bits(batch[i]) {
			t.Fatalf("row %d: batch %g, single %g", i, batch[i], single)
		}
	}
	if _, err := m.PredictBatch([][]float64{{1}}); err == nil {
		t.Fatal("wrong-dims batch accepted")
	}
}
