package boost

import (
	"math"
	"testing"

	"carol/internal/rf"
	"carol/internal/xrand"
)

func synthData(n int, seed uint64, noise float64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		X[i] = []float64{a, b, c}
		y[i] = 3*a - 2*b*b + math.Sin(4*c) + noise*rng.Norm()
	}
	return X, y
}

func mse(t *testing.T, predict func([]float64) (float64, error), X [][]float64, y []float64) float64 {
	t.Helper()
	var s float64
	for i := range X {
		p, err := predict(X[i])
		if err != nil {
			t.Fatal(err)
		}
		d := p - y[i]
		s += d * d
	}
	return s / float64(len(X))
}

func TestLearnsSignal(t *testing.T) {
	X, y := synthData(600, 1, 0.01)
	teX, teY := synthData(200, 2, 0)
	m, err := Train(X, y, Config{Rounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	if got := mse(t, m.Predict, teX, teY); got > 0.05 {
		t.Fatalf("test MSE %g", got)
	}
}

func TestMoreRoundsHelp(t *testing.T) {
	X, y := synthData(500, 3, 0.05)
	teX, teY := synthData(200, 4, 0)
	few, err := Train(X, y, Config{Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Train(X, y, Config{Rounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	if mse(t, many.Predict, teX, teY) >= mse(t, few.Predict, teX, teY) {
		t.Fatal("120 rounds not better than 5")
	}
}

func TestConstantTargetStopsEarly(t *testing.T) {
	X, _ := synthData(50, 5, 0)
	y := make([]float64, len(X))
	for i := range y {
		y[i] = -7
	}
	m, err := Train(X, y, Config{Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds() > 2 {
		t.Fatalf("constant target used %d rounds", m.Rounds())
	}
	p, err := m.Predict(X[0])
	if err != nil || p != -7 {
		t.Fatalf("Predict = %g, %v", p, err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty data accepted")
	}
	X, y := synthData(20, 6, 0)
	m, err := Train(X, y, Config{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("wrong dims accepted")
	}
}

func TestComparableToForest(t *testing.T) {
	// Boosting should be in the same accuracy league as a random forest on
	// this smooth problem (the paper's future-work hypothesis).
	X, y := synthData(500, 7, 0.05)
	teX, teY := synthData(200, 8, 0)
	gb, err := Train(X, y, Config{Rounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	fcfg := rf.DefaultConfig()
	fcfg.NEstimators = 50
	forest, err := rf.Train(X, y, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	gbMSE := mse(t, gb.Predict, teX, teY)
	rfMSE := mse(t, forest.Predict, teX, teY)
	if gbMSE > 4*rfMSE+0.01 {
		t.Fatalf("boosting far behind forest: %g vs %g", gbMSE, rfMSE)
	}
}

func BenchmarkTrain(b *testing.B) {
	rng := xrand.New(1)
	X := make([][]float64, 500)
	y := make([]float64, 500)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = X[i][0] - X[i][1]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, Config{Rounds: 30}); err != nil {
			b.Fatal(err)
		}
	}
}
