// Package boost implements gradient-boosted regression trees with squared
// loss — one of the alternative machine-learning models the CAROL paper's
// conclusion proposes exploring in place of the random forest. Each round
// fits a shallow CART tree (reusing package rf's tree machinery via
// single-tree forests) to the current residuals and adds it with shrinkage.
package boost

import (
	"errors"
	"fmt"

	"carol/internal/rf"
)

// Config tunes the booster. Zero values take defaults.
type Config struct {
	// Rounds is the number of boosting stages. Default 100.
	Rounds int
	// Depth is the per-tree depth. Default 3 (classic stumps-plus).
	Depth int
	// Shrinkage is the learning rate. Default 0.1.
	Shrinkage float64
	// MinSamplesLeaf guards tiny leaves. Default 2.
	MinSamplesLeaf int
	// Seed drives tie-breaking inside tree construction.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.Depth <= 0 {
		c.Depth = 3
	}
	if c.Shrinkage <= 0 {
		c.Shrinkage = 0.1
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Model is a trained gradient-boosted ensemble.
type Model struct {
	base      float64
	stages    []*rf.Forest // each a single-tree forest
	shrinkage float64
	dims      int
}

// Train fits a boosted ensemble on (X, y).
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("boost: empty or mismatched training data")
	}
	var base float64
	for _, v := range y {
		base += v
	}
	base /= float64(len(y))

	m := &Model{base: base, shrinkage: cfg.Shrinkage, dims: len(X[0])}
	resid := make([]float64, len(y))
	for i, v := range y {
		resid[i] = v - base
	}
	treeCfg := rf.Config{
		NEstimators:     1,
		MaxFeatures:     rf.MaxFeaturesAuto,
		MaxDepth:        cfg.Depth,
		MinSamplesSplit: 2 * cfg.MinSamplesLeaf,
		MinSamplesLeaf:  cfg.MinSamplesLeaf,
		Bootstrap:       false,
	}
	for round := 0; round < cfg.Rounds; round++ {
		treeCfg.Seed = cfg.Seed + uint64(round)
		tree, err := rf.Train(X, resid, treeCfg)
		if err != nil {
			return nil, fmt.Errorf("boost: round %d: %w", round, err)
		}
		m.stages = append(m.stages, tree)
		// Update residuals.
		var maxAbs float64
		for i := range X {
			p, err := tree.Predict(X[i])
			if err != nil {
				return nil, err
			}
			resid[i] -= cfg.Shrinkage * p
			if a := abs(resid[i]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs < 1e-12 {
			break // perfectly fit; further rounds are no-ops
		}
	}
	return m, nil
}

// Rounds returns the number of fitted stages.
func (m *Model) Rounds() int { return len(m.stages) }

// Predict returns the boosted prediction for one feature row.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != m.dims {
		return 0, fmt.Errorf("boost: predict with %d features, trained on %d", len(x), m.dims)
	}
	out := m.base
	for _, stage := range m.stages {
		p, err := stage.Predict(x)
		if err != nil {
			return 0, err
		}
		out += m.shrinkage * p
	}
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
