// Package boost implements gradient-boosted regression trees with squared
// loss — one of the alternative machine-learning models the CAROL paper's
// conclusion proposes exploring in place of the random forest. Each round
// fits a shallow CART tree (reusing package rf's tree machinery via
// single-tree forests) to the current residuals and adds it with shrinkage.
//
// Training obeys the same parallelism contract as package rf: Config.Workers
// only bounds CPU concurrency (per-round tree growth and the batch residual
// update both run on rf's deterministic worker pools), so a trained model is
// bit-identical for every Workers value.
package boost

import (
	"errors"
	"fmt"
	"math"

	"carol/internal/rf"
)

// Config tunes the booster. Zero values take defaults.
type Config struct {
	// Rounds is the number of boosting stages. Default 100.
	Rounds int
	// Depth is the per-tree depth. Default 3 (classic stumps-plus).
	Depth int
	// Shrinkage is the learning rate. Default 0.1.
	Shrinkage float64
	// MinSamplesLeaf guards tiny leaves. Default 2.
	MinSamplesLeaf int
	// Seed drives tie-breaking inside tree construction.
	Seed uint64
	// Workers bounds the goroutines used for per-round tree growth and the
	// residual-update batch prediction: 0 uses every core, 1 forces the
	// serial path. It does not affect the trained model — output is
	// bit-identical for every value (the rf contract).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.Depth <= 0 {
		c.Depth = 3
	}
	if c.Shrinkage <= 0 {
		c.Shrinkage = 0.1
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Model is a trained gradient-boosted ensemble.
type Model struct {
	base      float64
	stages    []*rf.Forest // each a single-tree forest
	shrinkage float64
	dims      int
}

// Train fits a boosted ensemble on (X, y).
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("boost: empty or mismatched training data")
	}
	var base float64
	for _, v := range y {
		base += v
	}
	base /= float64(len(y))

	m := &Model{base: base, shrinkage: cfg.Shrinkage, dims: len(X[0])}
	resid := make([]float64, len(y))
	for i, v := range y {
		resid[i] = v - base
	}
	treeCfg := rf.Config{
		NEstimators:     1,
		MaxFeatures:     rf.MaxFeaturesAuto,
		MaxDepth:        cfg.Depth,
		MinSamplesSplit: 2 * cfg.MinSamplesLeaf,
		MinSamplesLeaf:  cfg.MinSamplesLeaf,
		Bootstrap:       false,
		Workers:         cfg.Workers,
	}
	for round := 0; round < cfg.Rounds; round++ {
		treeCfg.Seed = cfg.Seed + uint64(round)
		tree, err := rf.Train(X, resid, treeCfg)
		if err != nil {
			return nil, fmt.Errorf("boost: round %d: %w", round, err)
		}
		m.stages = append(m.stages, tree)
		// Update residuals with one batch pass (parallel across rows on the
		// Workers pool; per-row predictions are independent, so the result
		// is bit-identical for any worker count).
		preds, err := tree.PredictBatch(X)
		if err != nil {
			return nil, fmt.Errorf("boost: round %d residuals: %w", round, err)
		}
		var maxAbs float64
		for i := range X {
			resid[i] -= cfg.Shrinkage * preds[i]
			if a := abs(resid[i]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs < 1e-12 {
			break // perfectly fit; further rounds are no-ops
		}
	}
	return m, nil
}

// Rounds returns the number of fitted stages.
func (m *Model) Rounds() int { return len(m.stages) }

// Dims returns the input dimensionality the model was trained on.
func (m *Model) Dims() int { return m.dims }

// SetWorkers rebinds prediction parallelism on every stage without touching
// the model (predictions are bit-identical for every value).
func (m *Model) SetWorkers(w int) {
	for _, stage := range m.stages {
		stage.SetWorkers(w)
	}
}

// Stats summarizes the ensemble's shape in rf.Stats terms: Trees is the
// stage count, Nodes the total node count, MaxDepth the deepest stage.
func (m *Model) Stats() rf.Stats {
	s := rf.Stats{Trees: len(m.stages)}
	for _, stage := range m.stages {
		ss := stage.Stats()
		s.Nodes += ss.Nodes
		if ss.MaxDepth > s.MaxDepth {
			s.MaxDepth = ss.MaxDepth
		}
	}
	return s
}

// Predict returns the boosted prediction for one feature row.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != m.dims {
		return 0, fmt.Errorf("boost: predict with %d features, trained on %d", len(x), m.dims)
	}
	out := m.base
	for _, stage := range m.stages {
		p, err := stage.Predict(x)
		if err != nil {
			return 0, err
		}
		out += m.shrinkage * p
	}
	return out, nil
}

// PredictBatch predicts every row, one stage batch pass at a time.
func (m *Model) PredictBatch(rows [][]float64) ([]float64, error) {
	out := make([]float64, len(rows))
	for i, row := range rows {
		if len(row) != m.dims {
			return nil, fmt.Errorf("boost: row %d has %d features, trained on %d", i, len(row), m.dims)
		}
		out[i] = m.base
	}
	for _, stage := range m.stages {
		preds, err := stage.PredictBatch(rows)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] += m.shrinkage * preds[i]
		}
	}
	return out, nil
}

// Flat is the flattened, serialization-ready form of a Model: the scalar
// hyper-state plus every stage exported through rf.Flat. It carries no
// unexported state, so internal/model can encode it field by field and
// reconstruct an identical model with FromFlat.
type Flat struct {
	Base      float64
	Shrinkage float64
	Dims      int
	Stages    []*rf.Flat
}

// Flatten exports the model into its serialization form.
func (m *Model) Flatten() *Flat {
	fl := &Flat{Base: m.base, Shrinkage: m.shrinkage, Dims: m.dims}
	fl.Stages = make([]*rf.Flat, len(m.stages))
	for i, stage := range m.stages {
		fl.Stages[i] = stage.Flatten()
	}
	return fl
}

// FromFlat validates fl and reconstructs the model. Validation is total —
// fl may come from an attacker-controlled artifact: scalars must be finite
// (shrinkage positive), at least one stage must exist, and every stage must
// pass rf.FromFlat with the model's input dimensionality.
func FromFlat(fl *Flat) (*Model, error) {
	if math.IsNaN(fl.Base) || math.IsInf(fl.Base, 0) {
		return nil, errors.New("boost: flat model has non-finite base")
	}
	if !(fl.Shrinkage > 0) || math.IsInf(fl.Shrinkage, 0) {
		return nil, fmt.Errorf("boost: flat model shrinkage %g outside (0, inf)", fl.Shrinkage)
	}
	if fl.Dims < 1 {
		return nil, fmt.Errorf("boost: flat model with %d input dims", fl.Dims)
	}
	if len(fl.Stages) == 0 {
		return nil, errors.New("boost: flat model with no stages")
	}
	m := &Model{base: fl.Base, shrinkage: fl.Shrinkage, dims: fl.Dims}
	m.stages = make([]*rf.Forest, len(fl.Stages))
	for i, sf := range fl.Stages {
		if sf == nil {
			return nil, fmt.Errorf("boost: flat stage %d is nil", i)
		}
		if sf.Dims != fl.Dims {
			return nil, fmt.Errorf("boost: flat stage %d has %d dims, model has %d", i, sf.Dims, fl.Dims)
		}
		stage, err := rf.FromFlat(sf)
		if err != nil {
			return nil, fmt.Errorf("boost: flat stage %d: %w", i, err)
		}
		m.stages[i] = stage
	}
	return m, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
