// Package ring implements the consistent-hash ring carolgate routes on:
// every shard contributes a fixed number of virtual nodes (points on a
// 64-bit hash circle), and a key is owned by the first shard point at or
// clockwise of the key's hash. Placement is a pure function of the member
// names, the virtual-node count and FNV-1a — no process state, no
// randomness — so two gates (or one gate across restarts) built from the
// same shard list route every key identically, and a gate can be replaced
// mid-flight without a routing flap.
//
// Virtual nodes smooth the load: with V points per shard the expected
// per-shard share of the keyspace concentrates around 1/N with variance
// shrinking as V grows. The default (128) keeps the hottest shard well
// under 2x the mean for realistic fleet sizes (asserted by the package
// tests), while add/remove of one shard moves only the keys that shard
// owned (~1/N of the keyspace) — the property that makes shard restarts
// cheap for a routing tier with per-shard caches or affinity.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-shard point count used when Options.VirtualNodes
// is zero. 128 points keeps max/mean load below 2 for fleets up to ~64
// shards (see TestDistributionUniformity) at 1 MiB of ring per 1k shards.
const DefaultVirtualNodes = 128

// Options tunes ring construction. The zero value takes defaults.
type Options struct {
	// VirtualNodes is the number of hash-circle points per shard.
	// Default: DefaultVirtualNodes.
	VirtualNodes int
}

// point is one virtual node: a position on the circle and the index of the
// shard that owns it.
type point struct {
	hash  uint64
	shard int // index into Ring.shards
}

// Ring is an immutable consistent-hash ring over named shards. Build one
// with New; membership changes build a new Ring (membership is an
// operator-scale event, lookups are per-request — immutability keeps the
// hot path lock-free and trivially shareable across goroutines).
type Ring struct {
	shards []string
	points []point
}

// hashKey is the one hash function of the ring. FNV-1a is deterministic
// across processes, architectures and Go versions — the property the
// placement contract depends on — but its raw output over near-identical
// strings ("shard-0#1", "shard-0#2", …) is correlated enough to skew
// vnode placement, so a splitmix64-style avalanche finalizer mixes every
// input bit into every output bit. Both vnode points and lookup keys go
// through the same function.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // hash.Hash never errors
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// New builds a ring over the given shard names. Names must be non-empty
// and unique; order does not matter (the ring sorts members so any
// permutation of the same fleet yields identical placement). An empty
// shard list yields a valid empty ring for which Lookup returns nothing.
func New(shards []string, opts Options) (*Ring, error) {
	v := opts.VirtualNodes
	if v <= 0 {
		v = DefaultVirtualNodes
	}
	names := make([]string, len(shards))
	copy(names, shards)
	sort.Strings(names)
	for i, s := range names {
		if s == "" {
			return nil, fmt.Errorf("ring: empty shard name")
		}
		if i > 0 && names[i-1] == s {
			return nil, fmt.Errorf("ring: duplicate shard %q", s)
		}
	}
	r := &Ring{
		shards: names,
		points: make([]point, 0, len(names)*v),
	}
	for si, s := range names {
		for i := 0; i < v; i++ {
			// The vnode key embeds a separator that cannot appear in a
			// decimal index, so "shard1"+"1" and "shard11"+"" cannot collide.
			r.points = append(r.points, point{hashKey(s + "#" + strconv.Itoa(i)), si})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare but possible) break on shard index so
		// the sorted order — and therefore placement — stays deterministic.
		return a.shard < b.shard
	})
	return r, nil
}

// Shards returns the ring members in sorted order. The slice is shared;
// callers must not mutate it.
func (r *Ring) Shards() []string { return r.shards }

// Len returns the number of member shards.
func (r *Ring) Len() int { return len(r.shards) }

// Owner returns the shard owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	seq := r.Lookup(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Lookup returns up to n distinct shards for key in preference order: the
// owner first, then the next distinct shards clockwise on the circle.
// That walk is the retry schedule — a router that fails on the owner tries
// the same shards, in the same order, as every other router would.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	h := hashKey(key)
	// First point with hash >= h, wrapping to 0.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	out := make([]string, 0, n)
	seen := make(map[int]struct{}, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if _, dup := seen[p.shard]; dup {
			continue
		}
		seen[p.shard] = struct{}{}
		out = append(out, r.shards[p.shard])
	}
	return out
}
