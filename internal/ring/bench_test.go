package ring

import (
	"fmt"
	"testing"
)

// BenchmarkRingLookup is the gate's per-request routing cost: one key
// hashed and placed on an 8-shard ring with the default virtual-node
// count. Committed to BENCH_GATE.json and gated by benchdiff in CI.
func BenchmarkRingLookup(b *testing.B) {
	r := mustNew(b, shardNames(8), Options{})
	ks := keys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := r.Lookup(ks[i%len(ks)], 3)
		if len(seq) != 3 {
			b.Fatalf("lookup returned %d shards", len(seq))
		}
	}
}

// BenchmarkRingBuild measures membership-change cost (a new ring per
// join/leave): not a hot path, but it bounds how often a control loop may
// rebuild without showing up in tail latency.
func BenchmarkRingBuild(b *testing.B) {
	shards := shardNames(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := New(shards, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Len() != 8 {
			b.Fatal("bad ring")
		}
	}
}

var sinkSeq []string

func BenchmarkRingLookupScale(b *testing.B) {
	for _, n := range []int{3, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			r := mustNew(b, shardNames(n), Options{})
			ks := keys(1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkSeq = r.Lookup(ks[i%len(ks)], 2)
			}
		})
	}
}
