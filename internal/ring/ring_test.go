package ring

import (
	"fmt"
	"testing"
)

func mustNew(t testing.TB, shards []string, opts Options) *Ring {
	t.Helper()
	r, err := New(shards, opts)
	if err != nil {
		t.Fatalf("New(%v): %v", shards, err)
	}
	return r
}

func shardNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%d.example:8080", i)
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("field/%d/run-%d", i%17, i)
	}
	return out
}

func TestNewRejectsBadMembers(t *testing.T) {
	if _, err := New([]string{"a", ""}, Options{}); err == nil {
		t.Fatal("New accepted an empty shard name")
	}
	if _, err := New([]string{"a", "b", "a"}, Options{}); err == nil {
		t.Fatal("New accepted a duplicate shard")
	}
}

func TestEmptyRing(t *testing.T) {
	r := mustNew(t, nil, Options{})
	if r.Len() != 0 {
		t.Fatalf("empty ring Len = %d", r.Len())
	}
	if got := r.Lookup("k", 3); got != nil {
		t.Fatalf("empty ring Lookup = %v, want nil", got)
	}
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
}

// TestDistributionUniformity: across 1k keys and several fleet sizes, no
// shard may own more than 2x the mean share — the bound the gate's load
// model (and the ISSUE acceptance criteria) rely on.
func TestDistributionUniformity(t *testing.T) {
	ks := keys(1000)
	for _, n := range []int{2, 3, 5, 8, 16} {
		r := mustNew(t, shardNames(n), Options{})
		counts := map[string]int{}
		for _, k := range ks {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d shards ever own a key", n, len(counts))
		}
		mean := float64(len(ks)) / float64(n)
		for s, c := range counts {
			if float64(c) > 2*mean {
				t.Errorf("n=%d: shard %s owns %d keys, >2x mean %.1f", n, s, c, mean)
			}
		}
	}
}

// TestMinimalMovement: adding or removing one shard must move fewer than
// 2/N of the keys — the consistent-hashing property that makes membership
// changes cheap. A modulo-hash router would move (N-1)/N of them.
func TestMinimalMovement(t *testing.T) {
	ks := keys(1000)
	for _, n := range []int{3, 5, 10} {
		before := mustNew(t, shardNames(n), Options{})
		grown := mustNew(t, shardNames(n+1), Options{})
		shrunk := mustNew(t, shardNames(n)[:n-1], Options{})

		movedGrow, movedShrink := 0, 0
		for _, k := range ks {
			if before.Owner(k) != grown.Owner(k) {
				movedGrow++
			}
			if before.Owner(k) != shrunk.Owner(k) {
				movedShrink++
			}
		}
		maxMoved := int(2.0 / float64(n) * float64(len(ks)))
		if movedGrow > maxMoved {
			t.Errorf("n=%d→%d: %d/%d keys moved on join, want < %d", n, n+1, movedGrow, len(ks), maxMoved)
		}
		if movedShrink > maxMoved {
			t.Errorf("n=%d→%d: %d/%d keys moved on leave, want < %d", n, n-1, movedShrink, len(ks), maxMoved)
		}
	}
}

// TestDeterminism: the same members produce the same placements regardless
// of input order or which Ring instance answers — required for gate
// restarts and for running several gates side by side.
func TestDeterminism(t *testing.T) {
	shards := shardNames(5)
	reversed := make([]string, len(shards))
	for i, s := range shards {
		reversed[len(shards)-1-i] = s
	}
	a := mustNew(t, shards, Options{})
	b := mustNew(t, reversed, Options{})
	for _, k := range keys(500) {
		sa := a.Lookup(k, 3)
		sb := b.Lookup(k, 3)
		if len(sa) != len(sb) {
			t.Fatalf("key %q: lookup lengths differ: %v vs %v", k, sa, sb)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("key %q: placement differs at %d: %v vs %v", k, i, sa, sb)
			}
		}
	}
}

// TestDeterminismGolden pins a handful of placements to literal values: if
// the hash function, vnode key format or tie-break ever changes, this
// fails — placement is a wire-compatibility contract between gate
// processes, not an implementation detail.
func TestDeterminismGolden(t *testing.T) {
	r := mustNew(t, []string{"alpha:1", "beta:2", "gamma:3"}, Options{})
	want := map[string]string{
		"field/0/run-0": "beta:2",
		"field/1/run-1": "alpha:1",
		"field/2/run-2": "gamma:3",
		"miranda":       "beta:2",
		"":              "alpha:1",
	}
	for k, w := range want {
		if got := r.Owner(k); got != w {
			t.Errorf("Owner(%q) = %q, want %q", k, got, w)
		}
	}
}

func TestLookupDistinctReplicas(t *testing.T) {
	r := mustNew(t, shardNames(4), Options{})
	for _, k := range keys(100) {
		got := r.Lookup(k, 4)
		if len(got) != 4 {
			t.Fatalf("Lookup(%q, 4) returned %d shards", k, len(got))
		}
		seen := map[string]bool{}
		for _, s := range got {
			if seen[s] {
				t.Fatalf("Lookup(%q, 4) repeats shard %s: %v", k, s, got)
			}
			seen[s] = true
		}
	}
	// Asking for more replicas than shards clamps.
	if got := r.Lookup("k", 99); len(got) != 4 {
		t.Fatalf("Lookup(k, 99) returned %d shards, want 4", len(got))
	}
}

func TestOwnerIsFirstReplica(t *testing.T) {
	r := mustNew(t, shardNames(5), Options{})
	for _, k := range keys(100) {
		if r.Owner(k) != r.Lookup(k, 2)[0] {
			t.Fatalf("Owner(%q) != Lookup(%q, 2)[0]", k, k)
		}
	}
}
