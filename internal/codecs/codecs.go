// Package codecs provides the registry tying compressor names to their
// implementations and SECRE surrogates, so frameworks and tools can be
// configured with plain strings ("szx", "zfp", "sz3", "sperr").
package codecs

import (
	"fmt"

	"carol/internal/compressor"
	"carol/internal/secre"
	"carol/internal/sperr"
	"carol/internal/sz3"
	"carol/internal/szp"
	"carol/internal/szx"
	"carol/internal/zfp"
)

// Names lists the compressors of the paper's evaluation, in its canonical
// order. The experiment harness iterates over exactly these four so its
// tables match the paper's.
var Names = []string{"szx", "zfp", "sz3", "sperr"}

// ExtendedNames additionally includes the extension codecs available via
// ByName (currently szp, the cuSZp-style delta compressor named in the
// paper's experimental setup).
var ExtendedNames = []string{"szx", "zfp", "sz3", "sperr", "szp"}

// HighThroughput reports whether name belongs to the paper's
// "high throughput" group (SZx, ZFP) as opposed to the
// "high compression ratio" group (SZ3, SPERR).
func HighThroughput(name string) bool { return name == "szx" || name == "zfp" }

// ByName returns the full compressor for name, wrapped with the
// compressor.Instrument observability layer so every Compress/Decompress
// issued through the registry shows up in obs.Default's per-codec latency
// and throughput metrics (DESIGN.md §10).
func ByName(name string) (compressor.Codec, error) {
	switch name {
	case "szx":
		return compressor.Instrument(szx.New()), nil
	case "zfp":
		return compressor.Instrument(zfp.New()), nil
	case "sz3":
		return compressor.Instrument(sz3.New()), nil
	case "sperr":
		return compressor.Instrument(sperr.New()), nil
	case "szp":
		return compressor.Instrument(szp.New()), nil
	default:
		return nil, fmt.Errorf("codecs: unknown compressor %q (have %v)", name, ExtendedNames)
	}
}

// SurrogateByName returns the SECRE surrogate estimator for name with
// default sampling options.
func SurrogateByName(name string) (compressor.Estimator, error) {
	return secre.New(name, secre.Options{})
}

// All returns every full compressor.
func All() []compressor.Codec {
	out := make([]compressor.Codec, 0, len(Names))
	for _, n := range Names {
		c, err := ByName(n)
		if err != nil {
			panic(err) // unreachable: Names is the source of truth
		}
		out = append(out, c)
	}
	return out
}
