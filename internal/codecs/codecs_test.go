package codecs

import "testing"

func TestByNameAll(t *testing.T) {
	for _, name := range Names {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("codec %s reports name %s", name, c.Name())
		}
		s, err := SurrogateByName(name)
		if err != nil {
			t.Fatalf("%s surrogate: %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("surrogate %s reports name %s", name, s.Name())
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("lzma"); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := SurrogateByName("lzma"); err == nil {
		t.Fatal("unknown surrogate accepted")
	}
}

func TestAll(t *testing.T) {
	all := All()
	if len(all) != len(Names) {
		t.Fatalf("All() returned %d codecs", len(all))
	}
	for i, c := range all {
		if c.Name() != Names[i] {
			t.Fatalf("All()[%d] = %s, want %s", i, c.Name(), Names[i])
		}
	}
}

func TestHighThroughputGrouping(t *testing.T) {
	groups := map[string]bool{"szx": true, "zfp": true, "sz3": false, "sperr": false}
	for name, want := range groups {
		if got := HighThroughput(name); got != want {
			t.Errorf("HighThroughput(%s) = %v, want %v", name, got, want)
		}
	}
}
