package codecs

import (
	"bytes"
	"testing"

	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/xrand"
)

// conformanceFields builds randomized 1D, 2D and 3D fields with mixed
// smooth-plus-noise content — smooth so predictive codecs exercise their
// happy paths, noisy so quantizers and outlier paths fire too.
func conformanceFields(seed uint64) []*field.Field {
	noise := xrand.NewNoise(seed)
	rng := xrand.New(seed ^ 0x9E3779B97F4A7C15)
	fill := func(f *field.Field, scale float64) *field.Field {
		for z := 0; z < f.Nz; z++ {
			for y := 0; y < f.Ny; y++ {
				for x := 0; x < f.Nx; x++ {
					v := noise.FBm(float64(x)/9, float64(y)/9, float64(z)/9, 4, 0.5)
					v += 0.05 * rng.Norm() // sub-bound jitter
					f.Set(x, y, z, float32(scale*v))
				}
			}
		}
		return f
	}
	return []*field.Field{
		fill(field.New("conf1d", 611, 1, 1), 2),
		fill(field.New("conf2d", 53, 37, 1), 5),
		fill(field.New("conf3d", 24, 20, 9), 3),
	}
}

// TestConformanceRoundTrip is the codec conformance suite: every registered
// codec (including extensions) must, for every dimensionality and error
// bound in the sweep, (a) reconstruct within the absolute bound at every
// sample, (b) recover the exact dimensions, and (c) emit byte-identical
// streams on repeated compression of the same input.
func TestConformanceRoundTrip(t *testing.T) {
	fields := conformanceFields(4242)
	rels := []float64{1e-1, 1e-2, 1e-3, 1e-4}
	for _, codec := range allExtended(t) {
		for _, f := range fields {
			for _, rel := range rels {
				eb := compressor.AbsBound(f, rel)
				stream, err := codec.Compress(f, eb)
				if err != nil {
					t.Fatalf("%s %s rel=%g: compress: %v", codec.Name(), f.Name, rel, err)
				}
				again, err := codec.Compress(f, eb)
				if err != nil {
					t.Fatalf("%s %s rel=%g: recompress: %v", codec.Name(), f.Name, rel, err)
				}
				if !bytes.Equal(stream, again) {
					t.Errorf("%s %s rel=%g: nondeterministic stream", codec.Name(), f.Name, rel)
				}
				g, err := codec.Decompress(stream)
				if err != nil {
					t.Fatalf("%s %s rel=%g: decompress: %v", codec.Name(), f.Name, rel, err)
				}
				if g.Nx != f.Nx || g.Ny != f.Ny || g.Nz != f.Nz {
					t.Fatalf("%s %s rel=%g: dims %dx%dx%d, want %dx%dx%d",
						codec.Name(), f.Name, rel, g.Nx, g.Ny, g.Nz, f.Nx, f.Ny, f.Nz)
				}
				if err := compressor.CheckBound(f, g, eb); err != nil {
					t.Errorf("%s %s rel=%g: bound violated: %v", codec.Name(), f.Name, rel, err)
				}
				if r := compressor.Ratio(f, stream); r <= 0 {
					t.Errorf("%s %s rel=%g: ratio %g", codec.Name(), f.Name, rel, r)
				}
			}
		}
	}
}

// TestConformanceDecodeDeterminism decodes the same stream twice and
// requires bit-identical reconstructions.
func TestConformanceDecodeDeterminism(t *testing.T) {
	fields := conformanceFields(777)
	for _, codec := range allExtended(t) {
		f := fields[2]
		eb := compressor.AbsBound(f, 1e-3)
		stream, err := codec.Compress(f, eb)
		if err != nil {
			t.Fatal(err)
		}
		a, err := codec.Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		b, err := codec.Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] { //carol:allow floateq decode determinism requires exact equality
				t.Fatalf("%s: decode nondeterministic at sample %d", codec.Name(), i)
			}
		}
	}
}
