package codecs

import (
	"fmt"
	"testing"

	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/xrand"
)

// allExtended returns every codec including extensions, so robustness
// coverage includes szp.
func allExtended(t *testing.T) []compressor.Codec {
	t.Helper()
	out := make([]compressor.Codec, 0, len(ExtendedNames))
	for _, n := range ExtendedNames {
		c, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

// corruptionField builds a small but non-trivial field to compress.
func corruptionField() *field.Field {
	n := xrand.NewNoise(99)
	f := field.New("robust", 24, 20, 8)
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			for x := 0; x < f.Nx; x++ {
				f.Set(x, y, z, float32(3*n.FBm(float64(x)/10, float64(y)/10, float64(z)/10, 4, 0.5)))
			}
		}
	}
	return f
}

// mustNotPanic runs the decoder on a corrupted stream; any outcome (error
// or garbage field) is acceptable, a panic is not.
func mustNotPanic(t *testing.T, codec compressor.Codec, stream []byte, what string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: decoder panicked on %s: %v", codec.Name(), what, r)
		}
	}()
	_, _ = codec.Decompress(stream)
}

// TestDecoderRobustnessBitFlips injects single- and multi-byte corruption
// everywhere in a valid stream. Failure injection per DESIGN.md: lossy
// decoders face bit rot and truncated transfers in practice and must fail
// with errors, never crash.
func TestDecoderRobustnessBitFlips(t *testing.T) {
	f := corruptionField()
	rng := xrand.New(7)
	for _, codec := range allExtended(t) {
		stream, err := codec.Compress(f, compressor.AbsBound(f, 1e-2))
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		// Exhaustive single-byte flips over the header region, random flips
		// over the payload.
		limit := len(stream)
		if limit > 64 {
			limit = 64
		}
		for i := 0; i < limit; i++ {
			bad := append([]byte(nil), stream...)
			bad[i] ^= 0xFF
			mustNotPanic(t, codec, bad, fmt.Sprintf("header flip @%d", i))
		}
		for trial := 0; trial < 300; trial++ {
			bad := append([]byte(nil), stream...)
			flips := rng.Intn(4) + 1
			for k := 0; k < flips; k++ {
				bad[rng.Intn(len(bad))] ^= byte(1 << rng.Intn(8))
			}
			mustNotPanic(t, codec, bad, "payload flips")
		}
	}
}

func TestDecoderRobustnessTruncation(t *testing.T) {
	f := corruptionField()
	for _, codec := range allExtended(t) {
		stream, err := codec.Compress(f, compressor.AbsBound(f, 1e-2))
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		for _, keep := range []int{0, 1, 8, 20, len(stream) / 4, len(stream) / 2, len(stream) - 1} {
			if keep > len(stream) {
				continue
			}
			mustNotPanic(t, codec, stream[:keep], fmt.Sprintf("truncated to %d", keep))
		}
	}
}

func TestDecoderRobustnessGarbage(t *testing.T) {
	rng := xrand.New(8)
	for _, codec := range allExtended(t) {
		for trial := 0; trial < 100; trial++ {
			garbage := make([]byte, rng.Intn(200))
			for i := range garbage {
				garbage[i] = byte(rng.Uint64())
			}
			mustNotPanic(t, codec, garbage, "garbage")
		}
	}
}

// TestStreamsDeterministic compresses the same field twice with every
// codec and requires byte-identical streams — reproducible archives are a
// release requirement for scientific data management.
func TestStreamsDeterministic(t *testing.T) {
	f := corruptionField()
	for _, codec := range allExtended(t) {
		a, err := codec.Compress(f, compressor.AbsBound(f, 1e-3))
		if err != nil {
			t.Fatal(err)
		}
		b, err := codec.Compress(f, compressor.AbsBound(f, 1e-3))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: stream lengths differ: %d vs %d", codec.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: streams differ at byte %d", codec.Name(), i)
			}
		}
	}
}

// TestRecompressionStability compresses a reconstruction again at the same
// bound: the second stream must not blow up in size (the reconstruction is
// by construction at least as smooth as the original).
func TestRecompressionStability(t *testing.T) {
	f := corruptionField()
	for _, codec := range allExtended(t) {
		eb := compressor.AbsBound(f, 1e-3)
		s1, err := codec.Compress(f, eb)
		if err != nil {
			t.Fatal(err)
		}
		g, err := codec.Decompress(s1)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := codec.Compress(g, eb)
		if err != nil {
			t.Fatalf("%s: recompress: %v", codec.Name(), err)
		}
		if float64(len(s2)) > 1.6*float64(len(s1)) {
			t.Errorf("%s: recompression grew %d -> %d bytes", codec.Name(), len(s1), len(s2))
		}
	}
}

// TestDecoderRobustnessCrossCodec feeds each codec the streams of the
// others; the magic byte must reject them cleanly.
func TestDecoderRobustnessCrossCodec(t *testing.T) {
	f := corruptionField()
	streams := map[string][]byte{}
	for _, codec := range allExtended(t) {
		s, err := codec.Compress(f, compressor.AbsBound(f, 1e-2))
		if err != nil {
			t.Fatal(err)
		}
		streams[codec.Name()] = s
	}
	for _, codec := range allExtended(t) {
		for other, s := range streams {
			if other == codec.Name() {
				continue
			}
			if _, err := codec.Decompress(s); err == nil {
				t.Errorf("%s accepted a %s stream", codec.Name(), other)
			}
		}
	}
}
