package codecs

import (
	"errors"
	"math"
	"testing"

	"carol/internal/compressor"
	"carol/internal/safedec"
	"carol/internal/szp"
)

// magicFor returns the header magic byte each registered codec expects.
func magicFor(t *testing.T, name string) byte {
	t.Helper()
	switch name {
	case "szx":
		return compressor.MagicSZx
	case "zfp":
		return compressor.MagicZFP
	case "sz3":
		return compressor.MagicSZ3
	case "sperr":
		return compressor.MagicSPERR
	case "szp":
		return szp.MagicSZP
	}
	t.Fatalf("no magic for codec %q", name)
	return 0
}

func header(magic byte, nx, ny, nz int, eb float64) []byte {
	return compressor.AppendHeader(nil, compressor.Header{
		Magic: magic, Nx: nx, Ny: ny, Nz: nz, EB: eb,
	})
}

// TestHostileStreams drives every registered codec through a table of
// crafted attack streams. Each decode must return an error of the right
// safedec class — never panic, never succeed, never allocate from the
// hostile claim. Run under -race in CI; the table is the regression net for
// the bugs the fuzzing campaign surfaced.
func TestHostileStreams(t *testing.T) {
	lim := safedec.Limits{MaxElements: 1 << 20, MaxAlloc: 1 << 24, MaxCount: 1 << 10}
	for _, codec := range allExtended(t) {
		m := magicFor(t, codec.Name())
		cases := []struct {
			name   string
			stream []byte
			// class is the required errors.Is target. nil means the stream
			// may even decode (e.g. an all-zeros payload is a valid zero
			// field for some codecs) — the requirement is only no panic and
			// no unbounded allocation.
			class error
		}{
			{"empty", nil, safedec.ErrTruncated},
			{"short header", header(m, 4, 4, 4, 1e-3)[:10], safedec.ErrTruncated},
			{"wrong magic", header(m^0x55, 4, 4, 4, 1e-3), nil},
			{"zero dims", header(m, 0, 4, 4, 1e-3), safedec.ErrCorrupt},
			{"huge single dim", header(m, 1<<31-1, 1, 1, 1e-3), safedec.ErrCorrupt},
			{"dims product over limit", header(m, 1<<11, 1<<11, 1, 1e-3), safedec.ErrLimit},
			{"dims product overflows int64", header(m, 1<<30, 1<<30, 1<<30, 1e-3), safedec.ErrLimit},
			{"negative error bound", header(m, 4, 4, 4, -1), safedec.ErrCorrupt},
			{"infinite error bound", header(m, 4, 4, 4, math.Inf(1)), safedec.ErrCorrupt},
			{"header only, no payload", header(m, 8, 8, 8, 1e-3), nil},
			{"payload of zeros", append(header(m, 8, 8, 8, 1e-3), make([]byte, 64)...), nil},
			{"checksum corrupted", flipByte(header(m, 4, 4, 4, 1e-3), 3), safedec.ErrCorrupt},
		}
		for _, tc := range cases {
			t.Run(codec.Name()+"/"+tc.name, func(t *testing.T) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panicked: %v", r)
					}
				}()
				_, err := compressor.DecompressLimited(codec, tc.stream, lim)
				if tc.class == nil {
					return // error optional; no-panic already proven
				}
				if err == nil {
					t.Fatal("hostile stream decoded without error")
				}
				if !errors.Is(err, tc.class) {
					t.Fatalf("err = %v, want class %v", err, tc.class)
				}
				if safedec.Classify(err) == "" {
					t.Fatalf("err %v does not classify", err)
				}
			})
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

// TestLimitsAreHonored proves the limit path end to end: a stream that
// decodes fine under permissive limits is refused with ErrLimit under a
// ceiling smaller than its element count.
func TestLimitsAreHonored(t *testing.T) {
	f := corruptionField() // 24*20*8 = 3840 elements
	for _, codec := range allExtended(t) {
		stream, err := codec.Compress(f, compressor.AbsBound(f, 1e-2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := compressor.DecompressLimited(codec, stream, safedec.Default()); err != nil {
			t.Fatalf("%s: default limits refused a valid stream: %v", codec.Name(), err)
		}
		_, err = compressor.DecompressLimited(codec, stream, safedec.Limits{MaxElements: 1000})
		if !errors.Is(err, safedec.ErrLimit) {
			t.Fatalf("%s: tight limits: err = %v, want ErrLimit", codec.Name(), err)
		}
	}
}
