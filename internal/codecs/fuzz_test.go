package codecs

import (
	"encoding/binary"
	"math"
	"testing"

	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/fuzzseed"
	"carol/internal/safedec"
)

// fuzzLimits keeps per-exec memory small so the fuzzer spends its budget on
// coverage, not on zeroing buffers a hostile header talked it into.
var fuzzLimits = safedec.Limits{MaxElements: 1 << 18, MaxAlloc: 1 << 24, MaxCount: 1 << 10}

// fuzzSeedStreams returns valid streams plus classic mutations for codec
// `name`, used as the in-code seed corpus (checked-in files live under
// testdata/fuzz/).
func fuzzSeedStreams(f testing.TB, name string) [][]byte {
	f.Helper()
	codec, err := ByName(name)
	if err != nil {
		f.Fatal(err)
	}
	fld := field.New("seed", 17, 5, 3)
	for i := range fld.Data {
		fld.Data[i] = float32(math.Sin(float64(i) / 7))
	}
	var out [][]byte
	for _, eb := range []float64{1e-1, 1e-4} {
		s, err := codec.Compress(fld, eb)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, s, s[:len(s)/2], s[:25])
		bad := append([]byte(nil), s...)
		if len(bad) > 30 {
			bad[30] ^= 0xFF
		}
		out = append(out, bad)
	}
	return out
}

// fuzzDecompress is the shared decode-hardening target: arbitrary bytes in,
// error or field out, never a panic, allocations bounded by fuzzLimits.
func fuzzDecompress(f *testing.F, name string) {
	for _, s := range fuzzSeedStreams(f, name) {
		f.Add(s)
	}
	codec, err := ByName(name)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = compressor.DecompressLimited(codec, data, fuzzLimits)
	})
}

func FuzzDecompressSZx(f *testing.F)   { fuzzDecompress(f, "szx") }
func FuzzDecompressZFP(f *testing.F)   { fuzzDecompress(f, "zfp") }
func FuzzDecompressSZ3(f *testing.F)   { fuzzDecompress(f, "sz3") }
func FuzzDecompressSPERR(f *testing.F) { fuzzDecompress(f, "sperr") }
func FuzzDecompressSZP(f *testing.F)   { fuzzDecompress(f, "szp") }

// roundTripSeeds builds one seed per codec for FuzzCompressRoundTrip: a
// selector byte, packed small dims, an eb exponent, then raw float32 samples.
func roundTripSeeds() [][]byte {
	seed := make([]byte, 6+4*24)
	seed[1], seed[2], seed[3], seed[4], seed[5] = 6, 2, 2, 2, 3
	for i := 0; i < 24; i++ {
		binary.LittleEndian.PutUint32(seed[6+4*i:], math.Float32bits(float32(i)))
	}
	var out [][]byte
	for c := byte(0); c < 5; c++ {
		s := append([]byte(nil), seed...)
		s[0] = c
		out = append(out, s)
	}
	return out
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpora under
// testdata/fuzz/ when CAROL_WRITE_CORPUS is set; otherwise it only asserts
// the checked-in corpus exists for every target.
func TestWriteFuzzCorpus(t *testing.T) {
	targets := map[string][][]byte{
		"FuzzCompressRoundTrip": roundTripSeeds(),
	}
	for _, name := range []string{"szx", "zfp", "sz3", "sperr", "szp"} {
		targets["FuzzDecompress"+fuzzTargetSuffix(name)] = fuzzSeedStreams(t, name)
	}
	fuzzseed.Check(t, ".", targets)
}

// fuzzTargetSuffix maps a codec name to the suffix used in its fuzz target
// function name.
func fuzzTargetSuffix(name string) string {
	switch name {
	case "szx":
		return "SZx"
	case "zfp":
		return "ZFP"
	case "sz3":
		return "SZ3"
	case "sperr":
		return "SPERR"
	case "szp":
		return "SZP"
	}
	return name
}

// FuzzCompressRoundTrip asserts the error-bound contract on arbitrary
// inputs: whatever field the fuzzer constructs, compress followed by
// decompress must reproduce it within eb for every registered codec the
// first data byte selects.
func FuzzCompressRoundTrip(f *testing.F) {
	for _, s := range roundTripSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 10 {
			return
		}
		name := ExtendedNames[int(data[0])%len(ExtendedNames)]
		codec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		nx := int(data[1])%48 + 1
		ny := int(data[2])%12 + 1
		nz := int(data[3])%6 + 1
		ebExp := int(data[4]) % 6
		eb := math.Pow(10, -float64(ebExp))
		n := nx * ny * nz
		samples := data[6:]
		fld := field.New("fuzz", nx, ny, nz)
		for i := 0; i < n; i++ {
			var v float32
			if 4*i+4 <= len(samples) {
				v = math.Float32frombits(binary.LittleEndian.Uint32(samples[4*i:]))
			}
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			// Keep magnitudes where float32 quantization arithmetic is
			// exact enough for the absolute-bound contract to be testable.
			if v > 1e6 || v < -1e6 {
				v = float32(math.Mod(float64(v), 1e6))
			}
			fld.Data[i] = v
		}
		stream, err := codec.Compress(fld, eb)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		g, err := codec.Decompress(stream)
		if err != nil {
			t.Fatalf("%s: decompress own stream: %v", name, err)
		}
		if g.Nx != nx || g.Ny != ny || g.Nz != nz {
			t.Fatalf("%s: dims %dx%dx%d, want %dx%dx%d", name, g.Nx, g.Ny, g.Nz, nx, ny, nz)
		}
		if err := compressor.CheckBound(fld, g, eb); err != nil {
			t.Fatalf("%s eb=%g: %v", name, eb, err)
		}
	})
}
