package zpool

import (
	"bytes"
	"compress/flate"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("the quick brown fox "), 200)
	enc, err := AppendDeflate(nil, data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Inflate(enc, int64(len(data))+1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestAppendDeflatePreservesPrefix(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	out, err := AppendDeflate(prefix, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:2], prefix) {
		t.Fatal("prefix clobbered")
	}
	dec, err := Inflate(out[2:], 64)
	if err != nil {
		t.Fatal(err)
	}
	if string(dec) != "payload" {
		t.Fatalf("got %q", dec)
	}
}

func TestInflateMatchesStdlib(t *testing.T) {
	// Pooled output must be byte-identical to a fresh flate.Writer at the
	// same level — the codecs' stream stability depends on it.
	data := bytes.Repeat([]byte{1, 2, 3, 4, 5, 0, 0, 0}, 500)
	var want bytes.Buffer
	zw, err := flate.NewWriter(&want, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeat: pooled state must not leak across calls
		got, err := AppendDeflate(nil, data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("iteration %d: pooled deflate differs from stdlib", i)
		}
	}
}

func TestInflateLimit(t *testing.T) {
	data := make([]byte, 10000)
	enc, err := AppendDeflate(nil, data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Inflate(enc, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("limit ignored: got %d bytes", len(out))
	}
}

func TestInflateCorrupt(t *testing.T) {
	if _, err := Inflate([]byte{0xff, 0xff, 0xff, 0xff}, 1<<20); err == nil {
		t.Fatal("corrupt stream accepted")
	}
}

func TestInflateTruncated(t *testing.T) {
	enc, err := AppendDeflate(nil, bytes.Repeat([]byte("abc"), 1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Inflate(enc[:len(enc)/2], 1<<20); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// TestInflatePoolRetention is the regression test for the pooled-inflater
// leak carollint's poolreset analyzer found: Inflate must reset its
// bytes.Reader to nil before pooling, or the pool pins the caller's input
// alive (and visible to the next user). Under the race detector sync.Pool
// drops Puts at random, in which case Get constructs a fresh inflater
// whose reader is empty and the assertion holds vacuously.
func TestInflatePoolRetention(t *testing.T) {
	enc, err := AppendDeflate(nil, bytes.Repeat([]byte("payload "), 64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Inflate(enc, 1<<16); err != nil {
		t.Fatal(err)
	}
	i := infPool.Get().(*inflater) //carol:allow poolreset test inspects pooled state without using it
	defer infPool.Put(i)
	if i.br.Size() != 0 {
		t.Fatalf("pooled inflater retains %d bytes of caller input", i.br.Size())
	}
}
