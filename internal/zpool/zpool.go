// Package zpool pools DEFLATE coder state for the lossy compressors' final
// lossless stage. flate.NewWriter allocates ~650 KiB of window and hash
// state and flate.NewReader ~50 KiB per call; in a block pipeline those
// dominated the allocation profile of SZ3 and SPERR. Both directions are
// drawn from sync.Pools and Reset between uses, so steady-state callers pay
// only for their own output.
package zpool

import (
	"bytes"
	"compress/flate"
	"io"
	"sync"
)

// sliceWriter appends to a byte slice through the io.Writer interface so a
// pooled flate.Writer can emit straight into caller-owned memory.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type deflater struct {
	zw *flate.Writer
	sw sliceWriter
}

var defPool = sync.Pool{New: func() any {
	zw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		// flate.BestSpeed is a valid level; NewWriter cannot fail on it.
		panic(err)
	}
	return &deflater{zw: zw}
}}

// AppendDeflate appends data compressed with DEFLATE (BestSpeed, matching
// the historical per-call flate.NewWriter configuration) to dst and returns
// the extended slice.
func AppendDeflate(dst, data []byte) ([]byte, error) {
	d := defPool.Get().(*deflater)
	defer defPool.Put(d)
	d.sw.b = dst
	d.zw.Reset(&d.sw)
	if _, err := d.zw.Write(data); err != nil {
		d.sw.b = nil
		return dst, err
	}
	if err := d.zw.Close(); err != nil {
		d.sw.b = nil
		return dst, err
	}
	out := d.sw.b
	d.sw.b = nil // do not retain caller memory in the pool
	return out, nil
}

type inflater struct {
	zr io.ReadCloser
	br bytes.Reader
}

var infPool = sync.Pool{New: func() any {
	i := &inflater{}
	i.zr = flate.NewReader(&i.br)
	return i
}}

// Inflate decompresses data, reading at most limit bytes of output. Callers
// enforcing a payload bound pass bound+1 and treat len(out) > bound as a
// decompression bomb, exactly as with io.LimitReader over a fresh
// flate.Reader.
func Inflate(data []byte, limit int64) ([]byte, error) {
	i := infPool.Get().(*inflater)
	defer func() {
		// Drop the reference to the caller's input before pooling, or the
		// pool keeps data alive (and visible to the next user) across calls.
		i.br.Reset(nil)
		infPool.Put(i)
	}()
	i.br.Reset(data)
	if err := i.zr.(flate.Resetter).Reset(&i.br, nil); err != nil {
		return nil, err
	}
	return io.ReadAll(io.LimitReader(i.zr, limit))
}
