package rf

import (
	"math"
	"testing"
	"testing/quick"

	"carol/internal/xrand"
)

// synthData builds a smooth regression problem y = g(x) + noise.
func synthData(n int, seed uint64, noise float64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		X[i] = []float64{a, b, c}
		y[i] = 3*a - 2*b*b + math.Sin(4*c) + noise*rng.Norm()
	}
	return X, y
}

func mse(f *Forest, X [][]float64, y []float64, t *testing.T) float64 {
	t.Helper()
	var s float64
	for i := range X {
		p, err := f.Predict(X[i])
		if err != nil {
			t.Fatal(err)
		}
		d := p - y[i]
		s += d * d
	}
	return s / float64(len(X))
}

func TestTrainPredictLearnsSignal(t *testing.T) {
	X, y := synthData(600, 1, 0.01)
	teX, teY := synthData(200, 2, 0.01)
	cfg := DefaultConfig()
	cfg.NEstimators = 60
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := mse(f, teX, teY, t); got > 0.05 {
		t.Fatalf("test MSE %g, want < 0.05", got)
	}
}

func TestForestBeatsSingleTree(t *testing.T) {
	X, y := synthData(400, 3, 0.3)
	teX, teY := synthData(200, 4, 0.0)
	one := DefaultConfig()
	one.NEstimators = 1
	one.Seed = 9
	many := DefaultConfig()
	many.NEstimators = 80
	many.Seed = 9
	f1, err := Train(X, y, one)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := Train(X, y, many)
	if err != nil {
		t.Fatal(err)
	}
	if mse(fn, teX, teY, t) >= mse(f1, teX, teY, t) {
		t.Fatalf("ensemble (%g) not better than single tree (%g)",
			mse(fn, teX, teY, t), mse(f1, teX, teY, t))
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	X, y := synthData(200, 5, 0.1)
	cfg := DefaultConfig()
	cfg.NEstimators = 10
	f1, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.5, 0.7}
	p1, _ := f1.Predict(probe)
	p2, _ := f2.Predict(probe)
	if p1 != p2 {
		t.Fatalf("same seed gave different forests: %g vs %g", p1, p2)
	}
}

func TestConstantTarget(t *testing.T) {
	X, _ := synthData(50, 6, 0)
	y := make([]float64, len(X))
	for i := range y {
		y[i] = 42
	}
	f, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Predict([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if p != 42 {
		t.Fatalf("constant target predicted %g", p)
	}
}

func TestMaxDepthLimitsStructure(t *testing.T) {
	X, y := synthData(500, 7, 0)
	shallow := DefaultConfig()
	shallow.MaxDepth = 1
	shallow.NEstimators = 5
	deep := DefaultConfig()
	deep.MaxDepth = 20
	deep.NEstimators = 5
	fs, err := Train(X, y, shallow)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := Train(X, y, deep)
	if err != nil {
		t.Fatal(err)
	}
	teX, teY := synthData(100, 8, 0)
	if mse(fd, teX, teY, t) >= mse(fs, teX, teY, t) {
		t.Fatal("depth-20 forest not better than stumps on smooth signal")
	}
}

func TestMinSamplesLeafRespected(t *testing.T) {
	// With MinSamplesLeaf = n/2 the tree can barely split; prediction
	// collapses toward the mean.
	X, y := synthData(60, 9, 0)
	cfg := DefaultConfig()
	cfg.MinSamplesLeaf = 30
	cfg.NEstimators = 3
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All predictions should be in a narrow band around the global mean.
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	p, _ := f.Predict([]float64{0.9, 0.1, 0.5})
	if math.Abs(p-mean) > 2 {
		t.Fatalf("huge-leaf forest predicted %g, mean %g", p, mean)
	}
}

func TestConfigValidation(t *testing.T) {
	X, y := synthData(20, 10, 0)
	bad := []Config{
		{NEstimators: 0, MaxDepth: 5, MinSamplesSplit: 2, MinSamplesLeaf: 1},
		{NEstimators: 5, MaxDepth: 0, MinSamplesSplit: 2, MinSamplesLeaf: 1},
		{NEstimators: 5, MaxDepth: 5, MinSamplesSplit: 1, MinSamplesLeaf: 1},
		{NEstimators: 5, MaxDepth: 5, MinSamplesSplit: 2, MinSamplesLeaf: 0},
	}
	for i, cfg := range bad {
		if _, err := Train(X, y, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{1, 2}, DefaultConfig()); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestPredictDimCheck(t *testing.T) {
	X, y := synthData(30, 11, 0)
	f, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Predict([]float64{1}); err == nil {
		t.Fatal("wrong-dims predict accepted")
	}
}

func TestMaxFeaturesString(t *testing.T) {
	if MaxFeaturesAuto.String() != "auto" || MaxFeaturesSqrt.String() != "sqrt" {
		t.Fatal("MaxFeatures String broken")
	}
}

func TestFeatureImportance(t *testing.T) {
	// Target depends strongly on feature 0, weakly on 1, not at all on 2.
	rng := xrand.New(21)
	X := make([][]float64, 500)
	y := make([]float64, 500)
	for i := range X {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		X[i] = []float64{a, b, c}
		y[i] = 10*a + 0.5*b
	}
	cfg := DefaultConfig()
	cfg.NEstimators = 20
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance()
	if len(imp) != 3 {
		t.Fatalf("importance dims %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", imp)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %g", sum)
	}
	if !(imp[0] > imp[1] && imp[1] > imp[2]) {
		t.Fatalf("importance ordering wrong: %v", imp)
	}
	if imp[0] < 0.7 {
		t.Fatalf("dominant feature importance only %g", imp[0])
	}
}

func TestFeatureImportanceConstantTarget(t *testing.T) {
	X, _ := synthData(30, 22, 0)
	y := make([]float64, len(X))
	f, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f.FeatureImportance() {
		if v != 0 {
			t.Fatalf("pure-leaf forest has importance %v", v)
		}
	}
}

func TestCrossValidateOrdersConfigs(t *testing.T) {
	X, y := synthData(300, 12, 0.05)
	good := DefaultConfig()
	good.NEstimators = 40
	bad := DefaultConfig()
	bad.NEstimators = 1
	bad.MaxDepth = 1
	sg, err := CrossValidate(X, y, good, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := CrossValidate(X, y, bad, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sg <= sb {
		t.Fatalf("CV preferred the bad config: good %g, bad %g", sg, sb)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	X, y := synthData(10, 13, 0)
	if _, err := CrossValidate(X, y, DefaultConfig(), 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(X[:3], y[:3], DefaultConfig(), 5, 1); err == nil {
		t.Error("fewer samples than folds accepted")
	}
}

// Property: predictions always lie within the range of training targets
// (regression trees average leaf targets, so this is invariant).
func TestQuickPredictionWithinTargetRange(t *testing.T) {
	fn := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.Intn(100) + 20
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range X {
			X[i] = []float64{rng.Float64(), rng.Float64()}
			y[i] = rng.Range(-100, 100)
			if y[i] < lo {
				lo = y[i]
			}
			if y[i] > hi {
				hi = y[i]
			}
		}
		cfg := DefaultConfig()
		cfg.NEstimators = 5
		cfg.Seed = seed
		f, err := Train(X, y, cfg)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			p, err := f.Predict([]float64{rng.Float64(), rng.Float64()})
			if err != nil || p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPredict(b *testing.B) {
	X, y := synthData(1000, 1, 0.1)
	cfg := DefaultConfig()
	cfg.NEstimators = 100
	f, err := Train(X, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	probe := []float64{0.5, 0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Predict(probe); err != nil {
			b.Fatal(err)
		}
	}
}
