package rf

import "testing"

// trainConfigs spans the hyper-parameter shapes that exercise different
// engine paths: bootstrap on/off, feature subsetting, leaf/split minima.
func trainConfigs() []Config {
	base := DefaultConfig()
	base.NEstimators = 15
	boot := base
	boot.Bootstrap = false
	sqrt := base
	sqrt.MaxFeatures = MaxFeaturesSqrt
	leafy := base
	leafy.MinSamplesSplit = 5
	leafy.MinSamplesLeaf = 2
	shallow := base
	shallow.MaxDepth = 4
	return []Config{base, boot, sqrt, leafy, shallow}
}

// TestTrainWorkersBitIdentical asserts the determinism contract of the
// parallel engine: for a fixed seed, the forest a worker pool grows is
// bit-identical to the serial one, for several seeds and configurations.
func TestTrainWorkersBitIdentical(t *testing.T) {
	X, y := synthData(400, 17, 0.2)
	probes, _ := synthData(64, 18, 0)
	for _, seed := range []uint64{1, 7, 42} {
		for ci, cfg := range trainConfigs() {
			cfg.Seed = seed
			serial := cfg
			serial.Workers = 1
			fs, err := Train(X, y, serial)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 2, 5} {
				par := cfg
				par.Workers = workers
				fp, err := Train(X, y, par)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range probes {
					ps, _ := fs.Predict(p)
					pp, _ := fp.Predict(p)
					if ps != pp {
						t.Fatalf("seed %d config %d: Workers=%d predicted %v, serial %v",
							seed, ci, workers, pp, ps)
					}
				}
			}
		}
	}
}

// TestCrossValidateWorkersBitIdentical asserts that concurrent folds score
// bit-identically to serial folds (and, run under -race, that the parallel
// fold path is race-free).
func TestCrossValidateWorkersBitIdentical(t *testing.T) {
	X, y := synthData(300, 23, 0.1)
	for _, cfg := range trainConfigs() {
		serial := cfg
		serial.Workers = 1
		want, err := CrossValidate(X, y, serial, 4, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 3} {
			par := cfg
			par.Workers = workers
			got, err := CrossValidate(X, y, par, 4, 5)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("Workers=%d CV score %v, serial %v", workers, got, want)
			}
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	X, y := synthData(250, 31, 0.1)
	cfg := DefaultConfig()
	cfg.NEstimators = 12
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probes, _ := synthData(100, 32, 0)
	batch, err := f.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(probes) {
		t.Fatalf("batch returned %d predictions for %d rows", len(batch), len(probes))
	}
	for i, p := range probes {
		one, err := f.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != one {
			t.Fatalf("row %d: batch %v, single %v", i, batch[i], one)
		}
	}
}

func TestPredictBatchDimCheck(t *testing.T) {
	X, y := synthData(50, 33, 0)
	f, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.PredictBatch([][]float64{{1, 2, 3}, {1}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
	out, err := f.PredictBatch(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}
