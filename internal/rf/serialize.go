package rf

import (
	"fmt"
	"math"
)

// Dims returns the input dimensionality the forest was trained on.
func (f *Forest) Dims() int { return f.dims }

// SetWorkers rebinds the forest's prediction parallelism without touching
// the model itself (predictions are bit-identical for every value). A
// deserialized forest carries the training machine's Workers setting;
// serving processes call this to use their own core budget.
func (f *Forest) SetWorkers(w int) { f.cfg.Workers = w }

// Stats summarizes a trained forest's shape: the numbers an operator wants
// on a dashboard when a model is loaded and the numbers caroltrain prints
// when one is published.
type Stats struct {
	Trees    int // ensemble size
	Nodes    int // total node count across all trees
	MaxDepth int // deepest root-to-leaf path over the whole ensemble
}

// Stats computes the forest's shape summary. Depth is measured in edges:
// a single-leaf tree has depth 0.
func (f *Forest) Stats() Stats {
	s := Stats{Trees: len(f.trees)}
	for i := range f.trees {
		nodes := f.trees[i].nodes
		s.Nodes += len(nodes)
		if d := treeDepth(nodes); d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	return s
}

// treeDepth walks the flat node array iteratively (an explicit stack — the
// trees may be deeper than comfortable recursion under test -race).
func treeDepth(nodes []node) int {
	if len(nodes) == 0 {
		return 0
	}
	type frame struct {
		idx   int32
		depth int
	}
	stack := []frame{{0, 0}}
	max := 0
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fr.depth > max {
			max = fr.depth
		}
		n := &nodes[fr.idx]
		if n.feature >= 0 {
			stack = append(stack, frame{n.left, fr.depth + 1}, frame{n.right, fr.depth + 1})
		}
	}
	return max
}

// Flat is the flattened, serialization-ready form of a Forest: one set of
// parallel arrays over every node of every tree, in tree order. It carries
// no pointers and no unexported state, so internal/model can encode it
// field by field and reconstruct an identical forest with FromFlat.
type Flat struct {
	Dims      int     // model input dimensionality
	Cfg       Config  // training hyper-parameters (provenance; Workers excluded from identity)
	TreeNodes []int32 // nodes per tree; len == Cfg.NEstimators
	// Per-node parallel arrays, all of length sum(TreeNodes). Indices in
	// Left/Right are tree-local.
	Feature []int32
	Thresh  []float64
	Left    []int32
	Right   []int32
	Value   []float64
	Gain    []float64
}

// NumNodes returns the total node count claimed by TreeNodes.
func (fl *Flat) NumNodes() int {
	total := 0
	for _, n := range fl.TreeNodes {
		total += int(n)
	}
	return total
}

// Flatten exports the forest into its serialization form. The returned
// arrays are fresh copies; mutating them does not affect the forest.
func (f *Forest) Flatten() *Flat {
	fl := &Flat{
		Dims:      f.dims,
		Cfg:       f.cfg,
		TreeNodes: make([]int32, len(f.trees)),
	}
	total := 0
	for i := range f.trees {
		fl.TreeNodes[i] = int32(len(f.trees[i].nodes))
		total += len(f.trees[i].nodes)
	}
	fl.Feature = make([]int32, total)
	fl.Thresh = make([]float64, total)
	fl.Left = make([]int32, total)
	fl.Right = make([]int32, total)
	fl.Value = make([]float64, total)
	fl.Gain = make([]float64, total)
	at := 0
	for i := range f.trees {
		for _, n := range f.trees[i].nodes {
			fl.Feature[at] = int32(n.feature)
			fl.Thresh[at] = n.thresh
			fl.Left[at] = n.left
			fl.Right[at] = n.right
			fl.Value[at] = n.value
			fl.Gain[at] = n.gain
			at++
		}
	}
	return fl
}

// FromFlat validates fl and reconstructs the forest. Validation is total —
// fl may come from an attacker-controlled artifact, so every structural
// invariant prediction relies on is checked:
//
//   - array lengths agree with TreeNodes, and TreeNodes with NEstimators;
//   - every tree is non-empty;
//   - split features lie in [0, Dims); leaves are marked with feature -1;
//   - child indices point strictly forward within their tree (the builder
//     appends parents before children), which rules out cycles and makes
//     predict provably terminating;
//   - thresholds, values and gains are finite (gains non-negative).
//
// A forest reconstructed from Flatten()'s output predicts bit-identically
// to the original.
func FromFlat(fl *Flat) (*Forest, error) {
	if fl.Dims < 1 {
		return nil, fmt.Errorf("rf: flat forest with %d input dims", fl.Dims)
	}
	if err := fl.Cfg.validate(); err != nil {
		return nil, fmt.Errorf("rf: flat forest config: %w", err)
	}
	if len(fl.TreeNodes) != fl.Cfg.NEstimators {
		return nil, fmt.Errorf("rf: flat forest has %d trees, config says %d",
			len(fl.TreeNodes), fl.Cfg.NEstimators)
	}
	total := 0
	for i, n := range fl.TreeNodes {
		if n < 1 {
			return nil, fmt.Errorf("rf: flat tree %d has %d nodes", i, n)
		}
		total += int(n)
	}
	for _, a := range []struct {
		name string
		n    int
	}{
		{"feature", len(fl.Feature)},
		{"thresh", len(fl.Thresh)},
		{"left", len(fl.Left)},
		{"right", len(fl.Right)},
		{"value", len(fl.Value)},
		{"gain", len(fl.Gain)},
	} {
		if a.n != total {
			return nil, fmt.Errorf("rf: flat %s array has %d entries, want %d", a.name, a.n, total)
		}
	}
	f := &Forest{trees: make([]tree, len(fl.TreeNodes)), dims: fl.Dims, cfg: fl.Cfg}
	at := 0
	for ti, tn := range fl.TreeNodes {
		nodes := make([]node, tn)
		for i := range nodes {
			n := node{
				feature: int(fl.Feature[at]),
				thresh:  fl.Thresh[at],
				left:    fl.Left[at],
				right:   fl.Right[at],
				value:   fl.Value[at],
				gain:    fl.Gain[at],
			}
			at++
			if math.IsNaN(n.thresh) || math.IsInf(n.thresh, 0) ||
				math.IsNaN(n.value) || math.IsInf(n.value, 0) ||
				math.IsNaN(n.gain) || math.IsInf(n.gain, 0) || n.gain < 0 {
				return nil, fmt.Errorf("rf: flat tree %d node %d has non-finite fields", ti, i)
			}
			switch {
			case n.feature == -1:
				// Leaf: children ignored; normalize them to zero so the
				// reconstructed forest re-flattens byte-identically.
				n.left, n.right = 0, 0
			case n.feature >= 0 && n.feature < fl.Dims:
				if int(n.left) <= i || int(n.left) >= int(tn) ||
					int(n.right) <= i || int(n.right) >= int(tn) {
					return nil, fmt.Errorf("rf: flat tree %d node %d has out-of-order children (%d,%d of %d)",
						ti, i, n.left, n.right, tn)
				}
			default:
				return nil, fmt.Errorf("rf: flat tree %d node %d splits on feature %d of %d",
					ti, i, n.feature, fl.Dims)
			}
			nodes[i] = n
		}
		f.trees[ti] = tree{nodes: nodes}
	}
	return f, nil
}
