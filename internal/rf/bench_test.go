package rf

import (
	"fmt"
	"runtime"
	"testing"
)

// workerVariants benchmarks the serial engine against the all-core pool;
// on a single-core host the two coincide and only the algorithmic gains
// (sorted-sweep splits, scratch reuse) show.
func workerVariants() []int { return []int{1, 0} }

func workerName(w int) string {
	if w == 0 {
		return fmt.Sprintf("workers=all(%d)", runtime.GOMAXPROCS(0))
	}
	return fmt.Sprintf("workers=%d", w)
}

func BenchmarkTrain(b *testing.B) {
	X, y := synthData(2000, 1, 0.1)
	for _, w := range workerVariants() {
		b.Run(workerName(w), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.NEstimators = 20
			cfg.Workers = w
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Train(X, y, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCrossValidate(b *testing.B) {
	X, y := synthData(1200, 1, 0.1)
	for _, w := range workerVariants() {
		b.Run(workerName(w), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.NEstimators = 10
			cfg.Workers = w
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := CrossValidate(X, y, cfg, 3, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	X, y := synthData(1000, 1, 0.1)
	cfg := DefaultConfig()
	cfg.NEstimators = 100
	f, err := Train(X, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	probes, _ := synthData(512, 2, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.PredictBatch(probes); err != nil {
			b.Fatal(err)
		}
	}
}
