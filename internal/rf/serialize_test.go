package rf

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"carol/internal/xrand"
)

// trainSmallForest grows a deterministic forest over a synthetic nonlinear
// target for the serialization tests.
func trainSmallForest(t *testing.T, trees, rows, dims int) (*Forest, [][]float64) {
	t.Helper()
	rng := xrand.New(7)
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range X {
		row := make([]float64, dims)
		for j := range row {
			row[j] = rng.Float64()*4 - 2
		}
		X[i] = row
		y[i] = math.Sin(row[0]) + 0.5*row[1%dims]*row[1%dims] + 0.1*rng.Float64()
	}
	cfg := DefaultConfig()
	cfg.NEstimators = trees
	cfg.MaxDepth = 8
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return f, X
}

func TestStats(t *testing.T) {
	f, _ := trainSmallForest(t, 12, 300, 3)
	s := f.Stats()
	if s.Trees != 12 {
		t.Fatalf("Trees = %d, want 12", s.Trees)
	}
	wantNodes := 0
	for i := range f.trees {
		wantNodes += len(f.trees[i].nodes)
	}
	if s.Nodes != wantNodes {
		t.Fatalf("Nodes = %d, want %d", s.Nodes, wantNodes)
	}
	if s.MaxDepth < 1 || s.MaxDepth > f.cfg.MaxDepth {
		t.Fatalf("MaxDepth = %d, want in [1, %d]", s.MaxDepth, f.cfg.MaxDepth)
	}
}

func TestStatsSingleLeaf(t *testing.T) {
	// Constant targets collapse every tree to one pure leaf: depth 0.
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	cfg := DefaultConfig()
	cfg.NEstimators = 3
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	s := f.Stats()
	if s.Trees != 3 || s.Nodes != 3 || s.MaxDepth != 0 {
		t.Fatalf("Stats = %+v, want {3 3 0}", s)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f, X := trainSmallForest(t, 10, 400, 4)
	fl := f.Flatten()
	if got := fl.NumNodes(); got != f.Stats().Nodes {
		t.Fatalf("NumNodes = %d, want %d", got, f.Stats().Nodes)
	}
	g, err := FromFlat(fl)
	if err != nil {
		t.Fatalf("FromFlat: %v", err)
	}
	// Bit-identical predictions on every training row plus fresh points.
	rng := xrand.New(99)
	probes := append([][]float64{}, X...)
	for i := 0; i < 64; i++ {
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.Float64()*6 - 3
		}
		probes = append(probes, row)
	}
	for i, row := range probes {
		a, err := f.Predict(row)
		if err != nil {
			t.Fatalf("orig predict %d: %v", i, err)
		}
		b, err := g.Predict(row)
		if err != nil {
			t.Fatalf("restored predict %d: %v", i, err)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("row %d: predictions differ: %v vs %v", i, a, b)
		}
	}
	// Re-flattening the restored forest reproduces the arrays exactly.
	if !reflect.DeepEqual(fl, g.Flatten()) {
		t.Fatal("re-flattened forest differs from original Flat")
	}
	// Feature importance survives too (gain arrays round-trip).
	if !reflect.DeepEqual(f.FeatureImportance(), g.FeatureImportance()) {
		t.Fatal("feature importance differs after round trip")
	}
}

func TestSetWorkers(t *testing.T) {
	f, X := trainSmallForest(t, 4, 120, 2)
	want, err := f.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	f.SetWorkers(3)
	if f.Config().Workers != 3 {
		t.Fatalf("Workers = %d after SetWorkers(3)", f.Config().Workers)
	}
	got, err := f.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("row %d changed after SetWorkers", i)
		}
	}
}

// TestFromFlatRejectsHostile mutates a valid Flat one invariant at a time;
// every mutation must be rejected, never panic.
func TestFromFlatRejectsHostile(t *testing.T) {
	fresh := func(t *testing.T) *Flat {
		f, _ := trainSmallForest(t, 3, 200, 3)
		return f.Flatten()
	}
	cases := []struct {
		name   string
		mutate func(*Flat)
		want   string
	}{
		{"zero dims", func(fl *Flat) { fl.Dims = 0 }, "input dims"},
		{"bad config", func(fl *Flat) { fl.Cfg.MaxDepth = 0 }, "config"},
		{"tree count mismatch", func(fl *Flat) { fl.TreeNodes = fl.TreeNodes[:2] }, "trees"},
		{"empty tree", func(fl *Flat) {
			fl.TreeNodes[2] += fl.TreeNodes[0]
			fl.TreeNodes[0] = 0
		}, "nodes"},
		{"short value array", func(fl *Flat) { fl.Value = fl.Value[:1] }, "value array"},
		{"short gain array", func(fl *Flat) { fl.Gain = fl.Gain[:0] }, "gain array"},
		{"feature out of range", func(fl *Flat) { firstSplit(fl, func(i int) { fl.Feature[i] = 99 }) }, "feature"},
		{"feature below -1", func(fl *Flat) { firstSplit(fl, func(i int) { fl.Feature[i] = -7 }) }, "feature"},
		{"self-loop child", func(fl *Flat) { firstSplit(fl, func(i int) { fl.Left[i] = int32(i) }) }, "children"},
		{"backward child", func(fl *Flat) { firstSplit(fl, func(i int) { fl.Right[i] = 0 }) }, "children"},
		{"child past end", func(fl *Flat) { firstSplit(fl, func(i int) { fl.Left[i] = fl.TreeNodes[0] }) }, "children"},
		{"negative child", func(fl *Flat) { firstSplit(fl, func(i int) { fl.Right[i] = -1 }) }, "children"},
		{"NaN threshold", func(fl *Flat) { fl.Thresh[0] = math.NaN() }, "non-finite"},
		{"Inf value", func(fl *Flat) { fl.Value[0] = math.Inf(1) }, "non-finite"},
		{"negative gain", func(fl *Flat) { fl.Gain[0] = -1 }, "non-finite"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fl := fresh(t)
			c.mutate(fl)
			_, err := FromFlat(fl)
			if err == nil {
				t.Fatal("hostile Flat accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// firstSplit applies fn to the index of the first split node of tree 0.
func firstSplit(fl *Flat, fn func(i int)) {
	for i := 0; i < int(fl.TreeNodes[0]); i++ {
		if fl.Feature[i] >= 0 {
			fn(i)
			return
		}
	}
	panic("no split node in tree 0")
}
