// Package rf implements the random-forest regression model both FXRZ and
// CAROL train to map (data features, target compression ratio) to a
// predicted error bound: an ensemble of CART regression trees grown on
// bootstrap resamples with per-split feature subsetting, governed by the six
// hyper-parameters the FXRZ paper searches over (§5.3 of the CAROL paper).
package rf

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"carol/internal/xrand"
)

// MaxFeatures selects how many candidate features each split considers.
type MaxFeatures int

const (
	// MaxFeaturesAuto considers every feature at every split.
	MaxFeaturesAuto MaxFeatures = iota
	// MaxFeaturesSqrt considers ceil(sqrt(d)) random features per split.
	MaxFeaturesSqrt
)

func (m MaxFeatures) String() string {
	if m == MaxFeaturesSqrt {
		return "sqrt"
	}
	return "auto"
}

// Config holds the forest hyper-parameters (names and ranges follow FXRZ).
type Config struct {
	NEstimators     int         // number of trees [90, 1200]
	MaxFeatures     MaxFeatures // features per split {auto, sqrt}
	MaxDepth        int         // maximum tree depth [10, 110]
	MinSamplesSplit int         // {2, 5, 10}
	MinSamplesLeaf  int         // {1, 2, 4}
	Bootstrap       bool        // resample with replacement
	Seed            uint64      // RNG seed for bootstrap + feature choice
}

// DefaultConfig is a reasonable untuned starting point.
func DefaultConfig() Config {
	return Config{
		NEstimators:     100,
		MaxFeatures:     MaxFeaturesAuto,
		MaxDepth:        30,
		MinSamplesSplit: 2,
		MinSamplesLeaf:  1,
		Bootstrap:       true,
		Seed:            1,
	}
}

func (c Config) validate() error {
	if c.NEstimators < 1 {
		return fmt.Errorf("rf: NEstimators %d < 1", c.NEstimators)
	}
	if c.MaxDepth < 1 {
		return fmt.Errorf("rf: MaxDepth %d < 1", c.MaxDepth)
	}
	if c.MinSamplesSplit < 2 {
		return fmt.Errorf("rf: MinSamplesSplit %d < 2", c.MinSamplesSplit)
	}
	if c.MinSamplesLeaf < 1 {
		return fmt.Errorf("rf: MinSamplesLeaf %d < 1", c.MinSamplesLeaf)
	}
	return nil
}

// node is one decision-tree node, stored flat.
type node struct {
	feature int     // split feature, -1 for leaf
	thresh  float64 // go left if x[feature] <= thresh
	left    int32
	right   int32
	value   float64 // leaf prediction
	gain    float64 // weighted variance reduction achieved by the split
}

type tree struct {
	nodes []node
}

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			i = int(n.left)
		} else {
			i = int(n.right)
		}
	}
}

// Forest is a trained random-forest regressor.
type Forest struct {
	trees []tree
	dims  int
	cfg   Config
}

// Config returns the hyper-parameters the forest was trained with.
func (f *Forest) Config() Config { return f.cfg }

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Train grows a forest on the rows of X (features) and targets y.
func Train(X [][]float64, y []float64, cfg Config) (*Forest, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("rf: empty or mismatched training data")
	}
	dims := len(X[0])
	for i, row := range X {
		if len(row) != dims {
			return nil, fmt.Errorf("rf: row %d has %d features, want %d", i, len(row), dims)
		}
	}
	f := &Forest{trees: make([]tree, cfg.NEstimators), dims: dims, cfg: cfg}
	rng := xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
	for ti := range f.trees {
		idx := make([]int, len(X))
		if cfg.Bootstrap {
			for i := range idx {
				idx[i] = rng.Intn(len(X))
			}
		} else {
			for i := range idx {
				idx[i] = i
			}
		}
		b := &builder{
			X: X, y: y, cfg: cfg, dims: dims,
			rng: xrand.New(rng.Uint64()),
		}
		b.grow(idx, 0)
		f.trees[ti] = tree{nodes: b.nodes}
	}
	return f, nil
}

// Predict returns the forest's prediction for one feature row.
func (f *Forest) Predict(x []float64) (float64, error) {
	if len(x) != f.dims {
		return 0, fmt.Errorf("rf: predict with %d features, trained on %d", len(x), f.dims)
	}
	var sum float64
	for i := range f.trees {
		sum += f.trees[i].predict(x)
	}
	return sum / float64(len(f.trees)), nil
}

// FeatureImportance returns the normalized variance-reduction importance of
// each input feature, aggregated over every split in the forest. The values
// sum to 1 (or are all zero for a forest of pure leaves). FXRZ justified its
// five features empirically; this exposes the same diagnostic.
func (f *Forest) FeatureImportance() []float64 {
	imp := make([]float64, f.dims)
	var total float64
	for _, t := range f.trees {
		for _, n := range t.nodes {
			if n.feature >= 0 {
				imp[n.feature] += n.gain
				total += n.gain
			}
		}
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// builder grows a single tree.
type builder struct {
	X     [][]float64
	y     []float64
	cfg   Config
	dims  int
	rng   *xrand.Source
	nodes []node
}

func (b *builder) leaf(idx []int) int32 {
	var sum float64
	for _, i := range idx {
		sum += b.y[i]
	}
	b.nodes = append(b.nodes, node{feature: -1, value: sum / float64(len(idx))})
	return int32(len(b.nodes) - 1)
}

// grow recursively builds the subtree over idx and returns its node index.
func (b *builder) grow(idx []int, depth int) int32 {
	if depth >= b.cfg.MaxDepth || len(idx) < b.cfg.MinSamplesSplit || pureTargets(b.y, idx) {
		return b.leaf(idx)
	}
	feat, thresh, childScore, ok := b.bestSplit(idx)
	if !ok {
		return b.leaf(idx)
	}
	var left, right []int
	for _, i := range idx {
		if b.X[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		return b.leaf(idx)
	}
	// Importance: weighted variance reduction achieved by this split.
	gain := (targetVariance(b.y, idx) - childScore) * float64(len(idx))
	if gain < 0 {
		gain = 0
	}
	// Reserve this node's slot before growing children.
	me := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{feature: feat, thresh: thresh, gain: gain})
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.nodes[me].left = l
	b.nodes[me].right = r
	return me
}

// targetVariance computes the variance of y over idx.
func targetVariance(y []float64, idx []int) float64 {
	var sum, sq float64
	for _, i := range idx {
		sum += y[i]
		sq += y[i] * y[i]
	}
	n := float64(len(idx))
	m := sum / n
	return sq/n - m*m
}

func pureTargets(y []float64, idx []int) bool {
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if y[i] != first {
			return false
		}
	}
	return true
}

// maxSplitCandidates caps the thresholds evaluated per feature; above this
// the sorted values are subsampled evenly (keeps training O(n log n)-ish).
const maxSplitCandidates = 32

// bestSplit finds the (feature, threshold) minimizing the weighted child
// variance over the candidate feature subset, returning that variance too.
func (b *builder) bestSplit(idx []int) (feat int, thresh, score float64, ok bool) {
	nFeat := b.dims
	if b.cfg.MaxFeatures == MaxFeaturesSqrt {
		nFeat = int(math.Ceil(math.Sqrt(float64(b.dims))))
	}
	feats := b.rng.Perm(b.dims)[:nFeat]

	bestScore := math.Inf(1)
	vals := make([]float64, 0, len(idx))
	for _, ft := range feats {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, b.X[i][ft])
		}
		sort.Float64s(vals)
		// Candidate thresholds: midpoints between distinct consecutive
		// values, evenly subsampled if too many.
		step := 1
		if len(vals) > maxSplitCandidates {
			step = len(vals) / maxSplitCandidates
		}
		for vi := 0; vi+step < len(vals); vi += step {
			a, c := vals[vi], vals[vi+step]
			if a == c {
				continue
			}
			t := (a + c) / 2
			s := b.splitScore(idx, ft, t)
			if s < bestScore {
				bestScore = s
				feat, thresh, ok = ft, t, true
			}
		}
	}
	return feat, thresh, bestScore, ok
}

// splitScore computes the weighted variance of the two children.
func (b *builder) splitScore(idx []int, feat int, thresh float64) float64 {
	var nL, nR float64
	var sL, sR, qL, qR float64
	for _, i := range idx {
		v := b.y[i]
		if b.X[i][feat] <= thresh {
			nL++
			sL += v
			qL += v * v
		} else {
			nR++
			sR += v
			qR += v * v
		}
	}
	if nL == 0 || nR == 0 {
		return math.Inf(1)
	}
	varL := qL/nL - (sL/nL)*(sL/nL)
	varR := qR/nR - (sR/nR)*(sR/nR)
	return (nL*varL + nR*varR) / (nL + nR)
}
