// Package rf implements the random-forest regression model both FXRZ and
// CAROL train to map (data features, target compression ratio) to a
// predicted error bound: an ensemble of CART regression trees grown on
// bootstrap resamples with per-split feature subsetting, governed by the six
// hyper-parameters the FXRZ paper searches over (§5.3 of the CAROL paper).
//
// Training is deterministic and parallel: every tree's bootstrap sample and
// builder seed are derived serially from the master RNG, then the trees are
// grown on a worker pool, so a forest is bit-identical for any Config.Workers
// value (see DESIGN.md, "Parallel training engine").
package rf

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"carol/internal/obs"
	"carol/internal/xrand"
)

// Training/prediction metrics (obs.Default). Single-row Predict is left
// uninstrumented on purpose: it is the gridsearch/bayesopt inner loop and
// a per-call clock read there would be measurable; PredictBatch is the
// serving-path entry point and carries the histogram.
var (
	trainSeconds        = obs.Default.Histogram("rf_train_seconds", obs.LatencyBuckets())
	trainTotal          = obs.Default.Counter("rf_train_total")
	trainTreesTotal     = obs.Default.Counter("rf_train_trees_total")
	predictBatchSeconds = obs.Default.Histogram("rf_predict_batch_seconds", obs.LatencyBuckets())
	predictBatchRows    = obs.Default.Counter("rf_predict_batch_rows_total")
)

// MaxFeatures selects how many candidate features each split considers.
type MaxFeatures int

const (
	// MaxFeaturesAuto considers every feature at every split.
	MaxFeaturesAuto MaxFeatures = iota
	// MaxFeaturesSqrt considers ceil(sqrt(d)) random features per split.
	MaxFeaturesSqrt
)

func (m MaxFeatures) String() string {
	if m == MaxFeaturesSqrt {
		return "sqrt"
	}
	return "auto"
}

// Config holds the forest hyper-parameters (names and ranges follow FXRZ).
type Config struct {
	NEstimators     int         // number of trees [90, 1200]
	MaxFeatures     MaxFeatures // features per split {auto, sqrt}
	MaxDepth        int         // maximum tree depth [10, 110]
	MinSamplesSplit int         // {2, 5, 10}
	MinSamplesLeaf  int         // {1, 2, 4}
	Bootstrap       bool        // resample with replacement
	Seed            uint64      // RNG seed for bootstrap + feature choice
	// Workers bounds the goroutines used for tree growth, cross-validation
	// folds and batch prediction: 0 uses every core (GOMAXPROCS), 1 forces
	// the serial path. It does not affect the trained model — output is
	// bit-identical for every value.
	Workers int
}

// DefaultConfig is a reasonable untuned starting point.
func DefaultConfig() Config {
	return Config{
		NEstimators:     100,
		MaxFeatures:     MaxFeaturesAuto,
		MaxDepth:        30,
		MinSamplesSplit: 2,
		MinSamplesLeaf:  1,
		Bootstrap:       true,
		Seed:            1,
	}
}

func (c Config) validate() error {
	if c.NEstimators < 1 {
		return fmt.Errorf("rf: NEstimators %d < 1", c.NEstimators)
	}
	if c.MaxDepth < 1 {
		return fmt.Errorf("rf: MaxDepth %d < 1", c.MaxDepth)
	}
	if c.MinSamplesSplit < 2 {
		return fmt.Errorf("rf: MinSamplesSplit %d < 2", c.MinSamplesSplit)
	}
	if c.MinSamplesLeaf < 1 {
		return fmt.Errorf("rf: MinSamplesLeaf %d < 1", c.MinSamplesLeaf)
	}
	return nil
}

// resolveWorkers maps the Workers knob to a concrete goroutine count.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// node is one decision-tree node, stored flat.
type node struct {
	feature int     // split feature, -1 for leaf
	thresh  float64 // go left if x[feature] <= thresh
	left    int32
	right   int32
	value   float64 // leaf prediction
	gain    float64 // weighted variance reduction achieved by the split
}

type tree struct {
	nodes []node
}

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			i = int(n.left)
		} else {
			i = int(n.right)
		}
	}
}

// Forest is a trained random-forest regressor.
type Forest struct {
	trees []tree
	dims  int
	cfg   Config
}

// Config returns the hyper-parameters the forest was trained with.
func (f *Forest) Config() Config { return f.cfg }

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Train grows a forest on the rows of X (features) and targets y.
//
// All randomness — each tree's bootstrap sample and its builder seed — is
// drawn from the master RNG serially, in tree order, before any tree is
// grown; the worker pool only parallelizes the (deterministic) growth, so
// the result does not depend on Config.Workers.
func Train(X [][]float64, y []float64, cfg Config) (*Forest, error) {
	start := time.Now()
	defer trainSeconds.ObserveSince(start)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	trainTotal.Inc()
	trainTreesTotal.Add(int64(cfg.NEstimators))
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("rf: empty or mismatched training data")
	}
	dims := len(X[0])
	for i, row := range X {
		if len(row) != dims {
			return nil, fmt.Errorf("rf: row %d has %d features, want %d", i, len(row), dims)
		}
	}
	f := &Forest{trees: make([]tree, cfg.NEstimators), dims: dims, cfg: cfg}
	rng := xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
	boots := make([][]int, cfg.NEstimators)
	seeds := make([]uint64, cfg.NEstimators)
	for ti := range boots {
		idx := make([]int, len(X))
		if cfg.Bootstrap {
			for i := range idx {
				idx[i] = rng.Intn(len(X))
			}
		} else {
			for i := range idx {
				idx[i] = i
			}
		}
		boots[ti] = idx
		seeds[ti] = rng.Uint64()
	}
	growTree := func(ti int) {
		b := &builder{X: X, y: y, cfg: cfg, dims: dims, rng: xrand.New(seeds[ti])}
		f.trees[ti] = tree{nodes: b.build(boots[ti])}
	}
	workers := resolveWorkers(cfg.Workers)
	if workers > cfg.NEstimators {
		workers = cfg.NEstimators
	}
	if workers == 1 {
		for ti := range f.trees {
			growTree(ti)
		}
		return f, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ti := int(next.Add(1)) - 1
				if ti >= len(f.trees) {
					return
				}
				growTree(ti)
			}
		}()
	}
	wg.Wait()
	return f, nil
}

// Predict returns the forest's prediction for one feature row.
func (f *Forest) Predict(x []float64) (float64, error) {
	if len(x) != f.dims {
		return 0, fmt.Errorf("rf: predict with %d features, trained on %d", len(x), f.dims)
	}
	var sum float64
	for i := range f.trees {
		sum += f.trees[i].predict(x)
	}
	return sum / float64(len(f.trees)), nil
}

// PredictBatch predicts every row of X, splitting the batch over up to
// Config.Workers goroutines. Each row's result is bit-identical to a
// Predict call on that row.
func (f *Forest) PredictBatch(X [][]float64) ([]float64, error) {
	start := time.Now()
	defer predictBatchSeconds.ObserveSince(start)
	predictBatchRows.Add(int64(len(X)))
	for i, row := range X {
		if len(row) != f.dims {
			return nil, fmt.Errorf("rf: predict row %d with %d features, trained on %d", i, len(row), f.dims)
		}
	}
	out := make([]float64, len(X))
	predictRange := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			var sum float64
			for ti := range f.trees {
				sum += f.trees[ti].predict(X[r])
			}
			out[r] = sum / float64(len(f.trees))
		}
	}
	// Below this many rows per goroutine the spawn overhead dominates.
	const minRowsPerWorker = 16
	workers := resolveWorkers(f.cfg.Workers)
	if maxW := len(X) / minRowsPerWorker; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		predictRange(0, len(X))
		return out, nil
	}
	chunk := (len(X) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(X))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			predictRange(lo, hi)
		}()
	}
	wg.Wait()
	return out, nil
}

// FeatureImportance returns the normalized variance-reduction importance of
// each input feature, aggregated over every split in the forest. The values
// sum to 1 (or are all zero for a forest of pure leaves). FXRZ justified its
// five features empirically; this exposes the same diagnostic.
func (f *Forest) FeatureImportance() []float64 {
	imp := make([]float64, f.dims)
	var total float64
	for _, t := range f.trees {
		for _, n := range t.nodes {
			if n.feature >= 0 {
				imp[n.feature] += n.gain
				total += n.gain
			}
		}
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// pairSorter sorts a feature-value slice while keeping the target slice
// aligned; it lives inside builder so sort.Sort gets a pre-existing pointer
// and no per-node allocation happens.
type pairSorter struct {
	v, y []float64
}

func (s *pairSorter) Len() int           { return len(s.v) }
func (s *pairSorter) Less(i, j int) bool { return s.v[i] < s.v[j] }
func (s *pairSorter) Swap(i, j int) {
	s.v[i], s.v[j] = s.v[j], s.v[i]
	s.y[i], s.y[j] = s.y[j], s.y[i]
}

// builder grows a single tree. All per-node working storage is reused
// across the whole tree: sample indices are partitioned in place, and the
// split search sorts into fixed scratch buffers.
type builder struct {
	X     [][]float64
	y     []float64
	cfg   Config
	dims  int
	rng   *xrand.Source
	nodes []node

	idx    []int // sample indices; grow partitions segments of this in place
	part   []int // stable-partition scratch (right-child indices)
	feats  []int // feature-permutation scratch, one Fisher-Yates draw per split
	vals   []float64
	ys     []float64
	sorter pairSorter
}

// build grows the tree over the bootstrap sample idx (which the builder
// takes ownership of) and returns the flat node array.
func (b *builder) build(idx []int) []node {
	b.idx = idx
	b.part = make([]int, 0, len(idx))
	b.feats = make([]int, b.dims)
	b.vals = make([]float64, len(idx))
	b.ys = make([]float64, len(idx))
	b.grow(0, len(idx), 0)
	return b.nodes
}

func (b *builder) leaf(lo, hi int) int32 {
	var sum float64
	for _, i := range b.idx[lo:hi] {
		sum += b.y[i]
	}
	b.nodes = append(b.nodes, node{feature: -1, value: sum / float64(hi-lo)})
	return int32(len(b.nodes) - 1)
}

// grow recursively builds the subtree over b.idx[lo:hi] and returns its
// node index.
func (b *builder) grow(lo, hi, depth int) int32 {
	if depth >= b.cfg.MaxDepth || hi-lo < b.cfg.MinSamplesSplit || b.pureTargets(lo, hi) {
		return b.leaf(lo, hi)
	}
	feat, thresh, childScore, ok := b.bestSplit(lo, hi)
	if !ok {
		return b.leaf(lo, hi)
	}
	mid := b.partition(lo, hi, feat, thresh)
	if mid-lo < b.cfg.MinSamplesLeaf || hi-mid < b.cfg.MinSamplesLeaf {
		return b.leaf(lo, hi)
	}
	// Importance: weighted variance reduction achieved by this split.
	gain := (b.targetVariance(lo, hi) - childScore) * float64(hi-lo)
	if gain < 0 {
		gain = 0
	}
	// Reserve this node's slot before growing children.
	me := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{feature: feat, thresh: thresh, gain: gain})
	l := b.grow(lo, mid, depth+1)
	r := b.grow(mid, hi, depth+1)
	b.nodes[me].left = l
	b.nodes[me].right = r
	return me
}

// partition stably reorders b.idx[lo:hi] so indices with X[i][feat] <=
// thresh precede the rest, and returns the boundary. Left elements are
// written behind the read cursor; right elements park in the part scratch.
func (b *builder) partition(lo, hi, feat int, thresh float64) int {
	right := b.part[:0]
	w := lo
	for _, i := range b.idx[lo:hi] {
		if b.X[i][feat] <= thresh {
			b.idx[w] = i
			w++
		} else {
			right = append(right, i)
		}
	}
	copy(b.idx[w:hi], right)
	b.part = right[:0]
	return w
}

// targetVariance computes the variance of y over b.idx[lo:hi].
func (b *builder) targetVariance(lo, hi int) float64 {
	var sum, sq float64
	for _, i := range b.idx[lo:hi] {
		sum += b.y[i]
		sq += b.y[i] * b.y[i]
	}
	n := float64(hi - lo)
	m := sum / n
	return sq/n - m*m
}

func (b *builder) pureTargets(lo, hi int) bool {
	first := b.y[b.idx[lo]]
	for _, i := range b.idx[lo+1 : hi] {
		if b.y[i] != first { //carol:allow floateq node purity means bit-identical targets
			return false
		}
	}
	return true
}

// maxSplitCandidates caps the thresholds evaluated per feature; above this
// the sorted values are subsampled evenly.
const maxSplitCandidates = 32

// bestSplit finds the (feature, threshold) minimizing the weighted child
// variance over the candidate feature subset, returning that variance too.
//
// Instead of rescanning all samples per candidate threshold, each feature
// is processed with one sorted sweep: the (value, target) pairs are sorted
// once, and running prefix sums of the targets give every candidate's
// weighted child variance in O(1), for O(n log n) per feature.
func (b *builder) bestSplit(lo, hi int) (feat int, thresh, score float64, ok bool) {
	nFeat := b.dims
	if b.cfg.MaxFeatures == MaxFeaturesSqrt {
		nFeat = int(math.Ceil(math.Sqrt(float64(b.dims))))
	}
	// The full permutation is always drawn — even when every feature is
	// considered — to keep RNG consumption identical across configurations.
	b.rng.PermInto(b.feats)
	feats := b.feats[:nFeat]

	n := hi - lo
	vals := b.vals[:n]
	ys := b.ys[:n]
	bestScore := math.Inf(1)
	for _, ft := range feats {
		for k, i := range b.idx[lo:hi] {
			vals[k] = b.X[i][ft]
			ys[k] = b.y[i]
		}
		b.sorter.v, b.sorter.y = vals, ys
		sort.Sort(&b.sorter)
		var sumT, sqT float64
		for _, t := range ys {
			sumT += t
			sqT += t * t
		}
		// Candidate thresholds: midpoints between distinct consecutive
		// values, evenly subsampled if too many.
		step := 1
		if n > maxSplitCandidates {
			step = n / maxSplitCandidates
		}
		j := 0
		var sumL, sqL float64
		for vi := 0; vi+step < n; vi += step {
			a, c := vals[vi], vals[vi+step]
			if a == c { //carol:allow floateq equal sorted values admit no threshold between them
				continue
			}
			t := (a + c) / 2
			// Thresholds increase monotonically, so the left-side prefix
			// sums advance with a single cursor over the sorted pairs.
			for j < n && vals[j] <= t {
				sumL += ys[j]
				sqL += ys[j] * ys[j]
				j++
			}
			nL, nR := float64(j), float64(n-j)
			sumR, sqR := sumT-sumL, sqT-sqL
			varL := sqL/nL - (sumL/nL)*(sumL/nL)
			varR := sqR/nR - (sumR/nR)*(sumR/nR)
			if s := (nL*varL + nR*varR) / (nL + nR); s < bestScore {
				bestScore = s
				feat, thresh, ok = ft, t, true
			}
		}
	}
	return feat, thresh, bestScore, ok
}
