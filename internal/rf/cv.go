package rf

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"carol/internal/obs"
	"carol/internal/xrand"
)

var cvSeconds = obs.Default.Histogram("rf_crossvalidate_seconds", obs.LatencyBuckets())

// CrossValidate scores a configuration with k-fold cross-validation and
// returns the mean negative MSE across folds (higher is better, 0 is
// perfect). This is the scoring function FXRZ's randomized grid search and
// CAROL's Bayesian optimizer both maximize.
//
// Folds run concurrently, bounded by Config.Workers; fold scores are summed
// in fold order, so the result is bit-identical for any Workers value.
func CrossValidate(X [][]float64, y []float64, cfg Config, k int, seed uint64) (float64, error) {
	start := time.Now()
	defer cvSeconds.ObserveSince(start)
	if k < 2 {
		return 0, errors.New("rf: k-fold needs k >= 2")
	}
	if len(X) < k {
		return 0, errors.New("rf: fewer samples than folds")
	}
	perm := xrand.New(seed).Perm(len(X))
	foldOf := make([]int, len(X))
	for i, p := range perm {
		foldOf[p] = i % k
	}
	scores := make([]float64, k)
	errs := make([]error, k)
	runFold := func(fold int) {
		nTest := 0
		for i := range X {
			if foldOf[i] == fold {
				nTest++
			}
		}
		trX := make([][]float64, 0, len(X)-nTest)
		trY := make([]float64, 0, len(X)-nTest)
		teX := make([][]float64, 0, nTest)
		teY := make([]float64, 0, nTest)
		for i := range X {
			if foldOf[i] == fold {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		f, err := Train(trX, trY, cfg)
		if err != nil {
			errs[fold] = err
			return
		}
		preds, err := f.PredictBatch(teX)
		if err != nil {
			errs[fold] = err
			return
		}
		var mse float64
		for i, p := range preds {
			d := p - teY[i]
			mse += d * d
		}
		if len(preds) > 0 {
			mse /= float64(len(preds))
		}
		scores[fold] = -mse
	}
	workers := resolveWorkers(cfg.Workers)
	if workers > k {
		workers = k
	}
	if workers == 1 {
		for fold := 0; fold < k; fold++ {
			runFold(fold)
		}
	} else {
		// Exactly `workers` goroutines pulling folds off a shared counter —
		// fold results land positionally, so the schedule cannot affect the
		// score.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					fold := int(next.Add(1)) - 1
					if fold >= k {
						return
					}
					runFold(fold)
				}
			}()
		}
		wg.Wait()
	}
	var totalScore float64
	for fold := 0; fold < k; fold++ {
		if errs[fold] != nil {
			return 0, errs[fold]
		}
		totalScore += scores[fold]
	}
	score := totalScore / float64(k)
	if math.IsNaN(score) {
		return 0, errors.New("rf: NaN cross-validation score")
	}
	return score, nil
}
