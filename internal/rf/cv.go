package rf

import (
	"errors"
	"math"

	"carol/internal/xrand"
)

// CrossValidate scores a configuration with k-fold cross-validation and
// returns the mean negative MSE across folds (higher is better, 0 is
// perfect). This is the scoring function FXRZ's randomized grid search and
// CAROL's Bayesian optimizer both maximize.
func CrossValidate(X [][]float64, y []float64, cfg Config, k int, seed uint64) (float64, error) {
	if k < 2 {
		return 0, errors.New("rf: k-fold needs k >= 2")
	}
	if len(X) < k {
		return 0, errors.New("rf: fewer samples than folds")
	}
	perm := xrand.New(seed).Perm(len(X))
	foldOf := make([]int, len(X))
	for i, p := range perm {
		foldOf[p] = i % k
	}
	var totalScore float64
	for fold := 0; fold < k; fold++ {
		var trX [][]float64
		var trY []float64
		var teX [][]float64
		var teY []float64
		for i := range X {
			if foldOf[i] == fold {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		f, err := Train(trX, trY, cfg)
		if err != nil {
			return 0, err
		}
		var mse float64
		for i := range teX {
			p, err := f.Predict(teX[i])
			if err != nil {
				return 0, err
			}
			d := p - teY[i]
			mse += d * d
		}
		if len(teX) > 0 {
			mse /= float64(len(teX))
		}
		totalScore += -mse
	}
	score := totalScore / float64(k)
	if math.IsNaN(score) {
		return 0, errors.New("rf: NaN cross-validation score")
	}
	return score, nil
}
