// Package gridsearch implements FXRZ's hyper-parameter tuning baseline: a
// randomized grid search over the six random-forest hyper-parameters,
// validated with k-fold cross-validation (§5.3 of the CAROL paper). It also
// defines the shared search space and the vector<->rf.Config mapping that
// CAROL's Bayesian optimizer (package bayesopt) searches over.
package gridsearch

import (
	"errors"
	"fmt"

	"carol/internal/bayesopt"
	"carol/internal/rf"
	"carol/internal/xrand"
)

// Grid is the discrete FXRZ hyper-parameter grid (§5.3: n_estimators
// [90:1200], max_features {auto,sqrt}, max_depth [10:110],
// min_samples_split {2,5,10}, min_samples_leaf {1,2,4}, bootstrap {t,f}).
var Grid = struct {
	NEstimatorsMin, NEstimatorsMax, NEstimatorsStep int
	MaxDepthMin, MaxDepthMax, MaxDepthStep          int
	MinSamplesSplit                                 []int
	MinSamplesLeaf                                  []int
}{
	NEstimatorsMin: 90, NEstimatorsMax: 1200, NEstimatorsStep: 10,
	MaxDepthMin: 10, MaxDepthMax: 110, MaxDepthStep: 10,
	MinSamplesSplit: []int{2, 5, 10},
	MinSamplesLeaf:  []int{1, 2, 4},
}

// RandomConfig draws one configuration uniformly from the grid.
func RandomConfig(rng *xrand.Source) rf.Config {
	nEstChoices := (Grid.NEstimatorsMax-Grid.NEstimatorsMin)/Grid.NEstimatorsStep + 1
	depthChoices := (Grid.MaxDepthMax-Grid.MaxDepthMin)/Grid.MaxDepthStep + 1
	cfg := rf.Config{
		NEstimators:     Grid.NEstimatorsMin + rng.Intn(nEstChoices)*Grid.NEstimatorsStep,
		MaxDepth:        Grid.MaxDepthMin + rng.Intn(depthChoices)*Grid.MaxDepthStep,
		MinSamplesSplit: Grid.MinSamplesSplit[rng.Intn(len(Grid.MinSamplesSplit))],
		MinSamplesLeaf:  Grid.MinSamplesLeaf[rng.Intn(len(Grid.MinSamplesLeaf))],
		Bootstrap:       rng.Intn(2) == 1,
		Seed:            rng.Uint64(),
	}
	if rng.Intn(2) == 1 {
		cfg.MaxFeatures = rf.MaxFeaturesSqrt
	}
	return cfg
}

// Result is the outcome of a search.
type Result struct {
	Config    rf.Config
	Score     float64 // mean negative MSE across folds
	Evaluated int     // configurations scored
}

// Search runs FXRZ's randomized grid search: sample nConfigs random grid
// points, score each with k-fold cross-validation, return the best. This is
// deliberately the naive strategy the paper criticizes — every invocation
// starts from scratch.
//
// forestCap, when positive, clamps NEstimators during evaluation so that
// scaled-down experiments stay tractable; pass 0 for the paper-faithful
// uncapped search.
//
// workers bounds the CPU parallelism of each evaluation (tree growth and
// CV folds): 0 uses every core, 1 forces the serial engine. The search
// outcome is bit-identical for every value.
func Search(X [][]float64, y []float64, nConfigs, k int, seed uint64, forestCap, workers int) (Result, error) {
	if nConfigs < 1 {
		return Result{}, errors.New("gridsearch: need at least one configuration")
	}
	rng := xrand.New(seed)
	best := Result{Score: negInf}
	for i := 0; i < nConfigs; i++ {
		cfg := RandomConfig(rng)
		cfg.Workers = workers
		if forestCap > 0 && cfg.NEstimators > forestCap {
			cfg.NEstimators = forestCap
		}
		score, err := rf.CrossValidate(X, y, cfg, k, seed+uint64(i))
		if err != nil {
			return Result{}, fmt.Errorf("gridsearch: config %d: %w", i, err)
		}
		if score > best.Score {
			best.Config = cfg
			best.Score = score
		}
		best.Evaluated++
	}
	return best, nil
}

const negInf = -1e308

// BOSpace returns the same hyper-parameter space as a bayesopt search
// space, in the canonical order used by ConfigFromValues.
func BOSpace() bayesopt.Space {
	return bayesopt.Space{
		{Name: "n_estimators", Min: float64(Grid.NEstimatorsMin), Max: float64(Grid.NEstimatorsMax), Integer: true},
		{Name: "max_features", Choices: []float64{0, 1}},
		{Name: "max_depth", Min: float64(Grid.MaxDepthMin), Max: float64(Grid.MaxDepthMax), Integer: true},
		{Name: "min_samples_split", Choices: []float64{2, 5, 10}},
		{Name: "min_samples_leaf", Choices: []float64{1, 2, 4}},
		{Name: "bootstrap", Choices: []float64{0, 1}},
	}
}

// ConfigFromValues converts a BOSpace value vector into an rf.Config.
func ConfigFromValues(v []float64, seed uint64) (rf.Config, error) {
	if len(v) != 6 {
		return rf.Config{}, fmt.Errorf("gridsearch: value vector has %d entries, want 6", len(v))
	}
	cfg := rf.Config{
		NEstimators:     int(v[0]),
		MaxDepth:        int(v[2]),
		MinSamplesSplit: int(v[3]),
		MinSamplesLeaf:  int(v[4]),
		Bootstrap:       v[5] != 0, //carol:allow floateq decodes a 0/1 flag stored in a float vector
		Seed:            seed,
	}
	if v[1] != 0 { //carol:allow floateq decodes a 0/1 flag stored in a float vector
		cfg.MaxFeatures = rf.MaxFeaturesSqrt
	}
	return cfg, nil
}

// ValuesFromConfig is the inverse of ConfigFromValues (used when seeding a
// BO run from a known-good configuration).
func ValuesFromConfig(cfg rf.Config) []float64 {
	v := []float64{
		float64(cfg.NEstimators), 0, float64(cfg.MaxDepth),
		float64(cfg.MinSamplesSplit), float64(cfg.MinSamplesLeaf), 0,
	}
	if cfg.MaxFeatures == rf.MaxFeaturesSqrt {
		v[1] = 1
	}
	if cfg.Bootstrap {
		v[5] = 1
	}
	return v
}
