package gridsearch

import (
	"math"
	"testing"

	"carol/internal/bayesopt"
	"carol/internal/rf"
	"carol/internal/xrand"
)

func synthData(n int, seed uint64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		y[i] = 2*a - b + 0.05*rng.Norm()
	}
	return X, y
}

func TestRandomConfigWithinGrid(t *testing.T) {
	rng := xrand.New(1)
	for i := 0; i < 200; i++ {
		cfg := RandomConfig(rng)
		if cfg.NEstimators < Grid.NEstimatorsMin || cfg.NEstimators > Grid.NEstimatorsMax {
			t.Fatalf("NEstimators %d out of grid", cfg.NEstimators)
		}
		if (cfg.NEstimators-Grid.NEstimatorsMin)%Grid.NEstimatorsStep != 0 {
			t.Fatalf("NEstimators %d off-grid", cfg.NEstimators)
		}
		if cfg.MaxDepth < Grid.MaxDepthMin || cfg.MaxDepth > Grid.MaxDepthMax {
			t.Fatalf("MaxDepth %d out of grid", cfg.MaxDepth)
		}
		okSplit := false
		for _, v := range Grid.MinSamplesSplit {
			if cfg.MinSamplesSplit == v {
				okSplit = true
			}
		}
		if !okSplit {
			t.Fatalf("MinSamplesSplit %d off-grid", cfg.MinSamplesSplit)
		}
	}
}

func TestSearchFindsWorkingConfig(t *testing.T) {
	X, y := synthData(120, 2)
	res, err := Search(X, y, 4, 3, 7, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 4 {
		t.Fatalf("Evaluated = %d", res.Evaluated)
	}
	if res.Score == negInf || math.IsNaN(res.Score) {
		t.Fatalf("Score = %g", res.Score)
	}
	// The winning config must train successfully on the full data.
	if _, err := rf.Train(X, y, res.Config); err != nil {
		t.Fatal(err)
	}
}

func TestSearchRejectsZeroConfigs(t *testing.T) {
	X, y := synthData(30, 3)
	if _, err := Search(X, y, 0, 3, 1, 0, 0); err == nil {
		t.Fatal("zero configs accepted")
	}
}

func TestSearchDeterministic(t *testing.T) {
	X, y := synthData(80, 4)
	a, err := Search(X, y, 3, 3, 99, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(X, y, 3, 3, 99, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Config != b.Config || a.Score != b.Score {
		t.Fatal("same-seed searches differ")
	}
}

func TestBOSpaceConfigRoundTrip(t *testing.T) {
	space := BOSpace()
	if len(space) != 6 {
		t.Fatalf("space has %d dims", len(space))
	}
	rng := xrand.New(5)
	for i := 0; i < 100; i++ {
		cfg := RandomConfig(rng)
		v := ValuesFromConfig(cfg)
		back, err := ConfigFromValues(v, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if back != cfg {
			t.Fatalf("round trip changed config: %+v -> %+v", cfg, back)
		}
	}
}

func TestConfigFromValuesValidation(t *testing.T) {
	if _, err := ConfigFromValues([]float64{1, 2}, 0); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestBOSpaceProducesValidConfigs(t *testing.T) {
	// Every point the BO optimizer can emit must convert to a config that
	// rf.Train accepts.
	space := BOSpace()
	o := bayesopt.New(space, 8)
	X, y := synthData(40, 6)
	for i := 0; i < 10; i++ {
		v := o.Suggest()
		cfg, err := ConfigFromValues(v, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.NEstimators = 3 // keep the test fast; validity is what matters
		if _, err := rf.Train(X, y, cfg); err != nil {
			t.Fatalf("BO-suggested config invalid: %+v: %v", cfg, err)
		}
		if err := o.Observe(v, -float64(i)); err != nil {
			t.Fatal(err)
		}
	}
}
