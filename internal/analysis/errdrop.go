package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop reports discarded error results: expression-statement calls whose
// (possibly last) result is an error, and deferred Close on files opened
// for writing. The second case is the classic silent data-loss bug this
// repository's CLIs must not have: a deferred Close's return value is
// thrown away, and on a written file Close is what surfaces the final
// flush failure — the archive looks written and is truncated.
//
// Explicitly assigning to _ is an accepted, visible discard. Noise from
// APIs whose errors are structurally uninteresting is excluded: fmt
// printing to stdout/stderr, to an in-memory buffer, or to an
// interface-typed writer (a report printer's io.Writer parameter — the
// caller picked the destination, and line-by-line Fprintf checking is
// noise); methods on bytes.Buffer / strings.Builder and hash.Hash
// implementations (all documented to never fail). Writes to a concrete
// file the function itself opened stay flagged.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flags call statements that discard an error result and deferred " +
		"Close on writable files; handle the error or assign it to _",
	Run: runErrDrop,
}

func runErrDrop(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					p.checkDroppedError(call)
				}
			case *ast.FuncDecl:
				p.checkWritableDefers(n.Body)
			case *ast.FuncLit:
				p.checkWritableDefers(n.Body)
			}
			return true
		})
	}
	return nil
}

// checkDroppedError reports call when it returns an error that the
// statement discards.
func (p *Pass) checkDroppedError(call *ast.CallExpr) {
	t := p.Info.TypeOf(call)
	if t == nil || !resultHasError(t) || p.errExcluded(call) {
		return
	}
	p.Reportf(call.Pos(), "%s returns an error that is discarded; handle it or assign it to _", types.ExprString(call.Fun))
}

// resultHasError reports whether t (a call's result type) is or contains an
// error.
func resultHasError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errExcluded filters structurally-uninteresting error sources.
func (p *Pass) errExcluded(call *ast.CallExpr) bool {
	// fmt.Print*/Println to stdout, and fmt.Fprint* into stdout/stderr or
	// an in-memory buffer.
	if isPkgFunc(p.Info, call.Fun, "fmt", "") {
		name := objectOf(p.Info, call.Fun).Name()
		if strings.HasPrefix(name, "Print") {
			return true
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return p.isStdStream(call.Args[0]) || p.isMemoryWriter(call.Args[0]) ||
				p.isInterfaceTyped(call.Args[0])
		}
		return false
	}
	// Methods on bytes.Buffer / strings.Builder and on hash.Hash values
	// never return a non-nil error (their docs guarantee it).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if recv := p.Info.TypeOf(sel.X); recv != nil {
			if isMemoryWriterType(recv) || isHashType(recv) {
				return true
			}
		}
	}
	return false
}

// isInterfaceTyped reports whether e's static type is an interface (e.g. an
// io.Writer parameter).
func (p *Pass) isInterfaceTyped(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	return t != nil && types.IsInterface(t)
}

// isHashType reports whether t is one of package hash's interfaces.
func isHashType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "hash"
}

// isStdStream reports whether e is os.Stdout or os.Stderr.
func (p *Pass) isStdStream(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
		(obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

// isMemoryWriter reports whether e's type is an in-memory buffer.
func (p *Pass) isMemoryWriter(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	return t != nil && isMemoryWriterType(t)
}

func isMemoryWriterType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	case "text/tabwriter.Writer":
		// tabwriter buffers until Flush; per-write errors resurface there,
		// and Flush's error is what callers must (and do) check.
		return true
	}
	return false
}

// checkWritableDefers flags `defer f.Close()` where f was opened for
// writing in the same function body.
func (p *Pass) checkWritableDefers(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	writable := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && len(as.Lhs) >= 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && p.opensForWriting(call) {
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					if obj := p.objectOfIdent(id); obj != nil {
						writable[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(writable) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		df, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(df.Call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && writable[p.Info.Uses[id]] {
			p.Reportf(df.Pos(), "deferred Close on writable file %s discards the flush error; Close explicitly and return its error", id.Name)
		}
		return true
	})
}

// opensForWriting matches os.Create and os.OpenFile whose flags mention a
// writing mode.
func (p *Pass) opensForWriting(call *ast.CallExpr) bool {
	if isPkgFunc(p.Info, call.Fun, "os", "Create") {
		return true
	}
	if !isPkgFunc(p.Info, call.Fun, "os", "OpenFile") || len(call.Args) < 2 {
		return false
	}
	writish := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
				writish = true
			}
		}
		return !writish
	})
	return writish
}

// objectOfIdent resolves an identifier on either side of := / =.
func (p *Pass) objectOfIdent(id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}
