// Package taintalloc is a carollint golden fixture: allocation sizes
// derived from a compressed stream must pass a safedec.Limits check or an
// explicit comparison before reaching make — including across helper
// calls in both directions (tainted result, validated parameter,
// unchecked allocation in a callee).
package taintalloc

import (
	"encoding/binary"

	"carol/internal/safedec"
)

// An unchecked stream-claimed length reaching make: reported.
func decodeUnchecked(stream []byte) []byte {
	n, _ := binary.Uvarint(stream)
	return make([]byte, n) // want `allocation size derived from compressed stream`
}

// The same path guarded by an explicit comparison: clean.
func decodeCompared(stream []byte) []byte {
	n, _ := binary.Uvarint(stream)
	if n > 1<<20 {
		return nil
	}
	return make([]byte, n)
}

// The same path guarded by safedec.Limits: clean.
func decodeLimited(stream []byte, lim safedec.Limits) []byte {
	n, _ := binary.Uvarint(stream)
	if err := lim.Alloc("payload", int64(n)); err != nil {
		return nil
	}
	return make([]byte, n)
}

// Taint propagates through locals and arithmetic.
func decodeViaLocal(stream []byte) []uint32 {
	hdr := binary.LittleEndian.Uint32(stream)
	count := int(hdr) * 4
	return make([]uint32, count) // want `allocation size derived from compressed stream`
}

// readLen's result derives from a stream read; the summary carries the
// taint back to every caller.
func readLen(stream []byte) int {
	n, _ := binary.Uvarint(stream)
	return int(n)
}

// Taint survives a helper's return value (interprocedural result summary).
func decodeViaHelper(stream []byte) []byte {
	return make([]byte, readLen(stream)) // want `allocation size derived from compressed stream`
}

// checkLen validates its parameter; the summary says so.
func checkLen(n int, lim safedec.Limits) bool {
	return lim.Alloc("n", int64(n)) == nil
}

// The check happens in a helper: the interprocedural Validates summary —
// not syntax — makes this path clean.
func decodeHelperChecked(stream []byte, lim safedec.Limits) []byte {
	n := readLen(stream)
	if !checkLen(n, lim) {
		return nil
	}
	return make([]byte, n)
}

// grow allocates its parameter with no check of its own.
func grow(n int) []byte { return make([]byte, n) }

// The allocation happens in a helper: passing an unchecked stream length
// to it is reported at the call site.
func decodeHelperAlloc(stream []byte) []byte {
	return grow(readLen(stream)) // want `stream-derived size passed to grow`
}

// A clamped size is bounded regardless of the stream value.
func decodeClamped(stream []byte) []byte {
	n := readLen(stream)
	return make([]byte, min(n, 4096))
}
