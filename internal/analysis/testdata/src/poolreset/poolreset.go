// Package poolreset is a carollint golden fixture: sync.Pool objects must
// be reset between Get and use, and must not retain caller-visible memory
// across Put — directly or through helper methods (interprocedural
// Resets/Clears/Stores summaries).
package poolreset

import "sync"

type scratch struct {
	buf []byte
	n   int
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// Get with no reset anywhere in the function: reported.
func noReset(data []byte) int {
	s := pool.Get().(*scratch) // want `pooled object is not reset between Get and use`
	defer pool.Put(s)
	return s.n + len(data)
}

// A field write counts as re-initialization: clean.
func fieldReset(data []byte) int {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	s.n = len(data)
	return s.n
}

// Parking a caller slice in the pooled object and Putting it back: the
// pool retains (and leaks to the next user) the caller's memory.
func retains(data []byte) int {
	s := pool.Get().(*scratch)
	s.buf = data
	n := len(s.buf)
	pool.Put(s) // want `pooled object retains caller-visible memory across Put`
	return n
}

// The same path with a nil-out before Put: clean.
func clears(data []byte) int {
	s := pool.Get().(*scratch)
	s.buf = data
	n := len(s.buf)
	s.buf = nil
	pool.Put(s)
	return n
}

// rearm re-initializes the scratch but parks the caller's slice in it.
func (s *scratch) rearm(buf []byte) {
	s.buf = buf
	s.n = 0
}

// done releases the parked slice.
func (s *scratch) done() { s.buf = nil }

// Reset and clear both delegated to helpers (interprocedural summaries):
// clean.
func viaHelpers(data []byte) int {
	s := pool.Get().(*scratch)
	s.rearm(data)
	n := len(s.buf)
	s.done()
	pool.Put(s)
	return n
}

// The helper's Stores summary carries the retention to the caller, which
// never clears it: reported at the Put.
func viaHelperRetains(data []byte) int {
	s := pool.Get().(*scratch)
	s.rearm(data)
	n := len(s.buf)
	pool.Put(s) // want `pooled object retains caller-visible memory across Put`
	return n
}
