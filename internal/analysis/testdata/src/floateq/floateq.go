// Package floateq is a carollint golden fixture.
package floateq

func eq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func neq32(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want `floating-point == comparison`
}

func zeroGuard(x float64) bool {
	return x == 0 // want `floating-point == comparison`
}

func nanIdiom(x float64) bool {
	return x != x // the NaN self-compare idiom: fine
}

func ints(a, b int) bool {
	return a == b // integer comparison: fine
}

func ordered(a, b float64) bool {
	return a < b // ordered comparisons are fine; only ==/!= are bit-exact claims
}

const c1, c2 = 1.5, 2.5

var constFolded = c1 == c2 // both operands constant: fine
