// Package allow is a carollint fixture full of violations that are all
// suppressed with carol:allow directives — the whole suite must report
// nothing here.
package allow

import "sync"

func trailing(a, b float64) bool {
	return a == b //carol:allow floateq fixture: trailing-directive placement
}

func lineAbove(a, b float32) bool {
	//carol:allow floateq fixture: directive-above placement
	return a != b
}

func multi(m map[string]float64) []float64 {
	var out []float64
	var s float64
	for _, v := range m {
		out = append(out, v) //carol:allow maporder fixture: consumer sorts later
		s += v               //carol:allow maporder,floateq fixture: comma-separated list
	}
	_ = s
	return out
}

func fanOut(items []int, f func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		//carol:allow gopool fixture: item count is bounded by the caller
		go func(it int) {
			defer wg.Done()
			f(it)
		}(it)
	}
	wg.Wait()
}
