// Package allow is a carollint fixture full of violations that are all
// suppressed with carol:allow directives — the whole suite must report
// nothing here.
package allow

import (
	"encoding/binary"
	"net/url"
	"sync"

	"carol/internal/obs"
)

func trailing(a, b float64) bool {
	return a == b //carol:allow floateq fixture: trailing-directive placement
}

func lineAbove(a, b float32) bool {
	//carol:allow floateq fixture: directive-above placement
	return a != b
}

func multi(m map[string]float64) []float64 {
	var out []float64
	var s float64
	hits := make(map[bool]float64)
	for _, v := range m {
		out = append(out, v) //carol:allow maporder fixture: consumer sorts later
		hits[s == v] += v    //carol:allow maporder,floateq fixture: comma-separated list
	}
	_ = s
	return out
}

func fanOut(items []int, f func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		//carol:allow gopool fixture: item count is bounded by the caller
		go func(it int) {
			defer wg.Done()
			f(it)
		}(it)
	}
	wg.Wait()
}

func spawnHelper(f func()) { go f() }

func helperFanOut(items []int, f func(int)) {
	for _, it := range items {
		it := it
		spawnHelper(func() { f(it) }) //carol:allow gopool fixture: item count is bounded by the caller
	}
}

func allowTaint(stream []byte) []byte {
	n, _ := binary.Uvarint(stream)
	return make([]byte, n) //carol:allow taintalloc fixture: caller enforces the bound
}

type pooled struct{ buf []byte }

var pool = sync.Pool{New: func() any { return new(pooled) }}

func allowPoolGet(data []byte) int {
	s := pool.Get().(*pooled) //carol:allow poolreset fixture: scratch is read-only here
	defer pool.Put(s)
	return len(s.buf) + len(data)
}

func allowPoolPut(data []byte) int {
	s := pool.Get().(*pooled)
	s.buf = data
	n := len(s.buf)
	pool.Put(s) //carol:allow poolreset fixture: caller owns the retained buffer
	return n
}

func allowLabel(q url.Values) {
	codec := q.Get("codec")
	obs.Default.Counter(obs.Label("x_total", "codec", codec)).Inc() //carol:allow metriclabel fixture: cardinality bounded upstream
}
