// Package maporder is a carollint golden fixture.
package maporder

import "bytes"

func values(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want `append inside range over map`
	}
	return out
}

func collectKeys(m map[string]float64) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // the sort-the-keys fix pattern: fine
	}
	return ks
}

func encode(m map[string]int) []byte {
	var buf bytes.Buffer
	for k := range m {
		buf.WriteString(k) // want `WriteString inside range over map`
	}
	return buf.Bytes()
}

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `float accumulation inside range over map`
	}
	return s
}

func countInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer accumulation is exact and commutative: fine
	}
	return n
}

func sliceAppend(xs []float64) []float64 {
	var out []float64
	for _, v := range xs {
		out = append(out, v) // range over slice: order is defined, fine
	}
	return out
}
