// Package errdrop is a carollint golden fixture.
package errdrop

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

func dropped(path string) {
	os.Remove(path) // want `os.Remove returns an error that is discarded`
}

func blankAssign(path string) {
	_ = os.Remove(path) // explicit discard: fine
}

func writeDeferred(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred Close on writable file f`
	_, err = f.Write(data)
	return err
}

func appendDeferred(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred Close on writable file f`
	_, err = f.WriteString("x")
	return err
}

func readDeferred(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // deferred Close on a read-only file: fine
	var buf [16]byte
	_, err = f.Read(buf[:])
	return err
}

func explicitClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close() // the sanctioned shape: Close error is returned
}

func memoryWriters(w io.Writer) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "x=%d", 1)  // in-memory buffer: fine
	b.WriteString("!")          // documented to never fail: fine
	fmt.Fprintln(w, b.String()) // interface-typed writer: fine
	fmt.Println("done")         // stdout printing: fine
	return b.String()
}
