// Package globalrand is a carollint golden fixture: each `// want` comment
// names a regexp the diagnostic on that line must match.
package globalrand

import (
	"math/rand" // want `import of math/rand: draw from a caller-seeded xrand.Source`
	"time"

	"carol/internal/xrand"
)

func seeded() float64 {
	r := rand.New(rand.NewSource(1)) // uses are not re-flagged; the import was
	return r.Float64()
}

func clockSeeded() *xrand.Source {
	return xrand.New(uint64(time.Now().UnixNano())) // want `RNG seeded from the clock`
}

func clockSeededDirect() *xrand.Noise {
	return xrand.NewNoise(uint64(time.Now().Unix())) // want `RNG seeded from the clock`
}

func explicit(seed uint64) *xrand.Source {
	return xrand.New(seed) // explicit, reproducible seed: fine
}

func notAnRNG() time.Time {
	return time.Unix(time.Now().Unix(), 0) // clock use outside RNG construction: fine
}
