// Package badallow is a carollint fixture: a directive naming an unknown
// check must itself be diagnosed, and must not suppress the real finding.
package badallow

func typo(a, b float64) bool {
	return a == b //carol:allow floateqq typo'd check name // want `floating-point == comparison` `carol:allow names unknown check "floateqq"`
}

func stale(a, b float64) float64 {
	return a + b //carol:allow floateq stale: nothing to suppress here; want `unused carol:allow directive`
}
