// Package gopool is a carollint golden fixture.
package gopool

import "sync"

func unbounded(items []int, f func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) { // want `goroutine launched per loop iteration with no bound`
			defer wg.Done()
			f(it)
		}(it)
	}
	wg.Wait()
}

func workerPool(workers int, f func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { // loop is bounded by the worker count: fine
			defer wg.Done()
			f(w)
		}(w)
	}
	wg.Wait()
}

func semaphore(items []int, f func(int)) {
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) { // counting-semaphore bound: fine
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f(it)
		}(it)
	}
	wg.Wait()
}

func inputSized(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want `goroutine launched per loop iteration with no bound`
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

func notALoop(f func()) {
	go f() // a single goroutine outside any loop: fine
}
