// Package gopool is a carollint golden fixture.
package gopool

import "sync"

func unbounded(items []int, f func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) { // want `goroutine launched per loop iteration with no bound`
			defer wg.Done()
			f(it)
		}(it)
	}
	wg.Wait()
}

func workerPool(workers int, f func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { // loop is bounded by the worker count: fine
			defer wg.Done()
			f(w)
		}(w)
	}
	wg.Wait()
}

func semaphore(items []int, f func(int)) {
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) { // counting-semaphore bound: fine
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f(it)
		}(it)
	}
	wg.Wait()
}

func inputSized(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want `goroutine launched per loop iteration with no bound`
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

func notALoop(f func()) {
	go f() // a single goroutine outside any loop: fine
}

// result stands in for the pipeline package's per-block outcome.
type result struct{ err error }

// orderedPipeline is the internal/pipeline runOrdered shape: a launcher
// loop that parks a future channel in a bounded buffer and acquires a
// counting semaphore before every go statement. Both channel sends in the
// loop body mark the fan-out bounded.
func orderedPipeline(n, workers int, launch func(i int) func() result, emit func(i int, r result)) {
	futures := make(chan chan result, 2*workers)
	sem := make(chan struct{}, workers)
	go func() {
		for i := 0; i < n; i++ {
			ch := make(chan result, 1)
			futures <- ch
			work := launch(i)
			sem <- struct{}{}
			go func(work func() result, ch chan<- result) { // semaphore-bounded: fine
				defer func() { <-sem }()
				ch <- work()
			}(work, ch)
		}
		close(futures)
	}()
	i := 0
	for ch := range futures {
		emit(i, <-ch)
		i++
	}
}

// futuresWithoutSemaphore still sends each block's future channel into a
// bounded buffer before spawning: goroutine creation is capped by the
// buffer, which the analyzer accepts as a channel-op bound.
func futuresWithoutSemaphore(n, workers int, work func(i int) result) []result {
	futures := make(chan chan result, workers)
	go func() {
		for i := 0; i < n; i++ {
			ch := make(chan result, 1)
			futures <- ch
			go func(i int, ch chan<- result) { // future-buffer bound: fine
				ch <- work(i)
			}(i, ch)
		}
		close(futures)
	}()
	out := make([]result, 0, n)
	for ch := range futures {
		out = append(out, <-ch)
	}
	return out
}

// perBlockSpawn is the pre-pipeline anti-pattern: one goroutine per block
// with collection deferred to a later loop, nothing in the spawn loop
// bounding creation.
func perBlockSpawn(blocks []int, work func(int) result) []result {
	out := make([]result, len(blocks))
	var wg sync.WaitGroup
	for i := range blocks {
		wg.Add(1)
		go func(i int) { // want `goroutine launched per loop iteration with no bound`
			defer wg.Done()
			out[i] = work(blocks[i])
		}(i)
	}
	wg.Wait()
	return out
}

// spawner launches an unjoined goroutine per call — the SpawnsPerCall
// summary marks it, so calls from unbounded loops are launch sites.
func spawner(f func()) {
	go f()
}

// Calling a spawning helper per iteration of an unbounded loop is the same
// fan-out as an inline go statement: reported interprocedurally.
func helperFanOut(items []int, f func(int)) {
	for _, it := range items {
		it := it
		spawner(func() { f(it) }) // want `spawner launches an unjoined goroutine per call`
	}
}

// runOrdered is internal/pipeline's launcher shape: goroutines coordinate
// through channels, so the summary is bounded and call sites need no allow
// directive.
func runOrdered(n int, f func(int)) {
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) { // channel-coordinated: fine
			f(i)
			results <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-results
	}
}

// Calling a bounded launcher in a loop: fine.
func launcherBounded(blocks []int, f func(int)) {
	for range blocks {
		runOrdered(4, f)
	}
}
