// Package metriclabel is a carollint golden fixture: obs metric label
// values must come from finite constant sets, never raw request strings —
// with the finite-set idioms (switch, map membership) and helper flows
// (Labels and Validates summaries) recognized interprocedurally.
package metriclabel

import (
	"net/url"

	"carol/internal/obs"
)

// A raw query parameter as a label value: unbounded cardinality, reported.
func recordRaw(q url.Values) {
	codec := q.Get("codec")
	obs.Default.Counter(obs.Label("requests_total", "codec", codec)).Inc() // want `metric label derived from request input`
}

// A switch pins the value to a finite set: clean.
func recordSwitched(q url.Values) {
	codec := q.Get("codec")
	switch codec {
	case "szx", "zfp":
	default:
		codec = "other"
	}
	obs.Default.Counter(obs.Label("requests_total", "codec", codec)).Inc()
}

var knownCodecs = map[string]bool{"szx": true, "zfp": true}

// A comma-ok map membership test pins the value: clean.
func recordMember(q url.Values) {
	codec := q.Get("codec")
	if _, ok := knownCodecs[codec]; !ok {
		return
	}
	obs.Default.Counter(obs.Label("requests_total", "codec", codec)).Inc()
}

// bump's parameter flows into a label value; the summary taints its call
// sites.
func bump(codec string) {
	obs.Default.Counter(obs.Label("requests_total", "codec", codec)).Inc()
}

// Request taint reaching a labeling helper: reported at the call site.
func recordViaHelper(q url.Values) {
	bump(q.Get("codec")) // want `request-derived value passed to bump`
}

// normalize pins its result to a finite set, so the helper chain is clean.
func normalize(codec string) string {
	switch codec {
	case "szx", "zfp", "sz3", "sperr":
		return codec
	}
	return "other"
}

func recordNormalized(q url.Values) {
	bump(normalize(q.Get("codec")))
}
