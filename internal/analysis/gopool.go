package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// GoPool reports `go` statements launched inside loops with no visible
// bound on the fan-out. One goroutine per item scales with input size, not
// with the machine, which is exactly what Config.Workers exists to prevent
// (PR 1 made every training/prediction pool Workers-bounded). A launch
// site is considered bounded when either
//
//   - the innermost enclosing for-loop iterates up to a worker count
//     (condition compares against an identifier/selector matching
//     workers/procs/threads/parallel, or runtime.GOMAXPROCS/NumCPU), or
//   - the loop body contains a channel send/receive — the counting-
//     semaphore pattern (the acquire may live inside the spawned closure;
//     that bounds concurrent work rather than goroutine creation, which is
//     the resource this check cares about).
//
// The check is interprocedural: a call to a helper whose summary says it
// launches an unjoined goroutine per invocation (SpawnsPerCall) counts as a
// launch site, so fan-out hidden behind a launcher function is still
// caught; conversely, launchers that coordinate through channels or a
// WaitGroup (internal/pipeline's runOrdered) summarize as bounded and need
// no allow directive at their call sites.
//
// Anything else needs restructuring onto a worker pool, or an explicit
// //carol:allow gopool with the reason the fan-out is bounded.
var GoPool = &Analyzer{
	Name: "gopool",
	Doc: "flags go statements in loops without a worker-count bound or " +
		"semaphore; use the Config.Workers pool pattern",
	Run: runGoPool,
}

// workerishName matches loop bounds that denote a machine-derived worker
// count rather than an input size.
var workerishName = regexp.MustCompile(`(?i)worker|n?procs?$|threads?$|parallel|gomaxprocs|numcpu|ncpu`)

func runGoPool(p *Pass) error {
	for _, f := range p.Files {
		p.walkGoPool(f, nil)
	}
	return nil
}

// walkGoPool tracks the innermost enclosing loop while descending; function
// literals do not reset it — a closure spawned per iteration still runs per
// iteration.
func (p *Pass) walkGoPool(n ast.Node, loop ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if c == n {
				return true // the loop we were called on; descend into it
			}
			p.walkGoPool(c, c)
			return false
		case *ast.GoStmt:
			if loop != nil && !p.loopBounded(loop) {
				p.Reportf(c.Pos(), "goroutine launched per loop iteration with no bound: use a Config.Workers-sized pool or a semaphore channel")
			}
			// The spawned call itself is accounted for by the GoStmt above;
			// don't double-report it as a spawning helper call — but keep
			// descending into the closure body and the arguments.
			if c.Call != nil {
				p.walkGoPool(c.Call.Fun, loop)
				p.walkGoPoolCalls(c.Call.Args, loop)
			}
			return false
		case *ast.CallExpr:
			if loop != nil && p.spawnsPerCallHelper(c) && !p.loopBounded(loop) {
				name := "helper"
				if fn, ok := objectOf(p.Info, c.Fun).(*types.Func); ok {
					name = fn.Name()
				}
				p.Reportf(c.Pos(), "%s launches an unjoined goroutine per call; calling it per loop iteration is unbounded fan-out", name)
			}
		}
		return true
	})
}

// walkGoPoolCalls re-inspects argument expressions skipped when a GoStmt
// short-circuits descent.
func (p *Pass) walkGoPoolCalls(args []ast.Expr, loop ast.Node) {
	for _, a := range args {
		p.walkGoPool(a, loop)
	}
}

// spawnsPerCallHelper consults the interprocedural summary: does the callee
// launch a goroutine per invocation with no visible join?
func (p *Pass) spawnsPerCallHelper(call *ast.CallExpr) bool {
	if p.Prog == nil {
		return false
	}
	fn, ok := objectOf(p.Info, call.Fun).(*types.Func)
	if !ok {
		return false
	}
	if _, decl := p.Prog.DeclOf(fn); decl == nil {
		return false
	}
	return p.Prog.Summary(fn).SpawnsPerCall
}

// loopBounded reports whether the loop's fan-out is visibly bounded.
func (p *Pass) loopBounded(loop ast.Node) bool {
	if fs, ok := loop.(*ast.ForStmt); ok && fs.Cond != nil {
		if be, ok := fs.Cond.(*ast.BinaryExpr); ok {
			var bound ast.Expr
			switch be.Op {
			case token.LSS, token.LEQ:
				bound = be.Y
			case token.GTR, token.GEQ:
				bound = be.X
			}
			if bound != nil && isWorkerBound(bound) {
				return true
			}
		}
	}
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	return hasChannelOp(body)
}

// isWorkerBound reports whether e names a worker count.
func isWorkerBound(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return workerishName.MatchString(e.Name)
	case *ast.SelectorExpr:
		return workerishName.MatchString(e.Sel.Name)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			return workerishName.MatchString(sel.Sel.Name)
		}
	}
	return false
}

// hasChannelOp reports whether the block contains a channel send or receive.
func hasChannelOp(body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}
