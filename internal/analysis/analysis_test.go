package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches stdlib type-checking across the fixture tests.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		path, err := ModulePath(root)
		if err != nil {
			loaderErr = err
			return
		}
		loader = NewLoader(root, path, false)
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loader
}

// runFixture loads testdata/src/<name> and runs the analyzers over it.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) (*Package, []Diagnostic) {
	t.Helper()
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}
	diags, err := RunChecks(fixtureLoader(t).Program(), pkg, analyzers, Names(All()))
	if err != nil {
		t.Fatal(err)
	}
	return pkg, diags
}

// wantRe extracts the backquoted expectation patterns from a
// `// want `...` `...“ comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

// expectations maps file:line to the want patterns on that line.
func expectations(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				i := strings.Index(text, "want `")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey(pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(text[i+len("want "):], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

func posKey(file string, line int) string {
	return filepath.Base(file) + ":" + strconv.Itoa(line)
}

// checkGolden verifies that diagnostics and want comments agree line by
// line: every diagnostic must match a want on its line, and every want must
// be matched by at least one diagnostic.
func checkGolden(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := expectations(t, pkg)
	matched := make(map[string][]bool)
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		key := posKey(d.Pos.Filename, d.Pos.Line)
		ok := false
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				matched[key][i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s [%s]", key, d.Message, d.Check)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !matched[key][i] {
				t.Errorf("%s: no diagnostic matched want `%s`", key, re)
			}
		}
	}
}

func TestGlobalRandGolden(t *testing.T) {
	pkg, diags := runFixture(t, "globalrand", []*Analyzer{GlobalRand})
	checkGolden(t, pkg, diags)
}

func TestFloatEqGolden(t *testing.T) {
	pkg, diags := runFixture(t, "floateq", []*Analyzer{FloatEq})
	checkGolden(t, pkg, diags)
}

func TestMapOrderGolden(t *testing.T) {
	pkg, diags := runFixture(t, "maporder", []*Analyzer{MapOrder})
	checkGolden(t, pkg, diags)
}

func TestGoPoolGolden(t *testing.T) {
	pkg, diags := runFixture(t, "gopool", []*Analyzer{GoPool})
	checkGolden(t, pkg, diags)
}

func TestErrDropGolden(t *testing.T) {
	pkg, diags := runFixture(t, "errdrop", []*Analyzer{ErrDrop})
	checkGolden(t, pkg, diags)
}

func TestTaintAllocGolden(t *testing.T) {
	pkg, diags := runFixture(t, "taintalloc", []*Analyzer{TaintAlloc})
	checkGolden(t, pkg, diags)
}

func TestPoolResetGolden(t *testing.T) {
	pkg, diags := runFixture(t, "poolreset", []*Analyzer{PoolReset})
	checkGolden(t, pkg, diags)
}

func TestMetricLabelGolden(t *testing.T) {
	pkg, diags := runFixture(t, "metriclabel", []*Analyzer{MetricLabel})
	checkGolden(t, pkg, diags)
}

// TestAllowSuppression runs the full suite over a fixture whose violations
// are all annotated; nothing may be reported.
func TestAllowSuppression(t *testing.T) {
	_, diags := runFixture(t, "allow", All())
	for _, d := range diags {
		t.Errorf("suppressed fixture produced %s", d)
	}
}

// TestBadAllowDirective checks that a directive naming an unknown check is
// itself diagnosed and does not suppress the real finding.
func TestBadAllowDirective(t *testing.T) {
	pkg, diags := runFixture(t, "badallow", All())
	checkGolden(t, pkg, diags)
	checks := make(map[string]bool)
	for _, d := range diags {
		checks[d.Check] = true
	}
	if !checks[DirectiveCheck] || !checks["floateq"] {
		t.Errorf("want both a %s and a floateq diagnostic, got %v", DirectiveCheck, diags)
	}
}

// TestEmptyDirective exercises the no-check-names form directly.
func TestEmptyDirective(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n\nfunc f() {\n\t//carol:allow\n}\n"
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	_, _, bad := buildAllowIndex(fset, []*ast.File{f}, Names(All()))
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "without check names") {
		t.Fatalf("want one empty-directive diagnostic, got %v", bad)
	}
}

// TestPackageDirs checks pattern expansion skips testdata during walks but
// honors explicit mention.
func TestPackageDirs(t *testing.T) {
	dirs, err := PackageDirs("./...", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("walk entered testdata: %s", d)
		}
	}
	if len(dirs) == 0 {
		t.Error("walk found no packages")
	}
	explicit, err := PackageDirs(filepath.Join("testdata", "src", "floateq"), false)
	if err != nil || len(explicit) != 1 {
		t.Errorf("explicit dir: got %v, %v", explicit, err)
	}
}
