package analysis

import (
	"go/ast"
	"go/types"
)

// PoolReset machine-checks the pooled-scratch discipline from PR 6's arena
// work (zpool/huffman/sperr): an object taken from a sync.Pool carries
// whatever state its previous user left, so
//
//   - every Get must be followed (somewhere in the function) by a reset of
//     the object — a field write, a Reset/Init/Release-named method, or a
//     call to a helper whose summary re-initializes that parameter; and
//   - every Put must not retain caller-visible memory: if the function (or
//     a helper it calls, via Stores summaries) parked a caller-provided
//     slice/pointer inside the pooled object, a nil-out (field = nil, or a
//     re-Reset with nil) must appear before the object goes back to the
//     pool. A retained buffer keeps caller memory alive indefinitely and
//     leaks data across unrelated Get/Put pairs.
//
// The check is flow-insensitive on purpose: a reset or clear anywhere in
// the function discharges the obligation, which matches the defer-based
// idiom (`defer func() { d.buf = nil; pool.Put(d) }()`).
var PoolReset = &Analyzer{
	Name: "poolreset",
	Doc: "flags sync.Pool objects used without reset after Get, and Puts " +
		"that retain caller-visible slices or pointers",
	Run: runPoolReset,
}

func runPoolReset(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.poolResetFunc(fd)
		}
	}
	return nil
}

func (p *Pass) poolResetFunc(fd *ast.FuncDecl) {
	aliasFl := newFlow(p.Prog, p.Package, domAlias, fd.Name.Name, paramObjects(p.Package, fd), fd.Body)
	events := writeEvents(p.Prog, p.Package, aliasFl, fd.Body)
	resets := make(map[types.Object]bool)
	clears := make(map[types.Object]bool)
	stores := make(map[types.Object]uint64)
	for _, ev := range events {
		switch ev.kind {
		case evReset:
			resets[ev.root] = true
		case evClear:
			clears[ev.root] = true
		case evStore:
			stores[ev.root] |= ev.srcMask
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// x := pool.Get().(*T) — require a reset of x somewhere.
			for i, rhs := range n.Rhs {
				if !isPoolGet(p.Info, rhs) || i >= len(n.Lhs) {
					continue
				}
				obj := aliasFl.lhsObject(n.Lhs[i])
				if obj == nil {
					continue
				}
				if !resets[obj] && !clears[obj] {
					p.Reportf(n.Pos(), "pooled object is not reset between Get and use: stale state from the previous user leaks through")
				}
			}
		case *ast.CallExpr:
			// pool.Put(x) — x must not retain caller-visible memory.
			if !isPoolMethod(p.Info, n, "Put") || len(n.Args) != 1 {
				return true
			}
			root := rootIdentObj(p.Info, n.Args[0])
			if root == nil {
				return true
			}
			if stores[root] != 0 && !clears[root] {
				p.Reportf(n.Pos(), "pooled object retains caller-visible memory across Put: nil the stored reference (or re-Reset with nil) before returning it to the pool")
			}
		}
		return true
	})
}

// isPoolGet matches sync.Pool Get calls, optionally through a type
// assertion (`pool.Get().(*T)`).
func isPoolGet(info *types.Info, e ast.Expr) bool {
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isPoolMethod(info, call, "Get")
}

// isPoolMethod reports whether call is sync.Pool.<name> on any receiver.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}
