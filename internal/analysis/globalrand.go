package analysis

import (
	"go/ast"
	"strings"
)

// GlobalRand reports imports of math/rand (v1 or v2) anywhere outside
// internal/xrand, and RNG constructors seeded from the clock. Every
// stochastic component in this repository must draw from an explicit,
// caller-seeded xrand.Source: a forest trained twice from the same seed
// must be bit-identical, and global or time-seeded RNG state breaks that
// (and breaks it silently — results stay plausible, just irreproducible).
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "flags math/rand imports outside internal/xrand and time-seeded RNG " +
		"construction; all randomness must come from caller-seeded xrand Sources",
	Run: runGlobalRand,
}

func runGlobalRand(p *Pass) error {
	if p.Pkg != nil && strings.HasSuffix(p.Pkg.Path(), "internal/xrand") {
		return nil
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s: draw from a caller-seeded xrand.Source instead (forest training must be seed-deterministic)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.isRNGConstructor(call.Fun) {
				return true
			}
			for _, arg := range call.Args {
				if p.containsClockCall(arg) {
					p.Reportf(call.Pos(), "RNG seeded from the clock: seeds must be explicit, reproducible values")
					break
				}
			}
			return true
		})
	}
	return nil
}

// isRNGConstructor reports whether fun resolves to a function declared in an
// RNG package (math/rand, math/rand/v2, or internal/xrand) — the places a
// seed argument could flow into.
func (p *Pass) isRNGConstructor(fun ast.Expr) bool {
	obj := objectOf(p.Info, fun)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2" || strings.HasSuffix(path, "internal/xrand")
}

// containsClockCall reports whether the expression tree contains a call to
// time.Now (any derived value — UnixNano(), Unix(), etc. — still descends
// from the clock).
func (p *Pass) containsClockCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(p.Info, call.Fun, "time", "Now") {
			found = true
			return false
		}
		return !found
	})
	return found
}
