package analysis

import (
	"go/ast"
	"go/types"
)

// TaintAlloc reports allocation sizes derived from a compressed stream that
// reach make/Grow without a bounds check. PR 4's threat model: container
// headers are attacker-controlled, so every length, count or dimension read
// off a stream must pass a safedec.Limits method (Alloc/Count/Elements) or
// an explicit comparison before memory is allocated from it — otherwise a
// 20-byte hostile header can demand petabytes.
//
// Taint enters through bitstream/safedec reads, encoding/binary decodes,
// and the []byte parameters of Decompress/Decode/Parse/Unmarshal/Inflate-
// shaped functions. It propagates through locals, composite literals,
// arithmetic, and helper calls (via per-function summaries), and is cleared
// by any comparison outside a for-condition, a safedec.Limits call, a
// switch tag, or a call to a helper whose summary validates the parameter.
// The check is interprocedural in both directions: a tainted value passed
// to a helper that allocates it unchecked is reported at the call site, and
// a value validated inside a helper is clean in the caller.
var TaintAlloc = &Analyzer{
	Name: "taintalloc",
	Doc: "flags allocation sizes derived from compressed-stream input with " +
		"no safedec.Limits check or bound comparison on any path",
	Run: runTaintAlloc,
}

func runTaintAlloc(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fl := newFlow(p.Prog, p.Package, domStream, fd.Name.Name, paramObjects(p.Package, fd), fd.Body)
			for _, sink := range allocSinks(fl, fd.Body) {
				if sink.mask&(1<<sourceBit) != 0 {
					p.Reportf(sink.arg.Pos(), "allocation size derived from compressed stream without a safedec.Limits check or bound comparison")
				}
			}
			p.taintedCalls(fl, fd.Body)
		}
	}
	return nil
}

// taintedCalls reports stream-derived values handed to helpers whose
// summaries allocate that parameter unchecked.
func (p *Pass) taintedCalls(fl *flow, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sum, args := p.Prog.callSummary(p.Package, call)
		if sum == nil {
			return true
		}
		for pos, arg := range args {
			if arg == nil || pos >= len(sum.AllocsUnchecked) || !sum.AllocsUnchecked[pos] {
				continue
			}
			if fl.exprMask(arg)&(1<<sourceBit) != 0 {
				name := "helper"
				if fn, ok := objectOf(p.Info, call.Fun).(*types.Func); ok {
					name = fn.Name()
				}
				p.Reportf(arg.Pos(), "stream-derived size passed to %s, which allocates from it unchecked; validate with safedec.Limits first", name)
			}
		}
		return true
	})
}
