package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq reports == and != between floating-point (or complex) operands.
// In compressor, random-forest and calibration code an exact float compare
// is either a bug (values that went through arithmetic rarely compare
// equal) or a deliberate bit-exactness claim — and the whole point of the
// determinism work is that bit-exact intent must be written down. Compare
// against an epsilon, or annotate the intent with //carol:allow floateq.
//
// Exemptions: comparisons where both operands are compile-time constants,
// and the x != x / x == x NaN idiom.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= between floating-point operands; use an epsilon or " +
		"annotate bit-exact intent with //carol:allow floateq",
	Run: runFloatEq,
}

func runFloatEq(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := p.Info.TypeOf(be.X), p.Info.TypeOf(be.Y)
			if xt == nil || yt == nil || (!isFloat(xt) && !isFloat(yt)) {
				return true
			}
			if p.Info.Types[be.X].Value != nil && p.Info.Types[be.Y].Value != nil {
				return true // constant-folded at compile time
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x — the NaN test
			}
			p.Reportf(be.OpPos, "floating-point %s comparison: compare against an epsilon or annotate bit-exact intent", be.Op)
			return true
		})
	}
	return nil
}
