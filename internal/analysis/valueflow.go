// Intra-procedural value flow: the fixed-point walker that propagates facts
// through locals, composite literals and helper calls inside one function
// body. A flow assigns every object (parameter, local, struct field) a
// bitmask — bit i for "derives from parameter i", plus a source bit for
// "derives from an external taint source" — under one of three domains:
//
//   - domStream: integers and byte slices derived from a compressed stream
//     (bitstream/safedec reads, encoding/binary decodes, []byte parameters
//     of Decompress-shaped functions). The taintalloc check asks whether
//     such a value reaches an allocation size unchecked.
//   - domRequest: strings derived from an *http.Request / url.Values /
//     http.Header. The metriclabel check asks whether such a string reaches
//     a metric label value.
//   - domAlias: reference aliasing — which parameters an expression may
//     share memory with. The poolreset check asks whether caller-visible
//     slices are retained by pooled objects across Put.
//
// Sanitization is flow-insensitive by design: an object that is anywhere
// bounds-checked (compared outside a for-condition, passed to a
// safedec.Limits method, switch-matched, map-membership-tested, or handed
// to a helper whose summary validates that parameter) is treated as clean
// everywhere in the function. That trades a little soundness for the
// review-friendly property that adding the conventional guard anywhere in
// the function silences the finding.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// sourceBit marks values derived from the domain's external taint source
// (a compressed stream, a request) rather than from a parameter.
const sourceBit = 63

// domain selects the fact being propagated.
type domain int

const (
	domStream domain = iota
	domRequest
	domAlias
	domCount
)

// flow is one function body analyzed under one domain.
type flow struct {
	prog *Program
	pkg  *Package
	dom  domain

	// paramIdx maps receiver/parameter objects to their summary position
	// (receiver first, when present).
	paramIdx map[types.Object]int

	mask      map[types.Object]uint64
	sanitized map[types.Object]bool

	// localSanitized marks objects whose sanitization must not export into
	// the function's Validates summary: a comma-ok map membership test
	// reads as a finite-set guard where the branch is visible, but a
	// callee's internal map lookup proves nothing to the caller (registry
	// get-or-create lookups are exactly the unbounded-cardinality path).
	localSanitized map[types.Object]bool

	// forConds holds comparison expressions that are for-loop conditions;
	// those do not sanitize (`for i < n` uses n as a bound, it does not
	// validate n).
	forConds map[ast.Expr]bool

	edges []flowEdge
}

// flowEdge is one assignment: dst receives rhs (result resultIdx when rhs
// is a multi-result call, -1 otherwise).
type flowEdge struct {
	dst       types.Object
	rhs       ast.Expr
	resultIdx int
}

// decompressName matches functions whose []byte parameters are compressed
// input by convention (the safedec threat model: these bytes arrive over
// the network).
var decompressName = regexp.MustCompile(`(?i)^(append)?(decompress|decode|parse|unmarshal|inflate)`)

// newFlow analyzes body (a FuncDecl body or any block) under dom. recv and
// params supply the positional parameter objects; fname is the function's
// name (for the Decompress-shaped []byte source convention).
func newFlow(prog *Program, pkg *Package, dom domain, fname string, paramObjs []types.Object, body *ast.BlockStmt) *flow {
	fl := &flow{
		prog:           prog,
		pkg:            pkg,
		dom:            dom,
		paramIdx:       make(map[types.Object]int),
		mask:           make(map[types.Object]uint64),
		sanitized:      make(map[types.Object]bool),
		localSanitized: make(map[types.Object]bool),
		forConds:       make(map[ast.Expr]bool),
	}
	for i, obj := range paramObjs {
		if obj == nil {
			continue
		}
		fl.paramIdx[obj] = i
		fl.mask[obj] = 1 << uint(i)
		if dom == domStream && decompressName.MatchString(fname) && isByteSlice(obj.Type()) {
			fl.mask[obj] |= 1 << sourceBit
		}
	}
	if body == nil {
		return fl
	}
	fl.collectForConds(body)
	fl.collectSanitized(body)
	fl.collectEdges(body)
	fl.solve()
	return fl
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// sanitizable reports whether an object of type t can be cleared by a
// bounds check under this domain: sizes (integers) for the stream domain,
// label strings for the request domain. Reference values ([]byte) are
// never sanitized — comparing a slice's length does not make its contents
// trusted — and the alias domain has no sanitization at all.
func (fl *flow) sanitizable(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch fl.dom {
	case domStream:
		return b.Info()&(types.IsInteger|types.IsUntyped) != 0
	case domRequest:
		return b.Info()&(types.IsString|types.IsUntyped) != 0
	}
	return false
}

func (fl *flow) collectForConds(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond != nil {
			fl.forConds[f.Cond] = true
		}
		return true
	})
}

// sanitizeIdentsIn marks every sanitizable identifier and field selection
// under e as checked.
func (fl *flow) sanitizeIdentsIn(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		var obj types.Object
		switch n := n.(type) {
		case *ast.Ident:
			obj = fl.pkg.Info.Uses[n]
		case *ast.SelectorExpr:
			obj = fl.pkg.Info.Uses[n.Sel]
		}
		if obj != nil && fl.sanitizable(obj.Type()) {
			fl.sanitized[obj] = true
		}
		return true
	})
}

// collectSanitized scans for the guard shapes that clear a value:
// comparisons (outside for-conditions), switch tags, safedec.Limits calls,
// comma-ok map membership tests, and calls to helpers whose summary
// validates the parameter.
func (fl *flow) collectSanitized(body *ast.BlockStmt) {
	if fl.dom == domAlias {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if fl.forConds[n] {
				return true
			}
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				fl.sanitizeIdentsIn(n.X)
				fl.sanitizeIdentsIn(n.Y)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				fl.sanitizeIdentsIn(n.Tag)
			}
		case *ast.AssignStmt:
			// v, ok := m[k] — membership test sanitizes k (the caller
			// branches on ok before trusting the value as a label). This
			// stays local to the function: see localSanitized.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if idx, ok := n.Rhs[0].(*ast.IndexExpr); ok {
					if t := fl.pkg.Info.TypeOf(idx.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							fl.sanitizeIdentsIn(idx.Index)
							fl.markLocalSanitized(idx.Index)
						}
					}
				}
			}
		case *ast.CallExpr:
			fl.sanitizeCall(n)
		}
		return true
	})
}

// markLocalSanitized tags every sanitizable object under e as sanitized
// only for this function body, not for its exported Validates summary.
func (fl *flow) markLocalSanitized(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		var obj types.Object
		switch n := n.(type) {
		case *ast.Ident:
			obj = fl.pkg.Info.Uses[n]
		case *ast.SelectorExpr:
			obj = fl.pkg.Info.Uses[n.Sel]
		}
		if obj != nil && fl.sanitizable(obj.Type()) {
			fl.localSanitized[obj] = true
		}
		return true
	})
}

// sanitizeCall handles safedec.Limits methods and validated helper params.
func (fl *flow) sanitizeCall(call *ast.CallExpr) {
	if isLimitsCheck(fl.pkg.Info, call) {
		for _, arg := range call.Args {
			fl.sanitizeIdentsIn(arg)
		}
		return
	}
	sum, args := fl.prog.callSummary(fl.pkg, call)
	if sum == nil {
		return
	}
	validates := sum.Validates[fl.dom]
	for pos, arg := range args {
		if pos < len(validates) && validates[pos] && arg != nil {
			fl.sanitizeIdentsIn(arg)
		}
	}
}

// isLimitsCheck reports whether call is a method on safedec.Limits
// (Alloc, Count, Elements) — the canonical validate-before-allocate guard.
func isLimitsCheck(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/safedec") {
		return false
	}
	switch obj.Name() {
	case "Alloc", "Count", "Elements":
		return true
	}
	return false
}

// collectEdges records every assignment-like fact flow in the body
// (including inside closures — captured locals are shared state).
func (fl *flow) collectEdges(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fl.assignEdges(n.Lhs, n.Rhs, n.Tok)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					fl.assignEdges(lhs, vs.Values, token.DEFINE)
				}
			}
		case *ast.RangeStmt:
			for _, v := range []ast.Expr{n.Key, n.Value} {
				if v == nil {
					continue
				}
				if obj := fl.lhsObject(v); obj != nil {
					fl.edges = append(fl.edges, flowEdge{dst: obj, rhs: n.X, resultIdx: -1})
				}
			}
		}
		return true
	})
}

// assignEdges pairs assignment sides, splitting a single multi-result RHS
// across the LHS positions.
func (fl *flow) assignEdges(lhs, rhs []ast.Expr, tok token.Token) {
	if len(lhs) > 1 && len(rhs) == 1 {
		for i, l := range lhs {
			if obj := fl.lhsObject(l); obj != nil {
				fl.edges = append(fl.edges, flowEdge{dst: obj, rhs: rhs[0], resultIdx: i})
			}
		}
		return
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		if obj := fl.lhsObject(l); obj != nil {
			fl.edges = append(fl.edges, flowEdge{dst: obj, rhs: rhs[i], resultIdx: -1})
		}
	}
	_ = tok
}

// lhsObject resolves an assignment target to the object that accumulates
// the fact: plain identifiers resolve to their variable, field selectors
// to the field object (field-granular: writing o.f taints f, not o), and
// index/star/paren targets to their root.
func (fl *flow) lhsObject(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		if obj := fl.pkg.Info.Defs[e]; obj != nil {
			return obj
		}
		return fl.pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		return fl.pkg.Info.Uses[e.Sel]
	case *ast.IndexExpr:
		return fl.lhsObject(e.X)
	case *ast.StarExpr:
		return fl.lhsObject(e.X)
	}
	return nil
}

// solve runs the fixed point: every edge is re-applied until no mask grows.
func (fl *flow) solve() {
	for changed := true; changed; {
		changed = false
		for _, e := range fl.edges {
			var m uint64
			if e.resultIdx >= 0 {
				m = fl.callResultMask(e.rhs, e.resultIdx)
			} else {
				m = fl.exprMask(e.rhs)
			}
			if m&^fl.mask[e.dst] != 0 {
				fl.mask[e.dst] |= m
				changed = true
			}
		}
	}
}

// callResultMask is exprMask for one result position of a multi-result
// RHS (call, type assertion, or map index).
func (fl *flow) callResultMask(rhs ast.Expr, idx int) uint64 {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		masks := fl.callMasks(rhs)
		if idx < len(masks) {
			return masks[idx]
		}
		return 0
	case *ast.TypeAssertExpr, *ast.IndexExpr, *ast.UnaryExpr:
		// v, ok := x.(T) / m[k] / <-ch: position 0 carries the value.
		if idx == 0 {
			return fl.exprMask(rhs)
		}
		return 0
	}
	return fl.exprMask(rhs)
}

// objMask returns an object's current mask, honoring sanitization.
func (fl *flow) objMask(obj types.Object) uint64 {
	if obj == nil || fl.sanitized[obj] {
		return 0
	}
	return fl.mask[obj]
}

// exprMask computes the fact mask of an expression.
func (fl *flow) exprMask(e ast.Expr) uint64 {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return fl.objMask(fl.pkg.Info.Uses[e])
	case *ast.BasicLit:
		return 0
	case *ast.SelectorExpr:
		m := fl.objMask(fl.pkg.Info.Uses[e.Sel])
		if fl.dom == domRequest && isRequestRoot(fl.pkg.Info, e.X) {
			m |= 1 << sourceBit
		}
		// A field read off a tainted whole value (helper-returned struct)
		// inherits the value's mask.
		return m | fl.exprMask(e.X)
	case *ast.IndexExpr:
		return fl.exprMask(e.X)
	case *ast.SliceExpr:
		return fl.exprMask(e.X)
	case *ast.StarExpr:
		return fl.exprMask(e.X)
	case *ast.TypeAssertExpr:
		return fl.exprMask(e.X)
	case *ast.UnaryExpr:
		if fl.dom == domAlias || e.Op != token.ARROW {
			return fl.exprMask(e.X)
		}
		return fl.exprMask(e.X)
	case *ast.BinaryExpr:
		if fl.dom == domAlias {
			return 0 // arithmetic yields values, not aliases
		}
		return fl.exprMask(e.X) | fl.exprMask(e.Y)
	case *ast.CompositeLit:
		// Struct literals stay field-granular (the element edges are
		// recorded separately); sequence literals carry their elements.
		if t := fl.pkg.Info.TypeOf(e); t != nil {
			if _, ok := t.Underlying().(*types.Struct); ok {
				fl.recordStructLitEdges(e)
				return 0
			}
		}
		var m uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			m |= fl.exprMask(el)
		}
		return m
	case *ast.CallExpr:
		masks := fl.callMasks(e)
		var m uint64
		for _, r := range masks {
			m |= r
		}
		return m
	case *ast.FuncLit:
		return 0
	}
	return 0
}

// recordStructLitEdges taints the field objects named in a struct literal;
// solve() re-runs exprMask so the edges land on the next iteration.
func (fl *flow) recordStructLitEdges(lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		obj := fl.pkg.Info.Uses[key]
		if obj == nil {
			continue
		}
		if m := fl.exprMask(kv.Value); m&^fl.mask[obj] != 0 {
			fl.mask[obj] |= m
		}
	}
}

// callMasks returns the per-result fact masks of a call expression.
func (fl *flow) callMasks(call *ast.CallExpr) []uint64 {
	info := fl.pkg.Info
	// Type conversion: T(x) carries x's mask.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []uint64{fl.exprMask(call.Args[0])}
		}
		return nil
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return []uint64{fl.builtinMask(id.Name, call)}
		}
	}
	// Domain sources (stream reads, request accessors).
	if src := fl.sourceMask(call); src != 0 {
		return []uint64{src}
	}
	// Module-internal callee: consult its summary.
	sum, args := fl.prog.callSummary(fl.pkg, call)
	if sum == nil {
		return nil
	}
	results := sum.Results[fl.dom]
	out := make([]uint64, len(results))
	for i, rm := range results {
		if rm&(1<<sourceBit) != 0 {
			out[i] |= 1 << sourceBit
		}
		for pos, arg := range args {
			if arg != nil && rm&(1<<uint(pos)) != 0 {
				out[i] |= fl.exprMask(arg)
			}
		}
	}
	return out
}

// builtinMask models the builtins that matter: len/cap of real memory are
// trusted sizes; min clamps when any bound is clean; append carries (and,
// in the alias domain, aliases its first argument).
func (fl *flow) builtinMask(name string, call *ast.CallExpr) uint64 {
	switch name {
	case "len", "cap", "make", "new", "copy", "clear", "delete":
		return 0
	case "min":
		var m uint64
		for _, a := range call.Args {
			am := fl.exprMask(a)
			if am == 0 {
				return 0 // clamped by a clean bound
			}
			m |= am
		}
		return m
	case "append":
		if fl.dom == domAlias {
			if len(call.Args) > 0 {
				// append may return dst's backing array; the appended
				// elements are copied, never aliased.
				return fl.exprMask(call.Args[0])
			}
			return 0
		}
		var m uint64
		for _, a := range call.Args {
			m |= fl.exprMask(a)
		}
		return m
	case "max":
		var m uint64
		for _, a := range call.Args {
			m |= fl.exprMask(a)
		}
		return m
	}
	return 0
}

// sourceMask recognizes the calls that introduce domain taint.
func (fl *flow) sourceMask(call *ast.CallExpr) uint64 {
	info := fl.pkg.Info
	switch fl.dom {
	case domStream:
		if isStreamRead(info, call) {
			return 1 << sourceBit
		}
	case domRequest:
		if isRequestRead(info, call) {
			return 1 << sourceBit
		}
	}
	return 0
}

// isStreamRead matches integer/byte reads off a compressed stream:
// encoding/binary decodes, safedec.Reader reads, bitstream.Reader reads.
func isStreamRead(info *types.Info, call *ast.CallExpr) bool {
	obj := objectOf(info, call.Fun)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "encoding/binary":
		switch obj.Name() {
		case "Uvarint", "Varint", "ReadUvarint", "ReadVarint",
			"Uint16", "Uint32", "Uint64", "PutUvarint":
			return obj.Name() != "PutUvarint"
		}
		return false
	}
	path := obj.Pkg().Path()
	if strings.HasSuffix(path, "internal/safedec") {
		switch obj.Name() {
		case "U8", "U32", "U64", "BE64", "Uvarint", "Take", "Rest":
			return true
		}
		return false
	}
	if strings.HasSuffix(path, "internal/bitstream") {
		switch obj.Name() {
		case "ReadBit", "ReadBits", "ReadBool", "ReadUnary":
			return true
		}
	}
	return false
}

// isRequestRead matches string reads off an HTTP request: methods on
// url.Values / http.Header / *url.URL and any method of *http.Request.
func isRequestRead(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isRequestRoot(info, sel.X) || isRequestTyped(info.TypeOf(ast.Unparen(call.Fun).(*ast.SelectorExpr).X))
}

// isRequestRoot reports whether e denotes a request-derived container.
func isRequestRoot(info *types.Info, e ast.Expr) bool {
	return isRequestTyped(info.TypeOf(e))
}

// isRequestTyped matches the types whose contents are attacker-chosen
// request strings.
func isRequestTyped(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "net/http.Request", "net/http.Header", "net/url.URL", "net/url.Values":
		return true
	}
	return false
}

// rootIdentObj walks a selector/index/star/paren chain to its base
// identifier's object (o in o.a.b[i]), or nil.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
