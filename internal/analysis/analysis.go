// Package analysis is a dependency-free static-analysis framework for this
// repository: a pass interface over type-checked packages, file/line
// diagnostics, and inline `//carol:allow <check>` suppression directives.
//
// CAROL's value proposition is a *reproducible* ratio→error-bound model, so
// the analyzers shipped with the framework (see checks.go) machine-check the
// invariants that keep runs bit-identical — no global RNG state, no
// map-iteration-order-dependent serialization, no unbounded goroutine
// fan-out — plus the float-equality and dropped-error hygiene the CLI tools
// need. The framework itself is generic: an Analyzer is a named Run function
// over a Pass, and cmd/carollint drives the whole suite across ./...
//
// Everything here is built on go/parser, go/types and go/importer only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	// Pos is the resolved file:line:column of the finding.
	Pos token.Position
	// Check is the name of the analyzer that produced it.
	Check string
	// Message describes the problem and the sanctioned fix.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset resolves token.Pos values for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression/object resolutions.
	Info *types.Info
	// Package is the loaded package (syntax, types and directory together);
	// the dataflow checks build value flows from it.
	Package *Package
	// Prog is the module-wide interprocedural view (call graph and
	// per-function summaries) shared by every pass of one carollint run.
	Prog *Program

	report func(Diagnostic)
}

// Reportf records a finding at pos. Suppression directives are applied by
// the runner, not here, so analyzers always report unconditionally.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the check in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of what the check enforces and why.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// directivePrefix introduces an inline suppression comment:
//
//	//carol:allow floateq            — suppress floateq here
//	//carol:allow floateq,maporder   — suppress several checks
//	//carol:allow gopool chunk count equals Workers by construction
//
// Everything after the first field is free-text rationale. A directive
// applies to findings on its own line (trailing comment) and on the line
// directly below it (comment-above-statement style).
const directivePrefix = "carol:allow"

// DirectiveCheck is the pseudo-check name used for malformed or unknown
// suppression directives, so a typo cannot silently disable a real check.
const DirectiveCheck = "directive"

// allowDirective is one parsed suppression entry: one check name of one
// directive comment. `used` is set when the entry actually suppresses a
// finding, so stale directives can be flagged.
type allowDirective struct {
	pos   token.Position
	check string
	used  bool
}

// allowIndex maps file → line → check name → the directive entries that
// cover that line for that check.
type allowIndex map[string]map[int]map[string][]*allowDirective

// buildAllowIndex scans the comments of every file for suppression
// directives. known is the set of valid check names; directives naming
// anything else produce a DirectiveCheck diagnostic. The flat entry list is
// returned alongside the line index so the runner can report unused ones.
func buildAllowIndex(fset *token.FileSet, files []*ast.File, known map[string]bool) (allowIndex, []*allowDirective, []Diagnostic) {
	idx := make(allowIndex)
	var entries []*allowDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. carol:allowance — not our directive
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Check:   DirectiveCheck,
						Message: "carol:allow directive without check names",
					})
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name == "" {
						continue
					}
					if !known[name] {
						bad = append(bad, Diagnostic{
							Pos:     pos,
							Check:   DirectiveCheck,
							Message: fmt.Sprintf("carol:allow names unknown check %q", name),
						})
						continue
					}
					entry := &allowDirective{pos: pos, check: name}
					entries = append(entries, entry)
					file := idx[pos.Filename]
					if file == nil {
						file = make(map[int]map[string][]*allowDirective)
						idx[pos.Filename] = file
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if file[line] == nil {
							file[line] = make(map[string][]*allowDirective)
						}
						file[line][name] = append(file[line][name], entry)
					}
				}
			}
		}
	}
	return idx, entries, bad
}

// suppressed reports whether d is covered by an allow directive, marking
// the covering entries used.
func (idx allowIndex) suppressed(d Diagnostic) bool {
	covering := idx[d.Pos.Filename][d.Pos.Line][d.Check]
	for _, entry := range covering {
		entry.used = true
	}
	return len(covering) > 0
}

// RunChecks applies the analyzers to one loaded package, honors allow
// directives, and returns deduplicated diagnostics sorted by position.
// knownChecks names every check a directive may legitimately reference
// (usually Names(All()) even when running a subset, so an allow for an
// analyzer that is not currently selected is not reported as a typo).
// A directive whose check DID run but suppressed nothing is reported as an
// unused directive — stale allows hide future regressions.
func RunChecks(prog *Program, pkg *Package, analyzers []*Analyzer, knownChecks map[string]bool) ([]Diagnostic, error) {
	idx, entries, diags := buildAllowIndex(pkg.Fset, pkg.Files, knownChecks)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Package:  pkg,
			Prog:     prog,
			report: func(d Diagnostic) {
				if !idx.suppressed(d) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
	}
	ran := Names(analyzers)
	for _, entry := range entries {
		if ran[entry.check] && !entry.used {
			diags = append(diags, Diagnostic{
				Pos:     entry.pos,
				Check:   DirectiveCheck,
				Message: fmt.Sprintf("unused carol:allow directive: %s reports nothing here", entry.check),
			})
		}
	}
	return dedupeSort(diags), nil
}

// dedupeSort orders diagnostics by file, line, column, check and removes
// exact duplicates (nested constructs can make an analyzer visit a node
// twice).
func dedupeSort(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Names returns the set of analyzer names, for directive validation.
func Names(analyzers []*Analyzer) map[string]bool {
	m := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = true
	}
	return m
}

// isFloat reports whether t's underlying type is a floating-point or
// complex basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// objectOf resolves the called function/ident to its declaring object, or
// nil. It sees through parentheses and selector expressions.
func objectOf(info *types.Info, fun ast.Expr) types.Object {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// isPkgFunc reports whether fun resolves to a package-level function of the
// given import path and name (name == "" matches any).
func isPkgFunc(info *types.Info, fun ast.Expr, pkgPath, name string) bool {
	obj := objectOf(info, fun)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() != pkgPath {
		return false
	}
	return name == "" || obj.Name() == name
}
