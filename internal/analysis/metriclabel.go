package analysis

import (
	"go/ast"
	"go/types"
)

// MetricLabel reports request-derived strings used as internal/obs metric
// label values or metric names. Label cardinality must stay finite: a label
// minted from r.URL.Path or a query parameter lets every request create a
// new time series, which is an unbounded-memory bug in the metrics registry
// (exactly what obs's bounded-cardinality design exists to prevent).
//
// Taint enters through *http.Request, http.Header, url.Values and *url.URL
// reads and propagates like taintalloc's stream facts. It is cleared by the
// finite-set idioms: a switch on the value, an equality comparison, or a
// comma-ok map membership test — each pins the label to a constant set.
// Summaries make the check interprocedural: a helper whose parameter flows
// into obs.Label taints its call sites.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc: "flags obs metric label values and metric names derived from " +
		"request input; map them through a finite constant set first",
	Run: runMetricLabel,
}

func runMetricLabel(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fl := newFlow(p.Prog, p.Package, domRequest, fd.Name.Name, paramObjects(p.Package, fd), fd.Body)
			for _, sink := range labelSinks(fl, fd.Body) {
				if sink.mask&(1<<sourceBit) != 0 {
					p.Reportf(sink.arg.Pos(), "metric label derived from request input: unbounded cardinality; map the value through a finite constant set")
				}
			}
			p.taintedLabelCalls(fl, fd.Body)
		}
	}
	return nil
}

// taintedLabelCalls reports request-derived strings handed to helpers whose
// summaries flow that parameter into a metric label.
func (p *Pass) taintedLabelCalls(fl *flow, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sum, args := p.Prog.callSummary(p.Package, call)
		if sum == nil {
			return true
		}
		for pos, arg := range args {
			if arg == nil || pos >= len(sum.Labels) || !sum.Labels[pos] {
				continue
			}
			if fl.exprMask(arg)&(1<<sourceBit) != 0 {
				name := "helper"
				if fn, ok := objectOf(p.Info, call.Fun).(*types.Func); ok {
					name = fn.Name()
				}
				p.Reportf(arg.Pos(), "request-derived value passed to %s, which uses it as a metric label; map it through a finite constant set first", name)
			}
		}
		return true
	})
}
