// Package loading: parse + type-check module packages with go/parser and
// go/types, resolving standard-library imports through go/importer's
// "source" importer (which type-checks $GOROOT/src — no compiled export
// data needed) and module-internal imports by mapping the import path onto
// the module directory tree. This keeps carollint pure stdlib: no
// golang.org/x/tools, no `go list` subprocesses.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus its syntax.
type Package struct {
	// ImportPath is the package's module-relative import path (for
	// directories under testdata it is synthesized the same way and never
	// imported by real code).
	ImportPath string
	// Dir is the absolute directory the files came from.
	Dir string
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the type-checker's resolution tables.
	Info *types.Info
	// TypeErrors collects soft type-checking failures; analysis still runs
	// on the partial information, but drivers should surface these.
	TypeErrors []error
}

// Loader loads and caches packages for analysis. It implements
// types.Importer so module-internal dependencies are type-checked from
// source exactly once, while standard-library imports delegate to the
// go/importer "source" importer.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet

	modRoot      string
	modPath      string
	includeTests bool
	std          types.Importer
	ctxt         build.Context
	pkgs         map[string]*Package // keyed by import path
	loading      map[string]bool     // cycle guard
	prog         *Program            // lazy interprocedural view (Program())
}

// NewLoader returns a loader rooted at the module directory modRoot whose
// go.mod declares module path modPath. If includeTests is true, in-package
// _test.go files are parsed and analyzed too (external _test packages are
// not).
func NewLoader(modRoot, modPath string, includeTests bool) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:         fset,
		modRoot:      modRoot,
		modPath:      modPath,
		includeTests: includeTests,
		std:          importer.ForCompiler(fset, "source", nil),
		ctxt:         build.Default,
		pkgs:         make(map[string]*Package),
		loading:      make(map[string]bool),
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path, false)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir loads the package in dir (absolute or relative to the current
// directory) for analysis, including test files if the loader was built
// with includeTests.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.modRoot)
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, l.includeTests)
}

// load parses and type-checks the package at the given module import path.
// Dependency loads (withTests=false) and analysis loads are cached under
// the same key; the first load wins, so a package analyzed after being
// pulled in as a dependency reuses the dependency's (test-free) build —
// fine, because its own analysis entry was or will be requested explicitly.
func (l *Loader) load(path string, withTests bool) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.modRoot
	if path != l.modPath {
		dir = filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	if withTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the (possibly incomplete) package even on soft errors;
	// hard failures are already captured in pkg.TypeErrors.
	pkg.Types, _ = conf.Check(path, l.Fset, files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// ModulePath reads the module path from modRoot/go.mod.
func ModulePath(modRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", modRoot)
}

// PackageDirs expands a pattern into package directories. A pattern ending
// in "/..." walks the tree below its root; anything else names a single
// directory (which may be under testdata — explicit mention overrides the
// usual skip). Walks skip testdata, vendor, hidden and underscore-prefixed
// directories, and directories with no non-test Go files.
func PackageDirs(pattern string, includeTests bool) ([]string, error) {
	root, walk := strings.CutSuffix(pattern, "/...")
	if root == "" || root == "."+string(filepath.Separator) {
		root = "."
	}
	if !walk {
		return []string{root}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path, includeTests) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// hasGoFiles reports whether dir directly contains analyzable Go sources.
func hasGoFiles(dir string, includeTests bool) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true
	}
	return false
}
