// Interprocedural layer: a module-wide view over the loader's package
// cache. Program indexes every function declaration the loader has
// type-checked, exposes a static call graph, and computes memoized
// per-function summaries so facts flow through helper calls:
//
//   - Validates: which parameters the function bounds-checks (comparison,
//     safedec.Limits, or delegation to a validating helper). A caller
//     passing a stream-derived size to such a helper has discharged the
//     taintalloc obligation.
//   - Results: per-domain masks describing which parameters (and which
//     taint sources) each result derives from, so taint survives return
//     values of helpers.
//   - AllocsUnchecked: parameters that reach an allocation size inside the
//     function with no check — the call site inherits the finding.
//   - Resets / Clears / Stores: the pooled-scratch discipline facts the
//     poolreset check composes across helper methods.
//   - Labels: parameters that flow into an obs metric label value.
//   - SpawnsPerCall: the function launches an unjoined goroutine per call,
//     so calling it from an unbounded loop is goroutine fan-out (gopool).
//
// Summaries are computed on demand from each function's AST and memoized
// by *types.Func; recursion is cut with a neutral summary. Standard-library
// functions have no AST here — a small table below carries the few facts
// that matter (bytes.Reader.Reset retains its argument, etc.); everything
// else defaults to the neutral summary.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Program is the interprocedural view over one Loader's packages.
type Program struct {
	loader  *Loader
	decls   map[*types.Func]declSite
	indexed map[string]bool
	sums    map[*types.Func]*Summary
	busy    map[*types.Func]bool
}

type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Program returns the loader's interprocedural view, creating it on first
// use. All packages the loader type-checks share one Program, so summaries
// are computed once per function no matter how many packages are analyzed.
func (l *Loader) Program() *Program {
	if l.prog == nil {
		l.prog = &Program{
			loader:  l,
			decls:   make(map[*types.Func]declSite),
			indexed: make(map[string]bool),
			sums:    make(map[*types.Func]*Summary),
			busy:    make(map[*types.Func]bool),
		}
	}
	return l.prog
}

// Summary is the interprocedural fact sheet of one function. Positions
// count the receiver first (index 0) when the function is a method.
type Summary struct {
	// Arity is the positional parameter count (receiver included).
	Arity int
	// Validates[d][i] reports that parameter i is checked inside under
	// domain d: bounds-compared for stream sizes, pinned to a finite set
	// (switch, equality, map membership) for request strings.
	Validates [domCount][]bool
	// AllocsUnchecked[i] reports that parameter i reaches an allocation
	// size with no check.
	AllocsUnchecked []bool
	// Labels[i] reports that parameter i flows into a metric label value.
	Labels []bool
	// Resets[i] reports that the function re-initializes parameter i
	// (field writes, a Reset-named call, or delegation).
	Resets []bool
	// Clears[i] reports that the function nils parameter i's reference
	// fields before returning it to a pool.
	Clears []bool
	// Stores lists (dst, src) pairs: after the call, parameter dst may
	// retain an alias of parameter src. Pairs whose dst is also cleared
	// inside the function are dropped — the function manages its own
	// retention.
	Stores [][2]int
	// Results[d][r] is the domain-d mask of result r: which parameters it
	// derives from, plus sourceBit when it derives from domain taint.
	Results [domCount][]uint64
	// SpawnsPerCall reports that the function launches a goroutine per
	// call with no internal join or channel coordination.
	SpawnsPerCall bool
	// Calls lists the module-internal functions this function statically
	// calls (the call-graph edges out of it).
	Calls []*types.Func
}

// neutralSummary is the safe default for unknown or recursive functions.
func neutralSummary(arity int) *Summary {
	sum := &Summary{
		Arity:           arity,
		AllocsUnchecked: make([]bool, arity),
		Labels:          make([]bool, arity),
		Resets:          make([]bool, arity),
		Clears:          make([]bool, arity),
	}
	for d := domain(0); d < domCount; d++ {
		sum.Validates[d] = make([]bool, arity)
	}
	return sum
}

// indexPackage maps every FuncDecl in pkg to its *types.Func.
func (p *Program) indexPackage(pkg *Package) {
	if p.indexed[pkg.ImportPath] {
		return
	}
	p.indexed[pkg.ImportPath] = true
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				p.decls[fn] = declSite{pkg: pkg, decl: fd}
			}
		}
	}
}

// DeclOf returns the package and declaration of a module-internal
// function, or nils for anything without loaded syntax (stdlib, interface
// methods).
func (p *Program) DeclOf(fn *types.Func) (*Package, *ast.FuncDecl) {
	if fn == nil || fn.Pkg() == nil {
		return nil, nil
	}
	if site, ok := p.decls[fn]; ok {
		return site.pkg, site.decl
	}
	pkg, ok := p.loader.pkgs[fn.Pkg().Path()]
	if !ok {
		return nil, nil
	}
	p.indexPackage(pkg)
	if site, ok := p.decls[fn]; ok {
		return site.pkg, site.decl
	}
	return nil, nil
}

// Callees returns the module-internal functions fn statically calls.
func (p *Program) Callees(fn *types.Func) []*types.Func {
	return p.Summary(fn).Calls
}

// arityOf counts positional parameters, receiver first.
func arityOf(sig *types.Signature) int {
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	return n
}

// paramObjects lists the positional parameter objects of a declaration
// (receiver first; nil for unnamed/blank positions).
func paramObjects(pkg *Package, decl *ast.FuncDecl) []types.Object {
	var objs []types.Object
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			if len(f.Names) == 0 {
				objs = append(objs, nil)
				continue
			}
			for _, name := range f.Names {
				if name.Name == "_" {
					objs = append(objs, nil)
					continue
				}
				objs = append(objs, pkg.Info.Defs[name])
			}
		}
	}
	add(decl.Recv)
	add(decl.Type.Params)
	return objs
}

// Summary computes (or returns the memoized) fact sheet for fn.
func (p *Program) Summary(fn *types.Func) *Summary {
	if sum, ok := p.sums[fn]; ok {
		return sum
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return neutralSummary(0)
	}
	arity := arityOf(sig)
	if p.busy[fn] {
		return neutralSummary(arity) // recursion: neutral fixed point
	}
	if sum := stdlibSummary(fn, arity); sum != nil {
		p.sums[fn] = sum
		return sum
	}
	pkg, decl := p.DeclOf(fn)
	if pkg == nil || decl == nil || decl.Body == nil {
		sum := neutralSummary(arity)
		p.sums[fn] = sum
		return sum
	}
	p.busy[fn] = true
	sum := p.computeSummary(pkg, decl, fn, arity)
	delete(p.busy, fn)
	p.sums[fn] = sum
	return sum
}

// stdlibSummary hardcodes the few standard-library facts the checks need:
// reader Resets retain their argument slice (pool retention), and a nil
// re-Reset clears it.
func stdlibSummary(fn *types.Func, arity int) *Summary {
	if fn.Pkg() == nil {
		return nil
	}
	key := fn.Pkg().Path() + "." + fn.Name()
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	switch {
	case key == "bytes.Reset" && recv == "Reader",
		key == "strings.Reset" && recv == "Reader":
		sum := neutralSummary(arity)
		sum.Stores = [][2]int{{0, 1}}
		sum.Resets[0] = true
		return sum
	case key == "bytes.NewReader", key == "strings.NewReader", key == "bytes.NewBuffer":
		sum := neutralSummary(arity)
		sum.Results[domAlias] = []uint64{1 << 0}
		return sum
	}
	return nil
}

// computeSummary runs the per-domain flows over decl's body and distills
// the Summary facts.
func (p *Program) computeSummary(pkg *Package, decl *ast.FuncDecl, fn *types.Func, arity int) *Summary {
	sum := neutralSummary(arity)
	objs := paramObjects(pkg, decl)
	body := decl.Body
	name := decl.Name.Name

	flows := [domCount]*flow{}
	for d := domain(0); d < domCount; d++ {
		flows[d] = newFlow(p, pkg, d, name, objs, body)
	}
	// Validates: each domain's sanitizer pass marked its checked params.
	// Locally-scoped sanitization (comma-ok map lookups) does not export:
	// a callee's internal registry lookup proves nothing to the caller.
	for d := domain(0); d < domCount; d++ {
		for i, obj := range objs {
			if obj != nil && flows[d].sanitized[obj] && !flows[d].localSanitized[obj] {
				sum.Validates[d][i] = true
			}
		}
	}

	// Results: per-domain masks of every return position.
	results := fn.Type().(*types.Signature).Results().Len()
	named := namedResultObjects(pkg, decl)
	for d := domain(0); d < domCount; d++ {
		masks := make([]uint64, results)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // a closure's returns are not fn's returns
			case *ast.ReturnStmt:
				if len(n.Results) == 0 {
					for i, obj := range named {
						if i < results && obj != nil {
							masks[i] |= flows[d].objMask(obj)
						}
					}
					return true
				}
				if len(n.Results) == results {
					for i, r := range n.Results {
						masks[i] |= flows[d].exprMask(r)
					}
				} else if len(n.Results) == 1 {
					for i := 0; i < results; i++ {
						masks[i] |= flows[d].callResultMask(n.Results[0], i)
					}
				}
			}
			return true
		})
		sum.Results[d] = masks
	}

	// Allocation sinks: parameters reaching a make/Grow size unchecked.
	for _, sink := range allocSinks(flows[domStream], body) {
		for i := 0; i < arity && i < 62; i++ {
			if sink.mask&(1<<uint(i)) != 0 {
				sum.AllocsUnchecked[i] = true
			}
		}
	}

	// Metric labels: parameters flowing into obs label values.
	for _, site := range labelSinks(flows[domRequest], body) {
		for i := 0; i < arity && i < 62; i++ {
			if site.mask&(1<<uint(i)) != 0 {
				sum.Labels[i] = true
			}
		}
	}

	// Pool discipline events, keyed by parameter object.
	byParam := make(map[types.Object]int, len(objs))
	for i, obj := range objs {
		if obj != nil {
			byParam[obj] = i
		}
	}
	var stored [62]bool
	for _, ev := range writeEvents(p, pkg, flows[domAlias], body) {
		i, ok := byParam[ev.root]
		if !ok || i >= 62 {
			continue
		}
		switch ev.kind {
		case evReset:
			sum.Resets[i] = true
		case evClear:
			sum.Clears[i] = true
		case evStore:
			stored[i] = true
			for j := 0; j < arity && j < 62; j++ {
				if ev.srcMask&(1<<uint(j)) != 0 {
					sum.Stores = append(sum.Stores, [2]int{i, j})
				}
			}
		}
	}
	// A function that both stores into and clears a parameter manages its
	// own retention (the zpool AppendDeflate pattern).
	if len(sum.Stores) > 0 {
		kept := sum.Stores[:0]
		for _, pair := range sum.Stores {
			if !sum.Clears[pair[0]] {
				kept = append(kept, pair)
			}
		}
		sum.Stores = kept
	}

	sum.SpawnsPerCall = spawnsPerCall(p, pkg, body)
	sum.Calls = p.staticCallees(pkg, body)
	return sum
}

// namedResultObjects returns the objects of named results (nil entries for
// unnamed positions).
func namedResultObjects(pkg *Package, decl *ast.FuncDecl) []types.Object {
	var objs []types.Object
	if decl.Type.Results == nil {
		return objs
	}
	for _, f := range decl.Type.Results.List {
		if len(f.Names) == 0 {
			objs = append(objs, nil)
			continue
		}
		for _, name := range f.Names {
			objs = append(objs, pkg.Info.Defs[name])
		}
	}
	return objs
}

// staticCallees collects the module-internal functions called in body.
func (p *Program) staticCallees(pkg *Package, body *ast.BlockStmt) []*types.Func {
	seen := make(map[*types.Func]bool)
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := objectOf(pkg.Info, call.Fun).(*types.Func)
		if !ok || fn.Pkg() == nil || seen[fn] {
			return true
		}
		if _, decl := p.DeclOf(fn); decl != nil {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// callSummary resolves a call to a summarized function plus its positional
// argument expressions (receiver first for methods; nil for positions the
// call does not supply). Returns nil for calls with no useful summary.
func (p *Program) callSummary(pkg *Package, call *ast.CallExpr) (*Summary, []ast.Expr) {
	fn, ok := objectOf(pkg.Info, call.Fun).(*types.Func)
	if !ok {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	sum := p.Summary(fn)
	args := make([]ast.Expr, sum.Arity)
	pos := 0
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args[0] = sel.X
		}
		pos = 1
	}
	nParams := sig.Params().Len()
	for i, arg := range call.Args {
		at := pos + i
		if i >= nParams { // extra variadic args fold onto the last param
			at = pos + nParams - 1
		}
		if at >= 0 && at < len(args) {
			if args[at] == nil {
				args[at] = arg
			}
		}
	}
	return sum, args
}

// allocSink is one allocation sized by a checked or unchecked mask.
type allocSink struct {
	call *ast.CallExpr
	arg  ast.Expr
	mask uint64
}

// allocSinks finds every allocation whose size carries a fact mask:
// make(T, n[, c]), bytes.Buffer/strings.Builder Grow, slices.Grow.
func allocSinks(fl *flow, body *ast.BlockStmt) []allocSink {
	var out []allocSink
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := fl.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				for _, sz := range call.Args[1:] {
					if m := fl.exprMask(sz); m != 0 {
						out = append(out, allocSink{call: call, arg: sz, mask: m})
					}
				}
				return true
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) > 0 {
			if sel.Sel.Name == "Grow" {
				if recv := fl.pkg.Info.TypeOf(sel.X); recv != nil && isMemoryWriterType(recv) {
					if m := fl.exprMask(call.Args[0]); m != 0 {
						out = append(out, allocSink{call: call, arg: call.Args[0], mask: m})
					}
				}
			}
			if isPkgFunc(fl.pkg.Info, call.Fun, "slices", "Grow") && len(call.Args) == 2 {
				if m := fl.exprMask(call.Args[1]); m != 0 {
					out = append(out, allocSink{call: call, arg: call.Args[1], mask: m})
				}
			}
		}
		return true
	})
	return out
}

// labelSink is one obs metric label value carrying a fact mask.
type labelSink struct {
	call *ast.CallExpr
	arg  ast.Expr
	mask uint64
}

// labelSinks finds obs.Label value arguments (and registry metric names)
// that carry request-domain taint or parameter masks.
func labelSinks(fl *flow, body *ast.BlockStmt) []labelSink {
	var out []labelSink
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := objectOf(fl.pkg.Info, call.Fun)
		if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
			return true
		}
		switch obj.Name() {
		case "Label":
			// Label(name, k1, v1, k2, v2, ...): values at odd kv offsets.
			for i := 2; i < len(call.Args); i += 2 {
				if m := fl.exprMask(call.Args[i]); m != 0 {
					out = append(out, labelSink{call: call, arg: call.Args[i], mask: m})
				}
			}
		case "Counter", "Gauge", "Histogram":
			if len(call.Args) > 0 {
				if m := fl.exprMask(call.Args[0]); m != 0 {
					out = append(out, labelSink{call: call, arg: call.Args[0], mask: m})
				}
			}
		}
		return true
	})
	return out
}

// writeEvent records one pool-discipline-relevant operation on a root
// object: a re-initializing write (evReset), a nil-out of a reference
// field (evClear), or a write that may retain an alias (evStore, with the
// alias-domain mask of the stored expression).
type writeEvent struct {
	root    types.Object
	kind    writeKind
	srcMask uint64
	pos     ast.Node
}

type writeKind int

const (
	evReset writeKind = iota
	evClear
	evStore
)

// resetName matches method names that re-initialize their receiver.
func resetName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "reset") || lower == "clean" || lower == "init" || lower == "release"
}

// writeEvents scans body for the operations the poolreset discipline is
// built from. aliasFl is the body's alias-domain flow, used to decide
// whether a stored expression may retain caller-visible memory.
func writeEvents(p *Program, pkg *Package, aliasFl *flow, body *ast.BlockStmt) []writeEvent {
	var out []writeEvent
	add := func(root types.Object, kind writeKind, srcMask uint64, pos ast.Node) {
		if root != nil {
			out = append(out, writeEvent{root: root, kind: kind, srcMask: srcMask, pos: pos})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				root, isField := fieldWriteRoot(pkg.Info, lhs)
				if root == nil || !isField {
					continue
				}
				rhs := n.Rhs[i]
				add(root, evReset, 0, n)
				if isNilish(pkg.Info, rhs) && isRefType(pkg.Info.TypeOf(lhs)) {
					add(root, evClear, 0, n)
				} else if m := storeMask(aliasFl, rhs); m != 0 {
					add(root, evStore, m, n)
				}
			}
		case *ast.CallExpr:
			out = append(out, callEvents(p, pkg, aliasFl, n)...)
			return true
		}
		return true
	})
	return out
}

// callEvents derives write events from a call: Reset-named methods on the
// root, and delegation to helpers whose summaries reset/clear/store their
// parameters.
func callEvents(p *Program, pkg *Package, aliasFl *flow, call *ast.CallExpr) []writeEvent {
	var out []writeEvent
	sum, args := p.callSummary(pkg, call)
	if sum == nil {
		// Unsummarized callee: still honor the Reset-naming convention on
		// the receiver chain.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && resetName(sel.Sel.Name) {
			if root := rootIdentObj(pkg.Info, sel.X); root != nil {
				out = append(out, writeEvent{root: root, kind: evReset, pos: call})
			}
		}
		return out
	}
	roots := make([]types.Object, len(args))
	for i, arg := range args {
		if arg != nil {
			roots[i] = rootIdentObj(pkg.Info, arg)
		}
	}
	name := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name = sel.Sel.Name
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		name = id.Name
	}
	for i, root := range roots {
		if root == nil {
			continue
		}
		if (i < len(sum.Resets) && sum.Resets[i]) || (i == 0 && resetName(name)) {
			out = append(out, writeEvent{root: root, kind: evReset, pos: call})
		}
		if i < len(sum.Clears) && sum.Clears[i] {
			out = append(out, writeEvent{root: root, kind: evClear, pos: call})
		}
	}
	for _, pair := range sum.Stores {
		dst, src := pair[0], pair[1]
		if dst >= len(roots) || roots[dst] == nil || src >= len(args) || args[src] == nil {
			continue
		}
		if isNilish(pkg.Info, args[src]) {
			// Re-running the storing call with nil releases the retained
			// memory: bytes.Reader.Reset(nil) and friends.
			out = append(out, writeEvent{root: roots[dst], kind: evClear, pos: call})
			continue
		}
		if m := storeMask(aliasFl, args[src]); m != 0 {
			out = append(out, writeEvent{root: roots[dst], kind: evStore, srcMask: m, pos: call})
		}
	}
	return out
}

// storeMask is the alias mask of an expression being stored into a pooled
// object: reference-typed values carry their alias mask; struct values
// carry the union of their reference components (a whole-struct write like
// `*r = Reader{buf: buf}` retains buf); scalars retain nothing.
func storeMask(fl *flow, e ast.Expr) uint64 {
	if lit, ok := ast.Unparen(e).(*ast.CompositeLit); ok {
		var m uint64
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			m |= storeMask(fl, el)
		}
		return m
	}
	t := fl.pkg.Info.TypeOf(e)
	if t == nil {
		return 0
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface:
		return fl.exprMask(e)
	case *types.Struct:
		// A copied struct value may still carry reference fields; treat its
		// alias mask as retained.
		return fl.exprMask(e)
	}
	return 0
}

// isRefType reports whether t is a reference type whose nil-out releases
// retained memory.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// fieldWriteRoot resolves an assignment target to (root object, true) when
// it writes through a field/element/star of the root (o.f = x, o.a.b = x,
// *o = x), or (obj, false) for a plain identifier target.
func fieldWriteRoot(info *types.Info, lhs ast.Expr) (types.Object, bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj, false
		}
		return info.Defs[e], false
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return rootIdentObj(info, lhs), true
	}
	return nil, false
}

// isNilish reports whether e is nil, an empty composite literal, or a
// zero-value conversion — the shapes that release a reference.
func isNilish(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	}
	return false
}

// spawnsPerCall reports whether body launches a goroutine that outlives
// the call with no visible coordination: a go statement, no channel
// operations anywhere (the semaphore/futures pattern), and no
// sync.WaitGroup.Wait (the join pattern).
func spawnsPerCall(p *Program, pkg *Package, body *ast.BlockStmt) bool {
	hasGo := false
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			hasGo = true
		case *ast.SendStmt:
			joined = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joined = true
			}
		case *ast.SelectStmt:
			joined = true
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				joined = true
			}
			if fn, ok := objectOf(pkg.Info, n.Fun).(*types.Func); ok {
				if _, decl := p.DeclOf(fn); decl != nil && p.Summary(fn).SpawnsPerCall {
					hasGo = true
				}
			}
		}
		return true
	})
	return hasGo && !joined
}
