package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder reports `range` loops over maps whose bodies produce
// order-dependent output: appending to a slice, writing/encoding to a
// stream, or accumulating floating-point values. Map iteration order is
// deliberately randomized by the runtime, so any of these makes archives,
// training sets or bitstreams differ run to run — the exact
// irreproducibility the fixed-ratio pipeline must exclude.
//
// The sanctioned fix is collecting the keys, sorting, and iterating the
// sorted slice; `append(keys, k)` of the bare key variable is therefore
// exempt. Integer accumulation is exact and commutative, so it is exempt
// too — float accumulation is not, because rounding makes + order-sensitive.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map bodies that append, encode, or accumulate " +
		"floats; sort the keys first so output is byte-identical across runs",
	Run: runMapOrder,
}

func runMapOrder(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			p.checkMapRangeBody(rs)
			return true
		})
	}
	return nil
}

// checkMapRangeBody reports order-dependent operations inside one
// range-over-map body. Nested range statements are walked too (their
// bodies are still executed in the outer map's random order); the runner
// dedupes the double reports when the inner range is itself a map range.
func (p *Pass) checkMapRangeBody(rs *ast.RangeStmt) {
	keyObj := p.rangeKeyObject(rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(p.Info, n) {
				if p.isKeyCollect(n, keyObj) {
					return true // append(keys, k): the sort-the-keys fix pattern
				}
				p.Reportf(n.Pos(), "append inside range over map: iteration order is randomized; collect and sort the keys first")
				return true
			}
			if name, ok := encoderCallName(n); ok {
				p.Reportf(n.Pos(), "%s inside range over map: serialized output depends on randomized iteration order; sort the keys first", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN ||
				n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
				for _, lhs := range n.Lhs {
					if t := p.Info.TypeOf(lhs); t != nil && isFloat(t) {
						p.Reportf(n.Pos(), "float accumulation inside range over map: rounding makes the sum order-dependent; sort the keys first")
						break
					}
				}
			}
		}
		return true
	})
}

// rangeKeyObject returns the object bound to the range key, or nil.
func (p *Pass) rangeKeyObject(rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// isKeyCollect reports whether call is `append(slice, k)` with k exactly
// the range key variable.
func (p *Pass) isKeyCollect(call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	id, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	return ok && p.Info.Uses[id] == keyObj
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// encoderCallName classifies calls that serialize into a stream or buffer:
// Write* / Encode* methods and fmt.Fprint* functions.
func encoderCallName(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Encode") ||
		strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Put") {
		return name, true
	}
	return "", false
}
