package analysis

// All returns the full carollint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{GlobalRand, FloatEq, MapOrder, GoPool, ErrDrop}
}
