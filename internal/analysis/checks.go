package analysis

// All returns the full carollint suite in reporting order: the five
// determinism/hygiene checks from PR 2 plus the four interprocedural
// dataflow checks (taintalloc, poolreset, metriclabel, and gopool's
// summary-aware upgrade rides on the original gopool entry).
func All() []*Analyzer {
	return []*Analyzer{GlobalRand, FloatEq, MapOrder, GoPool, ErrDrop, TaintAlloc, PoolReset, MetricLabel}
}
