// Package core implements the CAROL framework itself — the paper's primary
// contribution (§4–§5): a ratio-controlled lossy compression framework that
//
//  1. collects training data with SECRE surrogate estimation instead of
//     full compressor runs (core contribution 1),
//  2. corrects the surrogate's systematic error with a few-point
//     calibration for the high-ratio compressors (core contribution 2),
//  3. tunes its random-forest model with checkpointable Bayesian
//     optimization instead of randomized grid search (core contribution 3),
//  4. extracts prediction features with the block-parallel extractor
//     (core contribution 4).
//
// The exported, documented entry point for users is the root package carol,
// which wraps this one.
package core

import (
	"errors"
	"fmt"
	"time"

	"carol/internal/bayesopt"
	"carol/internal/boost"
	"carol/internal/calib"
	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/features"
	"carol/internal/field"
	"carol/internal/gridsearch"
	"carol/internal/knn"
	"carol/internal/rf"
	"carol/internal/trainset"
)

// Config tunes the framework. Zero values take defaults.
type Config struct {
	// ErrorBounds is the relative error-bound sweep used during data
	// collection. Default: 35 geometric points in [1e-4, 1e-1].
	ErrorBounds []float64
	// CalibrationPoints is the number of full-compressor runs used to
	// calibrate the surrogate per training field. -1 selects the paper's
	// recommendation automatically: 0 for the high-throughput group
	// (SZx, ZFP), 4 for the high-ratio group (SZ3, SPERR). Default -1.
	CalibrationPoints int
	// BOIterations is the number of Bayesian-optimization evaluations in a
	// full training run. Default 10.
	BOIterations int
	// RefineIterations is the number of additional BO evaluations during
	// an incremental Refine. Default 3.
	RefineIterations int
	// KFolds for cross-validation scoring. Default 3.
	KFolds int
	// ForestCap limits NEstimators in the final model to keep scaled-down
	// experiments fast; 0 means no cap.
	ForestCap int
	// Features tunes the parallel feature extractor.
	Features features.ParallelOptions
	// Model selects the regression model: "rf" (random forest with
	// Bayesian-optimized hyper-parameters — the paper's design), "gbt"
	// (gradient-boosted trees) or "knn" (k-nearest neighbours). The
	// alternatives implement the paper's "different machine learning
	// models" future-work direction. Default "rf".
	Model string
	// Feedback enables the paper's second future-work direction, the
	// on-the-fly improvement loop: every CompressToRatio outcome is fed
	// back into the training set, and the model is refit (with its
	// incumbent hyper-parameters — no new search) every FeedbackEvery
	// outcomes.
	Feedback bool
	// FeedbackEvery is the refit cadence for Feedback. Default 8.
	FeedbackEvery int
	// Workers bounds the CPU parallelism of model training: tree growth,
	// cross-validation folds, batch prediction and acquisition scoring all
	// stay within this many goroutines. 0 uses every core, 1 forces the
	// serial engine. Models are bit-identical for every value; the knob
	// only trades wall-clock for CPU on resource-limited hosts. (Feature
	// extraction has its own knob, Features.Workers.)
	Workers int
	// Seed drives all randomized components.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if len(c.ErrorBounds) == 0 {
		c.ErrorBounds = trainset.GeometricBounds(1e-4, 1e-1, 35)
	}
	if c.CalibrationPoints == 0 {
		c.CalibrationPoints = -1
	}
	if c.BOIterations <= 0 {
		c.BOIterations = 10
	}
	if c.RefineIterations <= 0 {
		c.RefineIterations = 3
	}
	if c.KFolds <= 0 {
		c.KFolds = 3
	}
	if c.Model == "" {
		c.Model = "rf"
	}
	if c.FeedbackEvery <= 0 {
		c.FeedbackEvery = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// NoCalibration is the CalibrationPoints value that disables calibration
// explicitly (as opposed to the automatic default).
const NoCalibration = -2

// CollectStats reports the cost of a data-collection run.
type CollectStats struct {
	Duration time.Duration
	Fields   int
	Samples  int
	// FullCompressorRuns counts calibration runs of the real compressor.
	FullCompressorRuns int
	// SurrogateRuns counts SECRE estimations.
	SurrogateRuns int
}

// TrainStats reports the cost and outcome of a training run.
type TrainStats struct {
	Duration   time.Duration
	Evaluated  int
	BestScore  float64
	BestConfig rf.Config
	// Trajectory records the configuration evaluated at each BO iteration
	// (Figure 5b of the paper plots NEstimators from this).
	Trajectory []rf.Config
	// Resumed reports whether the run continued from a checkpoint.
	Resumed bool
}

// regressor is the prediction interface every supported model satisfies.
type regressor interface {
	Predict(x []float64) (float64, error)
}

// Framework is a CAROL instance bound to one compressor.
type Framework struct {
	codec     compressor.Codec
	surrogate compressor.Estimator
	cfg       Config
	set       trainset.Set
	opt       *bayesopt.Optimizer
	model     regressor
	// bestCfg holds the incumbent forest hyper-parameters (rf model only),
	// reused by feedback refits.
	bestCfg rf.Config
	// pendingFeedback counts outcomes recorded since the last refit.
	pendingFeedback int
}

// New returns a CAROL framework for the named compressor
// ("szx", "zfp", "sz3", "sperr").
func New(name string, cfg Config) (*Framework, error) {
	codec, err := codecs.ByName(name)
	if err != nil {
		return nil, err
	}
	sur, err := codecs.SurrogateByName(name)
	if err != nil {
		return nil, err
	}
	return NewWith(codec, sur, cfg), nil
}

// NewWith builds a framework from an explicit compressor and surrogate —
// the extension path for compressors outside the built-in four ("Compressor
// Behavior 3" in the paper's conclusions: pair a sampled full-compression
// estimator with calibration when no purpose-built surrogate exists).
func NewWith(codec compressor.Codec, surrogate compressor.Estimator, cfg Config) *Framework {
	fw := &Framework{codec: codec, surrogate: surrogate, cfg: cfg.withDefaults()}
	fw.opt = bayesopt.New(gridsearch.BOSpace(), fw.cfg.Seed)
	fw.opt.Workers = fw.cfg.Workers
	return fw
}

// Codec returns the underlying compressor.
func (fw *Framework) Codec() compressor.Codec { return fw.codec }

// TrainingSize returns the number of collected samples.
func (fw *Framework) TrainingSize() int { return fw.set.Len() }

// TrainingSet exposes the collected samples (not a copy) so callers like
// caroltrain can feed the same data to the multi-backend zoo after the
// surrogate collection pass.
func (fw *Framework) TrainingSet() *trainset.Set { return &fw.set }

// calibrationPoints resolves the per-codec default.
func (fw *Framework) calibrationPoints() int {
	switch fw.cfg.CalibrationPoints {
	case NoCalibration:
		return 0
	case -1:
		if codecs.HighThroughput(fw.codec.Name()) {
			return 0
		}
		return 4
	default:
		return fw.cfg.CalibrationPoints
	}
}

// Collect runs CAROL's data collection on the given fields: parallel
// feature extraction, optional per-field calibration, then a surrogate
// estimate per error bound.
func (fw *Framework) Collect(fields []*field.Field) (CollectStats, error) {
	start := time.Now()
	stats := CollectStats{Fields: len(fields)}
	nCal := fw.calibrationPoints()
	relLo := fw.cfg.ErrorBounds[0]
	relHi := fw.cfg.ErrorBounds[len(fw.cfg.ErrorBounds)-1]
	for _, f := range fields {
		feat := features.ExtractParallel(f, fw.cfg.Features)
		est := fw.surrogate
		if nCal >= 2 {
			bounds := calib.PickCalibrationBounds(
				compressor.AbsBound(f, relLo), compressor.AbsBound(f, relHi), nCal)
			model, err := calib.Fit(fw.codec, fw.surrogate, f, bounds)
			if err != nil {
				return stats, fmt.Errorf("core: calibrate %s: %w", f.Name, err)
			}
			stats.FullCompressorRuns += nCal
			est = &calib.Estimator{Base: fw.surrogate, Model: model}
		}
		for _, rel := range fw.cfg.ErrorBounds {
			ratio, err := est.EstimateRatio(f, compressor.AbsBound(f, rel))
			if err != nil {
				return stats, fmt.Errorf("core: estimate %s at rel=%g: %w", f.Name, rel, err)
			}
			stats.SurrogateRuns++
			if err := fw.set.Add(trainset.Sample{Features: feat, Ratio: ratio, RelEB: rel}); err != nil {
				return stats, err
			}
			stats.Samples++
		}
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// Train runs Bayesian-optimized hyper-parameter search and fits the final
// forest. If the optimizer already holds observations (from a previous
// Train or a restored checkpoint) the search resumes instead of restarting.
func (fw *Framework) Train() (TrainStats, error) {
	return fw.train(fw.cfg.BOIterations)
}

// Refine performs incremental model refinement: collect data from the new
// fields with the surrogate pipeline, resume the BO search from its
// checkpoint for a few iterations, and refit. This is the path FXRZ cannot
// take — its grid search starts over each time.
func (fw *Framework) Refine(newFields []*field.Field) (CollectStats, TrainStats, error) {
	cs, err := fw.Collect(newFields)
	if err != nil {
		return cs, TrainStats{}, err
	}
	ts, err := fw.train(fw.cfg.RefineIterations)
	return cs, ts, err
}

func (fw *Framework) train(iterations int) (TrainStats, error) {
	if fw.set.Len() == 0 {
		return TrainStats{}, errors.New("core: no training data collected")
	}
	start := time.Now()
	X, y := fw.set.Matrix()
	switch fw.cfg.Model {
	case "gbt":
		m, err := boost.Train(X, y, boost.Config{Seed: fw.cfg.Seed})
		if err != nil {
			return TrainStats{}, fmt.Errorf("core: gbt fit: %w", err)
		}
		fw.model = m
		return TrainStats{Duration: time.Since(start), Evaluated: 1}, nil
	case "knn":
		m, err := knn.Train(X, y, knn.Config{})
		if err != nil {
			return TrainStats{}, fmt.Errorf("core: knn fit: %w", err)
		}
		fw.model = m
		return TrainStats{Duration: time.Since(start), Evaluated: 1}, nil
	case "rf":
		// Fall through to the Bayesian-optimized forest below.
	default:
		return TrainStats{}, fmt.Errorf("core: unknown model %q (rf|gbt|knn)", fw.cfg.Model)
	}
	stats := TrainStats{Resumed: len(fw.opt.Observations()) > 0}
	for i := 0; i < iterations; i++ {
		values := fw.opt.Suggest()
		cfg, err := gridsearch.ConfigFromValues(values, fw.cfg.Seed)
		if err != nil {
			return stats, err
		}
		evalCfg := cfg
		evalCfg.Workers = fw.cfg.Workers
		if fw.cfg.ForestCap > 0 && evalCfg.NEstimators > fw.cfg.ForestCap {
			evalCfg.NEstimators = fw.cfg.ForestCap
		}
		score, err := rf.CrossValidate(X, y, evalCfg, fw.cfg.KFolds, fw.cfg.Seed+uint64(i))
		if err != nil {
			return stats, fmt.Errorf("core: BO iteration %d: %w", i, err)
		}
		if err := fw.opt.Observe(values, score); err != nil {
			return stats, err
		}
		stats.Trajectory = append(stats.Trajectory, cfg)
		stats.Evaluated++
	}
	bestValues, bestScore, ok := fw.opt.Best()
	if !ok {
		return stats, errors.New("core: optimizer has no observations")
	}
	bestCfg, err := gridsearch.ConfigFromValues(bestValues, fw.cfg.Seed)
	if err != nil {
		return stats, err
	}
	stats.BestScore = bestScore
	stats.BestConfig = bestCfg
	bestCfg.Workers = fw.cfg.Workers
	if fw.cfg.ForestCap > 0 && bestCfg.NEstimators > fw.cfg.ForestCap {
		bestCfg.NEstimators = fw.cfg.ForestCap
	}
	forest, err := rf.Train(X, y, bestCfg)
	if err != nil {
		return stats, fmt.Errorf("core: final fit: %w", err)
	}
	fw.model = forest
	fw.bestCfg = bestCfg
	stats.Duration = time.Since(start)
	return stats, nil
}

// Trained reports whether a model is available.
func (fw *Framework) Trained() bool { return fw.model != nil }

// Forest returns the trained random forest for export into a model
// artifact (internal/model). Only the default "rf" model is exportable —
// the artifact format serializes forests, not the alternative regressors.
func (fw *Framework) Forest() (*rf.Forest, error) {
	forest, ok := fw.model.(*rf.Forest)
	if !ok || forest == nil {
		return nil, errors.New("core: no trained rf model to export")
	}
	return forest, nil
}

// FeatureImportance returns the trained random forest's normalized
// per-input importances (the five features plus the log target ratio).
// Only available for the default "rf" model.
func (fw *Framework) FeatureImportance() ([]float64, error) {
	forest, ok := fw.model.(*rf.Forest)
	if !ok || forest == nil {
		return nil, errors.New("core: feature importance requires a trained rf model")
	}
	return forest.FeatureImportance(), nil
}

// Checkpoint exports the BO observations for persistence; Restore them into
// a new Framework to resume training where this one stopped.
func (fw *Framework) Checkpoint() []bayesopt.Observation {
	return fw.opt.Observations()
}

// RestoreCheckpoint warm-starts the optimizer from a saved checkpoint.
func (fw *Framework) RestoreCheckpoint(obs []bayesopt.Observation) error {
	return fw.opt.Restore(obs)
}

// PredictErrorBound estimates the value-range-relative error bound that
// should achieve targetRatio on f, using CAROL's parallel feature
// extraction and the trained forest.
func (fw *Framework) PredictErrorBound(f *field.Field, targetRatio float64) (float64, error) {
	if fw.model == nil {
		return 0, errors.New("core: model not trained")
	}
	if !(targetRatio > 0) {
		return 0, fmt.Errorf("core: invalid target ratio %g", targetRatio)
	}
	feat := features.ExtractParallel(f, fw.cfg.Features)
	pred, err := fw.model.Predict(trainset.Row(feat, targetRatio))
	if err != nil {
		return 0, err
	}
	return trainset.EBFromTarget(pred), nil
}

// PredictErrorBounds is the batch form of PredictErrorBound: it extracts
// f's features once and predicts the error bound for every target ratio in
// one forest pass (rf.Forest.PredictBatch, parallel across rows). This is
// the cheap way to build a ratio→bound curve for one field.
func (fw *Framework) PredictErrorBounds(f *field.Field, targetRatios []float64) ([]float64, error) {
	if fw.model == nil {
		return nil, errors.New("core: model not trained")
	}
	for _, r := range targetRatios {
		if !(r > 0) {
			return nil, fmt.Errorf("core: invalid target ratio %g", r)
		}
	}
	feat := features.ExtractParallel(f, fw.cfg.Features)
	rows := make([][]float64, len(targetRatios))
	for i, r := range targetRatios {
		rows[i] = trainset.Row(feat, r)
	}
	var preds []float64
	if forest, ok := fw.model.(*rf.Forest); ok {
		var err error
		if preds, err = forest.PredictBatch(rows); err != nil {
			return nil, err
		}
	} else {
		preds = make([]float64, len(rows))
		for i, row := range rows {
			p, err := fw.model.Predict(row)
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
	}
	out := make([]float64, len(preds))
	for i, p := range preds {
		out[i] = trainset.EBFromTarget(p)
	}
	return out, nil
}

// CompressToRatio predicts the error bound for targetRatio and runs the
// compressor with it, returning the stream and the achieved ratio. With
// Config.Feedback enabled, the measured (features, achieved ratio, bound)
// outcome is folded back into the training set — the paper's on-the-fly
// model-improvement loop.
func (fw *Framework) CompressToRatio(f *field.Field, targetRatio float64) ([]byte, float64, error) {
	rel, err := fw.PredictErrorBound(f, targetRatio)
	if err != nil {
		return nil, 0, err
	}
	stream, err := fw.codec.Compress(f, compressor.AbsBound(f, rel))
	if err != nil {
		return nil, 0, err
	}
	achieved := compressor.Ratio(f, stream)
	if fw.cfg.Feedback {
		feat := features.ExtractParallel(f, fw.cfg.Features)
		if err := fw.ObserveOutcome(feat, achieved, rel); err != nil {
			return nil, 0, err
		}
	}
	return stream, achieved, nil
}

// ObserveOutcome records a measured compression outcome — "this field, at
// this relative error bound, actually achieved this ratio" — into the
// training set, and refits the model in place (keeping the incumbent
// hyper-parameters) once Config.FeedbackEvery outcomes have accumulated.
func (fw *Framework) ObserveOutcome(feat features.Vector, achievedRatio, relEB float64) error {
	if err := fw.set.Add(trainset.Sample{Features: feat, Ratio: achievedRatio, RelEB: relEB}); err != nil {
		return fmt.Errorf("core: feedback sample: %w", err)
	}
	fw.pendingFeedback++
	if fw.pendingFeedback < fw.cfg.FeedbackEvery || fw.model == nil {
		return nil
	}
	fw.pendingFeedback = 0
	return fw.refit()
}

// refit retrains the current model type on the accumulated set without a
// new hyper-parameter search.
func (fw *Framework) refit() error {
	X, y := fw.set.Matrix()
	switch fw.cfg.Model {
	case "gbt":
		m, err := boost.Train(X, y, boost.Config{Seed: fw.cfg.Seed})
		if err != nil {
			return fmt.Errorf("core: feedback gbt refit: %w", err)
		}
		fw.model = m
	case "knn":
		m, err := knn.Train(X, y, knn.Config{})
		if err != nil {
			return fmt.Errorf("core: feedback knn refit: %w", err)
		}
		fw.model = m
	default:
		cfg := fw.bestCfg
		if cfg.NEstimators == 0 {
			cfg = rf.DefaultConfig()
			if fw.cfg.ForestCap > 0 {
				cfg.NEstimators = fw.cfg.ForestCap
			}
		}
		cfg.Workers = fw.cfg.Workers
		forest, err := rf.Train(X, y, cfg)
		if err != nil {
			return fmt.Errorf("core: feedback rf refit: %w", err)
		}
		fw.model = forest
	}
	return nil
}
