package core

import (
	"testing"

	"carol/internal/compressor"
	"carol/internal/dataset"
	"carol/internal/features"
	"carol/internal/stats"
)

// TestAlternativeModels exercises the paper's future-work direction: the
// framework must train and predict with gradient-boosted trees and k-NN in
// place of the random forest, with sane end-to-end accuracy.
func TestAlternativeModels(t *testing.T) {
	fields := trainFields(t)
	test, err := dataset.Generate("miranda", "velocityx", dataset.Options{Nx: 32, Ny: 32, Nz: 16})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := New("szx", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	midStream, err := probe.Codec().Compress(test, compressor.AbsBound(test, 1e-2))
	if err != nil {
		t.Fatal(err)
	}
	target := compressor.Ratio(test, midStream)

	for _, model := range []string{"rf", "gbt", "knn"} {
		cfg := fastConfig()
		cfg.Model = model
		fw, err := New("szx", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Collect(fields); err != nil {
			t.Fatal(err)
		}
		ts, err := fw.Train()
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if model != "rf" && ts.Evaluated != 1 {
			t.Fatalf("%s: evaluated %d (no hyper-search expected)", model, ts.Evaluated)
		}
		_, achieved, err := fw.CompressToRatio(test, target)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if a := stats.PctError(achieved, target); a > 80 {
			t.Errorf("%s: achieved %g for target %g (α=%.0f%%)", model, achieved, target, a)
		}
	}
}

func TestUnknownModelRejected(t *testing.T) {
	cfg := fastConfig()
	cfg.Model = "svm"
	fw, err := New("szx", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Collect(trainFields(t)[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestFeedbackLoop verifies the on-the-fly improvement loop: outcomes are
// recorded, and the model refits after FeedbackEvery observations.
func TestFeedbackLoop(t *testing.T) {
	cfg := fastConfig()
	cfg.Feedback = true
	cfg.FeedbackEvery = 3
	fw, err := New("szx", cfg)
	if err != nil {
		t.Fatal(err)
	}
	fields := trainFields(t)
	if _, err := fw.Collect(fields[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := fw.TrainingSize()
	test := fields[2]
	for i := 0; i < 4; i++ {
		if _, _, err := fw.CompressToRatio(test, 5+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := fw.TrainingSize(); got != sizeBefore+4 {
		t.Fatalf("feedback recorded %d samples, want 4", got-sizeBefore)
	}
	// After the refit the model must still predict sensibly.
	_, achieved, err := fw.CompressToRatio(test, 5)
	if err != nil {
		t.Fatal(err)
	}
	if achieved <= 0 {
		t.Fatal("degenerate post-feedback prediction")
	}
}

// TestFeedbackImprovesOnNewRegime trains on one kind of data, then feeds
// back outcomes from a different regime; predictions on that regime should
// not get worse and typically improve.
func TestFeedbackImprovesOnNewRegime(t *testing.T) {
	cfg := fastConfig()
	cfg.Feedback = true
	cfg.FeedbackEvery = 4
	fw, err := New("szx", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Train only on smooth Miranda fields.
	if _, err := fw.Collect(trainFields(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}
	// New regime: NYX log-normal data.
	nyx, err := dataset.Generate("nyx", "baryon_density", dataset.Options{Nx: 32, Ny: 32, Nz: 16})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := fw.Codec().Compress(nyx, compressor.AbsBound(nyx, 1e-2))
	if err != nil {
		t.Fatal(err)
	}
	target := compressor.Ratio(nyx, probe)
	alpha := func() float64 {
		_, achieved, err := fw.CompressToRatio(nyx, target)
		if err != nil {
			t.Fatal(err)
		}
		return stats.PctError(achieved, target)
	}
	before := alpha()
	// Feed several outcomes from the new regime (each call records one).
	for i := 0; i < 12; i++ {
		alpha()
	}
	after := alpha()
	if after > before+10 {
		t.Fatalf("feedback made things worse: %.1f%% -> %.1f%%", before, after)
	}
}

func TestObserveOutcomeValidation(t *testing.T) {
	fw, err := New("szx", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.ObserveOutcome(features.Vector{}, 0, 1e-3); err == nil {
		t.Fatal("zero ratio accepted")
	}
	if err := fw.ObserveOutcome(features.Vector{}, 10, 0); err == nil {
		t.Fatal("zero bound accepted")
	}
}

// TestRefitWithoutTrainedModelDefers ensures feedback before Train only
// accumulates samples.
func TestRefitWithoutTrainedModelDefers(t *testing.T) {
	cfg := fastConfig()
	cfg.FeedbackEvery = 1
	fw, err := New("szx", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.ObserveOutcome(features.Vector{Mean: 1, Range: 1}, 10, 1e-3); err != nil {
		t.Fatal(err)
	}
	if fw.Trained() {
		t.Fatal("feedback alone should not produce a model")
	}
}
