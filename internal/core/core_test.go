package core

import (
	"testing"

	"carol/internal/compressor"
	"carol/internal/dataset"
	"carol/internal/field"
	"carol/internal/secre"
	"carol/internal/stats"
	"carol/internal/szx"
	"carol/internal/trainset"
)

func trainFields(t *testing.T) []*field.Field {
	t.Helper()
	opts := dataset.Options{Nx: 32, Ny: 32, Nz: 16}
	var out []*field.Field
	for _, name := range []string{"density", "pressure", "viscosity"} {
		f, err := dataset.Generate("miranda", name, opts)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
	return out
}

func fastConfig() Config {
	return Config{
		ErrorBounds:  trainset.GeometricBounds(1e-4, 1e-1, 12),
		BOIterations: 6,
		KFolds:       3,
		ForestCap:    10,
		Seed:         7,
	}
}

func TestNewUnknownCodec(t *testing.T) {
	if _, err := New("gzip", Config{}); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestCollectTrainPredictSZx(t *testing.T) {
	fw, err := New("szx", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	fields := trainFields(t)
	cs, err := fw.Collect(fields)
	if err != nil {
		t.Fatal(err)
	}
	// SZx is in the high-throughput group: no calibration runs expected.
	if cs.FullCompressorRuns != 0 {
		t.Fatalf("szx used %d calibration runs", cs.FullCompressorRuns)
	}
	if cs.SurrogateRuns != 3*12 || cs.Samples != 3*12 {
		t.Fatalf("collect stats %+v", cs)
	}
	ts, err := fw.Train()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Evaluated != 6 || len(ts.Trajectory) != 6 || ts.Resumed {
		t.Fatalf("train stats %+v", ts)
	}
	if !fw.Trained() {
		t.Fatal("not trained")
	}

	test, err := dataset.Generate("miranda", "velocityx", dataset.Options{Nx: 32, Ny: 32, Nz: 16})
	if err != nil {
		t.Fatal(err)
	}
	midStream, err := fw.Codec().Compress(test, compressor.AbsBound(test, 1e-2))
	if err != nil {
		t.Fatal(err)
	}
	target := compressor.Ratio(test, midStream)
	_, achieved, err := fw.CompressToRatio(test, target)
	if err != nil {
		t.Fatal(err)
	}
	if a := stats.PctError(achieved, target); a > 60 {
		t.Fatalf("achieved %g for target %g (α=%.0f%%)", achieved, target, a)
	}
}

func TestSZ3UsesCalibrationByDefault(t *testing.T) {
	cfg := fastConfig()
	cfg.ErrorBounds = trainset.GeometricBounds(1e-3, 1e-1, 6)
	fw, err := New("sz3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	fields := trainFields(t)[:1]
	cs, err := fw.Collect(fields)
	if err != nil {
		t.Fatal(err)
	}
	if cs.FullCompressorRuns != 4 {
		t.Fatalf("sz3 calibration runs = %d, want 4", cs.FullCompressorRuns)
	}
}

func TestNoCalibrationOverride(t *testing.T) {
	cfg := fastConfig()
	cfg.CalibrationPoints = NoCalibration
	fw, err := New("sperr", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := fw.Collect(trainFields(t)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if cs.FullCompressorRuns != 0 {
		t.Fatalf("NoCalibration still ran %d full compressions", cs.FullCompressorRuns)
	}
}

func TestRefineResumesFromCheckpoint(t *testing.T) {
	fw, err := New("szx", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	fields := trainFields(t)
	if _, err := fw.Collect(fields[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}
	before := len(fw.Checkpoint())
	cs, ts, err := fw.Refine(fields[2:])
	if err != nil {
		t.Fatal(err)
	}
	if cs.Samples == 0 {
		t.Fatal("refine collected nothing")
	}
	if !ts.Resumed {
		t.Fatal("refine did not resume from checkpoint")
	}
	if ts.Evaluated != fw.cfg.RefineIterations {
		t.Fatalf("refine evaluated %d configs", ts.Evaluated)
	}
	if len(fw.Checkpoint()) != before+ts.Evaluated {
		t.Fatalf("checkpoint grew %d -> %d", before, len(fw.Checkpoint()))
	}
}

func TestCheckpointTransfersBetweenFrameworks(t *testing.T) {
	fw1, err := New("szx", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	fields := trainFields(t)
	if _, err := fw1.Collect(fields); err != nil {
		t.Fatal(err)
	}
	if _, err := fw1.Train(); err != nil {
		t.Fatal(err)
	}
	ckpt := fw1.Checkpoint()

	fw2, err := New("szx", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := fw2.RestoreCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := fw2.Collect(fields[:1]); err != nil {
		t.Fatal(err)
	}
	ts, err := fw2.Train()
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Resumed {
		t.Fatal("restored framework did not resume")
	}
}

func TestNewWithCustomSurrogate(t *testing.T) {
	// The extension path: a sampled-full estimator paired with calibration.
	codec := szx.New()
	est := &secre.SampledFull{Codec: codec}
	cfg := fastConfig()
	cfg.CalibrationPoints = 3
	fw := NewWith(codec, est, cfg)
	fields := trainFields(t)[:1]
	cs, err := fw.Collect(fields)
	if err != nil {
		t.Fatal(err)
	}
	if cs.FullCompressorRuns != 3 {
		t.Fatalf("calibration runs = %d, want 3", cs.FullCompressorRuns)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}
}

func TestErrorPaths(t *testing.T) {
	fw, err := New("szx", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err == nil {
		t.Fatal("train without data accepted")
	}
	f := trainFields(t)[0]
	if _, err := fw.PredictErrorBound(f, 10); err == nil {
		t.Fatal("untrained predict accepted")
	}
	if _, err := fw.Collect([]*field.Field{f}); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.PredictErrorBound(f, 0); err == nil {
		t.Fatal("zero target accepted")
	}
}

// TestPredictErrorBoundsMatchesSingle checks the batch prediction path
// (one feature extraction + Forest.PredictBatch) against per-ratio
// PredictErrorBound calls, and that a Workers cap does not change results.
func TestPredictErrorBoundsMatchesSingle(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 2
	fw, err := New("szx", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Collect(trainFields(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}
	test, err := dataset.Generate("miranda", "velocityx", dataset.Options{Nx: 32, Ny: 32, Nz: 16})
	if err != nil {
		t.Fatal(err)
	}
	ratios := []float64{3, 10, 30, 100}
	batch, err := fw.PredictErrorBounds(test, ratios)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(ratios) {
		t.Fatalf("batch returned %d bounds for %d ratios", len(batch), len(ratios))
	}
	for i, r := range ratios {
		one, err := fw.PredictErrorBound(test, r)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != one {
			t.Fatalf("ratio %g: batch %v, single %v", r, batch[i], one)
		}
	}
	if _, err := fw.PredictErrorBounds(test, []float64{10, -1}); err == nil {
		t.Fatal("negative target ratio accepted")
	}
}
