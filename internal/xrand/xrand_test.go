package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(99)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(11)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	n1, n2 := NewNoise(123), NewNoise(123)
	for i := 0; i < 500; i++ {
		x, y, z := float64(i)*0.37, float64(i)*0.11, float64(i)*0.53
		v1, v2 := n1.At(x, y, z), n2.At(x, y, z)
		if v1 != v2 {
			t.Fatalf("noise not deterministic at %d", i)
		}
		if v1 < -1.0001 || v1 > 1.0001 {
			t.Fatalf("noise out of range: %v", v1)
		}
	}
}

func TestNoiseContinuity(t *testing.T) {
	n := NewNoise(77)
	// Adjacent samples at small spacing must be close (smoothness).
	const h = 1e-3
	for i := 0; i < 200; i++ {
		x := float64(i) * 0.193
		d := math.Abs(n.At(x, 1.5, 2.5) - n.At(x+h, 1.5, 2.5))
		if d > 0.02 {
			t.Fatalf("noise discontinuous at x=%v: jump %v", x, d)
		}
	}
}

func TestFBmBounded(t *testing.T) {
	n := NewNoise(9)
	for i := 0; i < 500; i++ {
		v := n.FBm(float64(i)*0.21, float64(i)*0.13, 0.5, 5, 0.5)
		if v < -1.0001 || v > 1.0001 {
			t.Fatalf("FBm out of range: %v", v)
		}
	}
}

func TestFBmZeroOctaves(t *testing.T) {
	n := NewNoise(9)
	if v := n.FBm(1, 2, 3, 0, 0.5); v != 0 {
		t.Fatalf("FBm with 0 octaves = %v, want 0", v)
	}
}

func TestFBmRoughness(t *testing.T) {
	// More octaves must add high-frequency energy: mean |gradient| grows.
	n := NewNoise(31)
	rough := func(oct int) float64 {
		var sum float64
		const h = 0.01
		for i := 0; i < 500; i++ {
			x := float64(i) * 0.113
			sum += math.Abs(n.FBm(x+h, 0.7, 0.3, oct, 0.6) - n.FBm(x, 0.7, 0.3, oct, 0.6))
		}
		return sum
	}
	if r1, r5 := rough(1), rough(6); r5 <= r1 {
		t.Fatalf("6-octave roughness %v not greater than 1-octave %v", r5, r1)
	}
}

func TestQuickRangeWithin(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi-lo <= 0 || hi-lo > 1e100 {
			return true
		}
		v := New(seed).Range(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNoiseAt(b *testing.B) {
	n := NewNoise(1)
	for i := 0; i < b.N; i++ {
		_ = n.At(float64(i)*0.01, 0.5, 0.25)
	}
}
