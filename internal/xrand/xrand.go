// Package xrand provides the deterministic pseudo-random machinery shared by
// the dataset generators, the random-forest trainer, and the optimizers.
//
// Everything in this repository must be reproducible run-to-run, so all
// stochastic components draw from an explicit *Source seeded by the caller
// rather than from global state.
package xrand

import "math"

// Source is a splitmix64 pseudo-random generator. It is small, fast, has a
// full 2^64 period, and passes the statistical batteries relevant to the
// procedural noise used here. The zero value is a valid generator seeded
// with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal variate via Box-Muller.
func (s *Source) Norm() float64 {
	u1 := s.Float64()
	for u1 == 0 { //carol:allow floateq Box-Muller rejects exactly zero before log
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	s.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)), drawing the
// exact same variate sequence as Perm. It lets hot paths reuse a scratch
// slice instead of allocating per call.
func (s *Source) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes the first n indices in place using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// hash3 mixes three lattice coordinates and a seed into 64 pseudo-random
// bits; it is the basis of the value noise below.
func hash3(x, y, z int64, seed uint64) uint64 {
	h := seed
	h ^= uint64(x) * 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= uint64(y) * 0xc2b2ae3d27d4eb4f
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= uint64(z) * 0x165667b19e3779f9
	h = (h ^ (h >> 31)) * 0xff51afd7ed558ccd
	return h ^ (h >> 33)
}

// latticeValue returns a deterministic uniform value in [-1, 1] at an
// integer lattice point.
func latticeValue(x, y, z int64, seed uint64) float64 {
	return float64(hash3(x, y, z, seed)>>11)/(1<<52) - 1
}

func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// Noise is seeded 3D value noise. Evaluate it at any continuous coordinate;
// nearby points yield correlated values, giving the smooth fields scientific
// data exhibits.
type Noise struct {
	seed uint64
}

// NewNoise returns value noise with the given seed.
func NewNoise(seed uint64) *Noise { return &Noise{seed: seed} }

// At evaluates the noise at (x, y, z); the result is in [-1, 1].
func (n *Noise) At(x, y, z float64) float64 {
	x0, y0, z0 := math.Floor(x), math.Floor(y), math.Floor(z)
	tx, ty, tz := smooth(x-x0), smooth(y-y0), smooth(z-z0)
	ix, iy, iz := int64(x0), int64(y0), int64(z0)

	var c [2][2][2]float64
	for dz := int64(0); dz < 2; dz++ {
		for dy := int64(0); dy < 2; dy++ {
			for dx := int64(0); dx < 2; dx++ {
				c[dz][dy][dx] = latticeValue(ix+dx, iy+dy, iz+dz, n.seed)
			}
		}
	}
	lerp := func(a, b, t float64) float64 { return a + (b-a)*t }
	x00 := lerp(c[0][0][0], c[0][0][1], tx)
	x10 := lerp(c[0][1][0], c[0][1][1], tx)
	x01 := lerp(c[1][0][0], c[1][0][1], tx)
	x11 := lerp(c[1][1][0], c[1][1][1], tx)
	y0v := lerp(x00, x10, ty)
	y1v := lerp(x01, x11, ty)
	return lerp(y0v, y1v, tz)
}

// FBm evaluates fractal Brownian motion: `octaves` layers of value noise
// with per-octave frequency doubling (lacunarity 2) and amplitude decay
// `gain`. Result is approximately in [-1, 1].
func (n *Noise) FBm(x, y, z float64, octaves int, gain float64) float64 {
	var sum, norm float64
	amp, freq := 1.0, 1.0
	for o := 0; o < octaves; o++ {
		sum += amp * n.At(x*freq+float64(o)*17.31, y*freq-float64(o)*9.7, z*freq+float64(o)*3.3)
		norm += amp
		amp *= gain
		freq *= 2
	}
	if norm == 0 { //carol:allow floateq zero-octave FBm normalizer guard before dividing
		return 0
	}
	return sum / norm
}
