package registry

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"carol/internal/model"
	"carol/internal/rf"
	"carol/internal/safedec"
	"carol/internal/trainset"
	"carol/internal/xrand"
)

// testArtifactBytes builds a small valid artifact; seed varies the forest
// so distinct versions have distinct bytes.
func testArtifactBytes(t testing.TB, seed uint64) []byte {
	t.Helper()
	rng := xrand.New(seed)
	const rows = 80
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range X {
		row := make([]float64, trainset.InputDim)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = -2 + row[0]
	}
	cfg := rf.DefaultConfig()
	cfg.NEstimators = 3
	cfg.MaxDepth = 4
	cfg.Seed = seed
	forest, err := rf.Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Artifact{Codec: "szx", Schema: model.CanonicalSchema(), Forest: forest}
	buf, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func openTemp(t *testing.T) *Registry {
	t.Helper()
	r, err := Open(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPublishAndLoad(t *testing.T) {
	r := openTemp(t)
	buf1 := testArtifactBytes(t, 1)
	v1, err := r.Publish("szx", buf1)
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if v1.Number != 1 || v1.Size != int64(len(buf1)) {
		t.Fatalf("v1 = %+v", v1)
	}
	v2, err := r.Publish("szx", testArtifactBytes(t, 2))
	if err != nil {
		t.Fatalf("publish 2: %v", err)
	}
	if v2.Number != 2 {
		t.Fatalf("v2.Number = %d", v2.Number)
	}
	latest, err := r.Latest("szx")
	if err != nil || latest.Number != 2 {
		t.Fatalf("Latest = %+v, %v", latest, err)
	}
	got, err := r.Get("szx", 1)
	if err != nil || got.SHA256 != v1.SHA256 {
		t.Fatalf("Get(1) = %+v, %v", got, err)
	}
	a, err := r.Load(v1, safedec.Limits{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if a.Codec != "szx" {
		t.Fatalf("loaded codec %q", a.Codec)
	}
	versions, err := r.Versions("szx")
	if err != nil || len(versions) != 2 {
		t.Fatalf("Versions = %v, %v", versions, err)
	}
	names, err := r.List()
	if err != nil || len(names) != 1 || names[0] != "szx" {
		t.Fatalf("List = %v, %v", names, err)
	}
	// No temp litter after successful publishes.
	ents, err := os.ReadDir(filepath.Join(r.Root(), "szx"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestPublishRejectsGarbage(t *testing.T) {
	r := openTemp(t)
	if _, err := r.Publish("szx", []byte("not a model")); err == nil {
		t.Fatal("garbage published")
	}
	if _, err := r.Publish("../evil", testArtifactBytes(t, 1)); err == nil {
		t.Fatal("path-traversal name accepted")
	}
	if _, err := r.Publish("UPPER", testArtifactBytes(t, 1)); err == nil {
		t.Fatal("uppercase name accepted")
	}
	// A rejected publish leaves no model behind.
	if names, _ := r.List(); len(names) != 0 {
		t.Fatalf("List after rejected publishes = %v", names)
	}
}

func TestNotFound(t *testing.T) {
	r := openTemp(t)
	if _, err := r.Latest("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest(ghost) = %v", err)
	}
	if _, err := r.Versions("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Versions(ghost) = %v", err)
	}
	v, err := r.Publish("m1", testArtifactBytes(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("m1", 7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(m1, 7) = %v", err)
	}
	_ = v
}

func TestLoadDetectsCorruption(t *testing.T) {
	r := openTemp(t)
	v, err := r.Publish("m1", testArtifactBytes(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(v.Path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte on disk; the manifest digest must catch it even though
	// the length is unchanged.
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(v.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(v, safedec.Limits{}); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted load = %v, want checksum mismatch", err)
	}
	// Truncation trips the size check.
	if err := os.WriteFile(v.Path, data[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(v, safedec.Limits{}); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("truncated load = %v, want size mismatch", err)
	}
}

func TestLoadHonorsLimits(t *testing.T) {
	r := openTemp(t)
	v, err := r.Publish("m1", testArtifactBytes(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(v, safedec.Limits{MaxAlloc: 16}); !errors.Is(err, safedec.ErrLimit) {
		t.Fatalf("tiny-limit load = %v, want ErrLimit", err)
	}
}

func TestGC(t *testing.T) {
	r := openTemp(t)
	for seed := uint64(1); seed <= 5; seed++ {
		if _, err := r.Publish("m1", testArtifactBytes(t, seed)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := r.GC("m1", 2)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if len(removed) != 3 || removed[0] != 1 || removed[2] != 3 {
		t.Fatalf("removed = %v", removed)
	}
	versions, err := r.Versions("m1")
	if err != nil || len(versions) != 2 || versions[0].Number != 4 {
		t.Fatalf("Versions after GC = %v, %v", versions, err)
	}
	// The deleted files are gone; the kept ones still load.
	if _, err := os.Stat(filepath.Join(r.Root(), "m1", "v000001.model")); !os.IsNotExist(err) {
		t.Fatalf("v1 still present: %v", err)
	}
	latest, err := r.Latest("m1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(latest, safedec.Limits{}); err != nil {
		t.Fatalf("load after GC: %v", err)
	}
	// GC is idempotent and never deletes below keep.
	if removed, err := r.GC("m1", 2); err != nil || removed != nil {
		t.Fatalf("second GC = %v, %v", removed, err)
	}
	if _, err := r.GC("m1", 0); err == nil {
		t.Fatal("GC keep=0 accepted")
	}
	// Publishing after GC continues the version sequence.
	v, err := r.Publish("m1", testArtifactBytes(t, 9))
	if err != nil || v.Number != 6 {
		t.Fatalf("publish after GC = %+v, %v", v, err)
	}
}

func TestManifestRejectsTampering(t *testing.T) {
	r := openTemp(t)
	v, err := r.Publish("m1", testArtifactBytes(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(r.Root(), "m1", "MANIFEST")
	cases := []string{
		"1 deadbeef 10\n",          // short sha
		"x aaaa 10\n",              // bad version
		"1 " + v.SHA256 + " -1\n",  // negative size
		"1 " + v.SHA256 + "\n",     // missing field
		"1 " + v.SHA256 + " 1 1\n", // extra field
	}
	for _, c := range cases {
		if err := os.WriteFile(manifest, []byte(c), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Versions("m1"); err == nil {
			t.Fatalf("manifest %q accepted", c)
		}
	}
	// Duplicate version lines are rejected too.
	line := "1 " + v.SHA256 + " 10\n"
	if err := os.WriteFile(manifest, []byte(line+line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Versions("m1"); err == nil {
		t.Fatal("duplicate manifest versions accepted")
	}
}

func TestConcurrentPublishCollision(t *testing.T) {
	// Simulate the losing half of a concurrent publish: the version file
	// already exists when Publish goes to create it exclusively.
	r := openTemp(t)
	if _, err := r.Publish("m1", testArtifactBytes(t, 1)); err != nil {
		t.Fatal(err)
	}
	// Forge a pre-existing next-version file.
	if err := os.WriteFile(filepath.Join(r.Root(), "m1", "v000002.model"), []byte("squat"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("m1", testArtifactBytes(t, 2)); err == nil {
		t.Fatal("publish overwrote a pre-existing version file")
	}
}

// TestGCUnderConcurrentPublish hammers one registry handle with parallel
// publishers and GC sweeps. The in-process mutator mutex must keep every
// manifest row backed by a live, hash-clean file — without it, a publish
// that read the manifest before a racing GC rewrote it resurrects rows
// whose files GC just deleted. Run under -race this also proves the
// mutators share no unsynchronized state.
func TestGCUnderConcurrentPublish(t *testing.T) {
	r := openTemp(t)
	if _, err := r.Publish("m1", testArtifactBytes(t, 1)); err != nil {
		t.Fatal(err)
	}
	const publishers = 2
	const perPublisher = 8
	bufs := make([][]byte, publishers)
	for i := range bufs {
		bufs[i] = testArtifactBytes(t, uint64(100+i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, publishers+1)
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func(buf []byte) {
			defer wg.Done()
			for j := 0; j < perPublisher; j++ {
				if _, err := r.Publish("m1", buf); err != nil {
					errs <- err
					return
				}
			}
		}(bufs[i])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 3*perPublisher; j++ {
			if _, err := r.GC("m1", 2); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	versions, err := r.Versions("m1")
	if err != nil {
		t.Fatal(err)
	}
	// Every surviving manifest row must be backed by a loadable,
	// hash-verified file, and the newest version must reflect all
	// publishes despite the GC churn.
	for _, v := range versions {
		if _, err := r.Load(v, safedec.Limits{}); err != nil {
			t.Fatalf("version %d in manifest but not loadable: %v", v.Number, err)
		}
	}
	latest, err := r.Latest("m1")
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + publishers*perPublisher; latest.Number != want {
		t.Fatalf("latest version %d, want %d", latest.Number, want)
	}
	if _, err := r.GC("m1", 1); err != nil {
		t.Fatal(err)
	}
	if versions, err = r.Versions("m1"); err != nil || len(versions) != 1 {
		t.Fatalf("final GC left %d versions (err %v), want 1", len(versions), err)
	}
}
