// Package registry is the versioned on-disk store between the offline
// trainer (cmd/caroltrain) and the online server (carolserve): a plain
// directory tree any operator can inspect, rsync and back up, with atomic
// publishes and checksum-verified loads.
//
// Layout (DESIGN.md §12):
//
//	<root>/<name>/v000042.model   one immutable artifact per version
//	<root>/<name>/MANIFEST        text index: "<version> <sha256> <size>"
//
// Versions are monotonically increasing integers; a publish writes the
// artifact to a temp file in the same directory, fsyncs, renames it into
// place (atomic on POSIX), and then rewrites MANIFEST the same way — so a
// reader never observes a half-written artifact or index, and a crashed
// publish leaves only an ignorable *.tmp file behind. Loads re-hash the
// file and compare against the manifest before the artifact parser ever
// runs, so silent on-disk corruption is caught even when it preserves the
// format's own CRC.
//
// Concurrency: any number of readers may run against a registry while one
// publisher per model name writes to it (the carolserve + caroltrain
// split). Concurrent publishers to the same name are detected — the
// version file is created exclusively, so the loser errors instead of
// overwriting — but retry is the caller's job. Within one process, a
// Registry handle additionally serializes its mutators (Publish, GC) so a
// retraining loop and a GC sweep sharing the handle cannot interleave
// their manifest read-modify-write cycles and resurrect deleted versions.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"carol/internal/model"
	"carol/internal/safedec"
)

// ErrNotFound reports a missing model name or version.
var ErrNotFound = errors.New("registry: not found")

// nameRE bounds model names to a filesystem- and URL-safe alphabet; this
// is the only thing standing between a query parameter and a path join.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// versionFmt is the zero-padded version file name ("v%06d.model"); the
// padding keeps lexical and numeric order identical for ls and humans.
const versionFmt = "v%06d.model"

// manifestName is the per-model index file.
const manifestName = "MANIFEST"

// Registry is a handle on one registry root directory.
type Registry struct {
	root string
	// mu serializes in-process mutators. Publish and GC each do a manifest
	// read-modify-write; unserialized, a Publish that read the manifest
	// before a concurrent GC rewrote it would write back entries for
	// versions whose files GC just deleted, leaving dangling manifest rows.
	// The O_EXCL version-file guard cannot catch that — the two mutators
	// touch different version files.
	mu sync.Mutex
}

// Open validates root (creating it if absent) and returns a handle.
func Open(root string) (*Registry, error) {
	if root == "" {
		return nil, errors.New("registry: empty root directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return &Registry{root: root}, nil
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

// Version describes one published artifact.
type Version struct {
	Name   string // model name
	Number int    // monotonically increasing, 1-based
	SHA256 string // hex digest of the artifact file
	Size   int64  // artifact size in bytes
	Path   string // absolute-ish path to the artifact file
}

// CheckName validates a model name against the registry's safe alphabet.
func CheckName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("registry: invalid model name %q (want %s)", name, nameRE)
	}
	return nil
}

func (r *Registry) modelDir(name string) string { return filepath.Join(r.root, name) }

// readManifest parses a model's MANIFEST into ascending-version order.
// A missing manifest is ErrNotFound.
func (r *Registry) readManifest(name string) ([]Version, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(r.modelDir(name), manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: model %q", ErrNotFound, name)
		}
		return nil, fmt.Errorf("registry: %w", err)
	}
	var out []Version
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("registry: %s/%s line %d: want 3 fields, have %d",
				name, manifestName, ln+1, len(fields))
		}
		num, err := strconv.Atoi(fields[0])
		if err != nil || num < 1 {
			return nil, fmt.Errorf("registry: %s/%s line %d: bad version %q",
				name, manifestName, ln+1, fields[0])
		}
		sha := strings.ToLower(fields[1])
		if len(sha) != 64 || strings.Trim(sha, "0123456789abcdef") != "" {
			return nil, fmt.Errorf("registry: %s/%s line %d: bad sha256", name, manifestName, ln+1)
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("registry: %s/%s line %d: bad size %q",
				name, manifestName, ln+1, fields[2])
		}
		out = append(out, Version{
			Name:   name,
			Number: num,
			SHA256: sha,
			Size:   size,
			Path:   filepath.Join(r.modelDir(name), fmt.Sprintf(versionFmt, num)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	for i := 1; i < len(out); i++ {
		if out[i].Number == out[i-1].Number {
			return nil, fmt.Errorf("registry: %s/%s: duplicate version %d",
				name, manifestName, out[i].Number)
		}
	}
	return out, nil
}

// writeManifest atomically replaces a model's MANIFEST.
func (r *Registry) writeManifest(name string, versions []Version) error {
	var b strings.Builder
	b.WriteString("# version sha256 size — managed by carol registry; do not edit\n")
	for _, v := range versions {
		fmt.Fprintf(&b, "%d %s %d\n", v.Number, v.SHA256, v.Size)
	}
	dir := r.modelDir(name)
	tmp, err := os.CreateTemp(dir, manifestName+".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.WriteString(b.String()); err != nil {
		_ = tmp.Close() // write/sync error above is primary
		return fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // write/sync error above is primary
		return fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	return nil
}

// Publish stores artifact bytes as the next version of name and returns
// its record. The bytes must parse as a valid model artifact — a registry
// never accepts a stream its own readers would reject.
func (r *Registry) Publish(name string, artifact []byte) (Version, error) {
	if err := CheckName(name); err != nil {
		return Version{}, err
	}
	if _, err := model.Read(artifact); err != nil {
		return Version{}, fmt.Errorf("registry: refusing to publish: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	dir := r.modelDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Version{}, fmt.Errorf("registry: %w", err)
	}
	versions, err := r.readManifest(name)
	if err != nil && !errors.Is(err, ErrNotFound) {
		return Version{}, err
	}
	next := 1
	if n := len(versions); n > 0 {
		next = versions[n-1].Number + 1
	}
	final := filepath.Join(dir, fmt.Sprintf(versionFmt, next))
	// Exclusive create of the final name first: two concurrent publishers
	// that both computed the same next version collide here instead of
	// silently overwriting each other after rename.
	guard, err := os.OpenFile(final, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return Version{}, fmt.Errorf("registry: version %d of %q already being published: %w",
			next, name, err)
	}
	if err := guard.Close(); err != nil {
		return Version{}, fmt.Errorf("registry: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "artifact.tmp-*")
	if err != nil {
		return Version{}, fmt.Errorf("registry: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(artifact); err != nil {
		_ = tmp.Close() // write/sync error above is primary
		return Version{}, fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // write/sync error above is primary
		return Version{}, fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return Version{}, fmt.Errorf("registry: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return Version{}, fmt.Errorf("registry: %w", err)
	}
	sum := sha256.Sum256(artifact)
	v := Version{
		Name:   name,
		Number: next,
		SHA256: hex.EncodeToString(sum[:]),
		Size:   int64(len(artifact)),
		Path:   final,
	}
	if err := r.writeManifest(name, append(versions, v)); err != nil {
		return Version{}, err
	}
	return v, nil
}

// Versions returns every published version of name, ascending.
func (r *Registry) Versions(name string) ([]Version, error) {
	return r.readManifest(name)
}

// Latest returns the newest version of name.
func (r *Registry) Latest(name string) (Version, error) {
	versions, err := r.readManifest(name)
	if err != nil {
		return Version{}, err
	}
	if len(versions) == 0 {
		return Version{}, fmt.Errorf("%w: model %q has no versions", ErrNotFound, name)
	}
	return versions[len(versions)-1], nil
}

// Get returns one specific version of name.
func (r *Registry) Get(name string, number int) (Version, error) {
	versions, err := r.readManifest(name)
	if err != nil {
		return Version{}, err
	}
	for _, v := range versions {
		if v.Number == number {
			return v, nil
		}
	}
	return Version{}, fmt.Errorf("%w: model %q version %d", ErrNotFound, name, number)
}

// List returns the names of every model in the registry, sorted.
func (r *Registry) List() ([]string, error) {
	ents, err := os.ReadDir(r.root)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() || CheckName(e.Name()) != nil {
			continue
		}
		// Only directories that actually hold a manifest count as models;
		// a crashed mkdir without a publish is invisible.
		if _, err := os.Stat(filepath.Join(r.modelDir(e.Name()), manifestName)); err != nil {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Load reads, hash-verifies and parses one version under the given decode
// limits. The manifest digest is checked before the parser touches the
// bytes.
func (r *Registry) Load(v Version, lim safedec.Limits) (*model.Artifact, error) {
	data, err := os.ReadFile(v.Path)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	if int64(len(data)) != v.Size {
		return nil, fmt.Errorf("registry: %s is %d bytes, manifest says %d",
			v.Path, len(data), v.Size)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != v.SHA256 {
		return nil, fmt.Errorf("registry: %s checksum %s does not match manifest %s",
			v.Path, got, v.SHA256)
	}
	a, err := model.ReadLimited(data, lim)
	if err != nil {
		return nil, fmt.Errorf("registry: %s: %w", v.Path, err)
	}
	return a, nil
}

// GC removes all but the newest keep versions of name, returning the
// numbers it deleted. keep < 1 is an error — a GC that can delete the
// serving version is a footgun, not a feature.
func (r *Registry) GC(name string, keep int) ([]int, error) {
	if keep < 1 {
		return nil, fmt.Errorf("registry: GC keep %d < 1", keep)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions, err := r.readManifest(name)
	if err != nil {
		return nil, err
	}
	if len(versions) <= keep {
		return nil, nil
	}
	drop := versions[:len(versions)-keep]
	rest := versions[len(versions)-keep:]
	// Shrink the manifest first: a reader that races the file removal sees
	// a manifest without the dropped versions rather than a manifest entry
	// whose file is gone.
	if err := r.writeManifest(name, rest); err != nil {
		return nil, err
	}
	removed := make([]int, 0, len(drop))
	for _, v := range drop {
		if err := os.Remove(v.Path); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("registry: %w", err)
		}
		removed = append(removed, v.Number)
	}
	return removed, nil
}
