// Package fxrz reimplements the FXRZ feature-driven fixed-ratio compression
// framework (Rahman et al., ICDE 2023), the baseline CAROL is evaluated
// against. FXRZ's pipeline is:
//
//  1. Data collection: run the FULL compressor over an error-bound sweep on
//     every training field (the step that dominates setup time);
//  2. Model training: a random forest tuned by randomized grid search with
//     k-fold cross-validation, re-run from scratch on every retrain;
//  3. Prediction: serial strided feature extraction followed by a forest
//     traversal.
package fxrz

import (
	"errors"
	"fmt"
	"time"

	"carol/internal/compressor"
	"carol/internal/features"
	"carol/internal/field"
	"carol/internal/gridsearch"
	"carol/internal/rf"
	"carol/internal/trainset"
)

// Config tunes the framework. Zero values take defaults.
type Config struct {
	// ErrorBounds is the relative error-bound sweep used during data
	// collection. Default: 35 geometric points in [1e-4, 1e-1], as in the
	// paper's experiments.
	ErrorBounds []float64
	// GridConfigs is the number of randomized grid-search configurations
	// (FXRZ uses 10).
	GridConfigs int
	// KFolds for cross-validation. Default 3.
	KFolds int
	// FeatureStride is the point-sampling stride for feature extraction
	// (FXRZ uses 4).
	FeatureStride int
	// ForestCap limits NEstimators during training to keep scaled-down
	// experiments fast; 0 means no cap.
	ForestCap int
	// Workers bounds the CPU parallelism of forest training and
	// cross-validation: 0 uses every core, 1 forces the serial engine.
	// Training output is bit-identical for every value.
	Workers int
	// Seed drives all randomized components.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if len(c.ErrorBounds) == 0 {
		c.ErrorBounds = trainset.GeometricBounds(1e-4, 1e-1, 35)
	}
	if c.GridConfigs <= 0 {
		c.GridConfigs = 10
	}
	if c.KFolds <= 0 {
		c.KFolds = 3
	}
	if c.FeatureStride <= 0 {
		c.FeatureStride = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CollectStats reports the cost of a data-collection run.
type CollectStats struct {
	Duration       time.Duration
	Fields         int
	Samples        int
	CompressorRuns int
}

// TrainStats reports the cost and outcome of a training run.
type TrainStats struct {
	Duration   time.Duration
	Configs    int
	BestScore  float64
	BestConfig rf.Config
}

// Framework is an FXRZ instance bound to one compressor.
type Framework struct {
	codec  compressor.Codec
	cfg    Config
	set    trainset.Set
	forest *rf.Forest
}

// New returns an FXRZ framework for codec.
func New(codec compressor.Codec, cfg Config) *Framework {
	return &Framework{codec: codec, cfg: cfg.withDefaults()}
}

// Codec returns the underlying compressor.
func (fw *Framework) Codec() compressor.Codec { return fw.codec }

// TrainingSize returns the number of collected samples.
func (fw *Framework) TrainingSize() int { return fw.set.Len() }

// Collect runs FXRZ's data collection on the given fields: features via
// strided serial extraction, then a full compressor run per error bound.
func (fw *Framework) Collect(fields []*field.Field) (CollectStats, error) {
	start := time.Now()
	stats := CollectStats{Fields: len(fields)}
	for _, f := range fields {
		feat := features.ExtractSampled(f, fw.cfg.FeatureStride)
		for _, rel := range fw.cfg.ErrorBounds {
			eb := compressor.AbsBound(f, rel)
			stream, err := fw.codec.Compress(f, eb)
			if err != nil {
				return stats, fmt.Errorf("fxrz: collect %s at rel=%g: %w", f.Name, rel, err)
			}
			stats.CompressorRuns++
			ratio := compressor.Ratio(f, stream)
			if err := fw.set.Add(trainset.Sample{Features: feat, Ratio: ratio, RelEB: rel}); err != nil {
				return stats, err
			}
			stats.Samples++
		}
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// Train runs the randomized grid search from scratch (FXRZ has no warm
// start: every retrain regenerates candidate configurations and
// re-validates them) and fits the final forest with the winning
// configuration.
func (fw *Framework) Train() (TrainStats, error) {
	if fw.set.Len() == 0 {
		return TrainStats{}, errors.New("fxrz: no training data collected")
	}
	start := time.Now()
	X, y := fw.set.Matrix()
	res, err := gridsearch.Search(X, y, fw.cfg.GridConfigs, fw.cfg.KFolds, fw.cfg.Seed, fw.cfg.ForestCap, fw.cfg.Workers)
	if err != nil {
		return TrainStats{}, fmt.Errorf("fxrz: grid search: %w", err)
	}
	cfg := res.Config
	cfg.Workers = fw.cfg.Workers
	if fw.cfg.ForestCap > 0 && cfg.NEstimators > fw.cfg.ForestCap {
		cfg.NEstimators = fw.cfg.ForestCap
	}
	forest, err := rf.Train(X, y, cfg)
	if err != nil {
		return TrainStats{}, fmt.Errorf("fxrz: final fit: %w", err)
	}
	fw.forest = forest
	return TrainStats{
		Duration:   time.Since(start),
		Configs:    res.Evaluated,
		BestScore:  res.Score,
		BestConfig: res.Config,
	}, nil
}

// Trained reports whether Train has produced a model.
func (fw *Framework) Trained() bool { return fw.forest != nil }

// PredictErrorBound estimates the value-range-relative error bound that
// should achieve targetRatio on f. This is FXRZ's inference path: strided
// serial feature extraction plus a forest traversal.
func (fw *Framework) PredictErrorBound(f *field.Field, targetRatio float64) (float64, error) {
	if fw.forest == nil {
		return 0, errors.New("fxrz: model not trained")
	}
	if !(targetRatio > 0) {
		return 0, fmt.Errorf("fxrz: invalid target ratio %g", targetRatio)
	}
	feat := features.ExtractSampled(f, fw.cfg.FeatureStride)
	pred, err := fw.forest.Predict(trainset.Row(feat, targetRatio))
	if err != nil {
		return 0, err
	}
	return trainset.EBFromTarget(pred), nil
}

// CompressToRatio predicts the error bound for targetRatio and runs the
// compressor with it, returning the stream and the achieved ratio.
func (fw *Framework) CompressToRatio(f *field.Field, targetRatio float64) ([]byte, float64, error) {
	rel, err := fw.PredictErrorBound(f, targetRatio)
	if err != nil {
		return nil, 0, err
	}
	stream, err := fw.codec.Compress(f, compressor.AbsBound(f, rel))
	if err != nil {
		return nil, 0, err
	}
	return stream, compressor.Ratio(f, stream), nil
}
