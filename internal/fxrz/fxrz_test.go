package fxrz

import (
	"testing"

	"carol/internal/compressor"
	"carol/internal/dataset"
	"carol/internal/field"
	"carol/internal/stats"
	"carol/internal/szx"
	"carol/internal/trainset"
)

func trainFields(t *testing.T) []*field.Field {
	t.Helper()
	opts := dataset.Options{Nx: 32, Ny: 32, Nz: 16}
	var out []*field.Field
	for _, name := range []string{"density", "pressure", "viscosity"} {
		f, err := dataset.Generate("miranda", name, opts)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
	return out
}

func fastConfig() Config {
	return Config{
		ErrorBounds: trainset.GeometricBounds(1e-4, 1e-1, 12),
		GridConfigs: 2,
		KFolds:      3,
		ForestCap:   10,
		Seed:        7,
	}
}

func TestCollectTrainPredict(t *testing.T) {
	fw := New(szx.New(), fastConfig())
	fields := trainFields(t)
	cs, err := fw.Collect(fields)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Samples != 3*12 || cs.CompressorRuns != 3*12 {
		t.Fatalf("collect stats %+v", cs)
	}
	if fw.TrainingSize() != cs.Samples {
		t.Fatalf("TrainingSize %d", fw.TrainingSize())
	}
	ts, err := fw.Train()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Configs != 2 || !fw.Trained() {
		t.Fatalf("train stats %+v", ts)
	}

	// Predict on a held-out field and verify the achieved ratio lands in
	// the right neighborhood of the request.
	test, err := dataset.Generate("miranda", "velocityx", dataset.Options{Nx: 32, Ny: 32, Nz: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a realistic target: the ratio SZx actually achieves mid-sweep.
	midStream, err := fw.Codec().Compress(test, compressor.AbsBound(test, 1e-2))
	if err != nil {
		t.Fatal(err)
	}
	target := compressor.Ratio(test, midStream)
	_, achieved, err := fw.CompressToRatio(test, target)
	if err != nil {
		t.Fatal(err)
	}
	if a := stats.PctError(achieved, target); a > 60 {
		t.Fatalf("achieved %g for target %g (α=%.0f%%)", achieved, target, a)
	}
}

func TestPredictBeforeTrain(t *testing.T) {
	fw := New(szx.New(), fastConfig())
	f := trainFields(t)[0]
	if _, err := fw.PredictErrorBound(f, 10); err == nil {
		t.Fatal("untrained predict accepted")
	}
}

func TestTrainWithoutData(t *testing.T) {
	fw := New(szx.New(), fastConfig())
	if _, err := fw.Train(); err == nil {
		t.Fatal("train without data accepted")
	}
}

func TestPredictInvalidTarget(t *testing.T) {
	fw := New(szx.New(), fastConfig())
	fields := trainFields(t)
	if _, err := fw.Collect(fields[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.PredictErrorBound(fields[0], -5); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	fw := New(szx.New(), Config{})
	if len(fw.cfg.ErrorBounds) != 35 {
		t.Fatalf("default sweep has %d bounds", len(fw.cfg.ErrorBounds))
	}
	if fw.cfg.GridConfigs != 10 || fw.cfg.FeatureStride != 4 {
		t.Fatalf("defaults %+v", fw.cfg)
	}
}
