// Package archive implements a multi-field snapshot container: several
// named fields, each compressed with its own codec and error bound, in one
// self-describing byte stream. This is the on-disk artifact a fixed-ratio
// workflow produces — the whole simulation snapshot under one storage
// budget (use case 1 of the CAROL paper).
//
// Layout: magic, field count, then per field a metadata record (name,
// codec name, compressed length, original dims) followed by the codec
// stream. All integers are little-endian; lengths are varint-coded.
package archive

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"carol/internal/codecs"
	"carol/internal/compressor"
	"carol/internal/field"
	"carol/internal/pipeline"
	"carol/internal/safedec"
	"carol/internal/szp"
)

var magic = [4]byte{'C', 'A', 'R', '1'}

// maxFields bounds the field count a header may claim.
const maxFields = 1 << 20

// maxNameLen bounds field and codec name lengths.
const maxNameLen = 4096

// Entry is one archived field.
type Entry struct {
	// Name is the field's identifier within the archive.
	Name string
	// Codec is the compressor name the stream was produced with.
	Codec string
	// Stream is the compressed payload.
	Stream []byte
}

// Writer accumulates entries and serializes the archive.
type Writer struct {
	entries []Entry
	names   map[string]bool
}

// NewWriter returns an empty archive writer.
func NewWriter() *Writer {
	return &Writer{names: make(map[string]bool)}
}

// Add compresses f with the named codec at absolute bound eb and appends it.
func (w *Writer) Add(name, codecName string, f *field.Field, eb float64) error {
	codec, err := codecs.ByName(codecName)
	if err != nil {
		return err
	}
	stream, err := codec.Compress(f, eb)
	if err != nil {
		return fmt.Errorf("archive: compress %q: %w", name, err)
	}
	return w.AddRaw(Entry{Name: name, Codec: codecName, Stream: stream})
}

// AddPipeline compresses f block-parallel with the named codec at absolute
// bound eb and appends the resulting CPL1 pipeline container as the entry
// stream. Extraction auto-detects the container (see FieldLimited), so
// pipeline and plain entries mix freely within one archive.
func (w *Writer) AddPipeline(name, codecName string, f *field.Field, eb float64, workers int) error {
	codec, err := codecs.ByName(codecName)
	if err != nil {
		return err
	}
	p := pipeline.New(codec, pipeline.Options{Workers: workers})
	stream, err := p.Compress(f, eb)
	if err != nil {
		return fmt.Errorf("archive: compress %q: %w", name, err)
	}
	return w.AddRaw(Entry{Name: name, Codec: codecName, Stream: stream})
}

// AddRaw appends an already-compressed entry.
func (w *Writer) AddRaw(e Entry) error {
	if e.Name == "" || len(e.Name) > maxNameLen {
		return errors.New("archive: invalid entry name")
	}
	if w.names[e.Name] {
		return fmt.Errorf("archive: duplicate entry %q", e.Name)
	}
	if _, err := codecs.ByName(e.Codec); err != nil {
		return err
	}
	if len(e.Stream) == 0 {
		return fmt.Errorf("archive: empty stream for %q", e.Name)
	}
	w.names[e.Name] = true
	w.entries = append(w.entries, e)
	return nil
}

// Len returns the number of entries added.
func (w *Writer) Len() int { return len(w.entries) }

// Size returns the serialized archive size in bytes.
func (w *Writer) Size() int {
	n := 4 + binary.MaxVarintLen64
	for _, e := range w.entries {
		n += len(e.Name) + len(e.Codec) + len(e.Stream) + 3*binary.MaxVarintLen64
	}
	return n
}

// WriteTo serializes the archive.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var v [binary.MaxVarintLen64]byte
	putUv := func(x uint64) {
		n := binary.PutUvarint(v[:], x)
		buf.Write(v[:n])
	}
	putUv(uint64(len(w.entries)))
	for _, e := range w.entries {
		putUv(uint64(len(e.Name)))
		buf.WriteString(e.Name)
		putUv(uint64(len(e.Codec)))
		buf.WriteString(e.Codec)
		putUv(uint64(len(e.Stream)))
		buf.Write(e.Stream)
	}
	return buf.WriteTo(out)
}

// Archive is a parsed container.
type Archive struct {
	entries []Entry
	index   map[string]int
}

// Read parses an archive under the default safedec limits.
func Read(r io.Reader) (*Archive, error) {
	return ReadLimited(r, safedec.Default())
}

// ReadLimited parses an archive, refusing (with an error wrapping
// safedec.ErrLimit) containers whose claimed entry counts or stream lengths
// exceed lim.
func ReadLimited(r io.Reader, lim safedec.Limits) (*Archive, error) {
	lim = lim.Norm()
	br := bufioReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("archive: magic: %w: %w", safedec.ErrTruncated, err)
	}
	if m != magic {
		return nil, fmt.Errorf("archive: bad magic: %w", safedec.ErrCorrupt)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("archive: count: %w: %w", safedec.ErrCorrupt, err)
	}
	if count > maxFields {
		return nil, fmt.Errorf("archive: implausible field count %d: %w", count, safedec.ErrCorrupt)
	}
	if err := lim.Count("archive entries", int64(count)); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	a := &Archive{index: make(map[string]int, min(count, 1024))}
	for i := uint64(0); i < count; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("archive: entry %d name: %w", i, err)
		}
		codec, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("archive: entry %d codec: %w", i, err)
		}
		sLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("archive: entry %d stream length: %w", i, err)
		}
		if err := lim.Alloc("archive stream", int64(sLen)); err != nil {
			return nil, fmt.Errorf("archive: entry %d: %w", i, err)
		}
		stream, err := readAllN(br, sLen)
		if err != nil {
			return nil, fmt.Errorf("archive: entry %d stream: %w", i, err)
		}
		if _, dup := a.index[name]; dup {
			return nil, fmt.Errorf("archive: duplicate entry %q: %w", name, safedec.ErrCorrupt)
		}
		a.index[name] = len(a.entries)
		a.entries = append(a.entries, Entry{Name: name, Codec: codec, Stream: stream})
	}
	return a, nil
}

func min(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}

// readAllN reads exactly n bytes, growing the buffer in bounded steps so a
// hostile length claim costs at most one chunk of memory before the stream
// runs dry — never an upfront make([]byte, claimed).
func readAllN(r io.Reader, n uint64) ([]byte, error) {
	const step = 1 << 20
	buf := make([]byte, 0, min(n, step))
	for uint64(len(buf)) < n {
		grab := n - uint64(len(buf))
		if grab > step {
			grab = step
		}
		chunk := len(buf)
		buf = append(buf, make([]byte, grab)...)
		if _, err := io.ReadFull(r, buf[chunk:]); err != nil {
			return nil, fmt.Errorf("%w: %w", safedec.ErrTruncated, err)
		}
	}
	return buf, nil
}

func readString(br io.ByteReader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("%w: %w", safedec.ErrTruncated, err)
	}
	if n > maxNameLen {
		return "", fmt.Errorf("string too long: %w", safedec.ErrCorrupt)
	}
	buf := make([]byte, n)
	r, ok := br.(io.Reader)
	if !ok {
		return "", errors.New("reader does not support bulk reads")
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Names lists the entries in archive order.
func (a *Archive) Names() []string {
	out := make([]string, len(a.entries))
	for i, e := range a.entries {
		out[i] = e.Name
	}
	return out
}

// Entry returns the raw entry by name.
func (a *Archive) Entry(name string) (Entry, bool) {
	i, ok := a.index[name]
	if !ok {
		return Entry{}, false
	}
	return a.entries[i], true
}

// Field decompresses one entry under the default safedec limits.
func (a *Archive) Field(name string) (*field.Field, error) {
	return a.FieldLimited(name, safedec.Default())
}

// FieldLimited decompresses one entry, enforcing lim on the codec decode.
func (a *Archive) FieldLimited(name string, lim safedec.Limits) (*field.Field, error) {
	e, ok := a.Entry(name)
	if !ok {
		return nil, fmt.Errorf("archive: no entry %q", name)
	}
	codec, err := codecs.ByName(e.Codec)
	if err != nil {
		return nil, err
	}
	// Entries written by AddPipeline carry the CPL1 pipeline container
	// around the codec stream; detect it and decode block-parallel.
	if isPipeline(e.Stream) {
		codec = pipeline.New(codec, pipeline.Options{})
	}
	f, err := compressor.DecompressLimited(codec, e.Stream, lim)
	if err != nil {
		return nil, fmt.Errorf("archive: decompress %q: %w", name, err)
	}
	f.Name = e.Name
	return f, nil
}

// TotalCompressed returns the sum of entry stream sizes.
func (a *Archive) TotalCompressed() int {
	n := 0
	for _, e := range a.entries {
		n += len(e.Stream)
	}
	return n
}

// Ratio reports the overall compression ratio given the entries' original
// sizes (decompressing headers only would suffice, but decoding the header
// requires codec knowledge, so we parse each stream's common header).
func (a *Archive) Ratio() (float64, error) {
	var raw int64
	for _, e := range a.entries {
		h, _, err := headerOf(e)
		if err != nil {
			return 0, err
		}
		raw += int64(h.Nx) * int64(h.Ny) * int64(h.Nz) * 4
	}
	if a.TotalCompressed() == 0 {
		return 0, errors.New("archive: empty")
	}
	return float64(raw) / float64(a.TotalCompressed()), nil
}

// isPipeline reports whether a stream is a CPL1 pipeline container.
func isPipeline(stream []byte) bool {
	return len(stream) >= len(pipeline.Magic) && [4]byte(stream[:4]) == pipeline.Magic
}

func headerOf(e Entry) (compressor.Header, []byte, error) {
	// Pipeline containers carry the field dims in their own header; the
	// codec headers live per block inside the frames.
	if isPipeline(e.Stream) {
		if len(e.Stream) < 20 {
			return compressor.Header{}, nil, fmt.Errorf("archive: truncated pipeline container: %w", safedec.ErrTruncated)
		}
		return compressor.Header{
			Nx: int(binary.LittleEndian.Uint32(e.Stream[4:])),
			Ny: int(binary.LittleEndian.Uint32(e.Stream[8:])),
			Nz: int(binary.LittleEndian.Uint32(e.Stream[12:])),
		}, nil, nil
	}
	var want byte
	switch e.Codec {
	case "szx":
		want = compressor.MagicSZx
	case "zfp":
		want = compressor.MagicZFP
	case "sz3":
		want = compressor.MagicSZ3
	case "sperr":
		want = compressor.MagicSPERR
	case "szp":
		want = szp.MagicSZP
	default:
		return compressor.Header{}, nil, fmt.Errorf("archive: unknown codec %q", e.Codec)
	}
	return compressor.ParseHeader(e.Stream, want)
}

// bufioReader adapts any reader into a ByteReader without double-buffering
// bytes.Reader and friends.
type byteReader interface {
	io.Reader
	io.ByteReader
}

func bufioReader(r io.Reader) byteReader {
	if br, ok := r.(byteReader); ok {
		return br
	}
	return &simpleByteReader{r: r}
}

type simpleByteReader struct {
	r io.Reader
}

func (s *simpleByteReader) Read(p []byte) (int, error) { return s.r.Read(p) }

func (s *simpleByteReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(s.r, b[:])
	return b[0], err
}
