package archive

import (
	"bytes"
	"testing"

	"carol/internal/fuzzseed"
	"carol/internal/safedec"
)

// archiveFuzzSeeds builds the seed corpus for FuzzArchiveRead: a valid
// two-entry archive, truncations of it, and a lying stream length.
func archiveFuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	w := NewWriter()
	for _, fld := range testFields(t)[:2] {
		if err := w.Add(fld.Name, "szx", fld, 1e-2); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	return [][]byte{
		valid,
		valid[:len(valid)/2],
		valid[:len(magic)],
		hostileArchive(1<<31, 100),
		[]byte("CARL"),
	}
}

// TestWriteFuzzCorpus regenerates or validates the checked-in seed corpus.
func TestWriteFuzzCorpus(t *testing.T) {
	fuzzseed.Check(t, ".", map[string][][]byte{"FuzzArchiveRead": archiveFuzzSeeds(t)})
}

// FuzzArchiveRead feeds arbitrary bytes through the container reader: every
// outcome must be a classified error or a valid archive, never a panic, and
// allocations must respect the supplied limits even when entry headers lie.
func FuzzArchiveRead(f *testing.F) {
	for _, s := range archiveFuzzSeeds(f) {
		f.Add(s)
	}

	lim := safedec.Limits{MaxElements: 1 << 18, MaxAlloc: 1 << 24, MaxCount: 1 << 10}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadLimited(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		for _, name := range a.Names() {
			_, _ = a.FieldLimited(name, lim)
		}
	})
}
