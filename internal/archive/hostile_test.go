package archive

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"carol/internal/safedec"
)

// hostileArchive builds archive bytes claiming one entry with the given
// stream length but carrying only `actual` payload bytes.
func hostileArchive(claimed uint64, actual int) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var v [binary.MaxVarintLen64]byte
	putUv := func(x uint64) { buf.Write(v[:binary.PutUvarint(v[:], x)]) }
	putUv(1) // one entry
	putUv(1)
	buf.WriteString("a")
	putUv(3)
	buf.WriteString("szx")
	putUv(claimed)
	buf.Write(make([]byte, actual))
	return buf.Bytes()
}

// TestHostileStreamLengthNoUpfrontAlloc is the regression test for
// allocation-before-validation on the entry stream length: a claimed
// multi-GiB length used to become make([]byte, claimed) before a single
// payload byte was read. The reader now grows in bounded steps, so a lying
// length costs at most one step before the stream runs dry.
func TestHostileStreamLengthNoUpfrontAlloc(t *testing.T) {
	start := time.Now()
	_, err := Read(bytes.NewReader(hostileArchive(1<<31, 100)))
	if err == nil {
		t.Fatal("lying stream length accepted")
	}
	if !errors.Is(err, safedec.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// Generous ceiling: the decode must fail from the missing bytes, not
	// after zeroing gigabytes.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("rejection took %v", d)
	}
}

// TestStreamLengthOverAllocLimit: lengths beyond Limits.MaxAlloc are
// refused as limit errors before any read.
func TestStreamLengthOverAllocLimit(t *testing.T) {
	lim := safedec.Limits{MaxAlloc: 1 << 20}
	_, err := ReadLimited(bytes.NewReader(hostileArchive(1<<21, 64)), lim)
	if !errors.Is(err, safedec.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

// TestEntryCountOverCountLimit: entry counts beyond Limits.MaxCount are
// refused.
func TestEntryCountOverCountLimit(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var v [binary.MaxVarintLen64]byte
	buf.Write(v[:binary.PutUvarint(v[:], 1<<16)])
	lim := safedec.Limits{MaxCount: 1 << 10}
	_, err := ReadLimited(&buf, lim)
	if !errors.Is(err, safedec.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

// TestFieldLimited threads decode limits through entry decompression.
func TestFieldLimited(t *testing.T) {
	w := NewWriter()
	f := testFields(t)[0]
	if err := w.Add("density", "szx", f, 1e-3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.FieldLimited("density", safedec.Default()); err != nil {
		t.Fatal(err)
	}
	_, err = a.FieldLimited("density", safedec.Limits{MaxElements: 100})
	if !errors.Is(err, safedec.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}
