package archive

import (
	"bytes"
	"testing"

	"carol/internal/compressor"
	"carol/internal/dataset"
	"carol/internal/field"
)

func testFields(t testing.TB) []*field.Field {
	t.Helper()
	fields, err := dataset.GenerateAll("miranda", dataset.Options{Nx: 20, Ny: 20, Nz: 12})
	if err != nil {
		t.Fatal(err)
	}
	return fields[:4]
}

func TestRoundTrip(t *testing.T) {
	fields := testFields(t)
	w := NewWriter()
	codecNames := []string{"szx", "zfp", "sz3", "sperr"}
	for i, f := range fields {
		eb := compressor.AbsBound(f, 1e-3)
		if err := w.Add(f.Name, codecNames[i], f, eb); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Names()) != 4 {
		t.Fatalf("Names = %v", a.Names())
	}
	for i, f := range fields {
		g, err := a.Field(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		eb := compressor.AbsBound(f, 1e-3)
		if err := compressor.CheckBound(f, g, eb); err != nil {
			t.Fatalf("%s via %s: %v", f.Name, codecNames[i], err)
		}
	}
	ratio, err := a.Ratio()
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1 {
		t.Fatalf("archive ratio %g", ratio)
	}
}

func TestPipelineEntryRoundTrip(t *testing.T) {
	fields := testFields(t)
	w := NewWriter()
	f := fields[0]
	if err := w.AddPipeline(f.Name, "sz3", f, compressor.AbsBound(f, 1e-3), 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("plain", "sz3", fields[1], compressor.AbsBound(fields[1], 1e-3)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := a.Field(f.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.CheckBound(f, g, compressor.AbsBound(f, 1e-3)); err != nil {
		t.Fatalf("pipeline entry: %v", err)
	}
	if _, err := a.Field("plain"); err != nil {
		t.Fatalf("plain entry alongside pipeline entry: %v", err)
	}
	// Ratio needs the header of every entry, including CPL1 containers.
	ratio, err := a.Ratio()
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1 {
		t.Fatalf("archive ratio %g", ratio)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	f := testFields(t)[0]
	w := NewWriter()
	eb := compressor.AbsBound(f, 1e-2)
	if err := w.Add("x", "szx", f, eb); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("x", "szx", f, eb); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestAddValidation(t *testing.T) {
	f := testFields(t)[0]
	w := NewWriter()
	if err := w.Add("x", "nope", f, 0.1); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if err := w.AddRaw(Entry{Name: "", Codec: "szx", Stream: []byte{1}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := w.AddRaw(Entry{Name: "y", Codec: "szx", Stream: nil}); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestMissingEntry(t *testing.T) {
	f := testFields(t)[0]
	w := NewWriter()
	if err := w.Add("a", "szx", f, compressor.AbsBound(f, 1e-2)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Field("b"); err == nil {
		t.Fatal("missing entry returned")
	}
	if _, ok := a.Entry("b"); ok {
		t.Fatal("missing Entry returned")
	}
}

func TestReadErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		append([]byte("CAR1"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01), // huge count
		append([]byte("CAR1"), 2, 1, 'a'),                                                  // truncated entry
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSizeEstimate(t *testing.T) {
	f := testFields(t)[0]
	w := NewWriter()
	if err := w.Add("a", "szx", f, compressor.AbsBound(f, 1e-2)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > w.Size() {
		t.Fatalf("actual %d exceeds estimate %d", buf.Len(), w.Size())
	}
}

func TestSZPEntry(t *testing.T) {
	f := testFields(t)[0]
	w := NewWriter()
	if err := w.Add("p", "szp", f, compressor.AbsBound(f, 1e-2)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Field("p"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Ratio(); err != nil {
		t.Fatal(err)
	}
}
