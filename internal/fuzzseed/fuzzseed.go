// Package fuzzseed writes seed inputs in the Go fuzzing corpus file format,
// so packages can check their fuzz seeds into testdata/fuzz/<Target>/ and
// have them replayed by plain `go test` runs.
package fuzzseed

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// corpusVersion is the header line the Go toolchain expects in corpus files.
const corpusVersion = "go test fuzz v1"

// WriteCorpus writes each seed as testdata/fuzz/<target>/seed-NN relative to
// dir, replacing any previous seed-NN files. Only single-[]byte-argument
// fuzz targets are supported, which is all this repo uses.
func WriteCorpus(dir, target string, seeds [][]byte) error {
	out := filepath.Join(dir, "testdata", "fuzz", target)
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for i, s := range seeds {
		body := fmt.Sprintf("%s\n[]byte(%s)\n", corpusVersion, strconv.Quote(string(s)))
		name := filepath.Join(out, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Regenerate reports whether corpus regeneration was requested via the
// CAROL_WRITE_CORPUS environment variable.
func Regenerate() bool {
	return os.Getenv("CAROL_WRITE_CORPUS") != ""
}

// Check either regenerates the corpora for the given targets (when
// CAROL_WRITE_CORPUS is set) or asserts each target's checked-in corpus
// directory exists and is non-empty, so a deleted corpus fails loudly in CI
// instead of silently shrinking fuzz coverage.
func Check(t TB, dir string, targets map[string][][]byte) {
	t.Helper()
	for target, seeds := range targets {
		if Regenerate() {
			if err := WriteCorpus(dir, target, seeds); err != nil {
				t.Fatalf("%s: %v", target, err)
			}
			continue
		}
		ents, err := os.ReadDir(filepath.Join(dir, "testdata", "fuzz", target))
		if err != nil || len(ents) == 0 {
			t.Fatalf("%s: missing checked-in corpus (regenerate with CAROL_WRITE_CORPUS=1): %v", target, err)
		}
	}
}

// TB is the subset of testing.TB this package needs; declared locally so the
// non-test package does not import "testing".
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}
