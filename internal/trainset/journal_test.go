package trainset

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"carol/internal/features"
)

func rec(i int) Record {
	return Record{
		Features: features.Vector{Mean: float64(i), Range: 1 + float64(i), MND: 0.1, MLD: 0.2, MSD: 0.3},
		Ratio:    10 + float64(i),
		RelEB:    1e-3,
	}
}

func TestJournalAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "szx.journal")
	j, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != 10 {
		t.Fatalf("mirror len %d", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("read %d records", len(got))
	}
	for i, r := range got {
		want := rec(i)
		if math.Float64bits(r.Features.Mean) != math.Float64bits(want.Features.Mean) ||
			math.Float64bits(r.Ratio) != math.Float64bits(want.Ratio) ||
			math.Float64bits(r.RelEB) != math.Float64bits(want.RelEB) {
			t.Fatalf("record %d round trip: %+v != %+v", i, r, want)
		}
	}
	// Newest-N read.
	newest, err := ReadJournal(path, 3)
	if err != nil || len(newest) != 3 {
		t.Fatalf("capped read: %d, %v", len(newest), err)
	}
	if newest[2].Features.Mean != rec(9).Features.Mean { //carol:allow floateq exact round-trip values
		t.Fatal("capped read did not keep newest records")
	}
}

func TestJournalReopenContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "szx.journal")
	j, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j, err = OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 5 {
		t.Fatalf("reopened mirror len %d", j.Len())
	}
	for i := 5; i < 8; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	got, err := ReadJournal(path, 0)
	if err != nil || len(got) != 8 {
		t.Fatalf("after reopen: %d records, %v", len(got), err)
	}
}

// TestJournalTornTail simulates a crash mid-append: the writer recovers by
// truncating, the reader just stops — and neither sees the torn record.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "szx.journal")
	j, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Tear the last record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	// Reader: stops at the tear, file untouched.
	got, err := ReadJournal(path, 0)
	if err != nil || len(got) != 3 {
		t.Fatalf("reader on torn tail: %d records, %v", len(got), err)
	}
	if st, _ := os.Stat(path); st.Size() != int64(len(torn)) {
		t.Fatal("reader modified the journal file")
	}
	// Writer: truncates the tear and appends cleanly after it.
	j, err = OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("writer recovered %d records", j.Len())
	}
	if err := j.Append(rec(99)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got, err = ReadJournal(path, 0)
	if err != nil || len(got) != 4 {
		t.Fatalf("after recovery: %d records, %v", len(got), err)
	}
	if got[3].Ratio != rec(99).Ratio { //carol:allow floateq exact round-trip values
		t.Fatal("post-recovery append lost")
	}
}

// TestJournalCorruptMidFile flips a byte inside an early record: parsing
// must stop there (framing after a corrupt record is unrecoverable) and
// the writer must truncate everything from the corruption point.
func TestJournalCorruptMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "szx.journal")
	j, _ := OpenJournal(path, 100)
	for i := 0; i < 6; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, _ := os.ReadFile(path)
	data[len(JournalMagic)+2*journalRecordLen+10] ^= 0xFF // inside record 2
	os.WriteFile(path, data, 0o644)
	got, err := ReadJournal(path, 0)
	if err != nil || len(got) != 2 {
		t.Fatalf("corrupt mid-file: %d records, %v", len(got), err)
	}
	j, err = OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Fatalf("writer kept %d records past corruption", j.Len())
	}
}

func TestJournalRetentionCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "szx.journal")
	const capacity = 50
	j, err := OpenJournal(path, capacity)
	if err != nil {
		t.Fatal(err)
	}
	// Push well past capacity + slack to force at least one compaction.
	total := capacity + journalSlack + 200
	for i := 0; i < total; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != capacity {
		t.Fatalf("mirror len %d, want %d", j.Len(), capacity)
	}
	j.Close()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if maxSize := int64(len(JournalMagic) + (capacity+journalSlack+1)*journalRecordLen); st.Size() > maxSize {
		t.Fatalf("journal file %d bytes, compaction cap %d", st.Size(), maxSize)
	}
	got, err := ReadJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The newest record must be the last appended; the oldest surviving
	// record must be newer than everything evicted.
	if got[len(got)-1].Ratio != rec(total-1).Ratio { //carol:allow floateq exact round-trip values
		t.Fatal("newest record lost in compaction")
	}
	if got[0].Features.Mean < float64(total-capacity-journalSlack-1) {
		t.Fatalf("compaction kept too-old record mean=%g", got[0].Features.Mean)
	}
}

func TestJournalRejectsInvalid(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "x.journal"), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Ratio: -1, RelEB: 1e-3}); err == nil {
		t.Fatal("negative ratio accepted")
	}
	if err := j.Append(Record{Ratio: 10, RelEB: math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestReadJournalMissingAndForeign(t *testing.T) {
	dir := t.TempDir()
	got, err := ReadJournal(filepath.Join(dir, "nope.journal"), 0)
	if err != nil || got != nil {
		t.Fatalf("missing journal: %v, %v", got, err)
	}
	foreign := filepath.Join(dir, "bad.journal")
	os.WriteFile(foreign, []byte("NOTAJRNL123"), 0o644)
	if _, err := ReadJournal(foreign, 0); err == nil {
		t.Fatal("foreign file accepted")
	}
	if _, err := OpenJournal(foreign, 10); err == nil {
		t.Fatal("writer accepted foreign file")
	}
}

func TestHarvester(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "harvest")
	h := NewHarvester(dir, 100)
	if err := h.Record("szx", rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := h.Record("sz3", rec(2)); err != nil {
		t.Fatal(err)
	}
	if err := h.Record("szx", rec(3)); err != nil {
		t.Fatal(err)
	}
	if err := h.Record("../evil", rec(4)); err == nil {
		t.Fatal("path-traversal codec name accepted")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	codecs, err := ListJournals(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(codecs) != 2 || codecs[0] != "sz3" || codecs[1] != "szx" {
		t.Fatalf("journals %v", codecs)
	}
	got, err := ReadJournal(JournalPath(dir, "szx"), 0)
	if err != nil || len(got) != 2 {
		t.Fatalf("szx journal: %d, %v", len(got), err)
	}
	if none, err := ListJournals(filepath.Join(dir, "missing")); err != nil || none != nil {
		t.Fatalf("missing dir: %v, %v", none, err)
	}
}

// TestSetCapacityEviction is the regression test for the bounded Set:
// dedup drops exact repeats, eviction is strictly oldest-first, and the
// unbounded zero value keeps its append-log behaviour.
func TestSetCapacityEviction(t *testing.T) {
	mk := func(i int) Sample {
		return Sample{Features: features.Vector{Mean: float64(i)}, Ratio: 10, RelEB: 1e-3}
	}
	var s Set
	s.SetCapacity(3)
	for i := 0; i < 3; i++ {
		if err := s.Add(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate: dropped, no eviction.
	if err := s.Add(mk(1)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Samples()[0].Features.Mean != 0 { //carol:allow floateq exact constructed values
		t.Fatalf("duplicate add changed set: len=%d", s.Len())
	}
	// Overflow: evicts sample 0, keeps 1,2,3 in order.
	if err := s.Add(mk(3)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	for i, want := range []float64{1, 2, 3} {
		if got := s.Samples()[i].Features.Mean; got != want { //carol:allow floateq exact constructed values
			t.Fatalf("slot %d = %g, want %g (eviction order broken)", i, got, want)
		}
	}
	// An evicted sample may be re-added (it is no longer "seen").
	if err := s.Add(mk(0)); err != nil {
		t.Fatal(err)
	}
	if got := s.Samples()[2].Features.Mean; got != 0 { //carol:allow floateq exact constructed values
		t.Fatalf("re-add of evicted sample landed at %g", got)
	}
	// Heavy churn keeps memory bounded near capacity.
	for i := 0; i < 10_000; i++ {
		if err := s.Add(mk(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 || cap(s.Samples()) > 6 {
		t.Fatalf("churn: len=%d cap=%d", s.Len(), cap(s.Samples()))
	}
	// SetCapacity on a populated set dedups then trims oldest-first.
	var p Set
	for _, i := range []int{5, 6, 5, 7, 8} {
		if err := p.Add(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.SetCapacity(2)
	if p.Len() != 2 ||
		p.Samples()[0].Features.Mean != 7 || //carol:allow floateq exact constructed values
		p.Samples()[1].Features.Mean != 8 { //carol:allow floateq exact constructed values
		t.Fatalf("SetCapacity trim: %+v", p.Samples())
	}
	// Merge routes through dedup/eviction on bounded sets.
	var q Set
	for _, i := range []int{8, 9} {
		if err := q.Add(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Merge(&q)
	if p.Len() != 2 ||
		p.Samples()[0].Features.Mean != 8 || //carol:allow floateq exact constructed values
		p.Samples()[1].Features.Mean != 9 { //carol:allow floateq exact constructed values
		t.Fatalf("bounded merge: %+v", p.Samples())
	}
	// Unbounding restores plain append (duplicates allowed again).
	p.SetCapacity(0)
	for i := 0; i < 3; i++ {
		if err := p.Add(mk(42)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 5 {
		t.Fatalf("unbounded len %d", p.Len())
	}
}
