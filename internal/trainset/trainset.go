// Package trainset defines the training-sample representation shared by the
// FXRZ baseline and the CAROL framework: one sample per (field, error bound)
// pair, mapping the field's compressibility features plus the achieved
// compression ratio to the error bound that produced it.
//
// Both frameworks train the regression model on log-scaled quantities:
// compression ratios and relative error bounds span several decades, and the
// log transform makes the mapping nearly piecewise-linear, which regression
// trees approximate well.
package trainset

import (
	"errors"
	"math"

	"carol/internal/features"
)

// Sample is one training observation.
type Sample struct {
	Features features.Vector
	// Ratio is the (measured or estimated) compression ratio.
	Ratio float64
	// RelEB is the value-range-relative error bound that produced Ratio.
	RelEB float64
}

// Set is an appendable collection of samples. The zero value is an
// unbounded plain append log (the offline training path). SetCapacity
// turns it into a bounded, deduplicating buffer with oldest-first
// eviction — the shape the harvest pipeline needs so served-traffic
// collection can never grow memory without bound.
type Set struct {
	samples []Sample
	// capacity > 0 bounds the set; seen is non-nil exactly then and holds
	// every sample currently in the buffer for O(1) dedup.
	capacity int
	seen     map[Sample]struct{}
}

// SetCapacity bounds the set to at most n samples, deduplicating exact
// repeats and evicting the oldest sample when a new distinct one arrives
// at capacity. Existing contents are deduplicated (first occurrence kept)
// and then trimmed oldest-first to fit. n <= 0 removes the bound and the
// dedup behaviour.
func (s *Set) SetCapacity(n int) {
	if n <= 0 {
		s.capacity = 0
		s.seen = nil
		return
	}
	s.capacity = n
	s.seen = make(map[Sample]struct{})
	kept := s.samples[:0]
	for _, sm := range s.samples {
		if _, dup := s.seen[sm]; dup {
			continue
		}
		s.seen[sm] = struct{}{}
		kept = append(kept, sm)
	}
	s.samples = kept
	for len(s.samples) > n {
		s.evictOldest()
	}
}

// Capacity returns the configured bound (0 = unbounded).
func (s *Set) Capacity() int { return s.capacity }

func (s *Set) evictOldest() {
	delete(s.seen, s.samples[0])
	s.samples = s.samples[1:]
	// The front-trimmed backing array leaks forward; compact once it has
	// drifted well past the bound so memory stays O(capacity).
	if cap(s.samples) > 2*s.capacity {
		s.samples = append(make([]Sample, 0, s.capacity), s.samples...)
	}
}

// Add appends a sample, rejecting non-positive ratios or bounds. On a
// bounded set an exact duplicate is dropped silently and an overflowing
// add evicts the oldest sample first.
func (s *Set) Add(sm Sample) error {
	if !(sm.Ratio > 0) || !(sm.RelEB > 0) {
		return errors.New("trainset: ratio and relative error bound must be positive")
	}
	if s.seen != nil {
		if _, dup := s.seen[sm]; dup {
			return nil
		}
		for len(s.samples) >= s.capacity {
			s.evictOldest()
		}
		s.seen[sm] = struct{}{}
	}
	s.samples = append(s.samples, sm)
	return nil
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.samples) }

// Samples returns the underlying slice (not a copy).
func (s *Set) Samples() []Sample { return s.samples }

// Merge appends all samples of other. On a bounded set every sample goes
// through the dedup/eviction path; invalid samples are skipped.
func (s *Set) Merge(other *Set) {
	if s.seen != nil {
		for _, sm := range other.samples {
			_ = s.Add(sm) // invalid samples (zero value, etc.) are skipped
		}
		return
	}
	s.samples = append(s.samples, other.samples...)
}

// InputDim is the model input dimensionality: the five features plus the
// log-ratio.
const InputDim = features.Count + 1

// Row converts a feature vector and a target compression ratio into a model
// input row.
func Row(v features.Vector, ratio float64) []float64 {
	return append(v.Slice(), math.Log10(ratio))
}

// Matrix converts the set into (X, y) for rf.Train: inputs are the feature
// vector plus log10(ratio); the target is log10(relative error bound).
func (s *Set) Matrix() (X [][]float64, y []float64) {
	X = make([][]float64, len(s.samples))
	y = make([]float64, len(s.samples))
	for i, sm := range s.samples {
		X[i] = Row(sm.Features, sm.Ratio)
		y[i] = math.Log10(sm.RelEB)
	}
	return X, y
}

// EBFromTarget converts a model prediction (log10 relative error bound)
// back into a relative error bound, clamped to a sane range.
func EBFromTarget(pred float64) float64 {
	eb := math.Pow(10, pred)
	if eb < 1e-12 {
		eb = 1e-12
	}
	if eb > 1 {
		eb = 1
	}
	return eb
}

// GeometricBounds returns n relative error bounds spread geometrically over
// [lo, hi] — the sweep both frameworks use during data collection (the
// paper samples 35 bounds).
func GeometricBounds(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(hi/lo, t)
	}
	return out
}
