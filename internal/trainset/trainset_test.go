package trainset

import (
	"math"
	"testing"

	"carol/internal/features"
)

func TestAddValidation(t *testing.T) {
	var s Set
	if err := s.Add(Sample{Ratio: 0, RelEB: 1e-3}); err == nil {
		t.Fatal("zero ratio accepted")
	}
	if err := s.Add(Sample{Ratio: 10, RelEB: 0}); err == nil {
		t.Fatal("zero bound accepted")
	}
	if err := s.Add(Sample{Ratio: 10, RelEB: 1e-3}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestMatrixShapeAndScaling(t *testing.T) {
	var s Set
	v := features.Vector{Mean: 1, Range: 2, MND: 3, MLD: 4, MSD: 5}
	if err := s.Add(Sample{Features: v, Ratio: 100, RelEB: 1e-3}); err != nil {
		t.Fatal(err)
	}
	X, y := s.Matrix()
	if len(X) != 1 || len(X[0]) != InputDim || len(y) != 1 {
		t.Fatalf("matrix shape %dx%d / %d", len(X), len(X[0]), len(y))
	}
	if X[0][5] != 2 { // log10(100)
		t.Fatalf("log ratio = %g", X[0][5])
	}
	if y[0] != -3 { // log10(1e-3)
		t.Fatalf("target = %g", y[0])
	}
}

func TestRowMatchesMatrix(t *testing.T) {
	v := features.Vector{Mean: 1, Range: 2, MND: 3, MLD: 4, MSD: 5}
	row := Row(v, 100)
	if len(row) != InputDim || row[5] != 2 || row[0] != 1 {
		t.Fatalf("Row = %v", row)
	}
}

func TestEBFromTargetClamps(t *testing.T) {
	if got := EBFromTarget(-3); math.Abs(got-1e-3) > 1e-15 {
		t.Fatalf("EBFromTarget(-3) = %g", got)
	}
	if EBFromTarget(-100) != 1e-12 {
		t.Fatal("low clamp missing")
	}
	if EBFromTarget(5) != 1 {
		t.Fatal("high clamp missing")
	}
}

func TestMerge(t *testing.T) {
	var a, b Set
	if err := a.Add(Sample{Ratio: 1, RelEB: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(Sample{Ratio: 2, RelEB: 0.5}); err != nil {
		t.Fatal(err)
	}
	a.Merge(&b)
	if a.Len() != 2 {
		t.Fatalf("merged Len = %d", a.Len())
	}
}

func TestGeometricBounds(t *testing.T) {
	b := GeometricBounds(1e-4, 1e-1, 35)
	if len(b) != 35 {
		t.Fatalf("len = %d", len(b))
	}
	if math.Abs(b[0]-1e-4) > 1e-15 || math.Abs(b[34]-1e-1) > 1e-12 {
		t.Fatalf("endpoints %g, %g", b[0], b[34])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatal("not increasing")
		}
	}
	if got := GeometricBounds(1e-3, 1e-1, 1); len(got) != 1 || got[0] != 1e-3 {
		t.Fatalf("degenerate case: %v", got)
	}
}
