package trainset

// The harvest journal: a bounded, crash-safe, append-only on-disk log of
// served-traffic training observations, one file per codec
// (<dir>/<codec>.journal). carolserve appends one record per compression
// whose actual ratio it measured; carolretrain reads the journals back as
// training/holdout data (DESIGN.md §17).
//
// Layout: an 8-byte magic, then length-framed records —
//
//	u32 payload length | payload | u32 crc32(payload)
//
// with a fixed 56-byte payload of eight little-endian float64 bit
// patterns: the five features, the measured compression ratio, and the
// relative error bound that produced it (wire slot 8 is reserved/zero).
// Appends are not fsynced: crash safety is torn-tail *tolerance*, not
// durability — a parse stops cleanly at the first short or CRC-failing
// record, so a crash mid-append costs at most the records since the last
// compaction, never the file.
//
// Concurrency contract: exactly one writer (the serving process) owns a
// journal file via OpenJournal, which truncates any torn tail in place.
// Readers (retrain) must use ReadJournal, which stops at the first bad
// record WITHOUT truncating — truncating from a second process would race
// the live writer's appends.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"carol/internal/features"
)

// JournalMagic identifies a harvest journal file; the trailing 1 is the
// format generation.
const JournalMagic = "CAROLJN1"

const (
	journalPayloadLen = 8 * 8                     // eight f64 slots
	journalRecordLen  = 4 + journalPayloadLen + 4 // len + payload + crc
	// journalSlack is how many records past the retention cap the file may
	// grow before it is compacted (rewritten with only the newest cap
	// records). Amortizes compaction to once per slack appends.
	journalSlack = 1024
	// DefaultJournalCap bounds a journal to this many records when the
	// caller passes no explicit capacity.
	DefaultJournalCap = 100_000
)

// Record is one harvested observation: the features of a served field,
// the compression ratio actually achieved, and the value-range-relative
// error bound that produced it.
type Record struct {
	Features features.Vector
	Ratio    float64
	RelEB    float64
}

// Sample converts the record to its training-set form.
func (r Record) Sample() Sample {
	return Sample{Features: r.Features, Ratio: r.Ratio, RelEB: r.RelEB}
}

func (r Record) valid() bool {
	for _, v := range append(r.Features.Slice(), r.Ratio, r.RelEB) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return r.Ratio > 0 && r.RelEB > 0
}

func (r Record) encode(dst []byte) []byte {
	var payload [journalPayloadLen]byte
	slots := append(r.Features.Slice(), r.Ratio, r.RelEB, 0)
	for i, v := range slots {
		binary.LittleEndian.PutUint64(payload[i*8:], math.Float64bits(v))
	}
	dst = binary.LittleEndian.AppendUint32(dst, journalPayloadLen)
	dst = append(dst, payload[:]...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload[:]))
}

// parseJournal walks data (already past the magic) and returns every
// well-formed record plus the byte offset where the good prefix ends.
// Parsing stops — without error — at the first torn, CRC-failing, or
// semantically invalid record: everything after a corruption point is
// unrecoverable framing-wise.
func parseJournal(data []byte, base int) ([]Record, int) {
	var out []Record
	good := base
	for {
		rest := data[good-base:]
		if len(rest) < journalRecordLen {
			return out, good
		}
		if binary.LittleEndian.Uint32(rest) != journalPayloadLen {
			return out, good
		}
		payload := rest[4 : 4+journalPayloadLen]
		if binary.LittleEndian.Uint32(rest[4+journalPayloadLen:]) != crc32.ChecksumIEEE(payload) {
			return out, good
		}
		var slots [8]float64
		for i := range slots {
			slots[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
		rec := Record{
			Features: features.Vector{Mean: slots[0], Range: slots[1], MND: slots[2], MLD: slots[3], MSD: slots[4]},
			Ratio:    slots[5],
			RelEB:    slots[6],
		}
		if !rec.valid() {
			return out, good
		}
		out = append(out, rec)
		good += journalRecordLen
	}
}

// Journal is the writer handle over one codec's harvest file. Safe for
// concurrent Append from multiple goroutines; see the package-level
// concurrency contract for the single-process ownership rule.
type Journal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	capacity int
	records  []Record // newest-last in-memory mirror, len <= capacity
	onDisk   int      // records currently in the file
}

// OpenJournal opens (creating if needed) the journal at path for
// appending, recovering from any torn tail by truncating the file to its
// last well-formed record. capacity <= 0 uses DefaultJournalCap. The
// newest capacity records are mirrored in memory.
func OpenJournal(path string, capacity int) (*Journal, error) {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	j := &Journal{path: path, capacity: capacity}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, fmt.Errorf("trainset: create journal: %w", err)
		}
		if _, err := f.Write([]byte(JournalMagic)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("trainset: write journal magic: %w", err)
		}
		j.f = f
		return j, nil
	case err != nil:
		return nil, fmt.Errorf("trainset: open journal: %w", err)
	}
	if len(data) < len(JournalMagic) || string(data[:len(JournalMagic)]) != JournalMagic {
		return nil, fmt.Errorf("trainset: %s is not a harvest journal", path)
	}
	records, good := parseJournal(data[len(JournalMagic):], len(JournalMagic))
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trainset: open journal: %w", err)
	}
	if good < len(data) {
		// Torn or corrupt tail from a previous crash: drop it. Only the
		// owning writer may do this.
		if err := f.Truncate(int64(good)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("trainset: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("trainset: seek journal: %w", err)
	}
	j.f = f
	j.onDisk = len(records)
	if len(records) > capacity {
		records = records[len(records)-capacity:]
	}
	j.records = append([]Record(nil), records...)
	return j, nil
}

// Append writes one record. The in-memory mirror keeps only the newest
// capacity records; once the file itself has outgrown capacity by the
// compaction slack it is rewritten (tmp + fsync + rename) with just the
// mirror's contents.
func (j *Journal) Append(rec Record) error {
	if !rec.valid() {
		return errors.New("trainset: invalid journal record")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("trainset: journal closed")
	}
	if _, err := j.f.Write(rec.encode(make([]byte, 0, journalRecordLen))); err != nil {
		return fmt.Errorf("trainset: journal append: %w", err)
	}
	j.onDisk++
	j.records = append(j.records, rec)
	if len(j.records) > j.capacity {
		j.records = j.records[1:]
		if cap(j.records) > 2*j.capacity {
			j.records = append(make([]Record, 0, j.capacity), j.records...)
		}
	}
	if j.onDisk > j.capacity+journalSlack {
		return j.compactLocked()
	}
	return nil
}

// compactLocked rewrites the file with only the mirrored (newest) records.
func (j *Journal) compactLocked() error {
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("trainset: journal compact: %w", err)
	}
	buf := make([]byte, 0, len(JournalMagic)+len(j.records)*journalRecordLen)
	buf = append(buf, JournalMagic...)
	for _, rec := range j.records {
		buf = rec.encode(buf)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("trainset: journal compact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("trainset: journal compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("trainset: journal compact close: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("trainset: journal compact rename: %w", err)
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("trainset: journal reopen: %w", err)
	}
	_ = old.Close()
	j.f = nf
	j.onDisk = len(j.records)
	return nil
}

// Len returns the number of records in the in-memory mirror.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.records)
}

// Records returns a copy of the in-memory mirror, oldest first.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.records...)
}

// Sync flushes appended records to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// ReadJournal reads the journal at path without taking ownership: it
// stops at the first bad record and never truncates (the live writer may
// be mid-append there). A missing file returns (nil, nil) — no traffic
// harvested yet is not an error. capacity <= 0 returns every record;
// otherwise only the newest capacity records.
func ReadJournal(path string, capacity int) ([]Record, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trainset: read journal: %w", err)
	}
	if len(data) < len(JournalMagic) || string(data[:len(JournalMagic)]) != JournalMagic {
		return nil, fmt.Errorf("trainset: %s is not a harvest journal", path)
	}
	records, _ := parseJournal(data[len(JournalMagic):], len(JournalMagic))
	if capacity > 0 && len(records) > capacity {
		records = records[len(records)-capacity:]
	}
	return records, nil
}

// journalCodecRE bounds codec names used as journal file stems: the same
// grammar the registry uses for model names, keeping harvest paths safe.
var journalCodecRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// JournalPath returns the journal file for one codec under dir.
func JournalPath(dir, codec string) string {
	return filepath.Join(dir, codec+".journal")
}

// ListJournals returns the codec names with a journal file under dir,
// sorted. A missing directory returns (nil, nil).
func ListJournals(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trainset: list journals: %w", err)
	}
	var out []string
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".journal")
		if ok && !e.IsDir() && journalCodecRE.MatchString(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Harvester fans Append calls out to one Journal per codec under a
// directory, opening files lazily. Safe for concurrent use.
type Harvester struct {
	mu       sync.Mutex
	dir      string
	capacity int
	journals map[string]*Journal
}

// NewHarvester returns a harvester writing under dir (created if absent)
// with the given per-journal retention cap (<= 0 = DefaultJournalCap).
func NewHarvester(dir string, capacity int) *Harvester {
	return &Harvester{dir: dir, capacity: capacity, journals: make(map[string]*Journal)}
}

// Record appends one observation to the codec's journal.
func (h *Harvester) Record(codec string, rec Record) error {
	if !journalCodecRE.MatchString(codec) {
		return fmt.Errorf("trainset: bad codec name %q for harvest journal", codec)
	}
	h.mu.Lock()
	j, ok := h.journals[codec]
	if !ok {
		if err := os.MkdirAll(h.dir, 0o755); err != nil {
			h.mu.Unlock()
			return fmt.Errorf("trainset: harvest dir: %w", err)
		}
		var err error
		if j, err = OpenJournal(JournalPath(h.dir, codec), h.capacity); err != nil {
			h.mu.Unlock()
			return err
		}
		h.journals[codec] = j
	}
	h.mu.Unlock()
	return j.Append(rec)
}

// Close syncs and closes every open journal, returning the first error.
func (h *Harvester) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var first error
	for _, j := range h.journals {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	h.journals = make(map[string]*Journal)
	return first
}
