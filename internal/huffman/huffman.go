// Package huffman implements the canonical Huffman entropy stage used by the
// SZ3 compressor reimplementation. Symbols are non-negative quantization
// codes (uint32); the encoder emits a self-describing stream containing the
// code-length table followed by the packed code words.
package huffman

import (
	"container/heap"
	"fmt"
	"sort"

	"carol/internal/bitstream"
	"carol/internal/safedec"
)

// maxCodeLen caps code lengths so the decoder tables stay small. With
// length-limited rebalancing this supports arbitrarily skewed inputs.
const maxCodeLen = 32

// ErrCorrupt is returned when a stream cannot be decoded. It belongs to the
// safedec taxonomy: errors.Is(ErrCorrupt, safedec.ErrCorrupt) is true.
var ErrCorrupt error = corruptError{}

type corruptError struct{}

func (corruptError) Error() string { return "huffman: corrupt stream" }

func (corruptError) Is(target error) bool { return target == safedec.ErrCorrupt }

type node struct {
	freq        uint64
	symbol      uint32
	left, right *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].symbol < h[j].symbol
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// codeLengths computes Huffman code lengths for the given frequency map.
func codeLengths(freqs map[uint32]uint64) map[uint32]uint {
	lengths := make(map[uint32]uint, len(freqs))
	switch len(freqs) {
	case 0:
		return lengths
	case 1:
		for s := range freqs {
			lengths[s] = 1
		}
		return lengths
	}
	// Seed the heap in sorted symbol order. Less breaks frequency ties by
	// symbol, so pop order is already a total order — but building from the
	// map's randomized iteration order would leave that property carrying
	// the entire determinism burden; sorted construction makes the tree
	// (and the emitted table) byte-identical by construction.
	syms := make([]uint32, 0, len(freqs))
	for s := range freqs {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	h := make(nodeHeap, 0, len(freqs))
	for _, s := range syms {
		h = append(h, &node{freq: freqs[s], symbol: s})
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		heap.Push(&h, &node{freq: a.freq + b.freq, symbol: min32(a.symbol, b.symbol), left: a, right: b})
	}
	root := h[0]
	var walk func(n *node, depth uint)
	walk = func(n *node, depth uint) {
		if n.left == nil {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	// Length-limit: clamp and re-normalize so Kraft sum <= 1.
	limitLengths(lengths)
	return lengths
}

// limitLengths clamps code lengths to maxCodeLen while keeping the Kraft
// inequality satisfied (a simplified Package-Merge style adjustment).
func limitLengths(lengths map[uint32]uint) {
	over := false
	for _, l := range lengths {
		if l > maxCodeLen {
			over = true
			break
		}
	}
	if !over {
		return
	}
	syms := sortedSymbols(lengths)
	for _, s := range syms {
		if lengths[s] > maxCodeLen {
			lengths[s] = maxCodeLen
		}
	}
	// kraft sum in units of 2^-maxCodeLen
	var kraft uint64
	for _, l := range lengths {
		kraft += 1 << (maxCodeLen - l)
	}
	limit := uint64(1) << maxCodeLen
	// Demote shortest codes until the sum fits.
	for kraft > limit {
		for _, s := range syms {
			l := lengths[s]
			if l < maxCodeLen {
				lengths[s] = l + 1
				kraft -= 1 << (maxCodeLen - l - 1)
				if kraft <= limit {
					break
				}
			}
		}
	}
}

// canonicalCodes assigns canonical code words given code lengths: symbols
// sorted by (length, symbol) receive consecutive codes.
func canonicalCodes(lengths map[uint32]uint) map[uint32]uint64 {
	syms := sortedSymbols(lengths)
	sort.Slice(syms, func(i, j int) bool {
		li, lj := lengths[syms[i]], lengths[syms[j]]
		if li != lj {
			return li < lj
		}
		return syms[i] < syms[j]
	})
	codes := make(map[uint32]uint64, len(syms))
	var code uint64
	var prevLen uint
	for _, s := range syms {
		l := lengths[s]
		code <<= (l - prevLen)
		codes[s] = code
		code++
		prevLen = l
	}
	return codes
}

func sortedSymbols(lengths map[uint32]uint) []uint32 {
	syms := make([]uint32, 0, len(lengths))
	for s := range lengths {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	return syms
}

// Encode compresses the symbol sequence. The output stream embeds the code
// table, so Decode needs no side information.
func Encode(symbols []uint32) []byte {
	freqs := make(map[uint32]uint64)
	for _, s := range symbols {
		freqs[s]++
	}
	lengths := codeLengths(freqs)
	codes := canonicalCodes(lengths)

	w := bitstream.NewWriter(len(symbols)/2 + 64)
	// Header: #symbols in alphabet, #symbols in payload.
	w.WriteBits(uint64(len(lengths)), 32)
	w.WriteBits(uint64(len(symbols)), 32)
	for _, s := range sortedSymbols(lengths) {
		w.WriteBits(uint64(s), 32)
		w.WriteBits(uint64(lengths[s]), 6)
	}
	for _, s := range symbols {
		w.WriteBits(codes[s], lengths[s])
	}
	// Prefix the bit length so Decode can cap its reader.
	bits := w.BitLen()
	out := make([]byte, 8, 8+len(w.Bytes()))
	for i := 0; i < 8; i++ {
		out[i] = byte(bits >> (56 - 8*i))
	}
	return append(out, w.Bytes()...)
}

// EncodedSizeBits estimates the encoded payload size (excluding the table)
// for the given symbols without building the full stream. The SECRE SZ3
// surrogate uses the *absence* of this stage; the full compressor uses
// Encode itself. Exposed for analysis and tests.
func EncodedSizeBits(symbols []uint32) uint64 {
	freqs := make(map[uint32]uint64)
	for _, s := range symbols {
		freqs[s]++
	}
	lengths := codeLengths(freqs)
	var bits uint64
	for s, f := range freqs {
		bits += f * uint64(lengths[s])
	}
	return bits
}

// Decode reverses Encode under the default safedec limits.
func Decode(stream []byte) ([]uint32, error) {
	return DecodeLimited(stream, safedec.Default())
}

// DecodeLimited reverses Encode, refusing (with an error wrapping
// safedec.ErrLimit) streams whose claimed symbol count would allocate more
// than lim.MaxAlloc bytes of output.
func DecodeLimited(stream []byte, lim safedec.Limits) ([]uint32, error) {
	lim = lim.Norm()
	if len(stream) < 8 {
		return nil, fmt.Errorf("%w: missing bit length: %w", ErrCorrupt, safedec.ErrTruncated)
	}
	var bits uint64
	for i := 0; i < 8; i++ {
		bits = bits<<8 | uint64(stream[i])
	}
	r := bitstream.NewReader(stream[8:], bits)
	nAlpha, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: header", ErrCorrupt)
	}
	nSyms, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: header", ErrCorrupt)
	}
	if nAlpha == 0 {
		if nSyms != 0 {
			return nil, ErrCorrupt
		}
		return []uint32{}, nil
	}
	// Each table entry consumes 38 bits and each payload symbol at least
	// one; reject counts the stream cannot possibly back before allocating.
	if nAlpha*38 > r.Remaining() || nSyms > r.Remaining() {
		return nil, fmt.Errorf("%w: implausible symbol counts", ErrCorrupt)
	}
	if err := lim.Alloc("huffman symbols", 4*int64(nSyms)); err != nil {
		return nil, fmt.Errorf("huffman: %w", err)
	}
	lengths := make(map[uint32]uint, nAlpha)
	for i := uint64(0); i < nAlpha; i++ {
		s, err := r.ReadBits(32)
		if err != nil {
			return nil, fmt.Errorf("%w: table", ErrCorrupt)
		}
		l, err := r.ReadBits(6)
		if err != nil {
			return nil, fmt.Errorf("%w: table", ErrCorrupt)
		}
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("%w: bad code length %d", ErrCorrupt, l)
		}
		lengths[uint32(s)] = uint(l)
	}
	codes := canonicalCodes(lengths)
	// Build reverse map: (length, code) -> symbol.
	type key struct {
		len  uint
		code uint64
	}
	rev := make(map[key]uint32, len(codes))
	for s, c := range codes {
		rev[key{lengths[s], c}] = s
	}
	// Cap the initial allocation: a corrupt header may claim billions of
	// symbols; the slice grows naturally if the payload really is that big.
	capHint := nSyms
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]uint32, 0, capHint)
	for uint64(len(out)) < nSyms {
		var code uint64
		var l uint
		found := false
		for l < maxCodeLen+1 {
			b, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("%w: payload", ErrCorrupt)
			}
			code = code<<1 | uint64(b)
			l++
			if s, ok := rev[key{l, code}]; ok {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: no code matched", ErrCorrupt)
		}
	}
	return out, nil
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
