// Package huffman implements the canonical Huffman entropy stage used by the
// SZ3 compressor reimplementation. Symbols are non-negative quantization
// codes (uint32); the encoder emits a self-describing stream containing the
// code-length table followed by the packed code words.
//
// The coder state (frequency tables, tree arena, canonical-code tables) is
// held in reusable Encoder/Decoder values so block pipelines can amortize
// the scratch across calls; the package-level Encode/Decode functions draw
// from a sync.Pool and are what single-shot callers use. Streams are
// byte-identical to the historical map-based implementation: the merge tree
// is built under a strict total order on (frequency, symbol), so the emitted
// code-length table — and therefore every canonical code word — is fully
// determined by the input histogram.
package huffman

import (
	"fmt"
	"slices"
	"sync"

	"carol/internal/bitstream"
	"carol/internal/safedec"
)

// maxCodeLen caps code lengths so the decoder tables stay small. With
// length-limited rebalancing this supports arbitrarily skewed inputs.
const maxCodeLen = 32

// denseLimit bounds the symbol value up to which the encoder uses dense
// (array-indexed) frequency and code tables. SZ3 quantization codes top out
// at 2*quantRadius (65536), far below this; larger symbol values fall back
// to a map-based histogram so a stray huge symbol cannot force a huge
// allocation.
const denseLimit = 1 << 18

// ErrCorrupt is returned when a stream cannot be decoded. It belongs to the
// safedec taxonomy: errors.Is(ErrCorrupt, safedec.ErrCorrupt) is true.
var ErrCorrupt error = corruptError{}

type corruptError struct{}

func (corruptError) Error() string { return "huffman: corrupt stream" }

func (corruptError) Is(target error) bool { return target == safedec.ErrCorrupt }

// enode is one node of the merge tree, held in the Encoder's arena. The
// first k arena entries are the leaves, in ascending symbol order.
type enode struct {
	freq        uint64
	sym         uint32 // leaf symbol, or min symbol of the subtree
	left, right int32  // arena indices; -1 for leaves
}

// Encoder is a reusable canonical Huffman encoder. The zero value is ready
// to use; Encode may be called repeatedly and reuses all internal scratch.
// An Encoder is not safe for concurrent use — pool instances instead (the
// package-level Encode does exactly that).
type Encoder struct {
	// Dense per-symbol tables, sized maxSym+1 when maxSym < denseLimit and
	// sparsely cleared after every call so steady-state reuse allocates
	// nothing.
	freq []uint64
	lut  []uint64 // code<<6 | length, valid only for this call's symbols

	// Sparse fallback for symbol values >= denseLimit.
	freqMap map[uint32]uint64
	lutMap  map[uint32]uint64

	// dense records which histogram/lookup path the current call uses.
	dense bool

	syms  []uint32 // distinct symbols, ascending
	freqs []uint64 // aligned to syms
	lens  []uint8  // aligned to syms
	codes []uint64 // aligned to syms
	order []int32  // syms indices sorted by (length, symbol)

	nodes []enode
	heap  []int32
	stack []int32 // iterative tree walk: packed (node<<8 | depth)

	w bitstream.Writer
}

// NewEncoder returns an empty Encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Reset releases the Encoder's retained scratch so the memory can be
// reclaimed. It is never required for correctness — Encode cleans its state
// after every call — but lets long-lived holders drop a large working set.
func (e *Encoder) Reset() { *e = Encoder{} }

// Encode compresses the symbol sequence. The output stream embeds the code
// table, so Decode needs no side information.
func (e *Encoder) Encode(symbols []uint32) []byte {
	return e.AppendEncode(nil, symbols)
}

// AppendEncode appends the encoded stream for symbols to dst and returns
// the extended slice. With a pre-sized dst this performs no allocations
// beyond dst's own growth.
func (e *Encoder) AppendEncode(dst []byte, symbols []uint32) []byte {
	e.histogram(symbols)
	e.buildLengths()
	e.assignCodes()

	e.w.Reset()
	w := &e.w
	// Header: #symbols in alphabet, #symbols in payload.
	w.WriteBits(uint64(len(e.syms)), 32)
	w.WriteBits(uint64(len(symbols)), 32)
	for i, s := range e.syms {
		w.WriteBits(uint64(s), 32)
		w.WriteBits(uint64(e.lens[i]), 6)
	}
	// Publish the per-symbol (code, length) lookup, then stream the payload.
	for i, s := range e.syms {
		packed := e.codes[i]<<6 | uint64(e.lens[i])
		if e.dense {
			e.lut[s] = packed
		} else {
			e.lutMap[s] = packed
		}
	}
	if e.dense {
		for _, s := range symbols {
			packed := e.lut[s]
			w.WriteBits(packed>>6, uint(packed&63))
		}
	} else {
		for _, s := range symbols {
			packed := e.lutMap[s]
			w.WriteBits(packed>>6, uint(packed&63))
		}
	}

	// Prefix the bit length so Decode can cap its reader.
	bits := w.BitLen()
	var pre [8]byte
	for i := 0; i < 8; i++ {
		pre[i] = byte(bits >> (56 - 8*i))
	}
	dst = append(dst, pre[:]...)
	dst = w.AppendTo(dst)
	e.clean()
	return dst
}

// histogram fills syms (distinct, ascending) and freqs from symbols.
func (e *Encoder) histogram(symbols []uint32) {
	e.syms = e.syms[:0]
	var maxSym uint32
	for _, s := range symbols {
		if s > maxSym {
			maxSym = s
		}
	}
	if len(symbols) > 0 && maxSym < denseLimit {
		e.dense = true
		need := int(maxSym) + 1
		if len(e.freq) < need {
			e.freq = make([]uint64, need)
			e.lut = make([]uint64, need)
		}
		for _, s := range symbols {
			if e.freq[s] == 0 {
				e.syms = append(e.syms, s)
			}
			e.freq[s]++
		}
		slices.Sort(e.syms)
		e.freqs = e.freqs[:0]
		for _, s := range e.syms {
			e.freqs = append(e.freqs, e.freq[s])
		}
		return
	}
	// Sparse fallback (huge symbol values, or empty input).
	e.dense = false
	if e.freqMap == nil {
		e.freqMap = make(map[uint32]uint64)
		e.lutMap = make(map[uint32]uint64)
	}
	for _, s := range symbols {
		if e.freqMap[s] == 0 {
			e.syms = append(e.syms, s)
		}
		e.freqMap[s]++
	}
	slices.Sort(e.syms)
	e.freqs = e.freqs[:0]
	for _, s := range e.syms {
		e.freqs = append(e.freqs, e.freqMap[s])
	}
}

// clean sparsely clears the per-call state so the next Encode starts from
// zeroed tables without touching memory this call never wrote.
func (e *Encoder) clean() {
	if e.dense {
		for _, s := range e.syms {
			e.freq[s] = 0
			e.lut[s] = 0
		}
	} else if e.freqMap != nil {
		clear(e.freqMap)
		clear(e.lutMap)
	}
	e.syms = e.syms[:0]
}

// buildLengths computes length-limited Huffman code lengths for the current
// histogram into e.lens, reproducing the classic two-queue-free heap merge:
// leaves seeded in ascending symbol order, ties broken by symbol, internal
// nodes carrying the minimum symbol of their subtree. The order is strict
// and total, so the resulting lengths are implementation-independent.
func (e *Encoder) buildLengths() {
	k := len(e.syms)
	e.lens = e.lens[:0]
	for i := 0; i < k; i++ {
		e.lens = append(e.lens, 0)
	}
	switch k {
	case 0:
		return
	case 1:
		e.lens[0] = 1
		return
	}
	e.nodes = e.nodes[:0]
	for i := 0; i < k; i++ {
		e.nodes = append(e.nodes, enode{freq: e.freqs[i], sym: e.syms[i], left: -1, right: -1})
	}
	e.heap = e.heap[:0]
	for i := 0; i < k; i++ {
		e.heap = append(e.heap, int32(i))
	}
	e.heapInit()
	for len(e.heap) > 1 {
		a := e.heapPop()
		b := e.heapPop()
		na, nb := e.nodes[a], e.nodes[b]
		sym := na.sym
		if nb.sym < sym {
			sym = nb.sym
		}
		e.nodes = append(e.nodes, enode{freq: na.freq + nb.freq, sym: sym, left: a, right: b})
		e.heapPush(int32(len(e.nodes) - 1))
	}
	// Iterative depth-first walk, left before right, assigning leaf depths.
	// Leaves are arena entries [0, k): the leaf index is the syms index.
	e.stack = e.stack[:0]
	e.stack = append(e.stack, e.heap[0]<<8)
	for len(e.stack) > 0 {
		top := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		idx, depth := top>>8, uint8(top&0xff)
		n := e.nodes[idx]
		if n.left < 0 {
			e.lens[idx] = depth
			continue
		}
		// Push right first so left pops (and is visited) first; visit order
		// does not affect lengths but keeps traversal costs predictable.
		e.stack = append(e.stack, n.right<<8|int32(depth)+1)
		e.stack = append(e.stack, n.left<<8|int32(depth)+1)
	}
	e.limitLengths()
}

// heapLess orders arena nodes by (frequency, symbol) — the same strict total
// order the original pointer-heap used.
func (e *Encoder) heapLess(a, b int32) bool {
	na, nb := &e.nodes[a], &e.nodes[b]
	if na.freq != nb.freq {
		return na.freq < nb.freq
	}
	return na.sym < nb.sym
}

func (e *Encoder) heapInit() {
	n := len(e.heap)
	for i := n/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

func (e *Encoder) heapPush(x int32) {
	e.heap = append(e.heap, x)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heapLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Encoder) heapPop() int32 {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
	return top
}

func (e *Encoder) siftDown(i int) {
	n := len(e.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && e.heapLess(e.heap[r], e.heap[l]) {
			m = r
		}
		if !e.heapLess(e.heap[m], e.heap[i]) {
			return
		}
		e.heap[i], e.heap[m] = e.heap[m], e.heap[i]
		i = m
	}
}

// limitLengths clamps code lengths to maxCodeLen while keeping the Kraft
// inequality satisfied (a simplified Package-Merge style adjustment),
// demoting in ascending symbol order exactly as the historical
// implementation did.
func (e *Encoder) limitLengths() {
	over := false
	for _, l := range e.lens {
		if l > maxCodeLen {
			over = true
			break
		}
	}
	if !over {
		return
	}
	for i, l := range e.lens {
		if l > maxCodeLen {
			e.lens[i] = maxCodeLen
		}
	}
	// kraft sum in units of 2^-maxCodeLen
	var kraft uint64
	for _, l := range e.lens {
		kraft += 1 << (maxCodeLen - l)
	}
	limit := uint64(1) << maxCodeLen
	// Demote shortest codes until the sum fits.
	for kraft > limit {
		for i, l := range e.lens {
			if l < maxCodeLen {
				e.lens[i] = l + 1
				kraft -= 1 << (maxCodeLen - l - 1)
				if kraft <= limit {
					break
				}
			}
		}
	}
}

// assignCodes computes canonical code words for the current lengths:
// symbols sorted by (length, symbol) receive consecutive codes.
func (e *Encoder) assignCodes() {
	k := len(e.syms)
	e.order = e.order[:0]
	for i := 0; i < k; i++ {
		e.order = append(e.order, int32(i))
	}
	slices.SortFunc(e.order, func(ia, ib int32) int {
		if e.lens[ia] != e.lens[ib] {
			return int(e.lens[ia]) - int(e.lens[ib])
		}
		if e.syms[ia] < e.syms[ib] {
			return -1
		}
		return 1
	})
	e.codes = e.codes[:0]
	for i := 0; i < k; i++ {
		e.codes = append(e.codes, 0)
	}
	var code uint64
	var prevLen uint8
	for _, idx := range e.order {
		l := e.lens[idx]
		code <<= uint(l - prevLen)
		e.codes[idx] = code
		code++
		prevLen = l
	}
}

// encodedSizeBits computes the payload size (excluding the table) for the
// current histogram without emitting a stream.
func (e *Encoder) encodedSizeBits(symbols []uint32) uint64 {
	e.histogram(symbols)
	e.buildLengths()
	var bits uint64
	for i := range e.syms {
		bits += e.freqs[i] * uint64(e.lens[i])
	}
	e.clean()
	return bits
}

var encPool = sync.Pool{New: func() any { return NewEncoder() }}

// Encode compresses the symbol sequence using a pooled Encoder. The output
// stream embeds the code table, so Decode needs no side information.
func Encode(symbols []uint32) []byte {
	e := encPool.Get().(*Encoder)
	defer encPool.Put(e)
	return e.Encode(symbols)
}

// AppendEncode is Encode appending to dst, using a pooled Encoder.
func AppendEncode(dst []byte, symbols []uint32) []byte {
	e := encPool.Get().(*Encoder)
	defer encPool.Put(e)
	return e.AppendEncode(dst, symbols)
}

// EncodedSizeBits estimates the encoded payload size (excluding the table)
// for the given symbols without building the full stream. The SECRE SZ3
// surrogate uses the *absence* of this stage; the full compressor uses
// Encode itself. Exposed for analysis and tests.
func EncodedSizeBits(symbols []uint32) uint64 {
	e := encPool.Get().(*Encoder)
	defer encPool.Put(e)
	return e.encodedSizeBits(symbols)
}

// tableEntry is one (symbol, code length) pair of a decoded stream table.
type tableEntry struct {
	sym uint32
	len uint8
}

// Decoder is a reusable canonical Huffman decoder. The zero value is ready
// to use; Decode may be called repeatedly and reuses the canonical tables.
// A Decoder is not safe for concurrent use — pool instances instead (the
// package-level Decode does exactly that).
type Decoder struct {
	entries []tableEntry // sorted by (length, symbol): canonical order
	bySym   []tableEntry // scratch for duplicate detection
	count   [maxCodeLen + 1]uint32
	first   [maxCodeLen + 1]uint64
	base    [maxCodeLen + 1]uint32
	r       bitstream.Reader
}

// NewDecoder returns an empty Decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Reset releases the Decoder's retained scratch.
func (d *Decoder) Reset() { *d = Decoder{} }

// Decode reverses Encode under the default safedec limits.
func (d *Decoder) Decode(stream []byte) ([]uint32, error) {
	return d.DecodeLimited(stream, safedec.Default())
}

// DecodeLimited reverses Encode, refusing (with an error wrapping
// safedec.ErrLimit) streams whose claimed symbol count would allocate more
// than lim.MaxAlloc bytes of output. The returned slice is freshly
// allocated — only the decoder's internal tables are reused.
func (d *Decoder) DecodeLimited(stream []byte, lim safedec.Limits) ([]uint32, error) {
	return d.AppendDecodeLimited(nil, stream, lim)
}

// AppendDecodeLimited is DecodeLimited appending decoded symbols to dst,
// so a steady-state caller that recycles its output buffer performs no
// per-call allocation at all. On error the returned slice is dst unchanged.
func (d *Decoder) AppendDecodeLimited(dst []uint32, stream []byte, lim safedec.Limits) ([]uint32, error) {
	lim = lim.Norm()
	if len(stream) < 8 {
		return dst, fmt.Errorf("%w: missing bit length: %w", ErrCorrupt, safedec.ErrTruncated)
	}
	var bits uint64
	for i := 0; i < 8; i++ {
		bits = bits<<8 | uint64(stream[i])
	}
	d.r.Reset(stream[8:], bits)
	r := &d.r
	nAlpha, err := r.ReadBits(32)
	if err != nil {
		return dst, fmt.Errorf("%w: header", ErrCorrupt)
	}
	nSyms, err := r.ReadBits(32)
	if err != nil {
		return dst, fmt.Errorf("%w: header", ErrCorrupt)
	}
	if nAlpha == 0 {
		if nSyms != 0 {
			return dst, ErrCorrupt
		}
		if dst == nil {
			dst = []uint32{}
		}
		return dst, nil
	}
	// Each table entry consumes 38 bits and each payload symbol at least
	// one; reject counts the stream cannot possibly back before allocating.
	if nAlpha*38 > r.Remaining() || nSyms > r.Remaining() {
		return dst, fmt.Errorf("%w: implausible symbol counts", ErrCorrupt)
	}
	if err := lim.Alloc("huffman symbols", 4*int64(nSyms)); err != nil {
		return dst, fmt.Errorf("huffman: %w", err)
	}
	d.entries = d.entries[:0]
	for i := uint64(0); i < nAlpha; i++ {
		s, err := r.ReadBits(32)
		if err != nil {
			return dst, fmt.Errorf("%w: table", ErrCorrupt)
		}
		l, err := r.ReadBits(6)
		if err != nil {
			return dst, fmt.Errorf("%w: table", ErrCorrupt)
		}
		if l == 0 || l > maxCodeLen {
			return dst, fmt.Errorf("%w: bad code length %d", ErrCorrupt, l)
		}
		d.entries = append(d.entries, tableEntry{sym: uint32(s), len: uint8(l)})
	}
	// Reject duplicate table symbols: the encoder never emits them, and a
	// canonical table with duplicates has no consistent code assignment.
	d.bySym = append(d.bySym[:0], d.entries...)
	slices.SortFunc(d.bySym, func(a, b tableEntry) int {
		if a.sym < b.sym {
			return -1
		}
		if a.sym > b.sym {
			return 1
		}
		return 0
	})
	for i := 1; i < len(d.bySym); i++ {
		if d.bySym[i].sym == d.bySym[i-1].sym {
			return dst, fmt.Errorf("%w: duplicate table symbol %d", ErrCorrupt, d.bySym[i].sym)
		}
	}
	d.buildTable()

	// Cap the initial allocation: a corrupt header may claim billions of
	// symbols; the slice grows naturally if the payload really is that big.
	capHint := nSyms
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	start := len(dst)
	dst = slices.Grow(dst, int(capHint))
	for uint64(len(dst)-start) < nSyms {
		var code uint64
		var l uint
		found := false
		for l < maxCodeLen {
			b, err := r.ReadBit()
			if err != nil {
				return dst[:start], fmt.Errorf("%w: payload", ErrCorrupt)
			}
			code = code<<1 | uint64(b)
			l++
			if cnt := d.count[l]; cnt > 0 && code >= d.first[l] && code-d.first[l] < uint64(cnt) {
				dst = append(dst, d.entries[d.base[l]+uint32(code-d.first[l])].sym)
				found = true
				break
			}
		}
		if !found {
			return dst[:start], fmt.Errorf("%w: no code matched", ErrCorrupt)
		}
	}
	return dst, nil
}

// buildTable derives the canonical decode tables from d.entries: entries
// sorted by (length, symbol) receive consecutive codes, so a read code c of
// length l maps to entry base[l] + (c - first[l]) whenever that offset is
// within count[l].
func (d *Decoder) buildTable() {
	slices.SortFunc(d.entries, func(a, b tableEntry) int {
		if a.len != b.len {
			return int(a.len) - int(b.len)
		}
		if a.sym < b.sym {
			return -1
		}
		if a.sym > b.sym {
			return 1
		}
		return 0
	})
	for i := range d.count {
		d.count[i] = 0
	}
	var code uint64
	var prevLen uint8
	for i, e := range d.entries {
		code <<= uint(e.len - prevLen)
		if d.count[e.len] == 0 {
			d.first[e.len] = code
			d.base[e.len] = uint32(i)
		}
		d.count[e.len]++
		code++
		prevLen = e.len
	}
}

var decPool = sync.Pool{New: func() any { return NewDecoder() }}

// Decode reverses Encode under the default safedec limits, using a pooled
// Decoder.
func Decode(stream []byte) ([]uint32, error) {
	return DecodeLimited(stream, safedec.Default())
}

// DecodeLimited reverses Encode under lim, using a pooled Decoder.
func DecodeLimited(stream []byte, lim safedec.Limits) ([]uint32, error) {
	d := decPool.Get().(*Decoder)
	defer func() {
		// The decode armed d.r on the caller's stream; drop that reference
		// before the Decoder goes back to the pool, or the pool pins the
		// caller's buffer alive indefinitely.
		d.r.Release()
		decPool.Put(d)
	}()
	return d.DecodeLimited(stream, lim)
}
